// Climate-campaign scenario: move a CESM-like snapshot collection
// across a congested WAN with the full Ocelot pipeline — parallel
// compression, file grouping, modelled Globus transfer, parallel
// decompression, and verification at the destination.
//
//   $ ./climate_campaign
#include <iostream>

#include "common/table.hpp"
#include "core/local_pipeline.hpp"
#include "datagen/datasets.hpp"
#include "io/dataset_file.hpp"

using namespace ocelot;

int main() {
  // The campaign: 3 ensemble members x 14 CESM fields = 42 files.
  std::vector<std::string> names;
  std::vector<FloatArray> fields;
  for (auto& field : generate_application("CESM", 0.09, 11, 3)) {
    names.push_back("cesm/" + field.name + ".f32");
    fields.push_back(std::move(field.data));
  }
  double raw_bytes = 0.0;
  for (const auto& f : fields) raw_bytes += static_cast<double>(f.byte_size());
  std::cout << "campaign: " << fields.size() << " files, "
            << fmt_bytes(raw_bytes) << " raw\n\n";

  // A congested 25 MB/s wide-area path (laptop-scale stand-in for the
  // paper's inter-facility links).
  LinkProfile wan;
  wan.name = "campus->archive";
  wan.bandwidth_bps = 25e6;
  wan.per_file_overhead_s = 2e-3;
  wan.startup_s = 0.1;

  LocalPipelineConfig config;
  config.compression.backend = "sz3-interp";
  config.compression.eb_mode = EbMode::kValueRangeRel;
  config.compression.eb = 1e-3;
  config.workers = 4;
  config.link = wan;

  TextTable table({"mode", "wire files", "compress (s)", "transfer (s)",
                   "decompress (s)", "total (s)", "speed-up vs direct"});
  for (const bool grouped : {false, true}) {
    config.group_files = grouped;
    config.group_world_size = 8;
    FileStore destination;
    const LocalPipelineResult r =
        run_local_pipeline(names, fields, config, &destination);

    table.add_row({grouped ? "compressed+grouped" : "compressed",
                   std::to_string(r.wire_files),
                   fmt_double(r.compression.wall_seconds, 2),
                   fmt_double(r.transfer.duration_s, 2),
                   fmt_double(r.decompress_seconds, 2),
                   fmt_double(r.total_seconds(), 2),
                   fmt_double(r.speedup(), 2) + "x"});

    if (!grouped) {
      std::cout << "direct transfer baseline: "
                << fmt_double(r.direct_transfer.duration_s, 2) << "s at "
                << fmt_rate(raw_bytes / r.direct_transfer.duration_s)
                << "\n";
      std::cout << "compression ratio: "
                << fmt_double(r.compression.ratio(), 2) << "x, worst PSNR "
                << fmt_double(r.min_psnr_db, 1) << " dB, max error "
                << r.max_error << "\n\n";
    }
    // Verify arrival: every file must load back from the destination.
    for (const auto& name : names) {
      (void)load_field(destination.read(name));
    }
  }
  table.print(std::cout);
  std::cout << "\nAll " << names.size()
            << " fields verified at the destination (error bound intact).\n";
  return 0;
}
