// Sentinel-failover scenario: submit a compress-and-transfer campaign
// on a busy cluster. While compute nodes sit in the batch queue, the
// sentinel is already moving raw files; when nodes arrive it stops the
// raw transfer and compresses the remainder (Section VII-B, Fig. 10).
//
//   $ ./sentinel_failover
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/sentinel.hpp"

using namespace ocelot;

int main() {
  std::cout << "=== Sentinel failover: RTM 682 GB, Anvil -> Cori ===\n\n";

  const FileInventory inv = paper_inventory("RTM");
  CampaignConfig campaign;
  campaign.src = "Anvil";
  campaign.dst = "Cori";
  campaign.compression_ratio = 40.0;
  campaign.rates = paper_compute_rates("RTM");

  // Baselines.
  const CampaignReport direct =
      run_campaign(inv, TransferMode::kDirect, campaign);
  const CampaignReport optimized =
      run_campaign(inv, TransferMode::kCompressedGrouped, campaign);
  std::cout << "baselines: direct "
            << fmt_double(direct.total_seconds, 1)
            << "s | immediate-nodes compressed "
            << fmt_double(optimized.total_seconds, 1) << "s\n\n";

  // Three queue scenarios: idle cluster, moderate queue, stuck queue.
  TextTable table({"scenario", "wait (s)", "raw files", "compressed files",
                   "bytes on wire", "total (s)"});
  struct Scenario {
    const char* name;
    double wait;
  };
  for (const Scenario& sc :
       {Scenario{"idle cluster", 2.0}, Scenario{"moderate queue", 90.0},
        Scenario{"stuck queue", 3600.0}}) {
    SentinelConfig config;
    config.campaign = campaign;
    config.machine_nodes = 750;
    config.wait_model =
        std::make_unique<TraceWait>(std::vector<double>{sc.wait});
    const SentinelReport report = run_sentinel(inv, std::move(config));

    table.add_row({sc.name,
                   fmt_double(report.node_wait_seconds, 1),
                   std::to_string(report.files_sent_raw),
                   std::to_string(report.files_sent_compressed),
                   fmt_bytes(report.bytes_on_wire),
                   fmt_double(report.total_seconds, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: with an idle cluster the sentinel matches the "
         "compressed campaign; with a stuck queue it degrades gracefully "
         "to the direct transfer — never worse than either baseline.\n";
  return 0;
}
