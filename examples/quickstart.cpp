// Quickstart: compress a scientific field with an error bound,
// decompress it, and verify the bound — the core Ocelot contract.
//
//   $ ./quickstart
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "datagen/datasets.hpp"

using namespace ocelot;

int main() {
  // 1. Get a field: a synthetic CESM-like total-precipitable-water
  //    grid (in a real deployment this comes from your NetCDF/HDF5).
  const FloatArray field = generate_field("CESM", "TMQ", 0.12, 2024);
  std::cout << "field: CESM/TMQ, " << field.shape().dim(0) << "x"
            << field.shape().dim(1) << " ("
            << fmt_bytes(static_cast<double>(field.byte_size())) << ")\n\n";

  // 2. Pick a compression setting: the SZ3-style interpolation
  //    backend with a value-range-relative error bound of 1e-3.
  CompressionConfig config;
  config.backend = "sz3-interp";
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-3;

  // 3. Compress.
  const Bytes blob = compress(field, config);
  const double ratio = static_cast<double>(field.byte_size()) /
                       static_cast<double>(blob.size());
  std::cout << "compressed to " << fmt_bytes(static_cast<double>(blob.size()))
            << "  (ratio " << fmt_double(ratio, 2) << "x)\n";

  // 4. Decompress and verify the error-bound contract.
  const FloatArray recon = decompress<float>(blob);
  const double abs_eb = resolve_abs_eb(field, config);
  const double max_err = max_abs_error<float>(field.values(), recon.values());
  const double quality = psnr<float>(field.values(), recon.values());

  std::cout << "max |error| = " << max_err << "  (bound " << abs_eb << ")  "
            << (max_err <= abs_eb ? "[bound holds]" : "[VIOLATION]") << "\n"
            << "PSNR = " << fmt_double(quality, 2) << " dB"
            << (quality > 50.0 ? "  (no visible difference expected)" : "")
            << "\n\n";

  // 5. Try every registered backend for comparison (a backend added
  //    to the registry shows up here automatically).
  TextTable table({"backend", "ratio", "compress (ms)", "PSNR (dB)"});
  for (const std::string& backend : registered_backend_names()) {
    CompressionConfig c = config;
    c.backend = backend;
    const RoundTripStats stats = measure_roundtrip(field, c);
    table.add_row({backend, fmt_double(stats.compression_ratio, 2),
                   fmt_double(stats.compress_seconds * 1e3, 2),
                   fmt_double(stats.psnr_db, 2)});
  }
  table.print(std::cout);
  return 0;
}
