// Chunked streaming compression through pipes (the zero-copy path).
//
// Demonstrates core/stream_codec: a producer emits raw float32 slabs
// into a stream, stream_compress chunks them into OCB1 blocks through
// pooled buffers (the full field is never resident on the compress
// side), and stream_decompress replays the container block by block.
// The same machinery backs the CLI:
//
//   ./build/ocelot generate Miranda density 0.2 field.ocf
//   ./build/ocelot decompress field.ocz -          # raw floats out
//   ... | ./build/ocelot compress - out.ocb slab=128x128 eb=1e-3
//
// Here the pipe is a std::stringstream so the example is
// self-contained and deterministic.
#include <iostream>
#include <sstream>

#include "common/buffer_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/stream_codec.hpp"
#include "datagen/datasets.hpp"

using namespace ocelot;

int main() {
  // A 3-D Miranda field, serialized the way a simulation would write
  // it: raw float32 samples, slowest dimension first.
  const FloatArray field = generate_field("Miranda", "density", 0.2, 7);
  std::stringstream raw;
  raw.write(reinterpret_cast<const char*>(field.values().data()),
            static_cast<std::streamsize>(field.byte_size()));

  std::cout << "=== streaming pipe: " << field.shape().dim(0) << "x"
            << field.shape().dim(1) << "x" << field.shape().dim(2)
            << " Miranda density ("
            << fmt_bytes(static_cast<double>(field.byte_size())) << ") ===\n";

  // Compress: each chunk of 8 slabs becomes one OCB1 block. eb is
  // value-range-relative per chunk; use kAbsolute for a uniform bound.
  StreamCompressConfig config;
  config.compression.backend = "sz3-interp";
  config.compression.eb_mode = EbMode::kAbsolute;
  config.compression.eb = 1e-3;
  config.slab_dims = {field.shape().dim(1), field.shape().dim(2)};
  config.block_slabs = 8;

  std::stringstream compressed;
  const StreamStats c = stream_compress(raw, compressed, config);
  std::cout << "compressed in " << c.blocks << " blocks: "
            << fmt_bytes(static_cast<double>(c.compressed_bytes)) << " ("
            << fmt_double(c.ratio(), 2) << "x)\n";

  // Decompress block by block back into raw floats.
  std::stringstream restored;
  const StreamStats d = stream_decompress(compressed, restored);
  std::cout << "decompressed " << d.blocks << " blocks back to "
            << fmt_bytes(static_cast<double>(d.raw_bytes)) << "\n";

  // Verify the bound end to end.
  std::vector<float> recon(field.size());
  restored.read(reinterpret_cast<char*>(recon.data()),
                static_cast<std::streamsize>(field.byte_size()));
  const double err = max_abs_error<float>(field.values(), recon);
  std::cout << "max |err| = " << err << " (bound " << config.compression.eb
            << ")\n";

  // The pools that carried every chunk: steady-state streaming reuses
  // these buffers instead of allocating per block.
  const auto bytes_stats = BufferPool::shared().stats();
  const auto float_stats = ScratchPool<float>::shared().stats();
  std::cout << "buffer pool: " << bytes_stats.created << " byte buffers, "
            << bytes_stats.reused << " reuses; float scratch: "
            << float_stats.created << " vectors, " << float_stats.reused
            << " reuses\n";
  return err <= config.compression.eb ? 0 : 1;
}
