// Multi-campaign orchestration: several applications move between the
// paper's sites at the same time, contending for shared WAN links,
// compute-node pools and warm funcX containers.
//
// The comparison against the same campaigns run in isolation shows
// where a production deployment diverges from the paper's one-at-a-
// time evaluation: fair-shared links stretch every concurrent
// transfer, and a shared node pool queues compression jobs.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/workload.hpp"
#include "orchestrator/orchestrator.hpp"

using namespace ocelot;

namespace {

CampaignSpec make_spec(const std::string& name, const std::string& app,
                       TransferMode mode, double submit_time, int priority) {
  CampaignSpec spec;
  spec.name = name;
  spec.inventory = paper_inventory(app);
  spec.mode = mode;
  spec.config.src = "Anvil";
  spec.config.dst = "Cori";
  spec.config.compression_ratio = 10.0;
  spec.config.rates = paper_compute_rates(app);
  spec.submit_time = submit_time;
  spec.priority = priority;
  return spec;
}

}  // namespace

int main() {
  std::vector<CampaignSpec> specs;
  specs.push_back(make_spec("miranda-op", "Miranda",
                            TransferMode::kCompressedGrouped, 0.0, 1));
  specs.push_back(make_spec("rtm-cp", "RTM",
                            TransferMode::kCompressedPerFile, 0.0, 0));
  specs.push_back(make_spec("cesm-np", "CESM", TransferMode::kDirect,
                            30.0, 0));
  specs.push_back(make_spec("miranda-np", "Miranda", TransferMode::kDirect,
                            60.0, 2));

  const OrchestratorReport isolated = run_campaigns(specs, /*isolated=*/true);
  const OrchestratorReport contended = run_campaigns(specs);

  std::cout << "Four concurrent campaigns on Anvil->Cori vs the same\n"
               "campaigns with the testbed to themselves:\n\n";
  TextTable table({"campaign", "mode", "isolated T", "contended T",
                   "transfer stretch", "node wait"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const CampaignReport& alone = isolated.campaigns[i].report;
    const CampaignOutcome& shared = contended.campaigns[i];
    table.add_row({shared.name, to_string(shared.mode),
                   fmt_seconds(alone.total_seconds),
                   fmt_seconds(shared.report.total_seconds),
                   fmt_double(shared.transfer_stretch, 3) + "x",
                   fmt_seconds(shared.report.node_wait_seconds)});
  }
  table.print(std::cout);

  std::cout << "\nShared-resource view:\n";
  for (const auto& [name, link] : contended.links) {
    const double util =
        link.stats.busy_seconds > 0.0
            ? link.stats.units_delivered /
                  (link.capacity_bps * link.stats.busy_seconds)
            : 0.0;
    std::cout << "  link " << name << ": peak "
              << link.stats.peak_flows << " concurrent flows, "
              << fmt_bytes(link.stats.units_delivered) << " moved, "
              << fmt_double(100.0 * util, 1)
              << "% of capacity while busy\n";
  }
  for (const auto& [name, pool] : contended.pools) {
    std::cout << "  pool " << name << ": " << pool.stats.grants
              << " grants, peak " << pool.stats.peak_nodes_in_use << "/"
              << pool.total_nodes << " nodes, total queue wait "
              << fmt_seconds(pool.stats.total_wait_seconds) << "\n";
  }
  std::cout << "  funcX: " << contended.faas_cold_starts
            << " cold starts, " << contended.faas_warm_hits
            << " warm hits (isolated runs: " << isolated.faas_cold_starts
            << " cold starts)\n";
  std::cout << "\nmakespan contended " << fmt_seconds(contended.makespan)
            << " vs isolated best case " << fmt_seconds(isolated.makespan)
            << " (" << contended.events_executed << " events)\n";
  return 0;
}
