// Adaptive-error-bound scenario: use the ML quality predictor to pick
// the most aggressive compression that still meets a PSNR target —
// Ocelot capability #1 (Section V), without trial compression of the
// full dataset.
//
//   $ ./adaptive_error_bound
#include <iostream>

#include "bench_common.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/advisor.hpp"

using namespace ocelot;
using namespace ocelot::bench;

int main() {
  // 1. Train the quality model on historical observations from two
  //    applications (one-off cost, reusable across campaigns).
  std::cout << "training quality model on CESM + Miranda history...\n";
  const auto history =
      collect_observations({"CESM", "Miranda"}, 0.05, default_eb_sweep(),
                           {"sz3-interp"});
  const QualityModel model = QualityModel::train(to_samples(history));
  std::cout << "  " << history.size() << " observations\n\n";

  // 2. A new field arrives; the user wants PSNR >= 80 dB.
  const FloatArray field = generate_field("CESM", "LHFLX", 0.08, 555);
  QualityConstraints constraints;
  constraints.min_psnr_db = 80.0;

  std::vector<CompressionConfig> candidates;
  for (const double eb : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    CompressionConfig config;
    config.backend = "sz3-interp";
    config.eb_mode = EbMode::kValueRangeRel;
    config.eb = eb;
    candidates.push_back(config);
  }

  const Advice advice = advise(model, field, candidates, constraints, 20);

  TextTable table({"eb", "pred ratio", "pred time (ms)", "pred PSNR",
                   "feasible"});
  for (const auto& option : advice.options) {
    table.add_row({eb_label(option.config.eb),
                   fmt_double(option.prediction.compression_ratio, 2),
                   fmt_double(option.prediction.compress_seconds * 1e3, 2),
                   fmt_double(option.prediction.psnr_db, 1),
                   option.feasible ? "yes" : "no"});
  }
  table.print(std::cout);

  if (!advice.best_index) {
    std::cout << "\nno feasible configuration found\n";
    return 1;
  }
  const CompressionConfig chosen = advice.options[*advice.best_index].config;
  std::cout << "\nchosen: eb " << eb_label(chosen.eb)
            << " (highest predicted ratio meeting PSNR >= 80 dB)\n";

  // 3. Verify the choice by actually compressing.
  const RoundTripStats stats = measure_roundtrip(field, chosen);
  std::cout << "verification: real ratio "
            << fmt_double(stats.compression_ratio, 2) << "x, real PSNR "
            << fmt_double(stats.psnr_db, 1) << " dB "
            << (stats.psnr_db >= 80.0 ? "[target met]"
                                      : "[miss - model imperfect]")
            << "\n";
  return 0;
}
