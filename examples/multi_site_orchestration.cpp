// Multi-site orchestration scenario: the full simulated testbed in one
// program — funcX-style remote dispatch, batch scheduling with queue
// delays, Globus-style transfer, and the shared-filesystem model —
// driving an instrument-to-analysis data flow (APS-style use case from
// the paper's introduction).
//
//   $ ./multi_site_orchestration
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/workload.hpp"
#include "exec/cluster_model.hpp"
#include "faas/funcx.hpp"
#include "netsim/simulation.hpp"
#include "netsim/sites.hpp"
#include "scheduler/batch.hpp"
#include "transfer/globus.hpp"

using namespace ocelot;

int main() {
  std::cout << "=== Multi-site orchestration: instrument burst at Anvil, "
               "analysis at Cori ===\n\n";

  // An instrument produces 10 bursts of 64 files x 1 GB, one burst
  // every 200 s. Each burst is compressed on scheduled nodes (CR 12x)
  // and shipped to the analysis site.
  constexpr int kBursts = 10;
  constexpr int kFilesPerBurst = 64;
  constexpr double kFileBytes = 1e9;
  constexpr double kRatio = 12.0;
  constexpr int kNodesPerJob = 4;

  Simulation sim;
  FuncXService faas(sim);
  const std::size_t anvil_ep = faas.add_endpoint({"anvil-ep"});
  faas.register_function("compress");
  GlobusService globus(sim);
  // Queue pressure: mostly short waits, occasionally minutes.
  BatchScheduler scheduler(sim, 64,
                           std::make_unique<StochasticWait>(99, 0.7, 20.0, 240.0));

  const SiteSpec& anvil = site("Anvil");
  const ComputeRates rates{30e6, 250e6};
  const LinkProfile link = route("Anvil", "Cori");

  struct BurstLog {
    double produced = 0.0;
    double nodes_granted = 0.0;
    double compressed = 0.0;
    double delivered = 0.0;
  };
  std::vector<BurstLog> log(kBursts);

  for (int b = 0; b < kBursts; ++b) {
    const double t_produce = 200.0 * b;
    sim.schedule_at(t_produce, [&, b, t_produce] {
      log[b].produced = t_produce;
      scheduler.submit(kNodesPerJob, [&, b](const Allocation& alloc) {
        log[b].nodes_granted = sim.now();
        const std::vector<double> files(kFilesPerBurst, kFileBytes);
        const double cp = cluster_compress_seconds(
            files, alloc.nodes, anvil.cores_per_node, rates, anvil.fs);
        // Remote compression via funcX on the granted nodes.
        faas.submit(anvil_ep, "compress",
                    {cp, [&, b, alloc] {
                       log[b].compressed = sim.now();
                       scheduler.release(alloc);
                       TransferRequest req{
                           "burst-" + std::to_string(b), link,
                           std::vector<double>(kFilesPerBurst,
                                               kFileBytes / kRatio)};
                       globus.submit(req, [&, b](const TransferTask&) {
                         log[b].delivered = sim.now();
                       });
                     }});
      });
    });
  }
  sim.run();

  TextTable table({"burst", "produced", "nodes granted", "compressed",
                   "delivered", "end-to-end (s)"});
  double worst = 0.0;
  for (int b = 0; b < kBursts; ++b) {
    const double latency = log[b].delivered - log[b].produced;
    worst = std::max(worst, latency);
    table.add_row({std::to_string(b), fmt_seconds(log[b].produced),
                   fmt_seconds(log[b].nodes_granted),
                   fmt_seconds(log[b].compressed),
                   fmt_seconds(log[b].delivered), fmt_double(latency, 1)});
  }
  table.print(std::cout);

  const std::vector<double> raw_files(kFilesPerBurst, kFileBytes);
  const GridFtpModel model;
  const double direct = model.estimate(raw_files, link).duration_s;
  std::cout << "\nuncompressed burst transfer would take "
            << fmt_double(direct, 1) << "s of WAN time per burst; "
            << "compressed bursts finish end-to-end (queue + compress + "
               "WAN) in at most "
            << fmt_double(worst, 1) << "s.\n";
  return 0;
}
