// Tests for the cluster-scale (de)compression cost model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <vector>

#include "exec/cluster_model.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

TEST(LptMakespan, BasicProperties) {
  const std::vector<double> tasks = {5.0, 3.0, 2.0, 2.0};
  // One slot: sum; many slots: max.
  EXPECT_DOUBLE_EQ(lpt_makespan(tasks, 1), 12.0);
  EXPECT_DOUBLE_EQ(lpt_makespan(tasks, 100), 5.0);
  // Two slots: {5, 3+2+2=7} or better -> LPT gives {5+2, 3+2} = 7.
  EXPECT_DOUBLE_EQ(lpt_makespan(tasks, 2), 7.0);
  EXPECT_DOUBLE_EQ(lpt_makespan({}, 4), 0.0);
  EXPECT_THROW((void)lpt_makespan(tasks, 0), InvalidArgument);
}

TEST(LptMakespan, NeverBelowTheoreticalBounds) {
  std::vector<double> tasks;
  for (int i = 1; i <= 50; ++i) tasks.push_back(static_cast<double>(i));
  double sum = 0.0, mx = 0.0;
  for (const double t : tasks) {
    sum += t;
    mx = std::max(mx, t);
  }
  for (const int slots : {1, 3, 7, 16, 100}) {
    const double m = lpt_makespan(tasks, slots);
    EXPECT_GE(m, mx - 1e-9);
    EXPECT_GE(m, sum / slots - 1e-9);
    EXPECT_LE(m, sum + 1e-9);
  }
}

TEST(ClusterModel, CompressionScalesWithCores) {
  // Fig. 9 left: more nodes -> shorter compression, until saturation.
  const SharedFilesystem fs = site("Anvil").fs;
  ComputeRates rates;
  const std::vector<double> files(768, 151e6);  // Miranda-like

  double prev = 1e18;
  for (const int nodes : {1, 2, 4, 8}) {
    const double t = cluster_compress_seconds(files, nodes, 128, rates, fs);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(ClusterModel, CompressionSaturatesWhenCoresExceedFiles) {
  const SharedFilesystem fs = site("Anvil").fs;
  ComputeRates rates;
  const std::vector<double> files(100, 1e8);  // 100 files only
  const double t1 = cluster_compress_seconds(files, 1, 128, rates, fs);
  const double t2 = cluster_compress_seconds(files, 16, 128, rates, fs);
  // 128 cores already cover 100 files; 2048 cores cannot be faster
  // than the single-file cost (modulo the I/O term).
  EXPECT_NEAR(t2, t1 * (100.0 / 128.0 < 1.0 ? 1.0 : 1.0), t1);
  EXPECT_GE(t2, 1e8 / rates.compress_bps_per_core - 1e-9);
}

TEST(ClusterModel, DecompressionDegradesBeyondContention) {
  // Fig. 9 right: decompression time is not monotone in node count.
  const SharedFilesystem fs = site("Anvil").fs;
  ComputeRates rates;
  rates.decompress_bps_per_core = 400e6;  // compute-rich -> I/O bound
  const std::vector<double> files(768, 151e6);

  const double t2 = cluster_decompress_seconds(files, 2, 128, rates, fs);
  const double t16 = cluster_decompress_seconds(files, 16, 128, rates, fs);
  EXPECT_GT(t16, t2);  // more nodes made it worse
}

TEST(ClusterModel, DecompressionWriteBoundMatchesFilesystem) {
  const SharedFilesystem fs = site("Cori").fs;
  ComputeRates rates;
  rates.decompress_bps_per_core = 1e12;  // compute is free
  const std::vector<double> files(1000, 1.61e9);  // 1.61 TB total
  const double t = cluster_decompress_seconds(files, 8, 32, rates, fs);
  EXPECT_NEAR(t, 1.61e12 / fs.write_bandwidth(8), 1.0);
}

TEST(ClusterModel, BadGeometryThrows) {
  const SharedFilesystem fs = site("Anvil").fs;
  ComputeRates rates;
  const std::vector<double> files(10, 1e6);
  EXPECT_THROW(
      (void)cluster_compress_seconds(files, 0, 128, rates, fs),
      InvalidArgument);
  EXPECT_THROW(
      (void)cluster_decompress_seconds(files, 4, 0, rates, fs),
      InvalidArgument);
}

}  // namespace
}  // namespace ocelot
