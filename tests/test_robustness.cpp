// Robustness / failure-injection tests: non-finite inputs and
// adversarially corrupted blobs. The contract: corrupted input either
// throws a typed error or decodes to *something* — never crashes or
// hangs — and non-finite samples survive round trips verbatim.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/compressor.hpp"

namespace ocelot {
namespace {

FloatArray masked_field(std::uint64_t seed) {
  // Scientific fields often carry NaN fill values over masked regions
  // (e.g., ocean points in land-only fields).
  FloatArray data(Shape(24, 24));
  Rng rng(seed);
  for (float& v : data.values()) {
    v = static_cast<float>(std::sin(rng.uniform(0.0, 6.28)));
  }
  data.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  data.at(5, 7) = std::numeric_limits<float>::quiet_NaN();
  data.at(12, 3) = std::numeric_limits<float>::infinity();
  data.at(20, 20) = -std::numeric_limits<float>::infinity();
  return data;
}

class NonFiniteSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(NonFiniteSweep, NonFiniteValuesSurviveVerbatim) {
  const FloatArray data = masked_field(11);
  CompressionConfig config;
  config.backend = GetParam();
  config.eb = 1e-3;

  const Bytes blob = compress(data, config);
  const FloatArray recon = decompress<float>(blob);
  EXPECT_TRUE(std::isnan(recon.at(0, 0)));
  EXPECT_TRUE(std::isnan(recon.at(5, 7)));
  EXPECT_TRUE(std::isinf(recon.at(12, 3)));
  EXPECT_TRUE(std::isinf(recon.at(20, 20)));

  // Finite points near the NaNs must still respect the bound.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::isfinite(data[i]) && std::isfinite(recon[i])) {
      EXPECT_LE(std::abs(data[i] - recon[i]), 1e-3 + 1e-6);
      ++checked;
    }
  }
  EXPECT_GT(checked, data.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, NonFiniteSweep,
                         ::testing::Values("lorenzo", "sz2", "sz3-interp",
                                           "multigrid"));

/// Fuzz: random single-byte mutations of valid blobs must never crash.
class BlobFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(BlobFuzz, MutatedBlobsNeverCrash) {
  FloatArray data(Shape(20, 20));
  Rng rng(13);
  for (float& v : data.values()) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  CompressionConfig config;
  config.backend = GetParam();
  config.eb = 1e-3;
  const Bytes blob = compress(data, config);

  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = blob;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(blob.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    try {
      const FloatArray out = decompress<float>(mutated);
      ++decoded;  // silently-consistent mutation: acceptable
    } catch (const Error&) {
      ++threw;  // typed rejection: acceptable
    }
  }
  EXPECT_EQ(threw + decoded, 300);
  // Most mutations should be detected as corruption.
  EXPECT_GT(threw, 100) << "decoded=" << decoded;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BlobFuzz,
                         ::testing::Values("lorenzo", "sz2", "sz3-interp",
                                           "multigrid"));

TEST(Robustness, TruncationSweepAlwaysThrowsOrDecodes) {
  FloatArray data(Shape(16, 16));
  Rng rng(14);
  for (float& v : data.values()) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  const Bytes blob = compress(data, CompressionConfig{});
  // Every truncation length must be handled gracefully.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    Bytes cut(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)decompress<float>(cut);
    } catch (const Error&) {
      // expected for most lengths
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ocelot
