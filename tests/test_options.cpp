// Unit tests for the shared key=value OptionSet parser (CLI trailing
// options, `ocelot serve` config, and ocelotd request option frames).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/options.hpp"

namespace ocelot {
namespace {

TEST(OptionSet, FromArgsRequiresKeyValueForm) {
  const OptionSet options =
      OptionSet::from_args({"eb=1e-3", "backend=sz3"}, "compress");
  EXPECT_EQ(options.size(), 2u);
  EXPECT_TRUE(options.has("eb"));
  try {
    (void)OptionSet::from_args({"eb=1", "oops"}, "compress");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "compress options are key=value, got: oops");
  }
}

TEST(OptionSet, FromLineSplitsOnWhitespace) {
  const OptionSet options =
      OptionSet::from_line("  eb=1e-3\t backend=sz3  ", "request");
  EXPECT_EQ(options.size(), 2u);
  EXPECT_TRUE(options.has("backend"));
  EXPECT_TRUE(OptionSet::from_line("", "request").empty());
}

TEST(OptionSet, LastValueWinsFirstPositionKept) {
  OptionSet options;
  options.set("a", "1");
  options.set("b", "2");
  options.set("a", "3");
  EXPECT_EQ(options.get_string("a"), "3");
  EXPECT_EQ(options.index_of("a"), std::optional<std::size_t>(0));
  EXPECT_EQ(options.index_of("b"), std::optional<std::size_t>(1));
  EXPECT_FALSE(options.index_of("missing").has_value());
}

TEST(OptionSet, TypedGettersParseAndReportErrors) {
  OptionSet options = OptionSet::from_line(
      "d=2.5 n=8 f=1 c=abs l=a,b,c bad_d=x bad_n=0 bad_f=yes bad_c=weird",
      "test");
  EXPECT_DOUBLE_EQ(options.get_double("d", 0.0), 2.5);
  EXPECT_EQ(options.get_count("n", 1), 8u);
  EXPECT_TRUE(options.get_flag("f", false));
  EXPECT_EQ(options.get_choice("c", {"abs", "rel"}, "rel"), "abs");
  EXPECT_EQ(options.get_list("l"),
            (std::vector<std::string>{"a", "b", "c"}));

  // Defaults when absent.
  EXPECT_DOUBLE_EQ(options.get_double("absent", 7.0), 7.0);
  EXPECT_EQ(options.get_count("absent", 3), 3u);
  EXPECT_FALSE(options.get_flag("absent", false));
  EXPECT_TRUE(options.get_list("absent").empty());

  EXPECT_THROW((void)options.get_double("bad_d", 0.0), InvalidArgument);
  EXPECT_THROW((void)options.get_count("bad_n", 1), InvalidArgument);
  EXPECT_THROW((void)options.get_flag("bad_f", false), InvalidArgument);
  try {
    (void)options.get_choice("bad_c", {"abs", "rel"}, "rel", "eb mode");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "unknown eb mode: weird (expected abs|rel)");
  }
}

TEST(OptionSet, RejectUnknownNamesFirstUnconsumedInOrder) {
  OptionSet options = OptionSet::from_line("known=1 typo=2 other=3", "serve");
  (void)options.get_string("known");
  try {
    options.reject_unknown("serve");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "unknown serve option: typo");
  }
  (void)options.take("typo");
  (void)options.take("other");
  EXPECT_NO_THROW(options.reject_unknown("serve"));
}

TEST(OptionSet, CanonicalLinePreservesOrderAndFiltersConsumed) {
  OptionSet options = OptionSet::from_line(
      "connect=unix:/s tenant=cli eb=1e-3 backend=sz3", "client");
  EXPECT_EQ(options.canonical_line(),
            "connect=unix:/s tenant=cli eb=1e-3 backend=sz3");
  // The client consumes its transport keys, then forwards the rest.
  (void)options.get_string("connect");
  (void)options.get_string("tenant");
  EXPECT_EQ(options.canonical_line(/*unconsumed_only=*/true),
            "eb=1e-3 backend=sz3");
}

TEST(OptionSet, StandaloneParsersShareErrorShape) {
  EXPECT_DOUBLE_EQ(parse_double_option("eb", "1e-4"), 1e-4);
  EXPECT_EQ(parse_count_option("workers", "12"), 12u);
  try {
    (void)parse_count_option("workers", "0");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "bad workers value: 0");
  }
  EXPECT_THROW((void)parse_double_option("eb", "1x"), InvalidArgument);
  EXPECT_THROW((void)parse_count_option("workers", "-3"), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
