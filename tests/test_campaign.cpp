// Tests for end-to-end transfer campaigns (the Table VIII machinery).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/campaign.hpp"

namespace ocelot {
namespace {

CampaignConfig base_config(const std::string& app) {
  CampaignConfig config;
  config.src = "Anvil";
  config.dst = "Cori";
  config.compression_ratio = 8.0;
  config.rates = paper_compute_rates(app);
  return config;
}

TEST(Campaign, DirectMovesEverythingUncompressed) {
  const FileInventory inv = paper_inventory("Miranda");
  const CampaignReport report =
      run_campaign(inv, TransferMode::kDirect, base_config("Miranda"));
  EXPECT_EQ(report.files_transferred, 768u);
  EXPECT_DOUBLE_EQ(report.bytes_transferred, inv.total_bytes());
  EXPECT_DOUBLE_EQ(report.total_seconds, report.transfer_seconds);
  EXPECT_EQ(report.compress_seconds, 0.0);
}

TEST(Campaign, CompressionReducesTotalTime) {
  // The headline claim: compress-then-transfer beats direct transfer.
  for (const char* app : {"CESM", "RTM", "Miranda"}) {
    const FileInventory inv = paper_inventory(app);
    const CampaignConfig config = base_config(app);
    const CampaignReport direct =
        run_campaign(inv, TransferMode::kDirect, config);
    const CampaignReport cp =
        run_campaign(inv, TransferMode::kCompressedPerFile, config);
    EXPECT_LT(cp.total_seconds, direct.total_seconds) << app;
    const double gain = campaign_gain(direct, cp);
    EXPECT_GT(gain, 0.3) << app;  // the paper reports 41-91%
    EXPECT_LT(gain, 0.99) << app;
  }
}

TEST(Campaign, CompressedBytesShrinkByRatio) {
  const FileInventory inv = paper_inventory("RTM");
  CampaignConfig config = base_config("RTM");
  config.compression_ratio = 40.0;
  const CampaignReport cp =
      run_campaign(inv, TransferMode::kCompressedPerFile, config);
  EXPECT_NEAR(cp.bytes_transferred, inv.total_bytes() / 40.0,
              inv.total_bytes() * 0.01);
  EXPECT_EQ(cp.files_transferred, inv.file_count());
}

TEST(Campaign, GroupingReducesWireFileCount) {
  const FileInventory inv = paper_inventory("Miranda");
  CampaignConfig config = base_config("Miranda");
  config.group_world_size = 96;
  const CampaignReport op =
      run_campaign(inv, TransferMode::kCompressedGrouped, config);
  EXPECT_EQ(op.files_transferred, 8u);  // 768 / 96, the paper's count
}

TEST(Campaign, GroupingHelpsManySmallFilesHurtsFewLarge) {
  // RTM (3601 files): grouping speeds up the wire leg.
  {
    const FileInventory inv = paper_inventory("RTM");
    CampaignConfig config = base_config("RTM");
    config.compression_ratio = 40.0;  // small compressed files
    const CampaignReport cp =
        run_campaign(inv, TransferMode::kCompressedPerFile, config);
    const CampaignReport op =
        run_campaign(inv, TransferMode::kCompressedGrouped, config);
    EXPECT_LT(op.transfer_seconds, cp.transfer_seconds);
  }
  // Miranda (768 files -> 8 groups): grouping starves concurrency.
  {
    const FileInventory inv = paper_inventory("Miranda");
    CampaignConfig config = base_config("Miranda");
    const CampaignReport cp =
        run_campaign(inv, TransferMode::kCompressedPerFile, config);
    const CampaignReport op =
        run_campaign(inv, TransferMode::kCompressedGrouped, config);
    EXPECT_GT(op.transfer_seconds, cp.transfer_seconds);
  }
}

TEST(Campaign, EffectiveSpeedDropsAfterCompressionWithoutGrouping) {
  // Table VIII: Speed(CP) < Speed(NP) because files shrink but the
  // per-file handling cost stays.
  const FileInventory inv = paper_inventory("RTM");
  CampaignConfig config = base_config("RTM");
  config.compression_ratio = 40.0;
  const CampaignReport np =
      run_campaign(inv, TransferMode::kDirect, config);
  const CampaignReport cp =
      run_campaign(inv, TransferMode::kCompressedPerFile, config);
  EXPECT_LT(cp.effective_speed_bps, np.effective_speed_bps);
}

TEST(Campaign, TotalDecomposes) {
  const FileInventory inv = paper_inventory("Miranda");
  const CampaignReport cp = run_campaign(
      inv, TransferMode::kCompressedPerFile, base_config("Miranda"));
  EXPECT_NEAR(cp.total_seconds,
              cp.compress_seconds + cp.transfer_seconds +
                  cp.decompress_seconds + cp.orchestration_seconds,
              1e-6);
  EXPECT_GT(cp.orchestration_seconds, 0.0);  // funcX costs are real
  EXPECT_LT(cp.orchestration_seconds, 30.0); // but small
}

TEST(Campaign, InvalidConfigThrows) {
  const FileInventory inv = paper_inventory("Miranda");
  CampaignConfig config = base_config("Miranda");
  config.compression_ratio = 0.5;
  EXPECT_THROW(
      (void)run_campaign(inv, TransferMode::kCompressedPerFile, config),
      InvalidArgument);

  FileInventory empty;
  empty.app = "X";
  EXPECT_THROW((void)run_campaign(empty, TransferMode::kDirect,
                                  base_config("Miranda")),
               InvalidArgument);
}

TEST(Campaign, ModeNamesAreStable) {
  EXPECT_EQ(to_string(TransferMode::kDirect), "direct (NP)");
  EXPECT_EQ(to_string(TransferMode::kCompressedPerFile), "compressed (CP)");
  EXPECT_EQ(to_string(TransferMode::kCompressedGrouped),
            "compressed+grouped (OP)");
}

}  // namespace
}  // namespace ocelot
