// Unit tests for the statistics utilities (PSNR, entropy, summaries).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bytes.hpp"
#include "common/stats.hpp"

namespace ocelot {
namespace {

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const ValueSummary s = summarize<double>(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.range, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummarizeEmptyAndConstant) {
  const std::vector<float> empty;
  const ValueSummary se = summarize<float>(empty);
  EXPECT_EQ(se.range, 0.0);

  const std::vector<float> constant(10, 5.0f);
  const ValueSummary sc = summarize<float>(constant);
  EXPECT_EQ(sc.range, 0.0);
  EXPECT_EQ(sc.stddev, 0.0);
  EXPECT_EQ(sc.mean, 5.0);
}

TEST(Stats, ByteEntropyUniformIsEight) {
  Bytes data;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) data.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_NEAR(byte_entropy(data), 8.0, 1e-12);
}

TEST(Stats, ByteEntropyConstantIsZero) {
  const Bytes data(1000, 42);
  EXPECT_EQ(byte_entropy(data), 0.0);
}

TEST(Stats, ByteEntropyTwoSymbols) {
  Bytes data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(0);
    data.push_back(255);
  }
  EXPECT_NEAR(byte_entropy(data), 1.0, 1e-12);
}

TEST(Stats, SymbolEntropyMatchesDistribution) {
  // 3/4 of symbol A, 1/4 of symbol B: H = 0.8113 bits.
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 750; ++i) syms.push_back(7);
  for (int i = 0; i < 250; ++i) syms.push_back(9);
  EXPECT_NEAR(symbol_entropy(syms),
              -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25)), 1e-12);
}

TEST(Stats, RmseAndPsnr) {
  const std::vector<float> a = {0.0f, 1.0f, 2.0f, 3.0f};
  std::vector<float> b = a;
  EXPECT_EQ(rmse<float>(a, b), 0.0);
  EXPECT_TRUE(std::isinf(psnr<float>(a, b)));

  b[0] += 0.3f;
  const double expected_rmse = 0.3 / 2.0;  // sqrt(0.09/4)
  EXPECT_NEAR(rmse<float>(a, b), expected_rmse, 1e-6);
  EXPECT_NEAR(psnr<float>(a, b), 20.0 * std::log10(3.0 / expected_rmse), 1e-4);
}

TEST(Stats, MaxAbsError) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.1, 1.7, 3.0};
  EXPECT_NEAR(max_abs_error<double>(a, b), 0.3, 1e-12);
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)rmse<double>(a, b), InvalidArgument);
  EXPECT_THROW((void)max_abs_error<double>(a, b), InvalidArgument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10.0), 1.4);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);

  const std::vector<double> ny = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);

  const std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(x, constant), 0.0);
}

}  // namespace
}  // namespace ocelot
