// Tests for the observability subsystem: concurrent metric recording
// into per-thread shards (including the retired-shard fold when
// threads exit), histogram bucketing and quantiles, trace-ring
// wraparound, Chrome trace-event JSON structure, the stats report, and
// the guarantee that observation never changes compressed bytes.
//
// The suite passes in both build modes: under -DOCELOT_OBS=OFF the
// value assertions skip and the determinism/report tests exercise the
// compile-out stubs.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "compressor/compressor.hpp"
#include "exec/parallel_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace ocelot {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    obs::clear_trace();
    obs::set_profiling(false);
    obs::reset_metrics();
  }
};

FloatArray smooth_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  double walk = 0.0;
  for (float& v : data.values()) {
    walk += rng.normal(0.0, 0.05);
    v = static_cast<float>(walk);
  }
  return data;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [k, v] : snap.counters) {
    if (k == name) return v;
  }
  return 0;
}

const obs::HistogramSnapshot* find_histogram(
    const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const obs::StageSnapshot* find_stage(const obs::MetricsSnapshot& snap,
                                     const std::string& name) {
  for (const auto& s : snap.stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Minimal structural JSON check: braces/brackets balance outside of
/// strings, string escapes are honored, and the document is a single
/// object. Enough to catch a malformed exporter without a parser.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST_F(ObsTest, ConcurrentHammeringMergesExactly) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::set_profiling(true);
  const obs::MetricId c = obs::counter_id("test.hammer");
  const obs::MetricId h = obs::histogram_id("test.hammer_hist");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::counter_add(c, 1);
        obs::histogram_record(h, i);
      }
    });
  }
  for (auto& t : threads) t.join();

  // The writer threads exited, so this also covers the fold of dying
  // threads' shards into the retired aggregate: nothing may be lost.
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "test.hammer"), kThreads * kIters);
  const obs::HistogramSnapshot* hist =
      find_histogram(snap, "test.hammer_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kIters);
  EXPECT_EQ(hist->sum, kThreads * (kIters * (kIters - 1) / 2));
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::set_profiling(true);
  const obs::MetricId h = obs::histogram_id("test.buckets");
  obs::histogram_record(h, 0);  // bucket 0: exactly zero
  obs::histogram_record(h, 1);  // bucket 1: [1, 2)
  obs::histogram_record(h, 2);  // bucket 2: [2, 4)
  obs::histogram_record(h, 3);  // bucket 2
  obs::histogram_record(h, 100);  // bucket 7: [64, 128)

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::HistogramSnapshot* hist = find_histogram(snap, "test.buckets");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_EQ(hist->sum, 106u);
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 2u);
  EXPECT_EQ(hist->buckets[7], 1u);
  // Quantiles resolve to the geometric bucket midpoint.
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.99), 96.0);  // mid of [64, 128)
  EXPECT_NEAR(hist->mean(), 106.0 / 5.0, 1e-12);
}

TEST_F(ObsTest, GaugesTrackLastValue) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::set_profiling(true);
  const obs::MetricId g = obs::gauge_id("test.level");
  obs::gauge_set(g, 10);
  obs::gauge_add(g, -3);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test.level");
  EXPECT_EQ(snap.gauges[0].second, 7);
}

TEST_F(ObsTest, SpansAccumulateOnlyWhileProfiling) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  {
    OCELOT_SPAN("test.idle_span");  // profiling off: must not record
  }
  obs::set_profiling(true);
  for (int i = 0; i < 10; ++i) {
    OCELOT_SPAN("test.span");
  }
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::StageSnapshot* idle = find_stage(snap, "test.idle_span");
  EXPECT_TRUE(idle == nullptr || idle->calls == 0);
  const obs::StageSnapshot* active = find_stage(snap, "test.span");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->calls, 10u);
}

TEST_F(ObsTest, RingWrapsAroundKeepingNewestEvents) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::start_tracing(/*events_per_thread=*/16);
  for (int i = 0; i < 100; ++i) {
    OCELOT_SPAN("test.wrap");
  }
  obs::stop_tracing();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  // The ring holds the newest 16 of 100 spans; the stage counter saw
  // all 100.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"test.wrap\""), 16u);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::StageSnapshot* stage = find_stage(snap, "test.wrap");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 100u);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::start_tracing(1 << 10);
  {
    OCELOT_SPAN("test.real_span");
  }
  std::thread worker([] {
    OCELOT_SPAN("test.worker_span");
  });
  worker.join();
  obs::emit_sim_span("campaign-A", "transfer", 0.5, 1.5);
  obs::stop_tracing();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete events with real + sim processes and their metadata.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.real_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Sim seconds render as microseconds: 0.5 s -> ts 500000, dur 1e6.
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
}

TEST_F(ObsTest, ClearTraceDropsEvents) {
  if (!obs::compiled()) GTEST_SKIP() << "observability compiled out";
  obs::start_tracing(1 << 10);
  {
    OCELOT_SPAN("test.dropped");
  }
  obs::emit_sim_span("t", "dropped_sim", 0.0, 1.0);
  obs::stop_tracing();
  obs::clear_trace();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("test.dropped"), std::string::npos);
  EXPECT_EQ(json.find("dropped_sim"), std::string::npos);
}

TEST_F(ObsTest, ObservationNeverChangesBytes) {
  // The core contract: profiling/tracing may watch the pipeline but
  // the compressed bytes must be identical with observation on or
  // off, in both build modes.
  const FloatArray field = smooth_field(Shape(24, 10, 7), 17);
  CompressionConfig config;
  config.backend = "sz3-interp";
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-3;

  const Bytes quiet = block_compress(field, config, 2, 4).container;

  obs::start_tracing(1 << 12);
  const Bytes observed = block_compress(field, config, 2, 4).container;
  obs::stop_tracing();

  EXPECT_EQ(quiet, observed);
}

TEST_F(ObsTest, StatsReportRendersInBothModes) {
  obs::set_profiling(true);
  {
    OCELOT_SPAN("test.report_span");
  }
  OCELOT_COUNT("test.report_counter", 3);

  std::ostringstream json_os;
  obs::write_stats_report(json_os, /*json=*/true);
  const std::string json = json_os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"obs_compiled\""), std::string::npos);
  EXPECT_NE(json.find("\"pools\""), std::string::npos);
  if (obs::compiled()) {
    EXPECT_NE(json.find("test.report_span"), std::string::npos);
    EXPECT_NE(json.find("test.report_counter"), std::string::npos);
  }

  std::ostringstream human_os;
  obs::write_stats_report(human_os, /*json=*/false);
  EXPECT_NE(human_os.str().find("shared pools:"), std::string::npos);
}

TEST_F(ObsTest, CompiledOutBuildStaysEmpty) {
  if (obs::compiled()) GTEST_SKIP() << "only meaningful with OCELOT_OBS=OFF";
  obs::set_profiling(true);
  OCELOT_COUNT("test.never", 1);
  {
    OCELOT_SPAN("test.never_span");
  }
  EXPECT_FALSE(obs::profiling_enabled());
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.stages.empty());
}

}  // namespace
}  // namespace ocelot
