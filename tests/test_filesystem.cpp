// Tests for the shared-filesystem contention model (Fig. 9 shape).
#include <gtest/gtest.h>

#include "netsim/filesystem.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

TEST(Filesystem, WriteBandwidthPeaksThenDegrades) {
  const SharedFilesystem fs = site("Anvil").fs;
  const double w1 = fs.write_bandwidth(1);
  const double w4 = fs.write_bandwidth(4);
  const double w16 = fs.write_bandwidth(16);
  EXPECT_GT(w4, w1);    // more nodes help at first
  EXPECT_LT(w16, w4);   // then contention wins (Fig. 9 right)
}

TEST(Filesystem, SixteenNodesSubstantiallySlowerThanFour) {
  // The paper saw CESM decompression go from ~69 s at 4 nodes to
  // minutes at 16; the model must degrade by at least 2x.
  const SharedFilesystem fs = site("Anvil").fs;
  EXPECT_GT(fs.write_bandwidth(4) / fs.write_bandwidth(16), 2.0);
}

TEST(Filesystem, ReadsContendMuchLessThanWrites) {
  const SharedFilesystem fs = site("Anvil").fs;
  const double degrade_w = fs.write_bandwidth(4) / fs.write_bandwidth(16);
  const double degrade_r = fs.read_bandwidth(4) / fs.read_bandwidth(16);
  EXPECT_GT(degrade_w, degrade_r);
  // Reads should still scale up to 16 nodes.
  EXPECT_GT(fs.read_bandwidth(16), fs.read_bandwidth(2));
}

TEST(Filesystem, BandwidthIsAlwaysPositive) {
  const SharedFilesystem fs = site("Cori").fs;
  for (int n = 1; n <= 64; n *= 2) {
    EXPECT_GT(fs.write_bandwidth(n), 0.0);
    EXPECT_GT(fs.read_bandwidth(n), 0.0);
  }
}

TEST(Filesystem, ZeroOrNegativeNodesClampToOne) {
  const SharedFilesystem fs = site("Bebop").fs;
  EXPECT_DOUBLE_EQ(fs.write_bandwidth(0), fs.write_bandwidth(1));
  EXPECT_DOUBLE_EQ(fs.read_bandwidth(-3), fs.read_bandwidth(1));
}

TEST(Filesystem, CoriSustainsPaperWriteRateAtEightNodes) {
  // Calibration contract: ~23 GB/s for 8 writers (Table VIII DPTime).
  const SharedFilesystem fs = site("Cori").fs;
  EXPECT_NEAR(fs.write_bandwidth(8) / 23e9, 1.0, 0.25);
}

}  // namespace
}  // namespace ocelot
