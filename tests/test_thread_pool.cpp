// Tests for the thread pool and parallel_for: task execution,
// exception propagation (a worker throwing mid-batch must neither
// deadlock the pool nor leak pooled scratch), and per-thread buffer
// reuse on the streaming data path.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/buffer_pool.hpp"
#include "exec/thread_pool.hpp"

namespace ocelot {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ExceptionsLandInFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(1000, 8, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, WorksWithMoreThreadsThanWork) {
  std::atomic<int> count{0};
  parallel_for(3, 16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, ZeroIterationsIsNoOp) {
  parallel_for(0, 4, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("task failure");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SingleThreadIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ThrowingTaskMidBatchDoesNotDeadlockOrPoisonThePool) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(pool.submit([&, i] {
      if (i % 7 == 3) throw std::runtime_error("mid-batch failure");
      ++completed;
    }));
  }
  // wait_idle must return even though several tasks threw...
  pool.wait_idle();
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 4);  // i = 3, 10, 17, 24
  EXPECT_EQ(completed.load(), 26);
  // ...and the pool must keep accepting work afterwards.
  auto after = pool.submit([&] { ++completed; });
  after.get();
  EXPECT_EQ(completed.load(), 27);
}

TEST(ThreadPool, ThrowingWorkerReturnsPooledBuffersViaLeases) {
  // The executor's tasks hold pool leases while compressing; a task
  // that throws mid-batch must hand its buffer back to the pool (RAII)
  // instead of stranding it.
  BufferPool pool;
  ThreadPool workers(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(workers.submit([&pool, i] {
      PooledBuffer lease(pool, 512);
      lease->assign(100, static_cast<std::uint8_t>(i));
      if (i % 4 == 1) throw std::runtime_error("worker failure");
    }));
  }
  workers.wait_idle();
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 4);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.outstanding, 0u) << "a throwing task leaked its lease";
  EXPECT_EQ(stats.created + stats.reused, 16u);
}

TEST(ParallelFor, ExceptionDoesNotLeakPooledScratch) {
  BufferPool pool;
  EXPECT_THROW(
      parallel_for(50, 4,
                   [&](std::size_t i) {
                     PooledBuffer lease(pool, 64);
                     lease->push_back(1);
                     if (i == 21) throw std::runtime_error("task failure");
                   }),
      std::runtime_error);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(ParallelFor, PerThreadScratchIsReusedAcrossBatches) {
  // Worker threads die with each parallel_for call, so reuse must come
  // from the process-wide pool, not thread_local storage: 5 batches x
  // 40 tasks see at most one fresh buffer per concurrent worker.
  BufferPool pool;
  for (int batch = 0; batch < 5; ++batch) {
    parallel_for(40, 4, [&](std::size_t) {
      PooledBuffer lease(pool, 1024);
      lease->assign(512, 7);
    });
  }
  const auto stats = pool.stats();
  EXPECT_LE(stats.created, 4u);
  EXPECT_EQ(stats.created + stats.reused, 200u);
  EXPECT_EQ(stats.outstanding, 0u);
}

}  // namespace
}  // namespace ocelot
