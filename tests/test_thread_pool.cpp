// Tests for the thread pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "exec/thread_pool.hpp"

namespace ocelot {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ExceptionsLandInFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(1000, 8, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, WorksWithMoreThreadsThanWork) {
  std::atomic<int> count{0};
  parallel_for(3, 16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, ZeroIterationsIsNoOp) {
  parallel_for(0, 4, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("task failure");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SingleThreadIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace ocelot
