// Unit tests for string helpers and the text-table renderer.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/str.hpp"
#include "common/table.hpp"

namespace ocelot {
namespace {

TEST(Str, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("ocelot/file", "ocelot/"));
  EXPECT_FALSE(starts_with("oce", "ocelot"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Str, EbLabel) {
  EXPECT_EQ(eb_label(1e-3), "1e-3");
  EXPECT_EQ(eb_label(1e-6), "1e-6");
  EXPECT_EQ(eb_label(0.1), "1e-1");
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_bytes(1536.0), "1.50KB");
  EXPECT_EQ(fmt_bytes(3.0 * 1024 * 1024 * 1024), "3.00GB");
  EXPECT_EQ(fmt_seconds(5.25), "5.25s");
  EXPECT_EQ(fmt_seconds(125.0), "2m5s");
  EXPECT_EQ(fmt_rate(2.5e9), "2.50GB/s");
  EXPECT_EQ(fmt_rate(850e6), "850.0MB/s");
}

}  // namespace
}  // namespace ocelot
