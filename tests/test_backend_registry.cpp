// Backend-registry tests: cross-backend round-trip properties,
// inspect_blob agreement, unknown/corrupt backend ids, bit-exact
// backward compatibility with pre-registry blobs (golden bytes), and
// registry-driven advisor candidates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "compressor/multigrid.hpp"
#include "core/advisor.hpp"
#include "core/local_pipeline.hpp"
#include "features/features.hpp"

#include "golden_blobs.inc"

namespace ocelot {
namespace {

constexpr const char* kBuiltinNames[] = {"lorenzo", "sz2", "sz3-interp",
                                         "lorenzo2", "multigrid"};

template <typename T>
NdArray<T> smooth_field(const Shape& shape) {
  NdArray<T> data(shape);
  auto v = data.values();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<T>(std::sin(0.05 * x) + 0.3 * std::cos(0.013 * x));
  }
  return data;
}

/// The 6x7x5 field the golden blobs were captured from (see
/// golden_blobs.inc; must stay bit-identical to the capture program).
FloatArray golden_field() {
  FloatArray data(Shape(6, 7, 5));
  auto v = data.values();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(0.1 * x) + 0.01 * std::cos(1.3 * x));
  }
  return data;
}

TEST(BackendRegistry, ListsBuiltinFamilies) {
  const std::vector<std::string> names = registered_backend_names();
  for (const char* expected : kBuiltinNames) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // Legacy Pipeline enum values keep their wire ids forever.
  EXPECT_EQ(BackendRegistry::instance().by_name("lorenzo").wire_id(), 0);
  EXPECT_EQ(BackendRegistry::instance().by_name("sz2").wire_id(), 1);
  EXPECT_EQ(BackendRegistry::instance().by_name("sz3-interp").wire_id(), 2);
  EXPECT_EQ(BackendRegistry::instance().by_name("lorenzo2").wire_id(), 3);
  EXPECT_EQ(BackendRegistry::instance().by_name("multigrid").wire_id(), 4);
}

TEST(BackendRegistry, UnknownNameThrowsListingRegistered) {
  EXPECT_THROW((void)BackendRegistry::instance().by_name("zfp"),
               InvalidArgument);
  EXPECT_EQ(BackendRegistry::instance().find("zfp"), nullptr);
  CompressionConfig config;
  config.backend = "zfp";
  const FloatArray data = smooth_field<float>(Shape(16, 16));
  EXPECT_THROW((void)compress(data, config), InvalidArgument);
}

class StubBackend final : public TypedBackend<StubBackend> {
 public:
  StubBackend(std::string name, std::uint8_t id)
      : name_(std::move(name)), id_(id) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint8_t wire_id() const override { return id_; }
  [[nodiscard]] std::string description() const override { return "stub"; }

  template <typename T>
  void encode_impl(const NdArray<T>&, double, const CompressionConfig&,
                   SectionWriter&) const {}
  template <typename T>
  void decode_impl(const BlobHeader&, const SectionReader&,
                   NdArray<T>&) const {}

 private:
  std::string name_;
  std::uint8_t id_;
};

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW((void)BackendRegistry::instance().add(
                   std::make_unique<StubBackend>("multigrid", 200)),
               InvalidArgument);
  EXPECT_THROW((void)BackendRegistry::instance().add(
                   std::make_unique<StubBackend>("fresh-name", 4)),
               InvalidArgument);
}

/// Cross-backend property: every registered backend honors the
/// error-bound invariant for both dtypes across 1-D/2-D/3-D shapes,
/// and inspect_blob agrees with what the writer produced.
class BackendRoundTrip : public ::testing::TestWithParam<std::string> {};

template <typename T>
void roundtrip_case(const std::string& backend, const Shape& shape) {
  const NdArray<T> data = smooth_field<T>(shape);
  CompressionConfig config;
  config.backend = backend;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 1e-3;

  const Bytes blob = compress(data, config);
  const NdArray<T> recon = decompress<T>(blob);
  ASSERT_EQ(recon.shape(), shape);
  EXPECT_LE(max_abs_error<T>(data.values(), recon.values()), config.eb)
      << backend << " rank " << shape.rank();

  const BlobInfo info = inspect_blob(blob);
  EXPECT_EQ(info.backend, backend);
  EXPECT_EQ(info.backend_id,
            BackendRegistry::instance().by_name(backend).wire_id());
  EXPECT_EQ(info.is_double, sizeof(T) == 8);
  EXPECT_EQ(info.shape, shape);
  EXPECT_DOUBLE_EQ(info.abs_eb, config.eb);
  EXPECT_EQ(info.compressed_bytes, blob.size());
  EXPECT_EQ(info.raw_bytes, shape.size() * sizeof(T));
}

TEST_P(BackendRoundTrip, BoundHoldsAndInspectAgreesEveryDtypeAndRank) {
  const std::string backend = GetParam();
  for (const Shape& shape :
       {Shape(257), Shape(23, 31), Shape(9, 12, 11)}) {
    roundtrip_case<float>(backend, shape);
    roundtrip_case<double>(backend, shape);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, BackendRoundTrip,
                         ::testing::ValuesIn(registered_backend_names()));

TEST(BackendRegistry, UnknownBackendIdThrowsCorruptStream) {
  const FloatArray data = smooth_field<float>(Shape(12, 12));
  Bytes blob = compress(data, CompressionConfig{});
  // Header layout: magic[4], dtype u8, backend id u8.
  blob[5] = 0xee;
  EXPECT_THROW((void)decompress<float>(blob), CorruptStream);
  EXPECT_THROW((void)inspect_blob(blob), CorruptStream);
}

TEST(BackendRegistry, TruncatedHeaderThrowsCorruptStream) {
  const FloatArray data = smooth_field<float>(Shape(12, 12));
  Bytes blob = compress(data, CompressionConfig{});
  blob.resize(5);
  EXPECT_THROW((void)inspect_blob(blob), CorruptStream);
  EXPECT_THROW((void)decompress<float>(blob), CorruptStream);
}

/// Bit-exact backward compatibility: blobs written by the
/// pre-registry compressor (Pipeline enum ids 0-3) must decode under
/// the bound, and today's writer must reproduce them byte for byte.
struct GoldenCase {
  const char* backend;
  std::span<const unsigned char> blob;
};

TEST(BackendRegistry, PreRegistryBlobsDecodeBitExactly) {
  const FloatArray data = golden_field();
  const GoldenCase cases[] = {
      {"lorenzo", kGoldenLorenzo},
      {"sz2", kGoldenSz2},
      {"sz3-interp", kGoldenSz3Interp},
      {"lorenzo2", kGoldenLorenzo2},
  };
  for (const GoldenCase& c : cases) {
    const std::span<const std::uint8_t> golden{
        reinterpret_cast<const std::uint8_t*>(c.blob.data()), c.blob.size()};

    // Old blob decodes and honors the recorded bound.
    const FloatArray recon = decompress<float>(golden);
    EXPECT_LE(max_abs_error<float>(data.values(), recon.values()), 1e-3)
        << c.backend;
    const BlobInfo info = inspect_blob(golden);
    EXPECT_EQ(info.backend, c.backend);

    // Today's writer emits the identical bytes.
    CompressionConfig config;
    config.backend = c.backend;
    config.eb_mode = EbMode::kAbsolute;
    config.eb = 1e-3;
    const Bytes rewritten = compress(data, config);
    ASSERT_EQ(rewritten.size(), golden.size()) << c.backend;
    EXPECT_TRUE(std::equal(rewritten.begin(), rewritten.end(), golden.begin()))
        << c.backend;
  }
}

TEST(Multigrid, EndToEndThroughLocalPipeline) {
  std::vector<FloatArray> fields;
  fields.push_back(smooth_field<float>(Shape(24, 20, 18)));
  fields.push_back(smooth_field<float>(Shape(30, 25)));

  LocalPipelineConfig config;
  config.compression.backend = "multigrid";
  config.compression.eb_mode = EbMode::kValueRangeRel;
  config.compression.eb = 1e-3;
  config.workers = 2;

  const LocalPipelineResult result =
      run_local_pipeline({"a", "b"}, fields, config);
  double worst_bound = 0.0;
  for (const auto& field : fields) {
    worst_bound = std::max(worst_bound,
                           resolve_abs_eb(field, config.compression));
  }
  EXPECT_GT(result.compression.ratio(), 1.0);
  EXPECT_LE(result.max_error, worst_bound);
}

TEST(Multigrid, TightensCoarseLevels) {
  // The coarse quantizer uses eb/2, so coarse nodes must individually
  // sit within half the bound; spot-check via a pure-coarse recon: a
  // stride-aligned grid where every node is coarse.
  const FloatArray data = smooth_field<float>(Shape(17, 17));
  CompressionConfig config;
  config.backend = "multigrid";
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 1e-2;
  config.anchor_stride = 16;
  const Bytes blob = compress(data, config);
  const FloatArray recon = decompress<float>(blob);
  for (std::size_t i = 0; i < 17; i += 16) {
    for (std::size_t j = 0; j < 17; j += 16) {
      EXPECT_LE(std::abs(data.at(i, j) - recon.at(i, j)),
                config.eb / kMultigridCoarseTighten + 1e-12);
    }
  }
}

TEST(Advisor, RegistryCandidatesIncludeMultigridAndItCanWin) {
  const FloatArray data = smooth_field<float>(Shape(40, 40));

  // Candidate table enumerated from the registry: one entry per
  // registered backend per bound.
  const std::vector<CompressionConfig> candidates =
      enumerate_candidates({1e-3}, EbMode::kAbsolute);
  ASSERT_GE(candidates.size(), 5u);
  EXPECT_TRUE(std::any_of(candidates.begin(), candidates.end(),
                          [](const CompressionConfig& c) {
                            return c.backend == "multigrid";
                          }));

  // Train a model that prefers the multigrid feature id, using the
  // exact feature vectors the advisor will assemble for this field.
  const DataFeatures df = extract_data_features(data);
  const CompressorFeatures cf = extract_compressor_features(data, 1e-3, 100);
  std::vector<QualitySample> samples;
  for (const CompressorBackend* backend : BackendRegistry::instance().list()) {
    for (int rep = 0; rep < 4; ++rep) {
      QualitySample s;
      s.features = assemble_feature_vector(1e-3, backend->wire_id(), df, cf);
      s.compression_ratio = backend->name() == "multigrid" ? 24.0 : 6.0;
      s.compress_seconds = 0.01;
      s.psnr_db = 85.0;
      s.n_elements = data.size();
      samples.push_back(s);
    }
  }
  const QualityModel model = QualityModel::train(samples);

  QualityConstraints constraints;
  constraints.min_psnr_db = 60.0;
  const Advice advice = advise(model, data, candidates, constraints, 100);
  ASSERT_EQ(advice.options.size(), candidates.size());
  ASSERT_TRUE(advice.best_index.has_value());
  EXPECT_EQ(advice.options[*advice.best_index].config.backend, "multigrid");
}

}  // namespace
}  // namespace ocelot
