// Property tests for the linear quantizer: the error-bound contract.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compressor/quantizer.hpp"

namespace ocelot {
namespace {

TEST(Quantizer, PerfectPredictionLandsOnZeroBin) {
  QuantEncoder<double> enc(1e-3);
  const double recon = enc.encode(5.0, 5.0);
  EXPECT_EQ(recon, 5.0);
  ASSERT_EQ(enc.codes().size(), 1u);
  EXPECT_EQ(enc.codes()[0], kDefaultQuantRadius);
  EXPECT_TRUE(enc.raw_values().empty());
}

TEST(Quantizer, ReconstructionWithinBound) {
  Rng rng(20);
  const double eb = 1e-2;
  QuantEncoder<double> enc(eb);
  for (int i = 0; i < 10000; ++i) {
    const double pred = rng.normal(0.0, 10.0);
    const double real = pred + rng.normal(0.0, 5.0);
    const double recon = enc.encode(pred, real);
    EXPECT_LE(std::abs(recon - real), eb);
  }
}

TEST(Quantizer, FarResidualFallsBackToRaw) {
  const double eb = 1e-6;
  QuantEncoder<double> enc(eb);
  // Residual of 1.0 = 5e5 bins > radius: must store verbatim.
  const double recon = enc.encode(0.0, 1.0);
  EXPECT_EQ(recon, 1.0);
  EXPECT_EQ(enc.codes()[0], 0u);
  ASSERT_EQ(enc.raw_values().size(), 1u);
  EXPECT_EQ(enc.raw_values()[0], 1.0);
}

TEST(Quantizer, DecoderReplaysEncoderExactly) {
  Rng rng(21);
  const double eb = 1e-3;
  QuantEncoder<float> enc(eb);
  std::vector<double> preds;
  std::vector<float> recons;
  for (int i = 0; i < 5000; ++i) {
    const double pred = rng.normal(0.0, 2.0);
    const float real = static_cast<float>(pred + rng.normal(0.0, 1.0));
    preds.push_back(pred);
    recons.push_back(enc.encode(pred, real));
  }
  QuantDecoder<float> dec(eb, kDefaultQuantRadius, enc.codes(),
                          enc.raw_values());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(dec.decode(preds[i]), recons[i]) << "at " << i;
  }
  EXPECT_TRUE(dec.exhausted());
}

TEST(Quantizer, FloatCastGuardPreservesBound) {
  // Large magnitudes with tiny bounds: float casting could break the
  // bound; the encoder must detect it and fall back to raw storage.
  const double eb = 1e-7;
  QuantEncoder<float> enc(eb);
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    const double pred = 1e8 + rng.uniform(0.0, 100.0);
    const float real = static_cast<float>(pred + rng.uniform(-1e-5, 1e-5));
    const float recon = enc.encode(pred, real);
    EXPECT_LE(std::abs(static_cast<double>(recon) -
                       static_cast<double>(real)),
              eb);
  }
}

TEST(Quantizer, ExhaustedDecoderThrows) {
  QuantEncoder<double> enc(1e-3);
  (void)enc.encode(0.0, 0.5);
  QuantDecoder<double> dec(1e-3, kDefaultQuantRadius, enc.codes(),
                           enc.raw_values());
  (void)dec.decode(0.0);
  EXPECT_THROW((void)dec.decode(0.0), CorruptStream);
}

TEST(Quantizer, InvalidParamsThrow) {
  EXPECT_THROW(QuantEncoder<double>(0.0), InvalidArgument);
  EXPECT_THROW(QuantEncoder<double>(-1.0), InvalidArgument);
  EXPECT_THROW(QuantEncoder<double>(1.0, 1), InvalidArgument);
}

/// Error-bound property across magnitudes and bounds.
class QuantizerSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(QuantizerSweep, BoundHolds) {
  const auto [eb, magnitude] = GetParam();
  Rng rng(static_cast<std::uint64_t>(std::log10(eb) * -100 + magnitude));
  QuantEncoder<double> enc(eb);
  for (int i = 0; i < 2000; ++i) {
    const double pred = rng.normal(0.0, magnitude);
    const double real = pred + rng.normal(0.0, magnitude * 0.1);
    const double recon = enc.encode(pred, real);
    EXPECT_LE(std::abs(recon - real), eb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndMagnitudes, QuantizerSweep,
    ::testing::Combine(::testing::Values(1e-6, 1e-4, 1e-2, 1.0),
                       ::testing::Values(1.0, 1e3, 1e6)));

}  // namespace
}  // namespace ocelot
