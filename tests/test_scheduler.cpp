// Tests for the batch-scheduler simulation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "scheduler/batch.hpp"

namespace ocelot {
namespace {

TEST(Scheduler, ImmediateGrantWhenIdle) {
  Simulation sim;
  BatchScheduler sched(sim, 10, std::make_unique<ImmediateWait>());
  double granted_at = -1.0;
  sched.submit(4, [&](const Allocation& a) {
    granted_at = a.granted_at;
    EXPECT_EQ(a.nodes, 4);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(granted_at, 0.0);
  EXPECT_EQ(sched.free_nodes(), 6);
}

TEST(Scheduler, TraceWaitDelaysGrant) {
  Simulation sim;
  BatchScheduler sched(sim, 10,
                       std::make_unique<TraceWait>(std::vector<double>{120.0}));
  double granted_at = -1.0;
  sched.submit(2, [&](const Allocation& a) { granted_at = a.granted_at; });
  sim.run();
  EXPECT_DOUBLE_EQ(granted_at, 120.0);
}

TEST(Scheduler, CapacityBlocksUntilRelease) {
  Simulation sim;
  BatchScheduler sched(sim, 8, std::make_unique<ImmediateWait>());
  Allocation first_alloc;
  double second_granted = -1.0;

  sched.submit(8, [&](const Allocation& a) { first_alloc = a; });
  sched.submit(4, [&](const Allocation& a) { second_granted = a.granted_at; });
  // Release the first allocation at t = 50.
  sim.schedule_at(50.0, [&] { sched.release(first_alloc); });
  sim.run();
  EXPECT_DOUBLE_EQ(second_granted, 50.0);
  EXPECT_EQ(sched.free_nodes(), 4);
}

TEST(Scheduler, FifoOrderingHolds) {
  Simulation sim;
  BatchScheduler sched(sim, 4, std::make_unique<ImmediateWait>());
  std::vector<int> grant_order;
  Allocation a0;
  sched.submit(4, [&](const Allocation& a) {
    a0 = a;
    grant_order.push_back(0);
  });
  sched.submit(2, [&](const Allocation&) { grant_order.push_back(1); });
  sched.submit(2, [&](const Allocation&) { grant_order.push_back(2); });
  sim.schedule_at(10.0, [&] { sched.release(a0); });
  sim.run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, OversizeRequestThrows) {
  Simulation sim;
  BatchScheduler sched(sim, 4, std::make_unique<ImmediateWait>());
  EXPECT_THROW(sched.submit(5, [](const Allocation&) {}), InvalidArgument);
  EXPECT_THROW(sched.submit(0, [](const Allocation&) {}), InvalidArgument);
}

TEST(Scheduler, DoubleReleaseDetected) {
  Simulation sim;
  BatchScheduler sched(sim, 4, std::make_unique<ImmediateWait>());
  Allocation alloc;
  sched.submit(2, [&](const Allocation& a) { alloc = a; });
  sim.run();
  sched.release(alloc);
  EXPECT_THROW(sched.release(alloc), InvalidArgument);
}

TEST(WaitModels, StochasticIsBimodalAndDeterministic) {
  StochasticWait a(42, 0.5, 30.0, 600.0);
  StochasticWait b(42, 0.5, 30.0, 600.0);
  int short_waits = 0, long_waits = 0;
  for (int i = 0; i < 500; ++i) {
    const double wa = a.next_wait_seconds();
    EXPECT_DOUBLE_EQ(wa, b.next_wait_seconds());  // same seed, same draws
    if (wa <= 30.0) {
      ++short_waits;
    } else {
      ++long_waits;
    }
  }
  EXPECT_GT(short_waits, 100);
  EXPECT_GT(long_waits, 50);
}

TEST(WaitModels, TraceRepeatsLastEntry) {
  TraceWait trace({1.0, 2.0});
  EXPECT_DOUBLE_EQ(trace.next_wait_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(trace.next_wait_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(trace.next_wait_seconds(), 2.0);
}

}  // namespace
}  // namespace ocelot
