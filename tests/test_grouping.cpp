// Tests for the file-grouping planner.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/grouping.hpp"

namespace ocelot {
namespace {

TEST(Grouping, WorldSizePartition) {
  const GroupPlan plan = plan_groups_by_world_size(768, 96);
  EXPECT_EQ(plan.size(), 8u);  // the paper's Miranda case
  for (const auto& g : plan) EXPECT_EQ(g.size(), 96u);
  EXPECT_TRUE(plan_is_partition(plan, 768));
}

TEST(Grouping, WorldSizeWithRemainder) {
  const GroupPlan plan = plan_groups_by_world_size(100, 30);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.back().size(), 10u);
  EXPECT_TRUE(plan_is_partition(plan, 100));
}

TEST(Grouping, ByCountBalances) {
  const GroupPlan plan = plan_groups_by_count(10, 3);
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].size(), 4u);
  EXPECT_EQ(plan[1].size(), 3u);
  EXPECT_EQ(plan[2].size(), 3u);
  EXPECT_TRUE(plan_is_partition(plan, 10));
}

TEST(Grouping, ByCountMoreGroupsThanFiles) {
  const GroupPlan plan = plan_groups_by_count(3, 10);
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_TRUE(plan_is_partition(plan, 3));
}

TEST(Grouping, ByTargetBytesPacksGreedily) {
  const std::vector<double> sizes = {5, 5, 5, 5, 12, 1, 1, 1};
  const GroupPlan plan = plan_groups_by_target_bytes(sizes, 10.0);
  EXPECT_TRUE(plan_is_partition(plan, sizes.size()));
  const auto gsizes = group_sizes(plan, sizes);
  // All but the final group must reach the target.
  for (std::size_t g = 0; g + 1 < gsizes.size(); ++g) {
    EXPECT_GE(gsizes[g], 10.0);
  }
}

TEST(Grouping, GroupSizesSumToTotal) {
  const std::vector<double> sizes = {1, 2, 3, 4, 5, 6, 7};
  const GroupPlan plan = plan_groups_by_world_size(sizes.size(), 3);
  const auto gsizes = group_sizes(plan, sizes);
  double total = 0.0;
  for (const double s : gsizes) total += s;
  EXPECT_DOUBLE_EQ(total, 28.0);
}

TEST(Grouping, PartitionDetectsDuplicatesAndGaps) {
  GroupPlan dup = {{0, 1}, {1, 2}};
  EXPECT_FALSE(plan_is_partition(dup, 3));
  GroupPlan gap = {{0}, {2}};
  EXPECT_FALSE(plan_is_partition(gap, 3));
  GroupPlan out_of_range = {{0, 5}};
  EXPECT_FALSE(plan_is_partition(out_of_range, 3));
}

TEST(Grouping, InvalidArgsThrow) {
  EXPECT_THROW((void)plan_groups_by_world_size(0, 4), InvalidArgument);
  EXPECT_THROW((void)plan_groups_by_world_size(4, 0), InvalidArgument);
  EXPECT_THROW((void)plan_groups_by_count(0, 3), InvalidArgument);
  const std::vector<double> sizes = {1.0};
  EXPECT_THROW((void)plan_groups_by_target_bytes(sizes, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ocelot
