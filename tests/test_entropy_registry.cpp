// Entropy-stage registry and coder tests: registry semantics, per-stage
// round-trip properties over codes and bytes, packed-section dispatch,
// and corrupt-stream rejection. The container/advisor integration of
// the stages is exercised further down in this file once the compressor
// plumbing is involved.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "codec/ans.hpp"
#include "codec/bwt_mtf.hpp"
#include "codec/entropy.hpp"
#include "codec/huffman.hpp"
#include "codec/lossless.hpp"
#include "codec/lzw.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ndarray.hpp"
#include "common/rng.hpp"
#include "compressor/compressor.hpp"
#include "core/adaptive.hpp"
#include "exec/parallel_codec.hpp"
#include "io/block_container.hpp"

namespace ocelot {
namespace {

std::vector<std::vector<std::uint32_t>> code_corpus() {
  std::vector<std::vector<std::uint32_t>> corpus;
  corpus.push_back({});                                  // empty
  corpus.push_back({0});                                 // single symbol
  corpus.push_back({42});                                // single nonzero
  corpus.push_back(std::vector<std::uint32_t>(5000, 7));  // one-symbol run
  corpus.push_back({0xFFFFFFFFu, 0, 0xFFFFFFFFu});       // extreme values

  // Skewed quantization-like codes centered on a radius, the shape the
  // SZ pipelines emit.
  Rng skew_rng(0x5EED);
  std::vector<std::uint32_t> skewed(20000);
  for (auto& c : skewed) {
    const double g = skew_rng.normal(0.0, 3.0);
    c = static_cast<std::uint32_t>(32768 + static_cast<int>(g));
  }
  corpus.push_back(std::move(skewed));

  // Uniform random over a large alphabet (stress for table builders).
  Rng wide_rng(0x71DE);
  std::vector<std::uint32_t> wide(8000);
  for (auto& c : wide) {
    c = static_cast<std::uint32_t>(wide_rng.uniform_int(0, 1 << 20));
  }
  corpus.push_back(std::move(wide));

  // Small alphabet with runs (MTF/RLE-friendly).
  std::vector<std::uint32_t> runs;
  for (int r = 0; r < 200; ++r) {
    runs.insert(runs.end(), 37, static_cast<std::uint32_t>(r % 5));
  }
  corpus.push_back(std::move(runs));
  return corpus;
}

std::vector<Bytes> byte_corpus() {
  std::vector<Bytes> corpus;
  corpus.push_back({});
  corpus.push_back({0x00});
  corpus.push_back({0xFF});
  corpus.push_back(Bytes(70000, 0x42));  // constant run across BWT chunks
  Bytes all_values(256);
  for (std::size_t i = 0; i < 256; ++i) {
    all_values[i] = static_cast<std::uint8_t>(i);
  }
  corpus.push_back(std::move(all_values));
  Bytes text;
  while (text.size() < 150000) {  // > 2 BWT chunks, repetitive
    const std::string phrase = "the quick brown fox jumps over the lazy dog ";
    text.insert(text.end(), phrase.begin(), phrase.end());
  }
  corpus.push_back(std::move(text));
  for (const std::size_t n : {2u, 255u, 4096u, 65536u, 65537u, 131073u}) {
    Rng rng(0xB17E5 + n);
    Bytes random(n);
    for (auto& b : random) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    corpus.push_back(std::move(random));
  }
  return corpus;
}

TEST(EntropyRegistry, ListsBuiltInStagesInWireIdOrder) {
  const auto stages = EntropyRegistry::instance().list();
  ASSERT_GE(stages.size(), 4u);
  EXPECT_EQ(stages[0]->name(), "huffman");
  EXPECT_EQ(stages[0]->wire_id(), kEntropyHuffmanId);
  EXPECT_EQ(stages[1]->name(), "ans");
  EXPECT_EQ(stages[1]->wire_id(), kEntropyAnsId);
  EXPECT_EQ(stages[2]->name(), "bwt-mtf");
  EXPECT_EQ(stages[2]->wire_id(), kEntropyBwtId);
  EXPECT_EQ(stages[3]->name(), "lzw");
  EXPECT_EQ(stages[3]->wire_id(), kEntropyLzwId);
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_LT(stages[i - 1]->wire_id(), stages[i]->wire_id());
  }
}

TEST(EntropyRegistry, ByNameAndByIdAgree) {
  auto& reg = EntropyRegistry::instance();
  for (const EntropyStage* s : reg.list()) {
    EXPECT_EQ(&reg.by_name(s->name()), s);
    EXPECT_EQ(&reg.by_id(s->wire_id()), s);
    EXPECT_EQ(reg.find(s->name()), s);
    EXPECT_EQ(reg.find_by_id(s->wire_id()), s);
  }
  EXPECT_THROW((void)reg.by_name("no-such-stage"), InvalidArgument);
  EXPECT_EQ(reg.find("no-such-stage"), nullptr);
  EXPECT_THROW((void)reg.by_id(200), CorruptStream);
  EXPECT_EQ(reg.find_by_id(200), nullptr);
}

TEST(EntropyRegistry, RejectsReservedAndDuplicateRegistrations) {
  auto& reg = EntropyRegistry::instance();
  EXPECT_THROW(reg.add(nullptr), InvalidArgument);
  // Same name and wire id as the built-in "ans" stage.
  EXPECT_THROW(reg.add(make_ans_stage()), InvalidArgument);
}

TEST(EntropyStage, CodeRoundTripPerStage) {
  for (const EntropyStage* stage : EntropyRegistry::instance().list()) {
    for (const auto& codes : code_corpus()) {
      Bytes buf;
      ByteSink sink(buf);
      stage->encode_into(codes, sink);
      std::vector<std::uint32_t> back;
      stage->decode_into(buf, back);
      EXPECT_EQ(back, codes) << stage->name() << " n=" << codes.size();
    }
  }
}

TEST(EntropyStage, ByteRoundTripPerStage) {
  for (const EntropyStage* stage : EntropyRegistry::instance().list()) {
    for (const auto& raw : byte_corpus()) {
      Bytes buf;
      ByteSink sink(buf);
      stage->encode_bytes_into(raw, sink);
      Bytes back;
      stage->decode_bytes_into(buf, back);
      EXPECT_EQ(back, raw) << stage->name() << " n=" << raw.size();
    }
  }
}

TEST(EntropyStage, PackedSectionDispatchRoundTrips) {
  auto& reg = EntropyRegistry::instance();
  for (const EntropyStage* stage : reg.list()) {
    for (const auto& codes : code_corpus()) {
      Bytes buf;
      ByteSink sink(buf);
      entropy_encode_codes(codes, *stage, LosslessBackend::kLzb, sink);
      ASSERT_FALSE(buf.empty());
      if (stage->wire_id() == kEntropyHuffmanId) {
        // Legacy chain: leading byte is the lossless backend id.
        EXPECT_EQ(buf[0], static_cast<std::uint8_t>(LosslessBackend::kLzb));
      } else {
        EXPECT_EQ(buf[0], stage->wire_id());
      }
      std::vector<std::uint32_t> back;
      entropy_decode_codes_into(buf, back);
      EXPECT_EQ(back, codes) << stage->name();
    }
  }
}

TEST(EntropyStage, HuffmanStageMatchesLegacyChainBytes) {
  // The registry's stage 0 must reproduce the pre-registry writer
  // bit for bit — the property the golden blobs pin end to end.
  const auto corpus = code_corpus();
  const auto& stage = EntropyRegistry::instance().by_name("huffman");
  for (const auto& codes : corpus) {
    Bytes legacy;
    {
      BytesWriter huff;
      huffman_encode(codes, huff);
      ByteSink sink(legacy);
      lossless_compress(huff.bytes(), LosslessBackend::kLzb, sink);
    }
    Bytes via_stage;
    ByteSink sink(via_stage);
    entropy_encode_codes(codes, stage, LosslessBackend::kLzb, sink);
    EXPECT_EQ(via_stage, legacy);
  }
}

TEST(EntropyStage, RejectsCorruptStreams) {
  std::vector<std::uint32_t> codes(512);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint32_t>(i % 19);
  }

  // Empty and unknown-id sections.
  std::vector<std::uint32_t> out;
  EXPECT_THROW(entropy_decode_codes_into({}, out), CorruptStream);
  Bytes unknown{0x77, 1, 2, 3};
  EXPECT_THROW(entropy_decode_codes_into(unknown, out), CorruptStream);

  for (const EntropyStage* stage : EntropyRegistry::instance().list()) {
    Bytes buf;
    ByteSink sink(buf);
    entropy_encode_codes(codes, *stage, LosslessBackend::kLzb, sink);
    // Every strict prefix must be rejected, never mis-decode silently
    // into the original stream.
    for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, buf.size() / 2,
                                  buf.size() - 1}) {
      std::vector<std::uint32_t> partial;
      try {
        entropy_decode_codes_into(
            std::span<const std::uint8_t>(buf).first(cut), partial);
        EXPECT_NE(partial, codes) << stage->name() << " cut=" << cut;
      } catch (const CorruptStream&) {
        // expected for most cuts
      }
    }
  }

  // Targeted ANS corruption: a frequency table that does not fill the
  // scale, and a dangling final state.
  {
    Bytes buf;
    ByteSink sink(buf);
    ans_encode(codes, sink);
    Bytes broken = buf;
    broken[broken.size() / 2] ^= 0xA5;  // perturb the state stream
    std::vector<std::uint32_t> back;
    try {
      ans_decode_into(broken, back);
      EXPECT_NE(back, codes);
    } catch (const CorruptStream&) {
    }
  }

  // LZW code beyond the dictionary.
  {
    Bytes buf;
    ByteSink sink(buf);
    sink.put_varint(4);
    // 8-bit literal 'a', then a 9-bit code 300 (> next == 256).
    sink.put('a');  // not a valid bitstream framing on purpose
    Bytes out_bytes;
    EXPECT_THROW(lzw_decode_into(buf, out_bytes), CorruptStream);
  }
}

// ---------------------------------------------------------------------
// Compressor / container / advisor integration.

template <typename T>
NdArray<T> wavy_array(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  NdArray<T> data(shape);
  std::size_t i = 0;
  for (T& v : data.values()) {
    v = static_cast<T>(std::sin(static_cast<double>(i++) * 0.21) +
                       rng.normal(0.0, 0.05));
  }
  return data;
}

TEST(EntropyCompressor, BackendStageDtypeSweepHoldsBoundAndInspects) {
  const std::vector<std::string> backends = {"lorenzo", "sz3-interp",
                                             "multigrid"};
  const auto sweep = [&](auto tag) {
    using T = decltype(tag);
    const NdArray<T> data = wavy_array<T>(Shape(12, 9, 5), 0xD7);
    for (const std::string& backend : backends) {
      for (const EntropyStage* stage : EntropyRegistry::instance().list()) {
        CompressionConfig config;
        config.backend = backend;
        config.eb_mode = EbMode::kAbsolute;
        config.eb = 1e-3;
        config.entropy = stage->name();
        const Bytes blob = compress(data, config);
        // The default stage keeps the OCZ1 magic (bit-compatible with
        // every pre-registry reader); anything else switches to OCZ2.
        ASSERT_GE(blob.size(), 7u);
        EXPECT_EQ(std::memcmp(blob.data(),
                              stage->wire_id() == 0 ? "OCZ1" : "OCZ2", 4),
                  0)
            << backend << "/" << stage->name();
        const BlobInfo info = inspect_blob(blob);
        EXPECT_EQ(info.backend, backend);
        EXPECT_EQ(info.entropy, stage->name());
        EXPECT_EQ(info.entropy_id, stage->wire_id());
        const NdArray<T> back = decompress<T>(blob);
        ASSERT_EQ(back.size(), data.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
          ASSERT_LE(std::abs(static_cast<double>(data[i]) -
                             static_cast<double>(back[i])),
                    1e-3 + 1e-12)
              << backend << "/" << stage->name() << " element " << i;
        }
      }
    }
  };
  sweep(float{});
  sweep(double{});
}

/// Byte length of the varint encoding ByteSink::put_varint emits, used
/// to locate index bytes inside a hand-addressed container.
std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 128) {
    v >>= 7;
    ++n;
  }
  return n;
}

Bytes mixed_stage_container(const FloatArray& field, std::size_t block_slabs,
                            const std::vector<std::string>& stages) {
  BlockContainerWriter writer(block_slabs);
  const auto spans = plan_blocks(field.shape().dim(0), block_slabs);
  for (std::size_t b = 0; b < spans.size(); ++b) {
    std::vector<float> vals(
        field.values().begin() +
            static_cast<std::ptrdiff_t>(spans[b].slab_begin *
                                        (field.size() / field.shape().dim(0))),
        field.values().begin() +
            static_cast<std::ptrdiff_t>(
                (spans[b].slab_begin + spans[b].slab_count) *
                (field.size() / field.shape().dim(0))));
    CompressionConfig config;
    config.eb_mode = EbMode::kAbsolute;
    config.eb = 1e-3;
    config.entropy = stages[b % stages.size()];
    compress_into(FloatArray(block_shape(field.shape(), spans[b]),
                             std::move(vals)),
                  config, writer.begin_block());
    writer.end_block();
  }
  return writer.finish(field.shape());
}

FloatArray sine_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  std::size_t i = 0;
  for (float& v : data.values()) {
    v = static_cast<float>(std::sin(static_cast<double>(i++) * 0.05) +
                           rng.normal(0.0, 0.02));
  }
  return data;
}

TEST(BlockContainerV12, MixedStagesRoundTripAndIndexNamesEveryBlock) {
  const FloatArray field = sine_field(Shape(16, 7, 5), 0xB12);
  const Bytes container = mixed_stage_container(
      field, 4, {"huffman", "ans", "bwt-mtf", "lzw"});

  const BlockContainerInfo info = read_block_index(container);
  ASSERT_TRUE(info.has_backend_ids);
  ASSERT_TRUE(info.has_entropy_ids);
  ASSERT_EQ(info.blocks.size(), 4u);
  const std::uint8_t expect_ids[] = {kEntropyHuffmanId, kEntropyAnsId,
                                     kEntropyBwtId, kEntropyLzwId};
  for (std::size_t b = 0; b < info.blocks.size(); ++b) {
    EXPECT_EQ(info.blocks[b].entropy_id, expect_ids[b]) << "block " << b;
    const FloatArray block = decompress_block(container, b);
    EXPECT_EQ(block.shape().dim(0), 4u);
  }

  // All-default payloads must keep the v1.1 index (no entropy bytes),
  // so stage-unaware pipelines emit the exact bytes they always did.
  const Bytes plain =
      mixed_stage_container(field, 4, {"huffman"});
  const BlockContainerInfo plain_info = read_block_index(plain);
  EXPECT_TRUE(plain_info.has_backend_ids);
  EXPECT_FALSE(plain_info.has_entropy_ids);
  for (const auto& entry : plain_info.blocks) EXPECT_EQ(entry.entropy_id, 0);
  EXPECT_LT(plain.size() - plain_info.blocks.size(),
            container.size());  // v1.2 spends one index byte per block
}

TEST(BlockContainerV12, EveryPrefixTruncationRejected) {
  const FloatArray field = sine_field(Shape(8, 5, 3), 0xC4);
  const Bytes container =
      mixed_stage_container(field, 4, {"ans", "lzw"});
  for (std::size_t cut = 0; cut < container.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{container.data(), cut};
    EXPECT_THROW(
        {
          const BlockContainerInfo info = read_block_index(prefix);
          for (std::size_t b = 0; b < info.blocks.size(); ++b) {
            (void)decompress_block(prefix, b);
          }
        },
        Error)
        << "prefix " << cut << " of " << container.size();
  }
}

TEST(BlockContainerV12, IndexEntropyByteMismatchRejected) {
  const FloatArray field = sine_field(Shape(8, 5, 3), 0xC5);
  Bytes container = mixed_stage_container(field, 4, {"ans", "lzw"});
  const BlockContainerInfo info = read_block_index(container);
  ASSERT_TRUE(info.has_entropy_ids);

  // Address block 0's index entropy byte: magic(4) + version(1) +
  // rank(1) + dim varints + block_slabs + count, then within the entry
  // varint size + crc(4) + backend(1).
  std::size_t offset = 4 + 1 + 1;
  for (int d = 0; d < info.shape.rank(); ++d)
    offset += varint_len(info.shape.dim(d));
  offset += varint_len(info.block_slabs) + varint_len(info.blocks.size());
  offset += varint_len(info.blocks[0].size) + 4 + 1;
  ASSERT_EQ(container[offset], kEntropyAnsId);

  container[offset] = kEntropyLzwId;  // lies about block 0's stage
  const BlockContainerInfo tampered = read_block_index(container);
  EXPECT_THROW((void)block_payload(container, tampered, 0), CorruptStream);
  // Block 1's entry is untouched and still verifies.
  (void)block_payload(container, tampered, 1);
}

TEST(AdaptiveEntropy, StageDuelingIsByteDeterministicAcrossWorkers) {
  const FloatArray field = sine_field(Shape(30, 11, 6), 0xAD);
  CompressionConfig config;
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-3;
  AdaptiveOptions options;
  options.backends = {"lorenzo", "sz3-interp"};
  options.entropy_stages = {"huffman", "ans", "bwt-mtf"};

  Bytes reference;
  for (const std::size_t workers : {1u, 2u, 5u}) {
    AdvisorPolicy policy(options);
    const BlockCompressResult r =
        block_compress(field, config, workers, 4, &policy);
    if (reference.empty()) {
      reference = r.container;
    } else {
      EXPECT_EQ(r.container, reference) << "workers=" << workers;
    }
    const AdaptiveSummary summary = policy.summary();
    EXPECT_EQ(summary.blocks, r.n_blocks);
    for (const AdaptiveDecisionRecord& record : policy.log()) {
      EXPECT_FALSE(record.entropy.empty());
    }
  }
}

TEST(AdaptiveEntropy, ForcedStageLandsInContainerAndHoldsBound) {
  const FloatArray field = sine_field(Shape(16, 9, 4), 0xF0);
  CompressionConfig config;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 2e-3;
  AdaptiveOptions options;
  options.entropy_stages = {"ans"};

  AdvisorPolicy policy(options);
  const BlockCompressResult r = block_compress(field, config, 2, 4, &policy);
  const BlockContainerInfo info = read_block_index(r.container);
  ASSERT_TRUE(info.has_entropy_ids);
  for (const auto& entry : info.blocks)
    EXPECT_EQ(entry.entropy_id, kEntropyAnsId);
  const AdaptiveSummary summary = policy.summary();
  ASSERT_EQ(summary.entropy_blocks.size(), 1u);
  EXPECT_EQ(summary.entropy_blocks.front().first, "ans");
  EXPECT_EQ(summary.entropy_blocks.front().second, summary.blocks);

  const FloatArray back = block_decompress(r.container, 2).field;
  ASSERT_EQ(back.size(), field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    ASSERT_LE(std::abs(field[i] - back[i]), 2e-3 + 1e-12);
  }
}

}  // namespace
}  // namespace ocelot
