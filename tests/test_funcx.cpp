// Tests for the funcX-style FaaS simulation.
#include <gtest/gtest.h>

#include "faas/funcx.hpp"

namespace ocelot {
namespace {

FuncXEndpointConfig test_endpoint() {
  FuncXEndpointConfig config;
  config.name = "anvil-ep";
  config.dispatch_latency_s = 0.1;
  config.cold_start_s = 2.0;
  config.warm_overhead_s = 0.01;
  config.batch_latency_s = 0.02;
  return config;
}

TEST(FuncX, ColdThenWarmInvocation) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep = faas.add_endpoint(test_endpoint());
  faas.register_function("compress");

  double first_done = 0.0, second_done = 0.0;
  faas.submit(ep, "compress", {1.0, [&] { first_done = sim.now(); }});
  sim.run();
  // Cold: dispatch 0.1 + cold 2.0 + compute 1.0.
  EXPECT_NEAR(first_done, 3.1, 1e-9);

  faas.submit(ep, "compress", {1.0, [&] { second_done = sim.now(); }});
  sim.run();
  // Warm: dispatch 0.1 + warm 0.01 + compute 1.0, on top of 3.1.
  EXPECT_NEAR(second_done - first_done, 1.11, 1e-9);
}

TEST(FuncX, ContainerWarmthIsPerFunctionPerEndpoint) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep1 = faas.add_endpoint(test_endpoint());
  const std::size_t ep2 = faas.add_endpoint(test_endpoint());
  faas.register_function("compress");
  faas.register_function("decompress");

  double t1 = 0.0, t2 = 0.0, t3 = 0.0;
  faas.submit(ep1, "compress", {0.0, [&] { t1 = sim.now(); }});
  sim.run();
  faas.submit(ep1, "decompress", {0.0, [&] { t2 = sim.now(); }});
  sim.run();
  faas.submit(ep2, "compress", {0.0, [&] { t3 = sim.now(); }});
  sim.run();
  // All three are cold starts (different function or endpoint).
  EXPECT_NEAR(t1, 2.1, 1e-9);
  EXPECT_NEAR(t2 - t1, 2.1, 1e-9);
  EXPECT_NEAR(t3 - t2, 2.1, 1e-9);
}

TEST(FuncX, BatchAmortizesDispatch) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep = faas.add_endpoint(test_endpoint());
  faas.register_function("compress");

  // 50 tasks individually (after warm-up) vs 50 batched.
  faas.submit(ep, "compress", {0.0, nullptr});
  sim.run();
  const double warm_start = sim.now();

  std::vector<FuncXTask> batch;
  double last_done = 0.0;
  for (int i = 0; i < 50; ++i) {
    batch.push_back({0.5, [&] { last_done = sim.now(); }});
  }
  faas.submit_batch(ep, "compress", std::move(batch));
  sim.run();
  const double batched = last_done - warm_start;
  // Batched: 0.1 dispatch + 0.01 warm + 50*0.02 marginal + 0.5 compute.
  EXPECT_NEAR(batched, 0.1 + 0.01 + 50 * 0.02 + 0.5, 1e-6);
  // Individual warm submissions would cost 50 * (0.1 + 0.01 + 0.5).
  EXPECT_LT(batched, 50 * 0.61);
}

TEST(FuncX, CompletedCounterTracksTasks) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep = faas.add_endpoint(test_endpoint());
  faas.register_function("f");
  for (int i = 0; i < 7; ++i) faas.submit(ep, "f", {0.1, nullptr});
  sim.run();
  EXPECT_EQ(faas.completed_tasks(), 7u);
}

TEST(FuncX, UnknownEntitiesThrow) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep = faas.add_endpoint(test_endpoint());
  EXPECT_THROW(faas.submit(ep, "nope", {0.1, nullptr}), NotFound);
  faas.register_function("f");
  EXPECT_THROW(faas.submit(99, "f", {0.1, nullptr}), NotFound);
  EXPECT_THROW((void)faas.endpoint(5), NotFound);
  EXPECT_THROW(faas.submit_batch(ep, "f", {}), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
