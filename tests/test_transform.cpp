// Tests for the ZFP-style transform-based compressor (extension).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/transform.hpp"
#include "datagen/datasets.hpp"

namespace ocelot {
namespace {

FloatArray wave_field(const Shape& shape, std::uint64_t seed) {
  FloatArray data(shape);
  Rng rng(seed);
  const double f = rng.uniform(1.0, 4.0);
  const std::size_t n1 = shape.rank() >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = shape.rank() >= 3 ? shape.dim(2) : 1;
  auto vals = data.values();
  for (std::size_t i = 0; i < shape.dim(0); ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        vals[(i * n1 + j) * n2 + k] = static_cast<float>(
            std::sin(f * static_cast<double>(i) / 7.0) *
                std::cos(f * static_cast<double>(j) / 9.0) +
            0.3 * std::sin(static_cast<double>(k) / 3.0));
      }
    }
  }
  return data;
}

class TransformSweep
    : public ::testing::TestWithParam<std::tuple<Shape, double>> {};

TEST_P(TransformSweep, ErrorBoundHolds) {
  const auto [shape, eb] = GetParam();
  const FloatArray data = wave_field(shape, 33);
  TransformConfig config;
  config.abs_eb = eb;
  const Bytes blob = transform_compress(data, config);
  const FloatArray recon = transform_decompress(blob);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(max_abs_error<float>(data.values(), recon.values()), eb);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, TransformSweep,
    ::testing::Combine(
        ::testing::Values(Shape(64), Shape(33), Shape(16, 24), Shape(13, 7),
                          Shape(12, 12, 12), Shape(9, 10, 11)),
        ::testing::Values(1e-1, 1e-3, 1e-5)));

TEST(Transform, ZeroBlocksCompressToAlmostNothing) {
  FloatArray data(Shape(64, 64));  // all zeros
  TransformConfig config;
  config.abs_eb = 1e-4;
  const Bytes blob = transform_compress(data, config);
  EXPECT_LT(blob.size(), 200u);
  const FloatArray recon = transform_decompress(blob);
  for (const float v : recon.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Transform, SmoothDataCompressesWell) {
  const FloatArray data = generate_field("Miranda", "pressure", 0.08, 9);
  TransformConfig config;
  const ValueSummary s = summarize(data.values());
  config.abs_eb = 1e-3 * s.range;
  const Bytes blob = transform_compress(data, config);
  const double ratio = static_cast<double>(data.byte_size()) /
                       static_cast<double>(blob.size());
  EXPECT_GT(ratio, 2.0);
  const FloatArray recon = transform_decompress(blob);
  EXPECT_LE(max_abs_error<float>(data.values(), recon.values()),
            config.abs_eb);
}

TEST(Transform, NonFiniteBlocksSurviveVerbatim) {
  FloatArray data = wave_field(Shape(16, 16), 5);
  data.at(3, 3) = std::numeric_limits<float>::quiet_NaN();
  data.at(10, 2) = std::numeric_limits<float>::infinity();
  TransformConfig config;
  config.abs_eb = 1e-3;
  const FloatArray recon =
      transform_decompress(transform_compress(data, config));
  EXPECT_TRUE(std::isnan(recon.at(3, 3)));
  EXPECT_TRUE(std::isinf(recon.at(10, 2)));
}

TEST(Transform, TighterBoundLargerBlob) {
  const FloatArray data = wave_field(Shape(32, 32, 8), 6);
  TransformConfig loose;
  loose.abs_eb = 1e-2;
  TransformConfig tight;
  tight.abs_eb = 1e-6;
  EXPECT_LT(transform_compress(data, loose).size(),
            transform_compress(data, tight).size());
}

TEST(Transform, MalformedInputThrows) {
  const FloatArray data = wave_field(Shape(8, 8), 7);
  Bytes blob = transform_compress(data, TransformConfig{});
  blob[0] = 'X';
  EXPECT_THROW((void)transform_decompress(blob), CorruptStream);

  Bytes truncated = transform_compress(data, TransformConfig{});
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)transform_decompress(truncated), CorruptStream);
}

TEST(Transform, InvalidArgsThrow) {
  FloatArray empty;
  EXPECT_THROW((void)transform_compress(empty, TransformConfig{}),
               InvalidArgument);
  const FloatArray data = wave_field(Shape(8), 8);
  TransformConfig bad;
  bad.abs_eb = 0.0;
  EXPECT_THROW((void)transform_compress(data, bad), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
