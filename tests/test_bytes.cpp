// Unit tests for the byte-buffer serialization primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"

namespace ocelot {
namespace {

TEST(Bytes, PodRoundTrip) {
  BytesWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<double>(3.25);
  w.put<std::uint8_t>(7);

  BytesReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VarintSmallValues) {
  BytesWriter w;
  for (std::uint64_t v = 0; v < 300; ++v) w.put_varint(v);
  BytesReader r(w.bytes());
  for (std::uint64_t v = 0; v < 300; ++v) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VarintBoundaryValues) {
  const std::uint64_t values[] = {
      0,    127,  128,   16383, 16384,
      (1ull << 32) - 1, 1ull << 32, std::numeric_limits<std::uint64_t>::max()};
  BytesWriter w;
  for (const auto v : values) w.put_varint(v);
  BytesReader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
}

TEST(Bytes, VarintEncodingIsCompact) {
  BytesWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Bytes, BlobRoundTrip) {
  const Bytes payload = {1, 2, 3, 4, 5};
  BytesWriter w;
  w.put_blob(payload);
  w.put_string("hello");

  BytesReader r(w.bytes());
  const auto blob = r.get_blob();
  EXPECT_EQ(Bytes(blob.begin(), blob.end()), payload);
  EXPECT_EQ(r.get_string(), "hello");
}

TEST(Bytes, EmptyBlobAndString) {
  BytesWriter w;
  w.put_blob({});
  w.put_string("");
  BytesReader r(w.bytes());
  EXPECT_TRUE(r.get_blob().empty());
  EXPECT_TRUE(r.get_string().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TruncatedReadThrows) {
  BytesWriter w;
  w.put<std::uint32_t>(1);
  BytesReader r(w.bytes());
  (void)r.get<std::uint16_t>();
  (void)r.get<std::uint16_t>();
  EXPECT_THROW((void)r.get<std::uint8_t>(), CorruptStream);
}

TEST(Bytes, TruncatedBlobThrows) {
  BytesWriter w;
  w.put_varint(100);  // claims 100 bytes follow
  w.put<std::uint8_t>(1);
  BytesReader r(w.bytes());
  EXPECT_THROW((void)r.get_blob(), CorruptStream);
}

TEST(Bytes, OverlongVarintThrows) {
  Bytes bad(11, 0xFF);  // continuation bit forever
  BytesReader r(bad);
  EXPECT_THROW((void)r.get_varint(), CorruptStream);
}

TEST(Bytes, TakeMovesBuffer) {
  BytesWriter w;
  w.put<std::uint8_t>(42);
  const Bytes taken = w.take();
  EXPECT_EQ(taken.size(), 1u);
}

TEST(ByteSink, AppendsToCallerBuffer) {
  Bytes buf = {0xAA};  // pre-existing content survives
  ByteSink sink(buf);
  sink.put<std::uint16_t>(0x1234);
  sink.put_varint(300);
  sink.put_blob(Bytes{1, 2, 3});
  sink.put_string("hi");
  EXPECT_EQ(buf[0], 0xAA);
  EXPECT_EQ(sink.size(), buf.size());
  EXPECT_EQ(&sink.target(), &buf);

  BytesReader r(std::span<const std::uint8_t>(buf).subspan(1));
  EXPECT_EQ(r.get<std::uint16_t>(), 0x1234u);
  EXPECT_EQ(r.get_varint(), 300u);
  const auto blob = r.get_blob();
  EXPECT_EQ(Bytes(blob.begin(), blob.end()), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hi");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteSink, MatchesBytesWriterByteForByte) {
  // The owning writer is a ByteSink over its own storage: any put
  // sequence must serialize identically through both.
  const auto emit = [](ByteSink& out) {
    out.put<double>(2.5);
    out.put_varint(1u << 20);
    out.put_string("tag");
    out.put_blob(Bytes(17, 9));
  };
  BytesWriter owning;
  emit(owning);
  Bytes external;
  ByteSink sink(external);
  emit(sink);
  EXPECT_EQ(owning.bytes(), external);
}

TEST(ByteSink, ChainedStagesShareOneBuffer) {
  // Two "stages" write head-to-tail into the same buffer — the
  // zero-copy composition the codecs rely on.
  Bytes buf;
  ByteSink sink(buf);
  sink.put_varint(7);
  const std::size_t stage1_end = sink.size();
  sink.put_bytes(Bytes{9, 9, 9});
  EXPECT_EQ(buf.size(), stage1_end + 3);
}

TEST(ByteSource, IsTheReaderAlias) {
  Bytes buf;
  ByteSink sink(buf);
  sink.put_varint(42);
  ByteSource src{std::span<const std::uint8_t>(buf)};
  EXPECT_EQ(src.get_varint(), 42u);
}

}  // namespace
}  // namespace ocelot
