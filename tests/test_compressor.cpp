// End-to-end compressor tests: the error-bound invariant, round
// trips across backends/shapes/bounds, container robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "datagen/datasets.hpp"

namespace ocelot {
namespace {

FloatArray smooth_test_field(const Shape& shape, std::uint64_t seed) {
  FloatArray data(shape);
  Rng rng(seed);
  const double f0 = rng.uniform(1.0, 3.0);
  const double f1 = rng.uniform(1.0, 3.0);
  const double f2 = rng.uniform(1.0, 3.0);
  const std::size_t n1 = shape.rank() >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = shape.rank() >= 3 ? shape.dim(2) : 1;
  auto vals = data.values();
  for (std::size_t i = 0; i < shape.dim(0); ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        const double x = static_cast<double>(i) / static_cast<double>(shape.dim(0));
        const double y = static_cast<double>(j) / static_cast<double>(n1);
        const double z = static_cast<double>(k) / static_cast<double>(n2);
        vals[(i * n1 + j) * n2 + k] = static_cast<float>(
            std::sin(6.28 * f0 * x) + std::cos(6.28 * f1 * y) +
            std::sin(6.28 * f2 * z) + 0.05 * rng.normal());
      }
    }
  }
  return data;
}

/// The core contract: max |orig - recon| <= eb, for every backend,
/// shape, and error bound.
class ErrorBoundSweep
    : public ::testing::TestWithParam<std::tuple<const char*, Shape, double>> {
};

TEST_P(ErrorBoundSweep, BoundHoldsAndRoundTrips) {
  const auto [backend, shape, eb] = GetParam();
  const FloatArray data = smooth_test_field(shape, 1234);

  CompressionConfig config;
  config.backend = backend;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = eb;

  const Bytes blob = compress(data, config);
  const FloatArray recon = decompress<float>(blob);

  ASSERT_EQ(recon.shape(), data.shape());
  const double max_err = max_abs_error<float>(data.values(), recon.values());
  EXPECT_LE(max_err, eb) << backend << " shape rank " << shape.rank();
}

INSTANTIATE_TEST_SUITE_P(
    BackendsShapesBounds, ErrorBoundSweep,
    ::testing::Combine(
        ::testing::Values("lorenzo", "sz2", "sz3-interp", "lorenzo2",
                          "multigrid"),
        ::testing::Values(Shape(1000), Shape(50, 60), Shape(20, 24, 28),
                          Shape(7, 11, 13)),
        ::testing::Values(1e-1, 1e-3, 1e-5)));

TEST(Compressor, SecondOrderLorenzoReproducesLinearTrendExactly) {
  // f(i,j) = 3 + 2i + 5j is in the null space of the order-2 residual,
  // so away from the zero-padded border every prediction is exact and
  // the field compresses to almost nothing.
  FloatArray data(Shape(64, 64));
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      data.at(i, j) = static_cast<float>(3.0 + 2.0 * i + 5.0 * j);
    }
  }
  CompressionConfig config;
  config.backend = "lorenzo2";
  config.eb = 1e-4;
  const RoundTripStats stats = measure_roundtrip(data, config);
  EXPECT_LE(stats.max_error, 1e-4);
  EXPECT_GT(stats.compression_ratio, 40.0);

  // Order 1 cannot cancel the gradient: order 2 must compress better.
  config.backend = "lorenzo";
  const RoundTripStats order1 = measure_roundtrip(data, config);
  EXPECT_GT(stats.compression_ratio, order1.compression_ratio);
}

TEST(Compressor, RelativeErrorBoundScalesWithRange) {
  FloatArray data = smooth_test_field(Shape(40, 40), 5);
  // Scale values by 1000: a value-range-relative bound must follow.
  for (float& v : data.values()) v *= 1000.0f;

  CompressionConfig config;
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-4;

  const double abs_eb = resolve_abs_eb(data, config);
  const ValueSummary s = summarize(data.values());
  EXPECT_NEAR(abs_eb, 1e-4 * s.range, 1e-9);

  const Bytes blob = compress(data, config);
  const FloatArray recon = decompress<float>(blob);
  EXPECT_LE(max_abs_error<float>(data.values(), recon.values()), abs_eb);
}

TEST(Compressor, ConstantFieldCompressesMassively) {
  FloatArray data(Shape(64, 64));
  for (float& v : data.values()) v = 3.14f;
  CompressionConfig config;
  config.eb = 1e-6;
  const RoundTripStats stats = measure_roundtrip(data, config);
  EXPECT_GT(stats.compression_ratio, 100.0);
  EXPECT_EQ(stats.max_error, 0.0);
}

TEST(Compressor, LargerBoundNeverCompressesWorse) {
  const FloatArray data = smooth_test_field(Shape(32, 32, 32), 7);
  CompressionConfig config;
  config.backend = "sz3-interp";
  double prev_ratio = 0.0;
  for (const double eb : {1e-6, 1e-4, 1e-2}) {
    config.eb = eb;
    const RoundTripStats stats = measure_roundtrip(data, config);
    EXPECT_GE(stats.compression_ratio, prev_ratio * 0.95)
        << "eb=" << eb;  // small tolerance for container overhead
    prev_ratio = stats.compression_ratio;
  }
}

TEST(Compressor, PsnrImprovesWithTighterBound) {
  const FloatArray data = smooth_test_field(Shape(48, 48), 8);
  CompressionConfig config;
  config.backend = "lorenzo";
  config.eb = 1e-2;
  const double psnr_loose = measure_roundtrip(data, config).psnr_db;
  config.eb = 1e-4;
  const double psnr_tight = measure_roundtrip(data, config).psnr_db;
  EXPECT_GT(psnr_tight, psnr_loose);
}

TEST(Compressor, DoubleTypeRoundTrip) {
  DoubleArray data(Shape(30, 30));
  Rng rng(9);
  for (double& v : data.values()) v = rng.normal(100.0, 5.0);
  CompressionConfig config;
  config.eb = 1e-4;
  const Bytes blob = compress(data, config);
  const DoubleArray recon = decompress<double>(blob);
  EXPECT_LE(max_abs_error<double>(data.values(), recon.values()), 1e-4);
}

TEST(Compressor, DtypeMismatchThrows) {
  const FloatArray data = smooth_test_field(Shape(16, 16), 10);
  CompressionConfig config;
  const Bytes blob = compress(data, config);
  EXPECT_THROW((void)decompress<double>(blob), InvalidArgument);
}

TEST(Compressor, InspectBlobReportsHeader) {
  const FloatArray data = smooth_test_field(Shape(20, 30), 11);
  CompressionConfig config;
  config.backend = "sz2";
  config.eb = 1e-3;
  const Bytes blob = compress(data, config);
  const BlobInfo info = inspect_blob(blob);
  EXPECT_FALSE(info.is_double);
  EXPECT_EQ(info.backend, "sz2");
  EXPECT_EQ(info.backend_id, 1);
  EXPECT_DOUBLE_EQ(info.abs_eb, 1e-3);
  EXPECT_EQ(info.shape, Shape(20, 30));
  EXPECT_EQ(info.raw_bytes, 20u * 30u * 4u);
  EXPECT_EQ(info.compressed_bytes, blob.size());
}

TEST(Compressor, CorruptMagicThrows) {
  const FloatArray data = smooth_test_field(Shape(16, 16), 12);
  Bytes blob = compress(data, CompressionConfig{});
  blob[0] = 'X';
  EXPECT_THROW((void)decompress<float>(blob), CorruptStream);
  EXPECT_THROW((void)inspect_blob(blob), CorruptStream);
}

TEST(Compressor, TruncatedBlobThrows) {
  const FloatArray data = smooth_test_field(Shape(16, 16), 13);
  Bytes blob = compress(data, CompressionConfig{});
  blob.resize(blob.size() / 2);
  EXPECT_THROW((void)decompress<float>(blob), CorruptStream);
}

TEST(Compressor, EmptyArrayThrows) {
  FloatArray data;
  EXPECT_THROW((void)compress(data, CompressionConfig{}), InvalidArgument);
}

TEST(Compressor, NonPositiveBoundThrows) {
  const FloatArray data = smooth_test_field(Shape(8, 8), 14);
  CompressionConfig config;
  config.eb = 0.0;
  EXPECT_THROW((void)compress(data, config), InvalidArgument);
}

TEST(Compressor, InterpBeatsLorenzoOnSmoothData) {
  // The SZ3-interp backend should achieve a better ratio than pure
  // Lorenzo on smooth fields (the reason the paper adopts SZ3).
  const FloatArray data = smooth_test_field(Shape(64, 64, 64), 15);
  CompressionConfig config;
  config.eb = 1e-3;
  config.backend = "lorenzo";
  const double cr_lorenzo = measure_roundtrip(data, config).compression_ratio;
  config.backend = "sz3-interp";
  const double cr_interp = measure_roundtrip(data, config).compression_ratio;
  EXPECT_GT(cr_interp, cr_lorenzo);
}

/// Error bound must hold on every synthetic application field too.
class DatasetErrorBound
    : public ::testing::TestWithParam<std::tuple<std::string, const char*>> {};

TEST_P(DatasetErrorBound, HoldsOnGeneratedFields) {
  const auto [app, backend] = GetParam();
  const auto fields = generate_application(app, 0.05, 99);
  ASSERT_FALSE(fields.empty());

  CompressionConfig config;
  config.backend = backend;
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-3;

  // Test the first two fields of each app to bound runtime.
  const std::size_t limit = std::min<std::size_t>(2, fields.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& field = fields[i];
    const double abs_eb = resolve_abs_eb(field.data, config);
    const Bytes blob = compress(field.data, config);
    const FloatArray recon = decompress<float>(blob);
    EXPECT_LE(max_abs_error<float>(field.data.values(), recon.values()),
              abs_eb)
        << app << "/" << field.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndBackends, DatasetErrorBound,
    ::testing::Combine(::testing::Values("CESM", "Miranda", "ISABEL", "Nyx",
                                         "RTM", "QMCPACK"),
                       ::testing::Values("sz3-interp", "sz2", "multigrid")));

TEST(StreamingBlobPath, CompressIntoMatchesCompressByteForByte) {
  // The sink entry point appends after existing content and produces
  // exactly the wrapper's bytes — the wire-format invariant of the
  // zero-copy refactor, for every registered backend.
  const FloatArray data = smooth_test_field(Shape(13, 9, 7), 77);
  for (const std::string& backend : registered_backend_names()) {
    CompressionConfig config;
    config.backend = backend;
    config.eb_mode = EbMode::kValueRangeRel;
    config.eb = 1e-3;
    const Bytes reference = compress(data, config);

    Bytes buf = {0x55, 0x66};  // pre-existing bytes survive
    ByteSink sink(buf);
    compress_into(data, config, sink);
    ASSERT_EQ(buf.size(), 2 + reference.size()) << backend;
    EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                           buf.begin() + 2))
        << backend;
  }
}

TEST(StreamingBlobPath, DecompressReusingMatchesDecompress) {
  const FloatArray data = smooth_test_field(Shape(21, 11), 78);
  CompressionConfig config;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 1e-3;
  const Bytes blob = compress(data, config);

  const FloatArray fresh = decompress<float>(blob);
  // Oversized, dirty storage must be resized and overwritten.
  std::vector<float> storage(10 * data.size(), -1.0f);
  const FloatArray reused = decompress_reusing<float>(blob, storage);
  EXPECT_EQ(reused.shape(), fresh.shape());
  EXPECT_EQ(reused.vector(), fresh.vector());

  // Exception safety: a corrupt blob hands the storage back to the
  // caller (so pooled leases keep their buffer in circulation).
  Bytes corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x5A;
  corrupt.resize(corrupt.size() - 7);
  std::vector<float> pooled_storage(64, 0.0f);
  try {
    (void)decompress_reusing<float>(corrupt, pooled_storage);
  } catch (const Error&) {
    // Either path is fine: throw before the storage is consumed, or
    // restore it on the decode path — it must end up non-dangling
    // here with its capacity intact.
  }
  EXPECT_GE(pooled_storage.capacity(), 64u);
}

}  // namespace
}  // namespace ocelot
