// Unit tests for Shape and NdArray.
#include <gtest/gtest.h>

#include "common/ndarray.hpp"

namespace ocelot {
namespace {

TEST(Shape, RankAndSize) {
  const Shape s1(10);
  EXPECT_EQ(s1.rank(), 1);
  EXPECT_EQ(s1.size(), 10u);

  const Shape s2(4, 5);
  EXPECT_EQ(s2.rank(), 2);
  EXPECT_EQ(s2.size(), 20u);

  const Shape s3(2, 3, 4);
  EXPECT_EQ(s3.rank(), 3);
  EXPECT_EQ(s3.size(), 24u);
  EXPECT_EQ(s3.dim(0), 2u);
  EXPECT_EQ(s3.dim(2), 4u);
}

TEST(Shape, ZeroDimensionThrows) {
  EXPECT_THROW(Shape(0), InvalidArgument);
  EXPECT_THROW(Shape(3, 0), InvalidArgument);
  EXPECT_THROW(Shape(1, 2, 0), InvalidArgument);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape(3, 4), Shape(3, 4));
  EXPECT_FALSE(Shape(3, 4) == Shape(4, 3));
  EXPECT_FALSE(Shape(12) == Shape(3, 4));
}

TEST(NdArray, ZeroInitialized) {
  const FloatArray a(Shape(5, 5));
  for (const float v : a.values()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(a.byte_size(), 100u);
}

TEST(NdArray, IndexingMatchesRowMajorLayout) {
  FloatArray a(Shape(2, 3, 4));
  a.at(1, 2, 3) = 42.0f;
  EXPECT_EQ(a[(1 * 3 + 2) * 4 + 3], 42.0f);

  FloatArray b(Shape(3, 4));
  b.at(2, 1) = 7.0f;
  EXPECT_EQ(b[2 * 4 + 1], 7.0f);
}

TEST(NdArray, WrapExistingDataValidatesSize) {
  std::vector<double> vals(6, 1.0);
  const DoubleArray ok(Shape(2, 3), std::move(vals));
  EXPECT_EQ(ok.size(), 6u);

  std::vector<double> wrong(5, 1.0);
  EXPECT_THROW(DoubleArray(Shape(2, 3), std::move(wrong)), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
