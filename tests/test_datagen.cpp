// Tests for the synthetic dataset generators.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/stats.hpp"
#include "datagen/datasets.hpp"
#include "compressor/traversal.hpp"
#include "datagen/synth.hpp"

namespace ocelot {
namespace {

TEST(Synth, FourierFieldShapeAndDeterminism) {
  Rng rng1(1), rng2(1);
  const Shape shape(16, 24);
  const FloatArray a = fourier_field(shape, rng1, 1.5);
  const FloatArray b = fourier_field(shape, rng2, 1.5);
  EXPECT_EQ(a.shape(), shape);
  EXPECT_EQ(a.vector(), b.vector());
}

TEST(Synth, SmootherSlopeIsMorePredictable) {
  Rng rng1(2), rng2(2);
  const Shape shape(48, 48);
  FloatArray rough = fourier_field(shape, rng1, 0.5);
  FloatArray smooth = fourier_field(shape, rng2, 3.0);
  rescale(rough, 0.0, 1.0);
  rescale(smooth, 0.0, 1.0);
  // Average Lorenzo error is the predictability proxy the paper uses.
  EXPECT_GT(average_lorenzo_error(rough), average_lorenzo_error(smooth));
}

TEST(Synth, RescaleHitsTargets) {
  Rng rng(3);
  FloatArray f = fourier_field(Shape(32, 32), rng, 1.0);
  rescale(f, -5.0, 10.0);
  const ValueSummary s = summarize(f.values());
  EXPECT_NEAR(s.min, -5.0, 1e-3);
  EXPECT_NEAR(s.max, 10.0, 1e-3);
}

TEST(Synth, ClampBelowQuantileCreatesPlateau) {
  Rng rng(4);
  FloatArray f = fourier_field(Shape(40, 40), rng, 1.0);
  clamp_below_quantile(f, 0.6);
  const ValueSummary s = summarize(f.values());
  std::size_t at_floor = 0;
  for (const float v : f.values()) {
    if (static_cast<double>(v) <= s.min + 1e-6) ++at_floor;
  }
  // ~60% of points should sit at the floor level.
  EXPECT_GT(at_floor, f.size() / 2);
}

TEST(Synth, GaussianBlobsAreNonNegativeAndPeaked) {
  Rng rng(5);
  const FloatArray f = gaussian_blobs(Shape(16, 16, 16), rng, 10, 0.05, 0.2);
  const ValueSummary s = summarize(f.values());
  EXPECT_GE(s.min, 0.0);
  EXPECT_GT(s.max, s.mean * 2.0);  // clustered, not flat
}

TEST(Synth, RadialWavesRespectFront) {
  Rng rng(6);
  // A tiny front leaves most of the domain untouched (zeros).
  const FloatArray f = radial_waves(Shape(24, 24, 24), rng, 1, 4.0, 3.0);
  std::size_t zeros = 0;
  for (const float v : f.values()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, f.size() * 8 / 10);
}

TEST(Catalog, HasAllSixApplications) {
  const auto& catalog = dataset_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  EXPECT_EQ(catalog[0].name, "QMCPACK");
  EXPECT_EQ(catalog[3].name, "CESM");
  for (const auto& app : catalog) {
    EXPECT_GT(app.full_file_count, 0u);
    EXPECT_GT(app.full_bytes, 0.0);
  }
}

TEST(Datasets, FieldNamesNonEmptyForEveryApp) {
  for (const auto& app : dataset_catalog()) {
    EXPECT_FALSE(field_names(app.name).empty()) << app.name;
  }
  EXPECT_FALSE(field_names("HACC").empty());
  EXPECT_THROW((void)field_names("NoSuchApp"), NotFound);
}

TEST(Datasets, CesmFieldsMatchTableOneRanges) {
  // Table I: CLDHGH in [0, 0.92], FLDSC in [92.84, 418.24].
  const FloatArray cldhgh = generate_field("CESM", "CLDHGH", 0.05, 42);
  const ValueSummary s1 = summarize(cldhgh.values());
  EXPECT_NEAR(s1.min, 0.0, 0.01);
  EXPECT_NEAR(s1.max, 0.92, 0.01);

  const FloatArray fldsc = generate_field("CESM", "FLDSC", 0.05, 42);
  const ValueSummary s2 = summarize(fldsc.values());
  EXPECT_NEAR(s2.min, 92.84, 1.0);
  EXPECT_NEAR(s2.max, 418.24, 1.0);
}

TEST(Datasets, CesmIs2DOthersAre3D) {
  EXPECT_EQ(generate_field("CESM", "TMQ", 0.05, 1).shape().rank(), 2);
  EXPECT_EQ(generate_field("Miranda", "density", 0.05, 1).shape().rank(), 3);
  EXPECT_EQ(generate_field("Nyx", "temperature", 0.03, 1).shape().rank(), 3);
}

TEST(Datasets, DeterministicAcrossCalls) {
  const FloatArray a = generate_field("ISABEL", "Wf48", 0.05, 9);
  const FloatArray b = generate_field("ISABEL", "Wf48", 0.05, 9);
  EXPECT_EQ(a.vector(), b.vector());
  const FloatArray c = generate_field("ISABEL", "Wf48", 0.05, 10);
  EXPECT_NE(a.vector(), c.vector());
}

TEST(Datasets, RtmSnapshotsGrowWithTime) {
  // Early snapshot: wave barely expanded -> mostly flat field; late
  // snapshot: wavefronts everywhere. Nonzero fraction must grow.
  const FloatArray early = generate_rtm_snapshot(0.08, 300, 3600, 3);
  const FloatArray late = generate_rtm_snapshot(0.08, 3300, 3600, 3);
  auto spread = [](const FloatArray& f) {
    return summarize(f.values()).stddev;
  };
  EXPECT_LT(spread(early), spread(late));
}

TEST(Datasets, GenerateApplicationProducesVariants) {
  const auto fields = generate_application("Miranda", 0.04, 11, 2);
  EXPECT_EQ(fields.size(), field_names("Miranda").size() * 2);
  for (const auto& f : fields) {
    EXPECT_EQ(f.app, "Miranda");
    EXPECT_GT(f.data.size(), 0u);
  }
}

TEST(Datasets, UnknownAppThrows) {
  EXPECT_THROW((void)generate_field("Unknown", "x", 0.1, 1), NotFound);
  EXPECT_THROW((void)generate_application("Unknown", 0.1, 1), NotFound);
}

}  // namespace
}  // namespace ocelot
