// Integration tests: funcX + batch scheduler + Globus transfer working
// together in one event-driven run (the multi-site orchestration
// pattern of examples/multi_site_orchestration.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/cluster_model.hpp"
#include "faas/funcx.hpp"
#include "netsim/simulation.hpp"
#include "netsim/sites.hpp"
#include "scheduler/batch.hpp"
#include "transfer/globus.hpp"

namespace ocelot {
namespace {

struct Burst {
  double produced = -1.0;
  double granted = -1.0;
  double compressed = -1.0;
  double delivered = -1.0;
};

std::vector<Burst> run_pipeline(int n_bursts, double burst_interval,
                                int machine_nodes, int nodes_per_job,
                                std::unique_ptr<WaitModel> wait) {
  Simulation sim;
  FuncXService faas(sim);
  const std::size_t ep = faas.add_endpoint({"ep"});
  faas.register_function("compress");
  GlobusService globus(sim);
  BatchScheduler scheduler(sim, machine_nodes, std::move(wait));
  const SiteSpec& anvil = site("Anvil");
  const ComputeRates rates{30e6, 250e6};
  const LinkProfile link = route("Anvil", "Cori");

  std::vector<Burst> log(static_cast<std::size_t>(n_bursts));
  int max_nodes_in_use = 0;
  int nodes_in_use = 0;

  for (int b = 0; b < n_bursts; ++b) {
    const double t = burst_interval * b;
    sim.schedule_at(t, [&, b, t] {
      log[static_cast<std::size_t>(b)].produced = t;
      scheduler.submit(nodes_per_job, [&, b](const Allocation& alloc) {
        log[static_cast<std::size_t>(b)].granted = sim.now();
        nodes_in_use += alloc.nodes;
        max_nodes_in_use = std::max(max_nodes_in_use, nodes_in_use);
        const std::vector<double> files(16, 1e9);
        const double cp = cluster_compress_seconds(
            files, alloc.nodes, anvil.cores_per_node, rates, anvil.fs);
        faas.submit(ep, "compress", {cp, [&, b, alloc] {
          log[static_cast<std::size_t>(b)].compressed = sim.now();
          nodes_in_use -= alloc.nodes;
          scheduler.release(alloc);
          TransferRequest req{"burst", link, std::vector<double>(16, 1e8)};
          globus.submit(req, [&, b](const TransferTask&) {
            log[static_cast<std::size_t>(b)].delivered = sim.now();
          });
        }});
      });
    });
  }
  sim.run();
  EXPECT_LE(max_nodes_in_use, machine_nodes);
  return log;
}

TEST(Orchestration, EveryBurstIsDelivered) {
  const auto log =
      run_pipeline(8, 100.0, 16, 4, std::make_unique<ImmediateWait>());
  for (const Burst& b : log) {
    EXPECT_GE(b.produced, 0.0);
    EXPECT_GE(b.granted, b.produced);
    EXPECT_GT(b.compressed, b.granted);
    EXPECT_GT(b.delivered, b.compressed);
  }
}

TEST(Orchestration, CapacityPressureSerializesJobs) {
  // One job's nodes are the whole machine: bursts must queue, and
  // grants must be strictly ordered.
  const auto log =
      run_pipeline(4, 1.0, 4, 4, std::make_unique<ImmediateWait>());
  for (std::size_t b = 1; b < log.size(); ++b) {
    EXPECT_GE(log[b].granted, log[b - 1].compressed)
        << "burst " << b << " overlapped its predecessor's allocation";
  }
}

TEST(Orchestration, QueueDelayShiftsWholeChain) {
  const auto fast =
      run_pipeline(3, 50.0, 64, 4, std::make_unique<ImmediateWait>());
  const auto slow = run_pipeline(
      3, 50.0, 64, 4,
      std::make_unique<TraceWait>(std::vector<double>{200.0, 200.0, 200.0}));
  for (std::size_t b = 0; b < fast.size(); ++b) {
    EXPECT_NEAR(slow[b].delivered - fast[b].delivered, 200.0, 1.0)
        << "burst " << b;
  }
}

TEST(Orchestration, DeterministicAcrossRuns) {
  const auto a =
      run_pipeline(5, 75.0, 32, 8, std::make_unique<StochasticWait>(7));
  const auto b =
      run_pipeline(5, 75.0, 32, 8, std::make_unique<StochasticWait>(7));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].delivered, b[i].delivered);
  }
}

}  // namespace
}  // namespace ocelot
