// Tests for the CART regression tree, the forest, and the split utils.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

namespace ocelot {
namespace {

TEST(DecisionTree, FitsConstantTarget) {
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    x.add_row({rng.uniform(), rng.uniform()});
    y.push_back(7.5);
  }
  const auto tree = DecisionTreeRegressor::fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);  // no split improves a constant
  EXPECT_DOUBLE_EQ(tree.predict({0.3, 0.9}), 7.5);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double v = i / 100.0;
    x.add_row({v});
    y.push_back(v < 0.5 ? 1.0 : 5.0);
  }
  const auto tree = DecisionTreeRegressor::fit(x, y);
  EXPECT_DOUBLE_EQ(tree.predict({0.2}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict({0.8}), 5.0);
}

TEST(DecisionTree, PredictionsStayInTargetHull) {
  Rng rng(2);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.add_row({a, b});
    y.push_back(std::sin(6.0 * a) + b * b);
  }
  const double lo = *std::min_element(y.begin(), y.end());
  const double hi = *std::max_element(y.begin(), y.end());
  const auto tree = DecisionTreeRegressor::fit(x, y);
  for (int i = 0; i < 100; ++i) {
    const double p = tree.predict({rng.uniform(), rng.uniform()});
    EXPECT_GE(p, lo);
    EXPECT_LE(p, hi);
  }
}

TEST(DecisionTree, ApproximatesSmoothFunction) {
  Rng rng(3);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform();
    x.add_row({a});
    y.push_back(a * a);
  }
  TreeParams params;
  params.max_depth = 10;
  const auto tree = DecisionTreeRegressor::fit(x, y, params);
  double max_err = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double a = i / 100.0;
    max_err = std::max(max_err, std::abs(tree.predict({a}) - a * a));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(DecisionTree, DepthLimitRespected) {
  Rng rng(4);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform();
    x.add_row({a});
    y.push_back(std::sin(20.0 * a));
  }
  TreeParams params;
  params.max_depth = 3;
  const auto tree = DecisionTreeRegressor::fit(x, y, params);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, MinLeafRespected) {
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.add_row({static_cast<double>(i)});
    y.push_back(static_cast<double>(i % 2));
  }
  TreeParams params;
  params.min_samples_leaf = 8;
  const auto tree = DecisionTreeRegressor::fit(x, y, params);
  // With min leaf 8 over 20 samples, the tree can split at most twice.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTree, FeatureImportanceFindsSignal) {
  Rng rng(5);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double signal = rng.uniform();
    const double noise = rng.uniform();
    x.add_row({noise, signal});
    y.push_back(signal > 0.5 ? 10.0 : 0.0);
  }
  const auto tree = DecisionTreeRegressor::fit(x, y);
  const auto imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[1], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTree, InvalidInputsThrow) {
  FeatureMatrix x;
  std::vector<double> y;
  EXPECT_THROW((void)DecisionTreeRegressor::fit(x, y), InvalidArgument);

  x.add_row({1.0});
  y.push_back(1.0);
  const auto tree = DecisionTreeRegressor::fit(x, y);
  EXPECT_THROW((void)tree.predict({1.0, 2.0}), InvalidArgument);
}

TEST(RegressionMetrics, PerfectAndOffset) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const RegressionMetrics perfect = evaluate_regression(truth, truth);
  EXPECT_DOUBLE_EQ(perfect.rmse, 0.0);
  EXPECT_DOUBLE_EQ(perfect.r2, 1.0);

  const std::vector<double> shifted = {2.0, 3.0, 4.0};
  const RegressionMetrics off = evaluate_regression(truth, shifted);
  EXPECT_DOUBLE_EQ(off.rmse, 1.0);
  EXPECT_DOUBLE_EQ(off.mae, 1.0);
  EXPECT_LT(off.r2, 1.0);
}

TEST(RandomForest, BeatsOrMatchesSingleTreeOnNoisyData) {
  Rng rng(6);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.add_row({a, b});
    y.push_back(3.0 * a - 2.0 * b + rng.normal(0.0, 0.3));
  }
  const auto tree = DecisionTreeRegressor::fit(x, y);
  ForestParams fp;
  fp.n_trees = 15;
  const auto forest = RandomForestRegressor::fit(x, y, fp);
  EXPECT_EQ(forest.tree_count(), 15u);

  double tree_se = 0.0, forest_se = 0.0;
  Rng test_rng(7);
  for (int i = 0; i < 300; ++i) {
    const double a = test_rng.uniform(), b = test_rng.uniform();
    const double truth = 3.0 * a - 2.0 * b;
    const double tp = tree.predict({a, b});
    const double fp2 = forest.predict({a, b});
    tree_se += (tp - truth) * (tp - truth);
    forest_se += (fp2 - truth) * (fp2 - truth);
  }
  EXPECT_LT(forest_se, tree_se * 1.3);  // forest at least competitive
}

TEST(TrainTestSplit, FractionAndDisjointness) {
  const SplitIndices split = train_test_split(100, 0.3, 42);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.test.size(), 70u);
  std::vector<bool> seen(100, false);
  for (const auto i : split.train) seen[i] = true;
  for (const auto i : split.test) {
    EXPECT_FALSE(seen[i]) << "index in both sets: " << i;
  }
}

TEST(TrainTestSplit, StratifiedPerGroup) {
  // 3 groups of different sizes: the 30% rule applies per group.
  std::vector<int> groups;
  for (int i = 0; i < 50; ++i) groups.push_back(0);
  for (int i = 0; i < 30; ++i) groups.push_back(1);
  for (int i = 0; i < 20; ++i) groups.push_back(2);
  const SplitIndices split = train_test_split(100, 0.3, 7, groups);
  std::vector<int> train_per_group(3, 0);
  for (const auto i : split.train) ++train_per_group[groups[i]];
  EXPECT_EQ(train_per_group[0], 15);
  EXPECT_EQ(train_per_group[1], 9);
  EXPECT_EQ(train_per_group[2], 6);
}

TEST(TrainTestSplit, Deterministic) {
  const SplitIndices a = train_test_split(50, 0.5, 99);
  const SplitIndices b = train_test_split(50, 0.5, 99);
  EXPECT_EQ(a.train, b.train);
  const SplitIndices c = train_test_split(50, 0.5, 100);
  EXPECT_NE(a.train, c.train);
}

}  // namespace
}  // namespace ocelot
