// Unit and property tests for the canonical Huffman codec.
#include <gtest/gtest.h>

#include <vector>

#include "codec/huffman.hpp"
#include "common/rng.hpp"

namespace ocelot {
namespace {

/// Sink-form encode into a fresh buffer (the Bytes-returning overload
/// is deprecated; tests drive the streaming entry points directly).
Bytes encode(const std::vector<std::uint32_t>& input) {
  Bytes out;
  ByteSink sink(out);
  huffman_encode(input, sink);
  return out;
}

std::vector<std::uint32_t> decode(const Bytes& encoded) {
  std::vector<std::uint32_t> out;
  huffman_decode_into(encoded, out);
  return out;
}

std::vector<std::uint32_t> decode_of(const std::vector<std::uint32_t>& input) {
  return decode(encode(input));
}

TEST(Huffman, EmptyStream) {
  const std::vector<std::uint32_t> empty;
  EXPECT_EQ(decode_of(empty), empty);
}

TEST(Huffman, SingleSymbolStream) {
  const std::vector<std::uint32_t> input(1000, 42);
  EXPECT_EQ(decode_of(input), input);
  // Degenerate one-symbol code should be ~constant size.
  EXPECT_LT(encode(input).size(), 32u);
}

TEST(Huffman, TwoSymbolRoundTrip) {
  std::vector<std::uint32_t> input;
  for (int i = 0; i < 500; ++i) {
    input.push_back(1);
    input.push_back(2);
  }
  EXPECT_EQ(decode_of(input), input);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 99% zero bin: encoded size should be far below 4 bytes/symbol.
  Rng rng(1);
  std::vector<std::uint32_t> input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(rng.chance(0.99) ? 32768
                                     : static_cast<std::uint32_t>(
                                           rng.uniform_int(32700, 32800)));
  }
  const Bytes encoded = encode(input);
  EXPECT_EQ(decode(encoded), input);
  EXPECT_LT(encoded.size(), input.size());  // < 1 byte per symbol
}

TEST(Huffman, WideAlphabetRoundTrip) {
  Rng rng(2);
  std::vector<std::uint32_t> input;
  for (int i = 0; i < 50000; ++i) {
    input.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 65535)));
  }
  EXPECT_EQ(decode_of(input), input);
}

TEST(Huffman, LargeSymbolValues) {
  const std::vector<std::uint32_t> input = {0xFFFFFFFF, 0, 0xFFFFFFFF,
                                            123456789, 0};
  EXPECT_EQ(decode_of(input), input);
}

TEST(Huffman, CodeLengthsAreOptimalOrder) {
  // More frequent symbols must not get longer codes.
  SymbolCounts counts{{1, 1000}, {2, 100}, {3, 10}, {4, 1}};
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  EXPECT_LE(code.length(1), code.length(2));
  EXPECT_LE(code.length(2), code.length(3));
  EXPECT_LE(code.length(3), code.length(4));
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(3);
  SymbolCounts counts;
  for (int s = 0; s < 300; ++s) {
    counts[static_cast<std::uint32_t>(s)] =
        static_cast<std::uint64_t>(rng.uniform_int(1, 100000));
  }
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  double kraft = 0.0;
  for (const auto& [sym, len] : code.lengths()) {
    kraft += std::pow(2.0, -len);
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);  // complete prefix code
}

TEST(Huffman, EncodedBitsMatchesStreamSize) {
  Rng rng(4);
  std::vector<std::uint32_t> input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 15)));
  }
  const SymbolCounts counts = count_symbols(input);
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  const std::uint64_t bits = code.encoded_bits(counts);
  const Bytes encoded = encode(input);
  // Encoded stream = table + ceil(bits/8) payload (+ small framing).
  EXPECT_GE(encoded.size() * 8, bits);
  EXPECT_LT(encoded.size(), bits / 8 + 400);
}

TEST(Huffman, CorruptStreamThrows) {
  std::vector<std::uint32_t> input(100, 7);
  input[50] = 9;
  Bytes encoded = encode(input);
  encoded.resize(encoded.size() / 2);  // truncate payload
  EXPECT_THROW((void)decode(encoded), CorruptStream);
}

TEST(Huffman, EmptyHistogramThrows) {
  EXPECT_THROW((void)HuffmanCode::from_counts({}), InvalidArgument);
}

/// Property sweep: round-trip across alphabet sizes and skew levels.
class HuffmanSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HuffmanSweep, RoundTrip) {
  const auto [alphabet, skew] = GetParam();
  Rng rng(static_cast<std::uint64_t>(alphabet * 1000 + skew * 100));
  std::vector<std::uint32_t> input;
  input.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish skew: symbol ~ floor(alphabet * u^skew).
    const double u = rng.uniform();
    const auto s = static_cast<std::uint32_t>(
        static_cast<double>(alphabet - 1) * std::pow(u, skew));
    input.push_back(s);
  }
  EXPECT_EQ(decode_of(input), input);
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndSkews, HuffmanSweep,
    ::testing::Combine(::testing::Values(2, 17, 256, 4096),
                       ::testing::Values(1.0, 3.0, 8.0)));

}  // namespace
}  // namespace ocelot
