// Fleet-scale simulation tests: deterministic campaign-set generation,
// thousand-campaign fingerprint stability, cross-mode equivalence
// (calendar vs heap queue, incremental vs reference fair share), and
// the LinkFlap failure-injection hook.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/campaigns.hpp"
#include "orchestrator/orchestrator.hpp"
#include "sim/tuning.hpp"

namespace ocelot {
namespace {

/// Restores the global reference-fair-share flag on scope exit so a
/// failing test cannot leak mode state into later tests.
class ReferenceModeGuard {
 public:
  explicit ReferenceModeGuard(bool value) : saved_(sim::reference_fair_share()) {
    sim::set_reference_fair_share(value);
  }
  ~ReferenceModeGuard() { sim::set_reference_fair_share(saved_); }

 private:
  bool saved_;
};

OrchestratorReport run_fleet(std::size_t count, std::uint64_t seed,
                             sim::QueueKind kind) {
  CampaignSetConfig config;
  config.count = count;
  config.seed = seed;
  OrchestratorOptions options = fleet_pool_options();
  options.queue_kind = kind;
  Orchestrator orch(std::move(options));
  for (CampaignSpec& spec : generate_campaign_set(config)) {
    orch.add_campaign(std::move(spec));
  }
  return orch.run();
}

TEST(CampaignGenerator, SameSeedProducesIdenticalSpecs) {
  CampaignSetConfig config;
  config.count = 200;
  config.seed = 7;
  config.profile = "mixed";
  const auto a = generate_campaign_set(config);
  const auto b = generate_campaign_set(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].mode, b[i].mode);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].config.src, b[i].config.src);
    EXPECT_EQ(a[i].config.dst, b[i].config.dst);
    EXPECT_EQ(a[i].config.compression_ratio, b[i].config.compression_ratio);
    EXPECT_EQ(a[i].inventory.raw_bytes, b[i].inventory.raw_bytes);
  }
}

TEST(CampaignGenerator, DifferentSeedsDiverge) {
  CampaignSetConfig config;
  config.count = 50;
  config.seed = 1;
  const auto a = generate_campaign_set(config);
  config.seed = 2;
  const auto b = generate_campaign_set(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].submit_time != b[i].submit_time ||
        a[i].config.compression_ratio != b[i].config.compression_ratio) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(CampaignGenerator, CorridorProfilePinsTheRoute) {
  CampaignSetConfig config;
  config.count = 100;
  const auto specs = generate_campaign_set(config);
  ASSERT_EQ(specs.size(), 100u);
  for (const CampaignSpec& spec : specs) {
    EXPECT_EQ(spec.config.src, "Anvil");
    EXPECT_EQ(spec.config.dst, "Cori");
    EXPECT_FALSE(spec.inventory.raw_bytes.empty());
    EXPECT_GE(spec.config.compression_ratio, 4.0);
    EXPECT_LE(spec.config.compression_ratio, 16.0);
    EXPECT_GE(spec.submit_time, 0.0);
    EXPECT_LT(spec.submit_time, config.arrival_window_s);
  }
}

TEST(FleetSim, ThousandCampaignsAreDeterministic) {
  const auto first = run_fleet(1000, 42, sim::QueueKind::kCalendar);
  const auto second = run_fleet(1000, 42, sim::QueueKind::kCalendar);
  ASSERT_EQ(first.campaigns.size(), 1000u);
  EXPECT_EQ(fingerprint(first), fingerprint(second));
  EXPECT_EQ(to_string(first), to_string(second));
}

TEST(FleetSim, CalendarQueueMatchesHeapAtScale) {
  const auto calendar = run_fleet(300, 9, sim::QueueKind::kCalendar);
  const auto heap = run_fleet(300, 9, sim::QueueKind::kHeap);
  EXPECT_EQ(to_string(calendar), to_string(heap));
}

TEST(FleetSim, IncrementalFairShareMatchesReference) {
  const auto incremental = run_fleet(300, 13, sim::QueueKind::kCalendar);
  std::string reference_rendering;
  {
    ReferenceModeGuard guard(true);
    reference_rendering = to_string(run_fleet(300, 13, sim::QueueKind::kHeap));
  }
  EXPECT_EQ(to_string(incremental), reference_rendering);
}

TEST(FleetSim, LinkFlapSlowsTransfersDeterministically) {
  CampaignSetConfig config;
  config.count = 20;
  config.seed = 3;
  config.arrival_window_s = 10.0;

  const auto run_once = [&config](bool flap) {
    Orchestrator orch(fleet_pool_options());
    for (CampaignSpec& spec : generate_campaign_set(config)) {
      orch.add_campaign(std::move(spec));
    }
    if (flap) {
      sim::LinkFlapConfig flap_config;
      flap_config.seed = 99;
      flap_config.mean_up_seconds = 20.0;
      flap_config.mean_down_seconds = 20.0;
      flap_config.degraded_fraction = 0.05;
      orch.add_link_flap("Anvil", "Cori", flap_config);
    }
    return orch.run();
  };

  const auto baseline = run_once(false);
  const auto flapped = run_once(true);
  const auto flapped_again = run_once(true);

  // Severe, frequent degradation of the only WAN corridor must
  // lengthen the fleet makespan, and do so reproducibly.
  EXPECT_GT(flapped.makespan, baseline.makespan);
  EXPECT_EQ(to_string(flapped), to_string(flapped_again));
  EXPECT_EQ(fingerprint(flapped), fingerprint(flapped_again));
}

TEST(FleetSim, LinkFlapInjectorReportsTransitions) {
  CampaignSetConfig config;
  config.count = 10;
  config.seed = 5;
  config.arrival_window_s = 5.0;
  Orchestrator orch(fleet_pool_options());
  for (CampaignSpec& spec : generate_campaign_set(config)) {
    orch.add_campaign(std::move(spec));
  }
  sim::LinkFlapConfig flap_config;
  flap_config.seed = 7;
  flap_config.mean_up_seconds = 10.0;
  flap_config.mean_down_seconds = 5.0;
  flap_config.degraded_fraction = 0.25;
  orch.add_link_flap("Anvil", "Cori", flap_config);
  const auto report = orch.run();
  EXPECT_EQ(report.campaigns.size(), 10u);
  ASSERT_EQ(orch.link_flaps().size(), 1u);
  EXPECT_GT(orch.link_flaps()[0]->flaps(), 0u);
  // The injector must have shut itself down so the queue drained.
  EXPECT_FALSE(orch.link_flaps()[0]->degraded());
}

}  // namespace
}  // namespace ocelot
