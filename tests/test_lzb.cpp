// Unit and property tests for the LZ77-style byte codec.
#include <gtest/gtest.h>

#include <string>

#include "codec/lzb.hpp"
#include "common/rng.hpp"

namespace ocelot {
namespace {

/// Sink-form compress into a fresh buffer (the Bytes-returning
/// overload is deprecated; tests drive the streaming entry points).
Bytes pack(const Bytes& input) {
  Bytes out;
  ByteSink sink(out);
  lzb_compress(input, sink);
  return out;
}

Bytes unpack(const Bytes& packed) {
  Bytes out;
  lzb_decompress_into(packed, out);
  return out;
}

Bytes roundtrip(const Bytes& input) { return unpack(pack(input)); }

TEST(Lzb, EmptyInput) {
  EXPECT_TRUE(roundtrip({}).empty());
}

TEST(Lzb, TinyInputsBelowMinMatch) {
  for (std::size_t n = 1; n <= 5; ++n) {
    Bytes input;
    for (std::size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<std::uint8_t>(i * 17));
    }
    EXPECT_EQ(roundtrip(input), input) << "n=" << n;
  }
}

TEST(Lzb, LongRunCompressesHard) {
  const Bytes input(100000, 0xAB);
  const Bytes packed = pack(input);
  EXPECT_EQ(unpack(packed), input);
  EXPECT_LT(packed.size(), input.size() / 100);
}

TEST(Lzb, RepeatedPhrase) {
  const std::string phrase = "scientific data transfer over WAN! ";
  Bytes input;
  for (int i = 0; i < 500; ++i) {
    input.insert(input.end(), phrase.begin(), phrase.end());
  }
  const Bytes packed = pack(input);
  EXPECT_EQ(unpack(packed), input);
  EXPECT_LT(packed.size(), input.size() / 5);
}

TEST(Lzb, OverlappingMatchReplication) {
  // "abcabcabc..." forces matches with offset < length.
  Bytes input;
  for (int i = 0; i < 3000; ++i) {
    input.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
  }
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lzb, IncompressibleDataSurvives) {
  Rng rng(9);
  Bytes input;
  for (int i = 0; i < 50000; ++i) {
    input.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  const Bytes packed = pack(input);
  EXPECT_EQ(unpack(packed), input);
  // Worst-case expansion stays modest.
  EXPECT_LT(packed.size(), input.size() + input.size() / 100 + 64);
}

TEST(Lzb, MatchesBeyondWindowAreNotUsed) {
  // Same 8-byte phrase at the start and 100 KiB later (past the 64 KiB
  // offset limit); output must still round-trip.
  Bytes input(120000, 0);
  Rng rng(10);
  for (auto& b : input) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  for (int i = 0; i < 8; ++i) {
    input[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    input[100000 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lzb, CorruptOffsetThrows) {
  // Craft a stream whose match references before the start.
  BytesWriter w;
  w.put_varint(10);              // claims 10 raw bytes
  w.put<std::uint8_t>(0x12);     // 1 literal, match len 2+4
  w.put<std::uint8_t>('x');
  w.put<std::uint8_t>(0xFF);     // offset 0xFFFF > produced bytes
  w.put<std::uint8_t>(0xFF);
  EXPECT_THROW((void)unpack(w.bytes()), CorruptStream);
}

TEST(Lzb, TruncatedStreamThrows) {
  const Bytes input(1000, 7);
  Bytes packed = pack(input);
  packed.resize(packed.size() - 2);
  EXPECT_THROW((void)unpack(packed), CorruptStream);
}

/// Property sweep over sizes and repetitiveness.
class LzbSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzbSweep, RoundTrip) {
  const auto [size, period] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size + period));
  Bytes input;
  input.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    if (period > 0 && i >= period) {
      // Mostly repeat the previous period with occasional mutations.
      const std::uint8_t prev = input[static_cast<std::size_t>(i - period)];
      input.push_back(rng.chance(0.95)
                          ? prev
                          : static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    } else {
      input.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  EXPECT_EQ(roundtrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPeriods, LzbSweep,
    ::testing::Combine(::testing::Values(64, 4096, 262144),
                       ::testing::Values(0, 5, 64, 1024)));

}  // namespace
}  // namespace ocelot
