// Tests for the file store, field file format, grouped archives, and
// OCB1 container robustness against truncation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "io/block_container.hpp"
#include "io/dataset_file.hpp"
#include "io/file_store.hpp"
#include "io/group_archive.hpp"

namespace ocelot {
namespace {

TEST(FileStore, WriteReadListRemove) {
  FileStore store;
  store.write("a/x.dat", {1, 2, 3});
  store.write("a/y.dat", {4});
  store.write("b/z.dat", {5, 6});

  EXPECT_TRUE(store.exists("a/x.dat"));
  EXPECT_EQ(store.read("a/x.dat"), (Bytes{1, 2, 3}));
  EXPECT_EQ(store.size("b/z.dat"), 2u);
  EXPECT_EQ(store.list("a/"), (std::vector<std::string>{"a/x.dat", "a/y.dat"}));
  EXPECT_EQ(store.file_count(), 3u);
  EXPECT_DOUBLE_EQ(store.total_bytes(), 6.0);

  EXPECT_TRUE(store.remove("a/y.dat"));
  EXPECT_FALSE(store.remove("a/y.dat"));
  EXPECT_THROW((void)store.read("a/y.dat"), NotFound);
}

TEST(FileStore, OverwriteReplaces) {
  FileStore store;
  store.write("f", {1});
  store.write("f", {2, 3});
  EXPECT_EQ(store.read("f"), (Bytes{2, 3}));
  EXPECT_EQ(store.file_count(), 1u);
}

TEST(DatasetFile, RoundTripAllRanks) {
  Rng rng(1);
  for (const Shape& shape : {Shape(17), Shape(5, 9), Shape(3, 4, 5)}) {
    FloatArray data(shape);
    for (float& v : data.values()) {
      v = static_cast<float>(rng.normal(0.0, 10.0));
    }
    const Bytes blob = save_field("CESM/TMQ", data);
    const LoadedField loaded = load_field(blob);
    EXPECT_EQ(loaded.name, "CESM/TMQ");
    EXPECT_EQ(loaded.data.shape(), shape);
    EXPECT_EQ(loaded.data.vector(), data.vector());
  }
}

TEST(DatasetFile, CorruptInputThrows) {
  const FloatArray data(Shape(4, 4));
  Bytes blob = save_field("x", data);
  blob[0] = 'Z';
  EXPECT_THROW((void)load_field(blob), CorruptStream);

  Bytes truncated = save_field("x", data);
  truncated.resize(truncated.size() - 8);
  EXPECT_THROW((void)load_field(truncated), CorruptStream);
}

TEST(GroupArchive, RoundTripPreservesMembersBitExactly) {
  Rng rng(2);
  std::vector<GroupMember> members;
  for (int i = 0; i < 20; ++i) {
    GroupMember m;
    m.name = "file-" + std::to_string(i) + ".sz";
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    for (std::size_t b = 0; b < n; ++b) {
      m.data.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    members.push_back(std::move(m));
  }
  const Bytes archive = build_group(members);
  const auto parsed = parse_group(archive);
  ASSERT_EQ(parsed.size(), members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(parsed[i].name, members[i].name);
    EXPECT_EQ(parsed[i].data, members[i].data);
  }
}

TEST(GroupArchive, IndexHasCorrectOffsetsAndSizes) {
  std::vector<GroupMember> members = {
      {"a", {1, 2, 3}}, {"b", {}}, {"c", {9, 9}}};
  const Bytes archive = build_group(members);
  const auto index = read_group_index(archive);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index[0].size, 3u);
  EXPECT_EQ(index[1].size, 0u);
  EXPECT_EQ(index[2].size, 2u);
  EXPECT_EQ(index[1].offset, index[0].offset + 3);
  // Body is the concatenation of payloads.
  EXPECT_EQ(archive[index[0].offset], 1);
  EXPECT_EQ(archive[index[2].offset + 1], 9);
}

TEST(GroupArchive, HeaderSizeIsModest) {
  // Grouping overhead must stay tiny relative to payloads.
  std::vector<GroupMember> members;
  for (int i = 0; i < 100; ++i) {
    std::string name = "f";
    name += std::to_string(i);
    members.push_back({std::move(name), Bytes(10000, 1)});
  }
  const Bytes archive = build_group(members);
  EXPECT_LT(archive.size(), 100u * 10000u + 100u * 32u);
}

TEST(GroupArchive, MalformedArchiveThrows) {
  EXPECT_THROW((void)build_group({}), InvalidArgument);
  Bytes bad = {1, 2, 3, 4, 5};
  EXPECT_THROW((void)parse_group(bad), CorruptStream);

  std::vector<GroupMember> members = {{"a", {1, 2, 3}}};
  Bytes truncated = build_group(members);
  truncated.pop_back();
  EXPECT_THROW((void)parse_group(truncated), CorruptStream);
}

TEST(GroupMetadata, RenderParseRoundTrip) {
  const std::vector<std::vector<std::string>> groups = {
      {"cesm/TMQ.sz", "cesm/PSL.sz"},
      {"cesm/TS.sz"},
  };
  const std::string text = render_group_metadata(groups, "world-size=2");
  const auto parsed = parse_group_metadata(text);
  EXPECT_EQ(parsed, groups);
  EXPECT_NE(text.find("strategy: world-size=2"), std::string::npos);
}

TEST(GroupMetadata, EmptyTextThrows) {
  EXPECT_THROW((void)parse_group_metadata("no groups here"), CorruptStream);
}

TEST(BlockContainer, EveryTruncationEitherParsesOrThrows) {
  // Fuzz-style sweep: for a valid OCB1 container, every strict prefix
  // must be rejected with CorruptStream before any block read — no
  // other exception type, no UB, never a "successful" partial parse
  // (the body-size check makes full length the only valid length).
  Rng rng(17);
  std::vector<Bytes> payloads;
  for (int b = 0; b < 5; ++b) {
    Bytes payload;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 300));
    for (std::size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    payloads.push_back(std::move(payload));
  }
  const Bytes container = build_block_container(Shape(10, 3), 2, payloads);

  ASSERT_NO_THROW((void)read_block_index(container));
  for (std::size_t len = 0; len < container.size(); ++len) {
    const std::span<const std::uint8_t> prefix(container.data(), len);
    EXPECT_THROW((void)read_block_index(prefix), CorruptStream)
        << "prefix length " << len;
  }
}

TEST(BlockContainer, TruncatedIndexEntryRejectedBeforeAnyBlockRead) {
  // Cut inside the per-block index (after the varint length of block 0
  // but before its CRC): the reader must throw while parsing the
  // index, never hand out a payload view.
  const Bytes container =
      build_block_container(Shape(4), 2, {Bytes{1, 2, 3}, Bytes{4, 5}});
  const BlockContainerInfo info = read_block_index(container);
  ASSERT_EQ(info.blocks.size(), 2u);
  // info.blocks[0].offset is where payloads start; the index occupies
  // everything before it. Truncate mid-index.
  const std::size_t mid_index = info.blocks[0].offset - 6;
  const std::span<const std::uint8_t> cut(container.data(), mid_index);
  EXPECT_THROW((void)read_block_index(cut), CorruptStream);
}

}  // namespace
}  // namespace ocelot
