// Tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/simulation.hpp"

namespace ocelot {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, TiesBreakBySubmissionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, CallbacksCanScheduleMoreEvents) {
  Simulation sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_in(1.0, step);
  };
  sim.schedule_in(1.0, step);
  const std::size_t executed = sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(executed, 5u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_in(-0.5, [] {}), InvalidArgument);
}

TEST(Simulation, ClockIsMonotone) {
  Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(static_cast<double>(100 - i), [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 100u);
}

}  // namespace
}  // namespace ocelot
