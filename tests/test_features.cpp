// Tests for the three feature categories feeding the quality model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "features/features.hpp"

namespace ocelot {
namespace {

FloatArray constant_field(float value) {
  FloatArray data(Shape(32, 32));
  for (float& v : data.values()) v = value;
  return data;
}

FloatArray noisy_field(std::uint64_t seed, double amplitude) {
  FloatArray data(Shape(32, 32));
  Rng rng(seed);
  for (float& v : data.values()) {
    v = static_cast<float>(rng.uniform(0.0, amplitude));
  }
  return data;
}

FloatArray smooth_field(std::uint64_t seed) {
  FloatArray data(Shape(32, 32));
  Rng rng(seed);
  const double phase = rng.uniform(0.0, 6.28);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      data.at(i, j) = static_cast<float>(
          std::sin(0.2 * static_cast<double>(i) + phase) +
          std::cos(0.15 * static_cast<double>(j)));
    }
  }
  return data;
}

TEST(DataFeatures, BasicsMatchSummary) {
  FloatArray data = constant_field(0.0f);
  data[0] = -2.0f;
  data[1] = 6.0f;
  const DataFeatures f = extract_data_features(data);
  EXPECT_FLOAT_EQ(static_cast<float>(f.min), -2.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(f.max), 6.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(f.value_range), 8.0f);
}

TEST(DataFeatures, EntropyOrdersByChaos) {
  const DataFeatures smooth = extract_data_features(smooth_field(1));
  const DataFeatures noisy = extract_data_features(noisy_field(2, 1000.0));
  EXPECT_GT(noisy.byte_entropy, smooth.byte_entropy * 0.9);
  EXPECT_GT(noisy.avg_lorenzo_error, smooth.avg_lorenzo_error);
}

TEST(CompressorFeatures, ConstantFieldIsPerfectlyPredictable) {
  // All predictions hit except the zero-neighbor corner point, whose
  // residual is the value itself.
  const FloatArray data = constant_field(5.0f);
  const CompressorFeatures f = extract_compressor_features(data, 1e-3, 1);
  EXPECT_GT(f.p0, 0.99);
  EXPECT_LT(f.quant_entropy, 0.1);
  EXPECT_GT(f.rrle, 100.0);  // run-length estimator explodes
}

TEST(CompressorFeatures, NoisyFieldHasLowP0AndHighEntropy) {
  // Noise of ~1.0 against a bin width of 2e-3 spreads residuals over
  // hundreds of bins within the quantizer range.
  const FloatArray data = noisy_field(3, 1.0);
  const CompressorFeatures f = extract_compressor_features(data, 1e-3, 1);
  EXPECT_LT(f.p0, 0.1);
  EXPECT_GT(f.quant_entropy, 4.0);
}

TEST(CompressorFeatures, OutOfRangeResidualsCollapseToUnpredictable) {
  // Huge values against a tiny bound overflow the quantizer: the bins
  // collapse to the unpredictable marker, and p0 goes to ~0.
  const FloatArray data = noisy_field(4, 1000.0);
  const CompressorFeatures f = extract_compressor_features(data, 1e-6, 1);
  EXPECT_LT(f.p0, 0.01);
  EXPECT_LT(f.quant_entropy, 1.0);  // one dominant marker symbol
}

TEST(CompressorFeatures, P0RisesWithErrorBound) {
  // Larger bounds swallow more residuals into the zero bin.
  const FloatArray data = smooth_field(4);
  const CompressorFeatures tight =
      extract_compressor_features(data, 1e-6, 1);
  const CompressorFeatures loose =
      extract_compressor_features(data, 1e-1, 1);
  EXPECT_GE(loose.p0, tight.p0);
  EXPECT_LE(loose.quant_entropy, tight.quant_entropy + 1e-9);
}

TEST(CompressorFeatures, RrleFormulaIsConsistent) {
  const FloatArray data = smooth_field(5);
  const CompressorFeatures f = extract_compressor_features(data, 1e-3, 1);
  if (f.big_p0 > 0.0 && f.big_p0 < 1.0) {
    const double denom = (1.0 - f.p0) * f.big_p0 + (1.0 - f.big_p0);
    EXPECT_NEAR(f.rrle, 1.0 / denom, 1e-9);
  }
}

TEST(CompressorFeatures, SamplingApproximatesFullScan) {
  const FloatArray data = smooth_field(6);
  const CompressorFeatures full = extract_compressor_features(data, 1e-3, 1);
  const CompressorFeatures sampled =
      extract_compressor_features(data, 1e-3, 10);
  EXPECT_NEAR(sampled.p0, full.p0, 0.15);
  EXPECT_NEAR(sampled.quant_entropy, full.quant_entropy, 1.0);
  EXPECT_EQ(sampled.sampled_points, (data.size() + 9) / 10);
}

TEST(FeatureVector, AssemblyLayout) {
  const FloatArray data = smooth_field(7);
  CompressionConfig config;
  config.backend = "sz2";
  config.eb = 1e-3;
  const FeatureVector v = make_feature_vector(data, config, 10);
  EXPECT_EQ(kFeatureCount, 11u);
  EXPECT_NEAR(v[0], -3.0, 1e-9);                       // log10 eb
  EXPECT_DOUBLE_EQ(v[1], 1.0);  // sz2's backend wire id
  EXPECT_LE(v[2], v[3]);                               // min <= max
  EXPECT_NEAR(v[4], v[3] - v[2], 1e-6);                // range
  EXPECT_GE(v[7], 0.0);                                // p0 in [0,1]
  EXPECT_LE(v[7], 1.0);
  EXPECT_GE(v[8], 0.0);                                // P0 in [0,1]
  EXPECT_LE(v[8], 1.0);
}

TEST(FeatureVector, InvalidArgsThrow) {
  const FloatArray data = smooth_field(8);
  EXPECT_THROW((void)extract_compressor_features(data, 0.0, 1),
               InvalidArgument);
  EXPECT_THROW((void)extract_compressor_features(data, 1e-3, 0),
               InvalidArgument);
}

/// p0 must be monotone (within tolerance) in the error bound across
/// sampling strides — the relationship the predictor learns from.
class P0Monotonicity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P0Monotonicity, AcrossBounds) {
  const std::size_t stride = GetParam();
  const FloatArray data = smooth_field(9);
  double prev_p0 = -1.0;
  for (const double eb : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const CompressorFeatures f =
        extract_compressor_features(data, eb, stride);
    EXPECT_GE(f.p0, prev_p0 - 0.05) << "eb=" << eb;
    prev_p0 = f.p0;
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, P0Monotonicity,
                         ::testing::Values(1u, 7u, 50u));

}  // namespace
}  // namespace ocelot
