// Tests for the chunked streaming codec (core/stream_codec): round
// trips through in-memory pipes, byte equivalence with the
// block-parallel codec, and malformed-stream rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/compressor.hpp"
#include "core/stream_codec.hpp"
#include "exec/parallel_codec.hpp"

namespace ocelot {
namespace {

FloatArray walk_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  double walk = 0.0;
  for (float& v : data.values()) {
    walk += rng.normal(0.0, 0.05);
    v = static_cast<float>(walk);
  }
  return data;
}

std::stringstream raw_stream(const FloatArray& field) {
  std::stringstream s;
  s.write(reinterpret_cast<const char*>(field.values().data()),
          static_cast<std::streamsize>(field.byte_size()));
  return s;
}

StreamCompressConfig abs_config(std::vector<std::size_t> slab_dims,
                                std::size_t block_slabs) {
  StreamCompressConfig config;
  config.compression.eb_mode = EbMode::kAbsolute;
  config.compression.eb = 1e-3;
  config.slab_dims = std::move(slab_dims);
  config.block_slabs = block_slabs;
  return config;
}

TEST(StreamCodec, RoundTripsEveryRankWithinBound) {
  struct Case {
    Shape shape;
    std::vector<std::size_t> slab_dims;
  };
  const Case cases[] = {
      {Shape(37), {}},
      {Shape(19, 6), {6}},
      {Shape(11, 5, 4), {5, 4}},
  };
  for (const Case& c : cases) {
    const FloatArray field = walk_field(c.shape, 3 + c.shape.rank());
    std::stringstream raw = raw_stream(field);
    std::stringstream compressed;
    const StreamStats cs =
        stream_compress(raw, compressed, abs_config(c.slab_dims, 4));
    EXPECT_EQ(cs.shape, c.shape);
    EXPECT_EQ(cs.raw_bytes, field.byte_size());
    EXPECT_GT(cs.blocks, 1u);

    std::stringstream restored;
    const StreamStats ds = stream_decompress(compressed, restored);
    EXPECT_EQ(ds.shape, c.shape);
    EXPECT_EQ(ds.blocks, cs.blocks);
    EXPECT_EQ(ds.raw_bytes, field.byte_size());

    std::vector<float> recon(field.size());
    restored.read(reinterpret_cast<char*>(recon.data()),
                  static_cast<std::streamsize>(field.byte_size()));
    ASSERT_EQ(restored.gcount(),
              static_cast<std::streamsize>(field.byte_size()));
    EXPECT_LE(max_abs_error<float>(field.values(), recon), 1e-3)
        << "rank " << c.shape.rank();
  }
}

TEST(StreamCodec, BytesMatchBlockParallelCodecAtAbsoluteBound) {
  // Same chunking, same bound resolution: the streamed container must
  // be byte-identical to block_compress over the resident field.
  const FloatArray field = walk_field(Shape(18, 7, 5), 23);
  const std::vector<std::size_t> slab_dims = {7, 5};

  std::stringstream raw = raw_stream(field);
  std::stringstream compressed;
  const StreamCompressConfig config = abs_config(slab_dims, 4);
  (void)stream_compress(raw, compressed, config);

  const BlockCompressResult blocked =
      block_compress(field, config.compression, 2, 4);
  const std::string streamed = compressed.str();
  ASSERT_EQ(streamed.size(), blocked.container.size());
  EXPECT_TRUE(std::equal(blocked.container.begin(), blocked.container.end(),
                         reinterpret_cast<const std::uint8_t*>(
                             streamed.data())));
}

TEST(StreamCodec, DecompressesBareBlobs) {
  const FloatArray field = walk_field(Shape(9, 8), 31);
  CompressionConfig config;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 1e-3;
  const Bytes blob = compress(field, config);

  std::stringstream in;
  in.write(reinterpret_cast<const char*>(blob.data()),
           static_cast<std::streamsize>(blob.size()));
  std::stringstream out;
  const StreamStats stats = stream_decompress(in, out);
  EXPECT_EQ(stats.shape, field.shape());
  EXPECT_EQ(stats.blocks, 1u);

  std::vector<float> recon(field.size());
  out.read(reinterpret_cast<char*>(recon.data()),
           static_cast<std::streamsize>(field.byte_size()));
  EXPECT_LE(max_abs_error<float>(field.values(), recon), 1e-3);
}

TEST(StreamCodec, MalformedInputRejected) {
  // Empty input.
  {
    std::stringstream in;
    std::stringstream out;
    EXPECT_THROW((void)stream_compress(in, out, abs_config({4}, 2)),
                 InvalidArgument);
  }
  // Trailing partial slab: 3 floats do not fill a 4-wide slab.
  {
    std::stringstream in;
    const float vals[3] = {1.f, 2.f, 3.f};
    in.write(reinterpret_cast<const char*>(vals), sizeof(vals));
    std::stringstream out;
    EXPECT_THROW((void)stream_compress(in, out, abs_config({4}, 2)),
                 CorruptStream);
  }
  // Input ends mid-float.
  {
    std::stringstream in(std::string("\x01\x02\x03", 3));
    std::stringstream out;
    EXPECT_THROW((void)stream_compress(in, out, abs_config({}, 8)),
                 CorruptStream);
  }
  // Slab rank too deep for the 3-D shape limit.
  {
    std::stringstream in;
    std::stringstream out;
    EXPECT_THROW((void)stream_compress(in, out, abs_config({2, 2, 2}, 2)),
                 InvalidArgument);
  }
  // Garbage into the decompressor.
  {
    std::stringstream in("this is not a container");
    std::stringstream out;
    EXPECT_THROW((void)stream_decompress(in, out), CorruptStream);
  }
  // A truncated container.
  {
    const FloatArray field = walk_field(Shape(12, 4), 41);
    std::stringstream raw = raw_stream(field);
    std::stringstream compressed;
    (void)stream_compress(raw, compressed, abs_config({4}, 4));
    std::string bytes = compressed.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream in(bytes);
    std::stringstream out;
    EXPECT_THROW((void)stream_decompress(in, out), CorruptStream);
  }
}

TEST(StreamCodec, RelativeBoundResolvesPerChunk) {
  // With a value-range-relative bound, each chunk honors eb x its own
  // range (the full field is never resident).
  const FloatArray field = walk_field(Shape(16, 8), 47);
  StreamCompressConfig config;
  config.compression.eb_mode = EbMode::kValueRangeRel;
  config.compression.eb = 1e-3;
  config.slab_dims = {8};
  config.block_slabs = 4;

  std::stringstream raw = raw_stream(field);
  std::stringstream compressed;
  (void)stream_compress(raw, compressed, config);
  std::stringstream restored;
  (void)stream_decompress(compressed, restored);

  std::vector<float> recon(field.size());
  restored.read(reinterpret_cast<char*>(recon.data()),
                static_cast<std::streamsize>(field.byte_size()));
  // Worst case: the largest per-chunk range.
  double worst_eb = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    FloatArray chunk(Shape(4, 8));
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk.values()[i] = field.values()[c * chunk.size() + i];
    }
    worst_eb = std::max(worst_eb, resolve_abs_eb(chunk, config.compression));
  }
  EXPECT_LE(max_abs_error<float>(field.values(), recon), worst_eb + 1e-12);
}

}  // namespace
}  // namespace ocelot
