// Round-trip property tests for the codec layer: every encoder must
// invert exactly over random, constant and adversarial inputs,
// including the empty and 1-byte edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/huffman.hpp"
#include "codec/lossless.hpp"
#include "codec/lzb.hpp"
#include "codec/rle.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace ocelot {
namespace {

std::vector<Bytes> byte_corpus() {
  std::vector<Bytes> corpus;
  corpus.push_back({});                  // empty
  corpus.push_back({0x00});              // single zero byte
  corpus.push_back({0xFF});              // single max byte
  corpus.push_back(Bytes(4096, 0x7A));   // long constant run
  corpus.push_back(Bytes(257, 0x00));    // run crossing a length byte

  Bytes alternating(2048);
  for (std::size_t i = 0; i < alternating.size(); ++i) {
    alternating[i] = (i % 2 == 0) ? 0xAA : 0x55;  // worst case for RLE
  }
  corpus.push_back(std::move(alternating));

  Bytes all_values(256);
  for (std::size_t i = 0; i < 256; ++i) {
    all_values[i] = static_cast<std::uint8_t>(i);
  }
  corpus.push_back(std::move(all_values));

  Bytes sawtooth(3000);
  for (std::size_t i = 0; i < sawtooth.size(); ++i) {
    sawtooth[i] = static_cast<std::uint8_t>(i % 17);  // periodic matches
  }
  corpus.push_back(std::move(sawtooth));

  // Seeded random streams of several lengths (incompressible).
  for (const std::size_t n : {2u, 3u, 255u, 256u, 1000u, 65536u}) {
    Rng rng(0xC0DEC + n);
    Bytes random(n);
    for (auto& b : random) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    corpus.push_back(std::move(random));
  }

  // Random runs: bursty data with both long runs and noise.
  Rng rng(99);
  Bytes bursty;
  while (bursty.size() < 10000) {
    const auto value = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto run = static_cast<std::size_t>(rng.uniform_int(1, 400));
    bursty.insert(bursty.end(), run, value);
  }
  corpus.push_back(std::move(bursty));
  return corpus;
}

std::string label_of(const Bytes& data, std::size_t index) {
  return "corpus[" + std::to_string(index) + "] len=" +
         std::to_string(data.size());
}

/// Sink/_into forms of the codec entry points (the Bytes-returning
/// wrappers are deprecated).
Bytes lzb_pack(const Bytes& input) {
  Bytes out;
  ByteSink sink(out);
  lzb_compress(input, sink);
  return out;
}

Bytes lzb_unpack(const Bytes& packed) {
  Bytes out;
  lzb_decompress_into(packed, out);
  return out;
}

Bytes lossless_pack(const Bytes& input, LosslessBackend backend) {
  Bytes out;
  ByteSink sink(out);
  lossless_compress(input, backend, sink);
  return out;
}

Bytes lossless_unpack(std::span<const std::uint8_t> packed) {
  Bytes out;
  lossless_decompress_into(packed, out);
  return out;
}

Bytes huffman_pack(const std::vector<std::uint32_t>& symbols) {
  Bytes out;
  ByteSink sink(out);
  huffman_encode(symbols, sink);
  return out;
}

std::vector<std::uint32_t> huffman_unpack(const Bytes& encoded) {
  std::vector<std::uint32_t> out;
  huffman_decode_into(encoded, out);
  return out;
}

TEST(CodecRoundTrip, RleInvertsExactly) {
  const auto corpus = byte_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Bytes encoded = rle_compress(corpus[i]);
    EXPECT_EQ(rle_decompress(encoded), corpus[i]) << label_of(corpus[i], i);
  }
}

TEST(CodecRoundTrip, LzbInvertsExactly) {
  const auto corpus = byte_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Bytes encoded = lzb_pack(corpus[i]);
    EXPECT_EQ(lzb_unpack(encoded), corpus[i]) << label_of(corpus[i], i);
  }
}

TEST(CodecRoundTrip, LosslessBackendsInvertExactly) {
  const auto corpus = byte_corpus();
  for (const LosslessBackend backend :
       {LosslessBackend::kNone, LosslessBackend::kLzb,
        LosslessBackend::kRleLzb}) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const Bytes encoded = lossless_pack(corpus[i], backend);
      EXPECT_EQ(lossless_unpack(encoded), corpus[i])
          << to_string(backend) << " " << label_of(corpus[i], i);
    }
  }
}

std::vector<std::vector<std::uint32_t>> symbol_corpus() {
  std::vector<std::vector<std::uint32_t>> corpus;
  corpus.push_back({});            // empty stream
  corpus.push_back({42});          // single symbol
  corpus.push_back(std::vector<std::uint32_t>(5000, 7));  // one hot symbol
  corpus.push_back({0, 0xFFFFFFFFu, 0, 0xFFFFFFFFu});     // extreme values

  // Skewed quantization-code-like stream (most mass at the center).
  Rng rng(2718);
  std::vector<std::uint32_t> skewed(20000);
  for (auto& s : skewed) {
    const double u = rng.uniform();
    if (u < 0.85) {
      s = 512;  // zero bin
    } else {
      s = static_cast<std::uint32_t>(512 + rng.uniform_int(-64, 64));
    }
  }
  corpus.push_back(std::move(skewed));

  // Uniform random symbols over a wide alphabet.
  std::vector<std::uint32_t> uniform(4096);
  for (auto& s : uniform) {
    s = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  }
  corpus.push_back(std::move(uniform));
  return corpus;
}

TEST(CodecRoundTrip, HuffmanInvertsExactly) {
  const auto corpus = symbol_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Bytes encoded = huffman_pack(corpus[i]);
    EXPECT_EQ(huffman_unpack(encoded), corpus[i])
        << "symbols[" << i << "] len=" << corpus[i].size();
  }
}

TEST(CodecRoundTrip, CompressedStreamsAreSelfDescribing) {
  // The lossless container embeds its backend id: decoding dispatches
  // without out-of-band information.
  const Bytes raw(1024, 0x3C);
  for (const LosslessBackend backend :
       {LosslessBackend::kNone, LosslessBackend::kLzb,
        LosslessBackend::kRleLzb}) {
    const Bytes blob = lossless_pack(raw, backend);
    EXPECT_EQ(lossless_unpack(blob), raw);
  }
  EXPECT_THROW(lossless_unpack(Bytes{}), CorruptStream);
}

}  // namespace
}  // namespace ocelot
