// Unit tests for the bit-granular stream used by the Huffman codec.
#include <gtest/gtest.h>

#include "common/bitstream.hpp"
#include "common/rng.hpp"

namespace ocelot {
namespace {

TEST(BitStream, SingleBits) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (const bool b : pattern) w.put_bit(b);
  const Bytes bytes = w.finish();

  BitReader r(bytes);
  for (const bool b : pattern) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitStream, MultiBitFields) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.put_bits(0xFF, 8);
  w.put_bits(0, 3);
  w.put_bits(0x12345678, 32);
  const Bytes bytes = w.finish();

  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(8), 0xFFu);
  EXPECT_EQ(r.get_bits(3), 0u);
  EXPECT_EQ(r.get_bits(32), 0x12345678u);
}

TEST(BitStream, RandomRoundTrip) {
  Rng rng(42);
  std::vector<std::pair<std::uint64_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 1000; ++i) {
    const int nbits = static_cast<int>(rng.uniform_int(1, 57));
    const auto value = static_cast<std::uint64_t>(
        rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()));
    const std::uint64_t masked =
        nbits == 64 ? value : (value & ((1ull << nbits) - 1));
    fields.emplace_back(masked, nbits);
    w.put_bits(masked, nbits);
  }
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [value, nbits] : fields) {
    EXPECT_EQ(r.get_bits(nbits), value);
  }
}

TEST(BitStream, ExhaustionThrows) {
  BitWriter w;
  w.put_bits(0b101, 3);
  const Bytes bytes = w.finish();  // padded to 1 byte
  BitReader r(bytes);
  (void)r.get_bits(8);
  EXPECT_THROW((void)r.get_bit(), CorruptStream);
}

TEST(BitStream, BitCountTracksExactly) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.put_bits(1, 1);
  EXPECT_EQ(w.bit_count(), 1u);
  w.put_bits(0xFFFF, 16);
  EXPECT_EQ(w.bit_count(), 17u);
}

TEST(BitStream, EmptyFinishYieldsEmptyBuffer) {
  BitWriter w;
  EXPECT_TRUE(w.finish().empty());
}

TEST(BitStream, ExternalBufferModeMatchesOwningMode) {
  Rng rng(11);
  std::vector<std::pair<std::uint64_t, int>> fields;
  for (int i = 0; i < 200; ++i) {
    const int nbits = rng.uniform_int(1, 24);
    fields.emplace_back(
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)) &
            ((1ull << nbits) - 1),
        nbits);
  }

  BitWriter owning;
  for (const auto& [v, n] : fields) owning.put_bits(v, n);
  const Bytes expected = owning.finish();

  // External mode appends after pre-existing bytes, bit-identically.
  Bytes buf = {0xEE, 0xFF};
  BitWriter external(buf);
  for (const auto& [v, n] : fields) external.put_bits(v, n);
  external.flush();
  EXPECT_EQ(external.bit_count(), owning.bit_count());
  ASSERT_EQ(buf.size(), 2 + expected.size());
  EXPECT_EQ(Bytes(buf.begin() + 2, buf.end()), expected);
}

TEST(BitStream, FinishRequiresOwningMode) {
  Bytes buf;
  BitWriter external(buf);
  external.put_bit(true);
  EXPECT_THROW((void)external.finish(), InvalidArgument);
  external.flush();
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
}  // namespace ocelot
