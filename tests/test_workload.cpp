// Tests for the paper-scale workload inventories.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/workload.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

TEST(Workload, MirandaMatchesPaper) {
  const FileInventory inv = paper_inventory("Miranda");
  EXPECT_EQ(inv.file_count(), 768u);
  EXPECT_NEAR(inv.total_bytes(), 115e9, 3e9);
}

TEST(Workload, RtmMatchesPaper) {
  const FileInventory inv = paper_inventory("RTM");
  EXPECT_EQ(inv.file_count(), 3601u);
  EXPECT_NEAR(inv.total_bytes(), 682e9, 5e9);
}

TEST(Workload, CesmMatchesPaper) {
  const FileInventory inv = paper_inventory("CESM");
  EXPECT_EQ(inv.file_count(), 7182u);
  EXPECT_NEAR(inv.total_bytes(), 1.61e12, 0.02e12);
  // Two distinct file sizes (3-D and 2-D shapes).
  double mn = 1e18, mx = 0.0;
  for (const double b : inv.raw_bytes) {
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  EXPECT_NEAR(mn, 1800.0 * 3600.0 * 4.0, 1.0);
  EXPECT_NEAR(mx, 26.0 * 1800.0 * 3600.0 * 4.0, 1.0);
}

TEST(Workload, UnknownAppThrows) {
  EXPECT_THROW((void)paper_inventory("Nyx"), NotFound);
  EXPECT_THROW((void)paper_compute_rates("Nope"), NotFound);
}

TEST(Workload, ComputeRatesArePositiveAndDistinct) {
  const ComputeRates cesm = paper_compute_rates("CESM");
  const ComputeRates rtm = paper_compute_rates("RTM");
  const ComputeRates miranda = paper_compute_rates("Miranda");
  EXPECT_GT(cesm.compress_bps_per_core, 0.0);
  EXPECT_GT(miranda.compress_bps_per_core, 0.0);
  EXPECT_GT(rtm.compress_bps_per_core, cesm.compress_bps_per_core);
}

TEST(Workload, CalibratedCompressionTimesMatchTableEight) {
  // CPTime on Anvil (16 x 128 cores), +-20% of the paper's numbers.
  // An effectively unbounded filesystem isolates the compute model.
  SharedFilesystem fs;
  fs.peak_bps = 1e13;
  fs.node_bps = 1e12;
  struct Case {
    const char* app;
    double expected_s;
  };
  for (const Case& c :
       {Case{"CESM", 32.5}, Case{"RTM", 9.0}, Case{"Miranda", 6.5}}) {
    const FileInventory inv = paper_inventory(c.app);
    const double t = cluster_compress_seconds(
        inv.raw_bytes, 16, 128, paper_compute_rates(c.app), fs);
    EXPECT_NEAR(t / c.expected_s, 1.0, 0.2) << c.app << " got " << t;
  }
}

}  // namespace
}  // namespace ocelot
