// Tests for the Globus-style transfer service (submit/cancel/progress).
#include <gtest/gtest.h>

#include "netsim/sites.hpp"
#include "transfer/globus.hpp"

namespace ocelot {
namespace {

TransferRequest request_of(std::size_t n_files, double bytes_each) {
  TransferRequest req;
  req.label = "test";
  req.link = route("Anvil", "Cori");
  req.link.jitter_frac = 0.0;
  req.file_bytes.assign(n_files, bytes_each);
  return req;
}

TEST(Globus, CompletesAtEstimatedDuration) {
  Simulation sim;
  GlobusService globus(sim);
  double completed_at = -1.0;
  auto task = globus.submit(request_of(100, 1e8),
                            [&](const TransferTask&) { completed_at = sim.now(); });
  sim.run();
  EXPECT_EQ(task->status(), TransferTask::Status::kSucceeded);
  EXPECT_DOUBLE_EQ(completed_at, task->estimate().duration_s);
}

TEST(Globus, ProgressIsObservableMidFlight) {
  Simulation sim;
  GlobusService globus(sim);
  auto task = globus.submit(request_of(100, 1e8));
  const double half = task->estimate().duration_s / 2.0;
  sim.run_until(half);
  const std::size_t done = task->completed_files_at(sim.now());
  EXPECT_GT(done, 0u);
  EXPECT_LT(done, 100u);
  EXPECT_GT(task->completed_bytes_at(sim.now()), 0.0);
  sim.run();
  EXPECT_EQ(task->completed_files_at(sim.now()), 100u);
  EXPECT_DOUBLE_EQ(task->completed_bytes_at(sim.now()), 100 * 1e8);
}

TEST(Globus, CancelFreezesProgressAndSuppressesCallback) {
  Simulation sim;
  GlobusService globus(sim);
  bool callback_fired = false;
  auto task = globus.submit(request_of(50, 1e9),
                            [&](const TransferTask&) { callback_fired = true; });
  const double third = task->estimate().duration_s / 3.0;
  sim.run_until(third);
  task->cancel(sim.now());
  const std::size_t at_cancel = task->completed_files_at(sim.now());
  sim.run();
  EXPECT_EQ(task->status(), TransferTask::Status::kCancelled);
  EXPECT_FALSE(callback_fired);
  // Progress is frozen at the cancellation point.
  EXPECT_EQ(task->completed_files_at(sim.now() + 1000.0), at_cancel);
}

TEST(Globus, CancelAfterCompletionIsNoOp) {
  Simulation sim;
  GlobusService globus(sim);
  auto task = globus.submit(request_of(10, 1e6));
  sim.run();
  EXPECT_EQ(task->status(), TransferTask::Status::kSucceeded);
  task->cancel(sim.now());
  EXPECT_EQ(task->status(), TransferTask::Status::kSucceeded);
}

TEST(Globus, EmptyRequestThrows) {
  Simulation sim;
  GlobusService globus(sim);
  TransferRequest req;
  req.link = route("Anvil", "Cori");
  EXPECT_THROW((void)globus.submit(req), InvalidArgument);
}

TEST(Globus, ConcurrentTransfersProgressIndependently) {
  Simulation sim;
  GlobusService globus(sim);
  int completions = 0;
  auto t1 = globus.submit(request_of(10, 1e9),
                          [&](const TransferTask&) { ++completions; });
  auto t2 = globus.submit(request_of(500, 1e6),
                          [&](const TransferTask&) { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(t1->status(), TransferTask::Status::kSucceeded);
  EXPECT_EQ(t2->status(), TransferTask::Status::kSucceeded);
}

}  // namespace
}  // namespace ocelot
