// Bit-exactness and dispatch properties of the SIMD hot-path kernels.
//
// The dispatch contract says the ISA level changes speed, never bytes:
// every backend must emit an identical blob whether the vectorized or
// the scalar kernel build runs, including through the non-finite raw
// path. These tests pin the level with force_simd_level() and compare
// whole compressed blobs across all registered backends, dtypes, and
// ranks, then cover the arena and wide-symbol Huffman edges the fused
// path leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "codec/huffman.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "compressor/kernels/dispatch.hpp"

namespace ocelot {
namespace {

using kernels::SimdLevel;

/// Restores automatic dispatch even when an assertion throws.
struct ForcedLevel {
  explicit ForcedLevel(SimdLevel level) { kernels::force_simd_level(level); }
  ~ForcedLevel() { kernels::reset_simd_level(); }
};

/// Smooth field plus noise: exercises both the quantized fast path and
/// occasional large residuals.
template <typename T>
NdArray<T> make_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> values(shape.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = static_cast<double>(i);
    values[i] = static_cast<T>(std::sin(x * 0.021) + std::cos(x * 0.0047) +
                               rng.normal(0.0, 0.05));
  }
  return NdArray<T>(shape, std::move(values));
}

template <typename T>
NdArray<T> with_nonfinite(NdArray<T> field, std::uint64_t seed) {
  Rng rng(seed);
  const auto v = field.values();
  for (int k = 0; k < 17; ++k) {
    const auto i =
        static_cast<std::size_t>(rng.uniform_int(0, v.size() - 1));
    switch (k % 3) {
      case 0: v[i] = std::numeric_limits<T>::quiet_NaN(); break;
      case 1: v[i] = std::numeric_limits<T>::infinity(); break;
      default: v[i] = -std::numeric_limits<T>::infinity(); break;
    }
  }
  return field;
}

std::vector<Shape> test_shapes() {
  return {Shape(257), Shape(19, 23), Shape(9, 12, 14)};
}

template <typename T>
void expect_blobs_match_across_levels(const NdArray<T>& field,
                                      const std::string& backend) {
  CompressionConfig config;
  config.backend = backend;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = 1e-3;

  Bytes scalar_blob;
  {
    ForcedLevel forced(SimdLevel::kScalar);
    scalar_blob = compress(field, config);
  }
  // Automatic dispatch: on AVX2 hardware this runs the vectorized
  // build, elsewhere it degenerates to scalar-vs-scalar (still a valid
  // determinism check).
  const Bytes auto_blob = compress(field, config);
  ASSERT_EQ(scalar_blob, auto_blob)
      << backend << ": "
      << kernels::simd_level_name(kernels::active_simd_level())
      << " dispatch changed the compressed bytes";

  // Round-trip: every element is within the bound or reproduced via
  // the raw path (non-finite and failed reconstructions are exact, so
  // the error is 0 or NaN — never greater than eb).
  const NdArray<T> decoded = decompress<T>(auto_blob);
  ASSERT_EQ(decoded.shape().size(), field.shape().size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double err = std::abs(static_cast<double>(field.values()[i]) -
                                static_cast<double>(decoded.values()[i]));
    EXPECT_FALSE(err > config.eb) << backend << " element " << i;
  }
}

TEST(Kernels, SimdAndScalarBlobsAreByteIdentical) {
  for (const std::string& backend : registered_backend_names()) {
    for (const Shape& shape : test_shapes()) {
      expect_blobs_match_across_levels<float>(make_field<float>(shape, 11),
                                              backend);
      expect_blobs_match_across_levels<double>(make_field<double>(shape, 23),
                                               backend);
    }
  }
}

TEST(Kernels, NonFiniteValuesTakeTheRawPathIdentically) {
  const Shape shape(9, 12, 14);
  for (const std::string& backend : registered_backend_names()) {
    expect_blobs_match_across_levels<float>(
        with_nonfinite(make_field<float>(shape, 31), 5), backend);
    expect_blobs_match_across_levels<double>(
        with_nonfinite(make_field<double>(shape, 37), 7), backend);
  }
}

TEST(Kernels, ForcedScalarPinsDispatch) {
  {
    ForcedLevel forced(SimdLevel::kScalar);
    EXPECT_EQ(kernels::active_simd_level(), SimdLevel::kScalar);
  }
  // After reset, the detected level must be one this binary contains.
  EXPECT_TRUE(kernels::simd_level_compiled(kernels::active_simd_level()));
  EXPECT_TRUE(kernels::simd_level_compiled(SimdLevel::kScalar));
  EXPECT_STREQ(kernels::simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(kernels::simd_level_name(SimdLevel::kAvx2), "avx2");
}

TEST(Kernels, ForcingAnAbsentLevelClampsToScalar) {
  ForcedLevel forced(SimdLevel::kAvx2);
  const SimdLevel active = kernels::active_simd_level();
  EXPECT_TRUE(kernels::simd_level_compiled(active));
}

TEST(Kernels, U32MinMaxMatchesScalarScan) {
  Rng rng(71);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 1000u, 4096u}) {
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) {
      x = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    }
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    kernels::u32_min_max(v.data(), v.size(), lo, hi);
    if (n == 0) {
      EXPECT_EQ(lo, std::numeric_limits<std::uint32_t>::max());
      EXPECT_EQ(hi, 0u);
      continue;
    }
    std::uint32_t want_lo = v[0];
    std::uint32_t want_hi = v[0];
    for (const std::uint32_t x : v) {
      want_lo = std::min(want_lo, x);
      want_hi = std::max(want_hi, x);
    }
    EXPECT_EQ(lo, want_lo);
    EXPECT_EQ(hi, want_hi);
  }
}

TEST(Kernels, HuffmanWideSymbolRangeUsesSortedFallback) {
  // A symbol span far beyond the dense-window guard (1 << 17) forces
  // the sorted histogram and the lower_bound emit path; the decoder
  // must still invert exactly.
  Rng rng(101);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 4000; ++i) {
    symbols.push_back(
        static_cast<std::uint32_t>(rng.uniform_int(0, 40)) * 1000003u);
  }
  BytesWriter writer;
  huffman_encode(symbols, writer);
  std::vector<std::uint32_t> decoded;
  huffman_decode_into(writer.bytes(), decoded);
  EXPECT_EQ(decoded, symbols);
}

TEST(Kernels, HuffmanHistOverloadMatchesCountingPath) {
  Rng rng(131);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.uniform_int(100, 180)));
  }
  const auto hist = histogram_symbols(symbols);
  BytesWriter with_hist;
  huffman_encode(symbols, hist, with_hist);
  BytesWriter counting;
  huffman_encode(symbols, counting);
  EXPECT_EQ(with_hist.bytes(), counting.bytes());
}

TEST(Kernels, ArenaRewindReusesStorageAndKeepsPersistentSlots) {
  ScratchArena& arena = ScratchArena::current();
  const auto mark = arena.mark();
  const std::span<std::uint32_t> a = arena.alloc<std::uint32_t>(1024);
  std::uint32_t* const first = a.data();
  arena.rewind(mark);
  const std::span<std::uint32_t> b = arena.alloc<std::uint32_t>(1024);
  EXPECT_EQ(b.data(), first) << "rewind must recycle the same storage";
  arena.rewind(mark);

  auto slot =
      arena.persistent(ScratchArena::Slot::kHistA, 64 * sizeof(std::uint64_t));
  std::memset(slot.bytes.data(), 0xAB, slot.bytes.size());
  {
    ArenaScope scope;
    (void)scope.arena().alloc<double>(4096);
  }
  auto again =
      arena.persistent(ScratchArena::Slot::kHistA, 64 * sizeof(std::uint64_t));
  EXPECT_FALSE(again.fresh) << "same-size reacquire must keep contents";
  EXPECT_EQ(again.bytes.data(), slot.bytes.data());
  EXPECT_EQ(static_cast<unsigned char>(again.bytes[7]), 0xABu);

  // Growth request beyond any capacity earlier tests could have left
  // behind (the fused quantizer's window is 512 KiB).
  auto grown = arena.persistent(ScratchArena::Slot::kHistA, std::size_t{1}
                                                                << 23);
  EXPECT_TRUE(grown.fresh) << "growth must report a fresh buffer";
  // Restore the slot invariant the fused histogram relies on (window
  // left all-zero), since this arena is shared with other tests.
  std::memset(grown.bytes.data(), 0, grown.bytes.size());
}

TEST(Kernels, ArenaScopeComposesWithNestedScopes) {
  ScratchArena& arena = ScratchArena::current();
  ArenaScope outer;
  const std::span<std::uint8_t> keep = outer.arena().alloc<std::uint8_t>(64);
  std::memset(keep.data(), 0x5C, keep.size());
  {
    ArenaScope inner;
    (void)inner.arena().alloc<std::uint8_t>(1 << 16);
  }
  // The outer allocation survives the inner scope's rewind.
  EXPECT_EQ(keep[63], 0x5C);
  (void)arena;
}

}  // namespace
}  // namespace ocelot
