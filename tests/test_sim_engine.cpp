// Tests for the sim/ discrete-event engine: cancellable events,
// process handles and max-min fair sharing. (The legacy scheduling
// semantics are covered by test_simulation.cpp through the
// `Simulation` alias.)
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/fair_share.hpp"

namespace ocelot::sim {
namespace {

TEST(Engine, CancelledEventNeverFires) {
  Engine engine;
  int fired = 0;
  EventHandle keep = engine.schedule_at(1.0, [&] { ++fired; });
  EventHandle drop = engine.schedule_at(2.0, [&] { fired += 100; });
  EXPECT_TRUE(drop.active());
  EXPECT_TRUE(drop.cancel());
  EXPECT_FALSE(drop.active());
  EXPECT_FALSE(drop.cancel());  // second cancel is a no-op
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(keep.cancel() == false);  // already fired
}

TEST(Engine, CancelInsideCallbackSuppressesLaterEvent) {
  Engine engine;
  int fired = 0;
  EventHandle later = engine.schedule_at(5.0, [&] { ++fired; });
  engine.schedule_at(1.0, [&] { later.cancel(); });
  const std::size_t executed = engine.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(executed, 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);  // clock never reached 5.0
}

TEST(Engine, ProcessLifecycleIsStamped) {
  Engine engine;
  ProcessHandle proc;
  engine.schedule_at(2.0, [&] { proc = engine.spawn("worker"); });
  engine.schedule_at(7.0, [&] { proc->finish(); });
  engine.run();
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->name(), "worker");
  EXPECT_EQ(proc->state(), ProcessState::kDone);
  EXPECT_DOUBLE_EQ(proc->spawned_at(), 2.0);
  EXPECT_DOUBLE_EQ(proc->exited_at(), 7.0);
  EXPECT_EQ(engine.running_processes(), 0u);
}

TEST(Engine, ProcessExitObserversFire) {
  Engine engine;
  ProcessHandle proc = engine.spawn("p");
  double observed = -1.0;
  proc->on_exit([&] { observed = engine.now(); });
  engine.schedule_at(3.0, [&] { proc->cancel(); });
  engine.run();
  EXPECT_EQ(proc->state(), ProcessState::kCancelled);
  EXPECT_DOUBLE_EQ(observed, 3.0);
  EXPECT_THROW(proc->finish(), InvalidArgument);  // already exited
}

TEST(FairShare, MaxMinSatisfiesSmallDemandsFirst) {
  // Capacity 10 over demands {2, 20, 20}: the small flow gets its 2,
  // the rest split the remaining 8 evenly.
  const std::vector<double> demands{2.0, 20.0, 20.0};
  const std::vector<double> alloc = max_min_allocation(10.0, demands);
  EXPECT_DOUBLE_EQ(alloc[0], 2.0);
  EXPECT_DOUBLE_EQ(alloc[1], 4.0);
  EXPECT_DOUBLE_EQ(alloc[2], 4.0);
}

TEST(FairShare, MaxMinLeavesSlackWhenDemandIsLow) {
  const std::vector<double> demands{1.0, 2.0};
  const std::vector<double> alloc = max_min_allocation(10.0, demands);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 2.0);
}

TEST(FairShare, SoloFlowRunsAtFullSpeed) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  double done_at = -1.0;
  channel.open_flow(/*demand=*/50.0, /*work_seconds=*/8.0,
                    [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 8.0);  // exactly the solo service time
}

TEST(FairShare, TwoEqualFlowsHalveEachOther) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  double a_done = -1.0, b_done = -1.0;
  // Each flow alone would saturate the channel for 10s; together they
  // each run at half speed until one leaves.
  channel.open_flow(100.0, 10.0, [&] { a_done = engine.now(); });
  channel.open_flow(100.0, 10.0, [&] { b_done = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(a_done, 20.0);
  EXPECT_DOUBLE_EQ(b_done, 20.0);
}

TEST(FairShare, LateArrivalSlowsTheFirstFlow) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  double a_done = -1.0, b_done = -1.0;
  channel.open_flow(100.0, 10.0, [&] { a_done = engine.now(); });
  engine.schedule_at(5.0, [&] {
    channel.open_flow(100.0, 10.0, [&] { b_done = engine.now(); });
  });
  engine.run();
  // A runs alone for 5s (5s of service), then shares: the remaining 5s
  // of service take 10s. B then finishes its last 5s alone.
  EXPECT_DOUBLE_EQ(a_done, 15.0);
  EXPECT_DOUBLE_EQ(b_done, 20.0);
}

TEST(FairShare, CancellationReturnsBandwidth) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  double a_done = -1.0;
  channel.open_flow(100.0, 10.0, [&] { a_done = engine.now(); });
  const FairShareChannel::FlowId victim =
      channel.open_flow(100.0, 10.0, [&] { FAIL() << "cancelled flow"; });
  engine.schedule_at(4.0, [&] { channel.cancel_flow(victim); });
  engine.run();
  // A: 4s shared (2s of service) + 8s alone = 12s total.
  EXPECT_DOUBLE_EQ(a_done, 12.0);
  EXPECT_EQ(channel.stats().flows_cancelled, 1u);
  EXPECT_EQ(channel.stats().flows_completed, 1u);
}

TEST(FairShare, ProgressHistoryInvertsCorrectly) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  const FairShareChannel::FlowId a = channel.open_flow(100.0, 10.0, {});
  engine.schedule_at(5.0, [&] { channel.open_flow(100.0, 10.0, {}); });
  engine.run();
  // Flow a: service 5 delivered at t=5, service 7.5 at t=10 (half
  // rate), service 10 at t=15.
  EXPECT_DOUBLE_EQ(channel.progress_at(a, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(channel.progress_at(a, 10.0), 7.5);
  EXPECT_DOUBLE_EQ(channel.delivery_time(a, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(channel.delivery_time(a, 7.5), 10.0);
  EXPECT_DOUBLE_EQ(channel.delivery_time(a, 10.0), 15.0);
  EXPECT_EQ(channel.delivery_time(a, 10.5), FairShareChannel::kNever);
}

TEST(FairShare, StatsIntegrateUtilization) {
  Engine engine;
  FairShareChannel channel(engine, "wan", 100.0);
  channel.open_flow(100.0, 10.0, {});
  channel.open_flow(100.0, 10.0, {});
  engine.run();
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.peak_flows, 2u);
  EXPECT_EQ(stats.flows_completed, 2u);
  // Both flows ran 20s at 50 units/s: 2000 units over 20 busy seconds.
  EXPECT_NEAR(stats.units_delivered, 2000.0, 1e-6);
  EXPECT_NEAR(stats.busy_seconds, 20.0, 1e-9);
  EXPECT_NEAR(stats.flow_seconds, 40.0, 1e-9);
}

}  // namespace
}  // namespace ocelot::sim
