// Tests for model serialization (tree + quality model round trips).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "predictor/quality_model.hpp"

namespace ocelot {
namespace {

DecisionTreeRegressor trained_tree(std::uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
    x.add_row({a, b, c});
    y.push_back(2.0 * a - b + (c > 0.5 ? 3.0 : 0.0));
  }
  return DecisionTreeRegressor::fit(x, y);
}

TEST(TreeSerialization, RoundTripPredictsIdentically) {
  const DecisionTreeRegressor tree = trained_tree(1);
  const Bytes blob = tree.to_bytes();
  const DecisionTreeRegressor restored =
      DecisionTreeRegressor::from_bytes(blob);

  EXPECT_EQ(restored.node_count(), tree.node_count());
  EXPECT_EQ(restored.feature_count(), tree.feature_count());
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> row = {rng.uniform(), rng.uniform(),
                                     rng.uniform()};
    EXPECT_DOUBLE_EQ(restored.predict(row), tree.predict(row));
  }
}

TEST(TreeSerialization, CorruptBlobThrows) {
  const Bytes blob = trained_tree(3).to_bytes();
  Bytes bad_magic = blob;
  bad_magic[0] = 'Z';
  EXPECT_THROW((void)DecisionTreeRegressor::from_bytes(bad_magic),
               CorruptStream);

  Bytes truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)DecisionTreeRegressor::from_bytes(truncated),
               CorruptStream);
}

TEST(QualityModelSerialization, RoundTripPredictsIdentically) {
  Rng rng(4);
  std::vector<QualitySample> samples;
  for (int i = 0; i < 200; ++i) {
    QualitySample s;
    for (double& f : s.features) f = rng.uniform();
    s.compression_ratio = 1.0 + 20.0 * s.features[7];
    s.compress_seconds = 1e-8 * 50000;
    s.psnr_db = 40.0 + 100.0 * s.features[0];
    s.n_elements = 50000;
    samples.push_back(s);
  }
  const QualityModel model = QualityModel::train(samples);
  const QualityModel restored = QualityModel::from_bytes(model.to_bytes());

  for (int i = 0; i < 50; ++i) {
    FeatureVector fv;
    for (double& f : fv) f = rng.uniform();
    const QualityPrediction a = model.predict(fv, 123456);
    const QualityPrediction b = restored.predict(fv, 123456);
    EXPECT_DOUBLE_EQ(a.compression_ratio, b.compression_ratio);
    EXPECT_DOUBLE_EQ(a.compress_seconds, b.compress_seconds);
    EXPECT_DOUBLE_EQ(a.psnr_db, b.psnr_db);
  }
}

}  // namespace
}  // namespace ocelot
