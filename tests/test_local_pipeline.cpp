// Integration tests: the full local Ocelot pipeline with real
// compression and a modelled WAN.
#include <gtest/gtest.h>

#include "core/local_pipeline.hpp"
#include "datagen/datasets.hpp"
#include "io/dataset_file.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

struct Prepared {
  std::vector<std::string> names;
  std::vector<FloatArray> fields;
};

Prepared prepare(const std::string& app, double scale, int variants = 1) {
  Prepared p;
  for (auto& field : generate_application(app, scale, 21, variants)) {
    p.names.push_back(field.app + "/" + field.name);
    p.fields.push_back(std::move(field.data));
  }
  return p;
}

/// Laptop-scale WAN: the paper-calibrated links assume TB-scale
/// payloads; for megabyte test data we shrink bandwidth and startup
/// proportionally so the compression/transfer trade-off is preserved.
LinkProfile laptop_link() {
  LinkProfile link;
  link.name = "laptop-wan";
  link.bandwidth_bps = 20e6;  // congested wide-area path
  link.rtt_s = 0.05;
  link.per_file_overhead_s = 1e-3;
  link.startup_s = 0.05;
  link.stream_fraction = 0.012;
  link.jitter_frac = 0.0;
  return link;
}

LocalPipelineConfig pipeline_config(bool grouped) {
  LocalPipelineConfig config;
  config.compression.backend = "sz3-interp";
  config.compression.eb_mode = EbMode::kValueRangeRel;
  config.compression.eb = 1e-3;
  config.workers = 4;
  config.link = laptop_link();
  config.group_files = grouped;
  config.group_world_size = 4;
  return config;
}

TEST(LocalPipeline, EndToEndRespectsErrorBoundAndWritesOutput) {
  const Prepared p = prepare("CESM", 0.05);
  FileStore destination;
  const LocalPipelineResult result =
      run_local_pipeline(p.names, p.fields, pipeline_config(false),
                         &destination);

  // Every field must land at the destination, within the error bound.
  EXPECT_EQ(destination.file_count(), p.fields.size());
  for (std::size_t i = 0; i < p.names.size(); ++i) {
    const LoadedField loaded = load_field(destination.read(p.names[i]));
    EXPECT_EQ(loaded.data.shape(), p.fields[i].shape());
  }
  EXPECT_GT(result.compression.ratio(), 1.5);
  EXPECT_GT(result.min_psnr_db, 40.0);
#ifndef OCELOT_SANITIZE_BUILD
  // Wall-clock assertion: sanitizer instrumentation slows the real
  // compression ~15x, so only plain builds can expect the payoff.
  EXPECT_GT(result.speedup(), 1.0);  // compression must pay off
#endif
}

TEST(LocalPipeline, GroupingReducesWireFiles) {
  const Prepared p = prepare("Miranda", 0.04);
  const LocalPipelineResult ungrouped =
      run_local_pipeline(p.names, p.fields, pipeline_config(false));
  const LocalPipelineResult grouped =
      run_local_pipeline(p.names, p.fields, pipeline_config(true));

  EXPECT_EQ(ungrouped.wire_files, p.fields.size());
  EXPECT_EQ(grouped.wire_files, (p.fields.size() + 3) / 4);
  // Both must reconstruct identically well.
  EXPECT_EQ(grouped.max_error <= 1e-2, ungrouped.max_error <= 1e-2);
}

TEST(LocalPipeline, TransferLegShrinksByCompressionRatio) {
  const Prepared p = prepare("CESM", 0.05);
  const LocalPipelineResult result =
      run_local_pipeline(p.names, p.fields, pipeline_config(false));
  // Modelled data seconds scale with bytes; compare against direct.
  EXPECT_LT(result.transfer.data_seconds,
            result.direct_transfer.data_seconds);
  const double byte_ratio = result.compression.ratio();
  const double time_ratio =
      result.direct_transfer.data_seconds / result.transfer.data_seconds;
  EXPECT_NEAR(time_ratio, byte_ratio, byte_ratio * 0.5);
}

TEST(LocalPipeline, MismatchedInputsThrow) {
  const Prepared p = prepare("Miranda", 0.04);
  std::vector<std::string> short_names(p.names.begin(), p.names.end() - 1);
  EXPECT_THROW((void)run_local_pipeline(short_names, p.fields,
                                        pipeline_config(false)),
               InvalidArgument);
  EXPECT_THROW(
      (void)run_local_pipeline({}, {}, pipeline_config(false)),
      InvalidArgument);
}

}  // namespace
}  // namespace ocelot
