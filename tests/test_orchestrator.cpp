// Tests for the multi-campaign orchestrator: N=1 equivalence with the
// closed-form pipeline, link fair-sharing under contention, shared
// node pools and warm-container pools, and byte-identical determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/campaign.hpp"
#include "core/grouping.hpp"
#include "exec/cluster_model.hpp"
#include "netsim/gridftp.hpp"
#include "netsim/sites.hpp"
#include "orchestrator/orchestrator.hpp"

namespace ocelot {
namespace {

CampaignSpec spec_of(const std::string& app, TransferMode mode,
                     double submit_time = 0.0, int priority = 0) {
  CampaignSpec spec;
  spec.name = app + "@" + std::to_string(submit_time);
  spec.inventory = paper_inventory(app);
  spec.mode = mode;
  spec.config.src = "Anvil";
  spec.config.dst = "Cori";
  spec.config.compression_ratio = 10.0;
  spec.config.rates = paper_compute_rates(app);
  spec.submit_time = submit_time;
  spec.priority = priority;
  return spec;
}

/// The seed's closed-form Total T for a compressed campaign: funcX
/// dispatch + cold start + compression makespan, the uncontended
/// GridFTP estimate, then dispatch + cold start + decompression.
double closed_form_total(const CampaignSpec& spec) {
  const CampaignConfig& config = spec.config;
  const LinkProfile link = route(config.src, config.dst);
  if (spec.mode == TransferMode::kDirect) {
    return GridFtpModel().estimate(spec.inventory.raw_bytes, link).duration_s;
  }
  std::vector<double> compressed(spec.inventory.raw_bytes.size());
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    compressed[i] = spec.inventory.raw_bytes[i] / config.compression_ratio;
  }
  std::vector<double> wire = compressed;
  if (spec.mode == TransferMode::kCompressedGrouped) {
    const GroupPlan plan = plan_groups_by_world_size(
        compressed.size(), config.group_world_size);
    wire = group_sizes(plan, compressed);
  }
  const double cp = cluster_compress_seconds(
      spec.inventory.raw_bytes, config.compress_nodes,
      config.compress_cores_per_node, config.rates, site(config.src).fs);
  const double dp = cluster_decompress_seconds(
      spec.inventory.raw_bytes, config.decompress_nodes,
      config.decompress_cores_per_node, config.rates, site(config.dst).fs);
  const double transfer = GridFtpModel().estimate(wire, link).duration_s;
  const double faas_costs =
      2.0 * (config.faas.dispatch_latency_s + config.faas.cold_start_s);
  return cp + transfer + dp + faas_costs;
}

TEST(Orchestrator, SingleCampaignMatchesClosedForm) {
  for (const char* app : {"Miranda", "RTM", "CESM"}) {
    for (const TransferMode mode :
         {TransferMode::kDirect, TransferMode::kCompressedPerFile,
          TransferMode::kCompressedGrouped}) {
      const CampaignSpec spec = spec_of(app, mode);
      const CampaignReport report =
          run_campaign(spec.inventory, mode, spec.config);
      EXPECT_NEAR(report.total_seconds, closed_form_total(spec), 1e-6)
          << app << " " << to_string(mode);
      EXPECT_DOUBLE_EQ(report.node_wait_seconds, 0.0);
    }
  }
}

TEST(Orchestrator, FourCampaignContentionStretchesEveryTransfer) {
  // Four campaigns share Anvil->Cori from t=0; each transfer must be
  // strictly slower than the same campaign run alone.
  std::vector<CampaignSpec> specs;
  specs.push_back(spec_of("Miranda", TransferMode::kDirect));
  specs.push_back(spec_of("Miranda", TransferMode::kDirect));
  specs.push_back(spec_of("RTM", TransferMode::kDirect));
  specs.push_back(spec_of("CESM", TransferMode::kDirect));

  const OrchestratorReport isolated = run_campaigns(specs, /*isolated=*/true);
  const OrchestratorReport contended = run_campaigns(specs);
  ASSERT_EQ(contended.campaigns.size(), 4u);

  for (std::size_t i = 0; i < 4; ++i) {
    const double alone = isolated.campaigns[i].report.transfer_seconds;
    const double shared = contended.campaigns[i].report.transfer_seconds;
    EXPECT_GT(shared, alone) << "campaign " << i;
    EXPECT_GT(contended.campaigns[i].transfer_stretch, 1.0)
        << "campaign " << i;
  }
  const LinkUsage& link = contended.links.at("Anvil->Cori");
  EXPECT_EQ(link.stats.peak_flows, 4u);
  EXPECT_GT(contended.makespan, isolated.makespan);
}

TEST(Orchestrator, ContendedCompressedCampaignsAlsoStretch) {
  std::vector<CampaignSpec> specs;
  for (int i = 0; i < 3; ++i) {
    specs.push_back(spec_of("Miranda", TransferMode::kCompressedPerFile));
  }
  const OrchestratorReport isolated = run_campaigns(specs, /*isolated=*/true);
  const OrchestratorReport contended = run_campaigns(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_GE(contended.campaigns[i].report.transfer_seconds,
              isolated.campaigns[i].report.transfer_seconds);
  }
  // At least one pair of transfers overlapped.
  EXPECT_GE(contended.links.at("Anvil->Cori").stats.peak_flows, 2u);
}

TEST(Orchestrator, SharedNodePoolQueuesCompressionJobs) {
  // A 16-node source pool and two campaigns that each need all 16:
  // the second compresses only after the first releases.
  OrchestratorOptions options;
  options.pool_nodes["Anvil"] = 16;
  std::vector<CampaignSpec> specs;
  specs.push_back(spec_of("Miranda", TransferMode::kCompressedPerFile));
  specs.push_back(spec_of("Miranda", TransferMode::kCompressedPerFile));
  const OrchestratorReport report =
      run_campaigns(specs, /*isolated=*/false, options);

  EXPECT_DOUBLE_EQ(report.campaigns[0].report.node_wait_seconds, 0.0);
  EXPECT_GT(report.campaigns[1].report.node_wait_seconds, 0.0);
  const PoolUsage& pool = report.pools.at("Anvil");
  EXPECT_EQ(pool.stats.grants, 2u);
  EXPECT_EQ(pool.stats.peak_nodes_in_use, 16);
}

TEST(Orchestrator, PriorityOvertakesInTheNodeQueue) {
  // Three same-size jobs on a full pool: the high-priority latecomer
  // is granted before the earlier low-priority one.
  OrchestratorOptions options;
  options.pool_nodes["Anvil"] = 16;
  Orchestrator orch(options);
  CampaignSpec holder = spec_of("Miranda", TransferMode::kCompressedPerFile);
  CampaignSpec low = spec_of("Miranda", TransferMode::kCompressedPerFile,
                             /*submit=*/1.0, /*priority=*/0);
  CampaignSpec high = spec_of("Miranda", TransferMode::kCompressedPerFile,
                              /*submit=*/2.0, /*priority=*/5);
  low.name = "low";
  high.name = "high";
  orch.add_campaign(std::move(holder));
  orch.add_campaign(std::move(low));
  orch.add_campaign(std::move(high));
  const OrchestratorReport report = orch.run();
  const CampaignOutcome* low_out = &report.campaigns[1];
  const CampaignOutcome* high_out = &report.campaigns[2];
  ASSERT_EQ(low_out->name, "low");
  ASSERT_EQ(high_out->name, "high");
  EXPECT_LT(high_out->finish_time, low_out->finish_time);
}

TEST(Orchestrator, WarmContainerPoolIsSharedAcrossCampaigns) {
  std::vector<CampaignSpec> specs;
  specs.push_back(spec_of("Miranda", TransferMode::kCompressedPerFile));
  specs.push_back(spec_of("Miranda", TransferMode::kCompressedPerFile));
  const OrchestratorReport report = run_campaigns(specs);
  // First campaign cold-starts compress@Anvil and decompress@Cori; the
  // second finds both containers warm.
  EXPECT_EQ(report.faas_cold_starts, 2u);
  EXPECT_EQ(report.faas_warm_hits, 2u);

  const OrchestratorReport isolated = run_campaigns(specs, /*isolated=*/true);
  EXPECT_EQ(isolated.faas_cold_starts, 4u);  // no sharing across runs
}

TEST(Orchestrator, StaggeredSubmitTimesAreHonoured) {
  std::vector<CampaignSpec> specs;
  specs.push_back(spec_of("Miranda", TransferMode::kDirect, 0.0));
  specs.push_back(spec_of("Miranda", TransferMode::kDirect, 1000.0));
  const OrchestratorReport report = run_campaigns(specs);
  EXPECT_GE(report.campaigns[1].finish_time, 1000.0);
  // total_seconds stays relative to each campaign's own submit time.
  EXPECT_NEAR(report.campaigns[1].finish_time -
                  report.campaigns[1].report.total_seconds,
              1000.0, 1e-9);
}

TEST(Orchestrator, DeterministicByteIdenticalReports) {
  // Satellite: two runs of the same contended scenario (jittered
  // links, stochastic waits, mixed modes) render identical reports.
  auto build_report = [] {
    OrchestratorOptions options;
    options.pool_nodes["Anvil"] = 32;
    Orchestrator orch(options);
    orch.add_campaign(spec_of("Miranda", TransferMode::kCompressedGrouped,
                              0.0, 1));
    orch.add_campaign(spec_of("RTM", TransferMode::kCompressedPerFile,
                              10.0, 0));
    orch.add_campaign(spec_of("CESM", TransferMode::kDirect, 20.0, 2));
    orch.add_campaign(spec_of("Miranda", TransferMode::kDirect, 30.0, 0));
    // Wait models may be configured any time before run().
    orch.set_site_wait_model("Anvil",
                             std::make_unique<StochasticWait>(1234));
    return to_string(orch.run());
  };
  const std::string first = build_report();
  const std::string second = build_report();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Orchestrator, ValidatesSpecs) {
  Orchestrator orch;
  CampaignSpec empty_inv = spec_of("Miranda", TransferMode::kDirect);
  empty_inv.inventory.raw_bytes.clear();
  EXPECT_THROW(orch.add_campaign(std::move(empty_inv)), InvalidArgument);

  CampaignSpec bad_ratio = spec_of("Miranda", TransferMode::kCompressedPerFile);
  bad_ratio.config.compression_ratio = 0.5;
  EXPECT_THROW(orch.add_campaign(std::move(bad_ratio)), InvalidArgument);

  CampaignSpec bad_route = spec_of("Miranda", TransferMode::kDirect);
  bad_route.config.dst = "Atlantis";
  EXPECT_THROW(orch.add_campaign(std::move(bad_route)), NotFound);

  OrchestratorOptions tiny;
  tiny.pool_nodes["Anvil"] = 4;
  Orchestrator small(tiny);
  CampaignSpec oversize = spec_of("Miranda", TransferMode::kCompressedPerFile);
  oversize.config.compress_nodes = 16;
  EXPECT_THROW(small.add_campaign(std::move(oversize)), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
