// Tests for the sentinel (node-waiting failover, Section VII-B).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <memory>

#include "core/campaign.hpp"
#include "core/sentinel.hpp"

namespace ocelot {
namespace {

SentinelConfig make_config(const std::string& app, double wait_seconds) {
  SentinelConfig config;
  config.campaign.src = "Anvil";
  config.campaign.dst = "Cori";
  config.campaign.compression_ratio = 10.0;
  config.campaign.rates = paper_compute_rates(app);
  config.machine_nodes = 750;
  config.wait_model =
      std::make_unique<TraceWait>(std::vector<double>{wait_seconds});
  return config;
}

TEST(Sentinel, ImmediateGrantCompressesAlmostEverything) {
  const FileInventory inv = paper_inventory("Miranda");
  SentinelReport report = run_sentinel(inv, make_config("Miranda", 0.0));
  EXPECT_TRUE(report.nodes_granted);
  EXPECT_EQ(report.files_sent_raw, 0u);
  EXPECT_EQ(report.files_sent_compressed, inv.file_count());
  EXPECT_TRUE(report.meta_file.empty());
}

TEST(Sentinel, NodesNeverGrantedFallsBackToDirectTransfer) {
  // Worst case (Section VII-B): the full dataset moves uncompressed.
  const FileInventory inv = paper_inventory("Miranda");
  SentinelReport report = run_sentinel(inv, make_config("Miranda", 1e9));
  EXPECT_FALSE(report.nodes_granted);
  EXPECT_EQ(report.files_sent_raw, inv.file_count());
  EXPECT_EQ(report.files_sent_compressed, 0u);
  EXPECT_NEAR(report.bytes_on_wire, inv.total_bytes(), 1.0);

  // And the time equals a plain direct campaign.
  CampaignConfig direct_config;
  direct_config.src = "Anvil";
  direct_config.dst = "Cori";
  direct_config.rates = paper_compute_rates("Miranda");
  const CampaignReport direct =
      run_campaign(inv, TransferMode::kDirect, direct_config);
  EXPECT_NEAR(report.total_seconds, direct.total_seconds,
              direct.total_seconds * 0.01);
}

TEST(Sentinel, MidTransferGrantSplitsRawAndCompressed) {
  const FileInventory inv = paper_inventory("RTM");
  // Grant nodes about a third into the raw transfer (~180s window).
  SentinelReport report = run_sentinel(inv, make_config("RTM", 60.0));
  EXPECT_TRUE(report.nodes_granted);
  EXPECT_GT(report.files_sent_raw, 0u);
  EXPECT_GT(report.files_sent_compressed, 0u);
  EXPECT_EQ(report.files_sent_raw + report.files_sent_compressed,
            inv.file_count());
  // Meta file lists exactly the raw-transferred files.
  EXPECT_EQ(report.meta_file.size(), report.files_sent_raw);
}

TEST(Sentinel, EarlierGrantMovesFewerRawBytes) {
  const FileInventory inv = paper_inventory("RTM");
  const SentinelReport early = run_sentinel(inv, make_config("RTM", 20.0));
  const SentinelReport late = run_sentinel(inv, make_config("RTM", 120.0));
  EXPECT_LT(early.files_sent_raw, late.files_sent_raw);
  EXPECT_LT(early.bytes_on_wire, late.bytes_on_wire);
}

TEST(Sentinel, BeatsWaitingForNodesWhenWaitIsLong) {
  // Compare against a naive strategy that waits for nodes before
  // starting anything: sentinel total <= wait + compressed campaign.
  const FileInventory inv = paper_inventory("Miranda");
  const double wait = 300.0;
  SentinelReport sentinel = run_sentinel(inv, make_config("Miranda", wait));

  CampaignConfig config;
  config.src = "Anvil";
  config.dst = "Cori";
  config.compression_ratio = 10.0;
  config.rates = paper_compute_rates("Miranda");
  const CampaignReport cp =
      run_campaign(inv, TransferMode::kCompressedPerFile, config);
  EXPECT_LT(sentinel.total_seconds, wait + cp.total_seconds);
}

TEST(Sentinel, NullWaitModelThrows) {
  const FileInventory inv = paper_inventory("Miranda");
  SentinelConfig config;
  config.campaign.rates = paper_compute_rates("Miranda");
  EXPECT_THROW((void)run_sentinel(inv, std::move(config)), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
