// Tests for the GridFTP transfer cost model: the Table II shape and
// basic conservation properties.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <numeric>
#include <vector>

#include "netsim/gridftp.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

LinkProfile test_link() {
  LinkProfile link = route("Cori", "Bebop");
  link.jitter_frac = 0.0;  // determinism for property checks
  return link;
}

TEST(GridFtp, ThroughputNeverExceedsBandwidth) {
  const GridFtpModel model;
  const LinkProfile link = test_link();
  for (const std::size_t n : {1u, 10u, 1000u}) {
    const std::vector<double> files(n, 1e9);
    const TransferEstimate est = model.estimate(files, link);
    EXPECT_LE(est.effective_speed_bps, link.bandwidth_bps * 1.0001);
  }
}

TEST(GridFtp, TableTwoShapeSmallFilesAreSlower) {
  // 300 GB as 1MB/10MB/100MB/1GB files: effective speed must increase
  // steeply from the 1 MB case and plateau near the link bandwidth.
  const GridFtpModel model;
  const LinkProfile link = test_link();
  const double total = 300e9;
  std::vector<double> speeds;
  for (const double file_size : {1e6, 10e6, 100e6, 1000e6}) {
    const auto n = static_cast<std::size_t>(total / file_size);
    const std::vector<double> files(n, file_size);
    speeds.push_back(model.estimate(files, link).effective_speed_bps);
  }
  EXPECT_LT(speeds[0], speeds[1]);
  EXPECT_LT(speeds[1], speeds[2]);
  // Paper's ratio: ~4.5x between 1 MB and 100 MB files.
  EXPECT_GT(speeds[2] / speeds[0], 3.0);
  // The largest-file case stays within ~10% of the 100 MB case.
  EXPECT_NEAR(speeds[3] / speeds[2], 1.0, 0.1);
}

TEST(GridFtp, CompletionTimesAreMonotoneAndEndAtDuration) {
  const GridFtpModel model;
  const LinkProfile link = test_link();
  std::vector<double> files;
  for (int i = 0; i < 200; ++i) files.push_back(1e6 * (1 + i % 7));
  const TransferEstimate est = model.estimate(files, link);
  ASSERT_EQ(est.completion_times.size(), files.size());
  for (std::size_t i = 1; i < est.completion_times.size(); ++i) {
    EXPECT_LE(est.completion_times[i - 1], est.completion_times[i]);
  }
  EXPECT_DOUBLE_EQ(est.completion_times.back(), est.duration_s);
  EXPECT_GT(est.completion_times.front(), 0.0);
}

TEST(GridFtp, FewFilesUnderutilizeTheLink) {
  // 8 grouped files (the paper's Miranda case) cannot fill the pipe.
  const GridFtpModel model;
  const LinkProfile link = test_link();
  const std::vector<double> few(8, 12.5e9);   // 100 GB in 8 files
  const std::vector<double> many(100, 1e9);   // 100 GB in 100 files
  const double speed_few = model.estimate(few, link).effective_speed_bps;
  const double speed_many = model.estimate(many, link).effective_speed_bps;
  EXPECT_LT(speed_few, speed_many * 0.75);
}

TEST(GridFtp, DurationDecomposesIntoDataAndOverhead) {
  const GridFtpModel model;
  const LinkProfile link = test_link();
  const std::vector<double> files(100, 5e8);
  const TransferEstimate est = model.estimate(files, link);
  EXPECT_NEAR(est.duration_s, est.data_seconds + est.overhead_seconds, 1e-9);
  EXPECT_GT(est.overhead_seconds, link.startup_s);
}

TEST(GridFtp, JitterIsDeterministicPerWorkload) {
  GridFtpModel model;
  LinkProfile link = route("Cori", "Bebop");  // jitter enabled
  const std::vector<double> files(50, 1e8);
  const double d1 = model.estimate(files, link).duration_s;
  const double d2 = model.estimate(files, link).duration_s;
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(GridFtp, EmptyTransferThrows) {
  const GridFtpModel model;
  EXPECT_THROW((void)model.estimate({}, test_link()), InvalidArgument);
}

TEST(Sites, CatalogMatchesTableThree) {
  const auto& catalog = site_catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].partition, "bdwall");
  EXPECT_EQ(catalog[0].nodes, 664);
  EXPECT_EQ(catalog[2].site, "Anvil");
  EXPECT_EQ(catalog[2].cores_per_node, 128);
  EXPECT_EQ(catalog[3].site, "Cori");
  EXPECT_EQ(catalog[3].nodes, 2388);
}

TEST(Sites, RoutesExistForPaperPairs) {
  EXPECT_GT(route("Anvil", "Cori").bandwidth_bps,
            route("Anvil", "Bebop").bandwidth_bps);
  EXPECT_NO_THROW((void)route("Bebop", "Cori"));
  EXPECT_THROW((void)route("Anvil", "Mars"), NotFound);
  EXPECT_THROW((void)site("Mars"), NotFound);
}

TEST(Sites, CalibratedDirectTransfersMatchPaper) {
  // Table VIII T(NP), +-15%: the calibration contract for the model.
  const GridFtpModel model;
  struct Case {
    const char* src;
    const char* dst;
    std::size_t files;
    double bytes;
    double expected_s;
  };
  const Case cases[] = {
      {"Anvil", "Cori", 7182, 1.61e12, 446.0},   // CESM
      {"Anvil", "Bebop", 3601, 682e9, 784.0},    // RTM
      {"Bebop", "Cori", 768, 115e9, 119.0},      // Miranda
  };
  for (const auto& c : cases) {
    const std::vector<double> files(c.files, c.bytes / c.files);
    const double d = model.estimate(files, route(c.src, c.dst)).duration_s;
    EXPECT_NEAR(d / c.expected_s, 1.0, 0.15)
        << c.src << "->" << c.dst << " got " << d << "s";
  }
}

}  // namespace
}  // namespace ocelot
