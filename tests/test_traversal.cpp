// Tests for the prediction traversals: coverage and symmetry.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/ndarray.hpp"
#include "common/rng.hpp"
#include "compressor/interpolation.hpp"
#include "compressor/regression.hpp"
#include "compressor/traversal.hpp"

namespace ocelot {
namespace {

/// Every traversal must visit each linear index exactly once.
template <typename Traverse>
void expect_exact_coverage(const Shape& shape, Traverse&& traverse) {
  std::vector<float> recon(shape.size(), 0.0f);
  std::vector<int> visits(shape.size(), 0);
  traverse(recon, [&](std::size_t idx, double) -> float {
    ++visits[idx];
    return 1.0f;
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

class CoverageShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(CoverageShapes, LorenzoVisitsEachPointOnce) {
  const Shape shape = GetParam();
  expect_exact_coverage(shape, [&](std::span<float> recon, auto&& fn) {
    lorenzo_traverse<float>(shape, recon, fn);
  });
}

TEST_P(CoverageShapes, InterpVisitsEachPointOnce) {
  const Shape shape = GetParam();
  const std::size_t stride = choose_anchor_stride(shape);
  expect_exact_coverage(shape, [&](std::span<float> recon, auto&& fn) {
    interp_traverse<float>(shape, recon, stride, fn);
  });
}

TEST_P(CoverageShapes, BlockTraverseVisitsEachPointOnce) {
  const Shape shape = GetParam();
  expect_exact_coverage(shape, [&](std::span<float> recon, auto&& fn) {
    block_traverse<float>(
        shape, recon, 6,
        [](const BlockRegion&) {
          return std::pair<bool, BlockCoeffs>{false, {}};
        },
        fn);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, CoverageShapes,
    ::testing::Values(Shape(1), Shape(7), Shape(64), Shape(65), Shape(1, 9),
                      Shape(13, 17), Shape(64, 64), Shape(5, 1, 7),
                      Shape(16, 16, 16), Shape(17, 19, 23), Shape(3, 3, 3),
                      Shape(129, 2, 5)));

TEST(Lorenzo, PredictsLinearRampExactly2D) {
  // f(i,j) = 2i + 3j is reproduced exactly by order-1 Lorenzo.
  const Shape shape(8, 8);
  FloatArray data(shape);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      data.at(i, j) = static_cast<float>(2.0 * i + 3.0 * j);
    }
  }
  std::vector<float> recon(shape.size());
  double max_residual = 0.0;
  lorenzo_traverse<float>(shape, recon, [&](std::size_t idx, double pred) {
    // Skip borders where neighbors are zero-padded.
    const std::size_t i = idx / 8, j = idx % 8;
    if (i > 0 && j > 0) {
      max_residual = std::max(
          max_residual, std::abs(static_cast<double>(data[idx]) - pred));
    }
    return data[idx];  // feed originals forward
  });
  EXPECT_LT(max_residual, 1e-9);
}

TEST(AverageLorenzoError, ZeroForLinearField) {
  const Shape shape(16, 16);
  FloatArray data(shape);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      data.at(i, j) = static_cast<float>(i + j);
    }
  }
  // Interior predictions are exact; only first row/column contribute.
  EXPECT_LT(average_lorenzo_error(data), 2.0);

  // A noisy field must score strictly worse.
  FloatArray noisy(shape);
  Rng rng(77);
  for (float& v : noisy.values()) {
    v = static_cast<float>(rng.uniform(0.0, 100.0));
  }
  EXPECT_GT(average_lorenzo_error(noisy), average_lorenzo_error(data));
}

TEST(InterpTraversal, AnchorStrideSelection) {
  EXPECT_EQ(choose_anchor_stride(Shape(1000), 64), 64u);
  EXPECT_EQ(choose_anchor_stride(Shape(16), 64), 16u);
  EXPECT_EQ(choose_anchor_stride(Shape(3), 64), 2u);
  EXPECT_EQ(choose_anchor_stride(Shape(1000, 4), 64), 64u);
}

TEST(BlockRegression, FitsExactPlane) {
  const Shape shape(6, 6, 6);
  FloatArray data(shape);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      for (std::size_t k = 0; k < 6; ++k) {
        data.at(i, j, k) = static_cast<float>(1.0 + 2.0 * i - 3.0 * j + 0.5 * k);
      }
    }
  }
  BlockRegion region{{0, 0, 0}, {6, 6, 6}};
  const BlockCoeffs c = fit_block_regression(data, region);
  EXPECT_NEAR(c.b0, 1.0, 1e-4);
  EXPECT_NEAR(c.b1, 2.0, 1e-4);
  EXPECT_NEAR(c.b2, -3.0, 1e-4);
  EXPECT_NEAR(c.b3, 0.5, 1e-4);

  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      for (std::size_t k = 0; k < 6; ++k) {
        EXPECT_NEAR(predict_block(c, i, j, k), data.at(i, j, k), 1e-3);
      }
    }
  }
}

TEST(BlockRegression, PartialEdgeBlock) {
  const Shape shape(7, 5);
  FloatArray data(shape);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      data.at(i, j) = static_cast<float>(10.0 - 1.5 * i + 0.25 * j);
    }
  }
  // Edge block starting at (6, 0): a single row.
  BlockRegion region{{6, 0, 0}, {1, 5, 1}};
  const BlockCoeffs c = fit_block_regression(data, region);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(predict_block(c, 0, j, 0), data.at(6, j), 1e-3);
  }
}

}  // namespace
}  // namespace ocelot
