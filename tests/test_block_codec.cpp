// Tests for the block-parallel codec and the OCB1 block container:
// bit-exactness against the serial single-shot codec, determinism
// across thread counts, checksum rejection, and random block access.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/compressor.hpp"
#include "core/local_pipeline.hpp"
#include "datagen/datasets.hpp"
#include "exec/cluster_model.hpp"
#include "exec/parallel_codec.hpp"
#include "io/block_container.hpp"
#include "netsim/sites.hpp"

namespace ocelot {
namespace {

FloatArray smooth_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  double walk = 0.0;
  for (float& v : data.values()) {
    walk += rng.normal(0.0, 0.05);
    v = static_cast<float>(walk);
  }
  return data;
}

CompressionConfig test_config() {
  CompressionConfig config;
  config.backend = "sz3-interp";
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = 1e-3;
  return config;
}

/// Serial reference: compress each slab block with the single-shot
/// codec at the full-field resolved bound, in block order.
std::vector<Bytes> serial_block_blobs(const FloatArray& field,
                                      const CompressionConfig& config,
                                      std::size_t block_slabs) {
  CompressionConfig abs_config = config;
  abs_config.eb_mode = EbMode::kAbsolute;
  abs_config.eb = resolve_abs_eb(field, config);
  const std::size_t slab_elems =
      field.shape().dim(1) * field.shape().dim(2);
  std::vector<Bytes> blobs;
  for (const BlockSpan& span :
       plan_blocks(field.shape().dim(0), block_slabs)) {
    const Shape shape = block_shape(field.shape(), span);
    std::vector<float> data(
        field.values().begin() +
            static_cast<std::ptrdiff_t>(span.slab_begin * slab_elems),
        field.values().begin() +
            static_cast<std::ptrdiff_t>(span.slab_begin * slab_elems +
                                        shape.size()));
    blobs.push_back(compress(FloatArray(shape, std::move(data)), abs_config));
  }
  return blobs;
}

TEST(PlanBlocks, CoversEverySlabOnce) {
  for (const std::size_t dim0 : {1u, 7u, 8u, 9u, 64u}) {
    for (const std::size_t block : {1u, 3u, 8u, 100u}) {
      const auto spans = plan_blocks(dim0, block);
      std::size_t covered = 0;
      for (const auto& s : spans) {
        EXPECT_EQ(s.slab_begin, covered);
        EXPECT_GE(s.slab_count, 1u);
        EXPECT_LE(s.slab_count, block);
        covered += s.slab_count;
      }
      EXPECT_EQ(covered, dim0);
    }
  }
  EXPECT_THROW(plan_blocks(8, 0), InvalidArgument);
}

TEST(BlockCodec, RoundTripMatchesSerialCodecAtSeveralBlockSizes) {
  const FloatArray field = smooth_field(Shape(24, 10, 7), 3);
  const CompressionConfig config = test_config();
  // Block sizes: 1-slab blocks, mid-size, exact divisor, and larger
  // than the array (degenerates to a single block).
  for (const std::size_t block_slabs : {1u, 5u, 8u, 100u}) {
    const BlockCompressResult r =
        block_compress(field, config, 4, block_slabs);
    const auto reference = serial_block_blobs(field, config, block_slabs);
    EXPECT_EQ(r.container,
              build_block_container(field.shape(), block_slabs, reference))
        << "block_slabs=" << block_slabs;

    // Reconstruction is bit-exact with serially decompressing each
    // reference blob.
    const BlockDecompressResult decoded = block_decompress(r.container, 4);
    ASSERT_EQ(decoded.field.shape(), field.shape());
    std::size_t offset = 0;
    for (const auto& blob : reference) {
      const FloatArray block = decompress<float>(blob);
      for (std::size_t i = 0; i < block.size(); ++i) {
        ASSERT_EQ(decoded.field[offset + i], block[i]);
      }
      offset += block.size();
    }
  }
}

TEST(BlockCodec, SingleBlockEqualsSingleShotCodec) {
  // A block covering the whole array must serialize the exact
  // single-shot OCZ1 blob (modulo the container frame) and reconstruct
  // bit-exactly like it.
  const FloatArray field = smooth_field(Shape(12, 9), 5);
  const CompressionConfig config = test_config();
  const Bytes single = compress(field, config);

  const BlockCompressResult r = block_compress(field, config, 3, 64);
  EXPECT_EQ(r.n_blocks, 1u);
  const BlockContainerInfo info = read_block_index(r.container);
  const auto payload = block_payload(r.container, info, 0);
  EXPECT_EQ(Bytes(payload.begin(), payload.end()), single);

  const FloatArray serial = decompress<float>(single);
  const BlockDecompressResult blocked = block_decompress(r.container, 4);
  EXPECT_EQ(blocked.field.vector(), serial.vector());
}

TEST(BlockCodec, OneElementBlocksRoundTrip) {
  const FloatArray field = smooth_field(Shape(17), 9);
  CompressionConfig config = test_config();
  const BlockCompressResult r = block_compress(field, config, 4, 1);
  EXPECT_EQ(r.n_blocks, 17u);
  const BlockDecompressResult decoded = block_decompress(r.container, 4);
  const double abs_eb = resolve_abs_eb(field, config);
  EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
            abs_eb + 1e-12);
}

TEST(BlockCodec, ContainerBytesDeterministicAcrossThreadCounts) {
  const FloatArray field = smooth_field(Shape(20, 6, 5), 7);
  const CompressionConfig config = test_config();
  const BlockCompressResult base = block_compress(field, config, 1, 3);
  for (const std::size_t workers : {2u, 5u, 8u}) {
    const BlockCompressResult r = block_compress(field, config, workers, 3);
    EXPECT_EQ(r.container, base.container) << "workers=" << workers;
  }
}

TEST(BlockCodec, HonorsFullFieldErrorBound) {
  const FloatArray field = smooth_field(Shape(30, 8, 6), 13);
  const CompressionConfig config = test_config();
  const double abs_eb = resolve_abs_eb(field, config);
  for (const std::size_t block_slabs : {2u, 7u}) {
    const BlockCompressResult r =
        block_compress(field, config, 4, block_slabs);
    const BlockDecompressResult decoded = block_decompress(r.container, 4);
    EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
              abs_eb + 1e-12);
  }
}

TEST(BlockContainer, CorruptedChecksumRejected) {
  const FloatArray field = smooth_field(Shape(16, 5), 21);
  const BlockCompressResult r = block_compress(field, test_config(), 2, 4);
  const BlockContainerInfo info = read_block_index(r.container);
  ASSERT_GE(info.blocks.size(), 2u);

  // Flip one byte inside the second block's payload.
  Bytes corrupted = r.container;
  corrupted[info.blocks[1].offset + 3] ^= 0x40;
  EXPECT_THROW((void)block_decompress(corrupted, 2), CorruptStream);
  EXPECT_THROW((void)block_payload(corrupted, info, 1), CorruptStream);
  // The undamaged block is still readable via random access.
  EXPECT_NO_THROW((void)block_payload(corrupted, info, 0));
}

TEST(BlockContainer, CraftedHeaderRejectedWithoutAllocation) {
  // Implausible dimensions must throw CorruptStream, not wrap
  // Shape::size() or trigger a giant allocation.
  BytesWriter huge;
  huge.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("OCB1"), 4));
  huge.put(static_cast<std::uint8_t>(1));  // rank
  huge.put_varint(1ull << 50);             // dim0 beyond the element cap
  huge.put_varint(1);                      // block_slabs
  huge.put_varint(1ull << 50);             // count
  EXPECT_THROW((void)read_block_index(huge.bytes()), CorruptStream);

  // An index entry larger than the buffer must be rejected before any
  // payload access (no wrapped offset arithmetic).
  BytesWriter overrun;
  overrun.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("OCB1"), 4));
  overrun.put(static_cast<std::uint8_t>(1));  // rank
  overrun.put_varint(2);                      // dim0
  overrun.put_varint(1);                      // block_slabs -> 2 blocks
  overrun.put_varint(2);                      // count
  overrun.put_varint(1u << 20);               // block 0 size: way too big
  overrun.put(std::uint32_t{0});              // block 0 crc
  overrun.put_varint(4);                      // block 1 size
  overrun.put(std::uint32_t{0});              // block 1 crc
  for (int i = 0; i < 8; ++i) overrun.put(std::uint8_t{0});  // tiny body
  EXPECT_THROW((void)read_block_index(overrun.bytes()), CorruptStream);
}

TEST(BlockContainer, MalformedInputRejected) {
  const FloatArray field = smooth_field(Shape(8, 4), 22);
  const BlockCompressResult r = block_compress(field, test_config(), 1, 2);

  Bytes bad_magic = r.container;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)read_block_index(bad_magic), CorruptStream);

  Bytes truncated = r.container;
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW((void)read_block_index(truncated), CorruptStream);
}

TEST(BlockContainer, RandomBlockAccessMatchesFullDecode) {
  const FloatArray field = smooth_field(Shape(18, 4, 3), 31);
  const BlockCompressResult r = block_compress(field, test_config(), 4, 5);
  const BlockDecompressResult full = block_decompress(r.container, 4);
  const BlockContainerInfo info = read_block_index(r.container);

  const auto spans = plan_blocks(info.shape.dim(0), info.block_slabs);
  const std::size_t slab_elems = info.shape.dim(1) * info.shape.dim(2);
  for (std::size_t b = 0; b < spans.size(); ++b) {
    const FloatArray block = decompress_block(r.container, b);
    EXPECT_EQ(block.shape(), block_shape(info.shape, spans[b]));
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(block[i],
                full.field[spans[b].slab_begin * slab_elems + i]);
    }
  }
}

TEST(ParallelCodec, MixedBlobKindsDecodeTogether) {
  // One whole-file OCZ1 blob and one OCB1 container in the same batch:
  // parallel_decompress dispatches on the magic.
  const FloatArray a = smooth_field(Shape(10, 6), 41);
  const FloatArray b = smooth_field(Shape(14, 6), 42);
  const CompressionConfig config = test_config();

  std::vector<Bytes> blobs;
  blobs.push_back(compress(a, config));
  blobs.push_back(block_compress(b, config, 2, 4).container);
  const ParallelDecompressResult decoded = parallel_decompress(blobs, 3);
  ASSERT_EQ(decoded.fields.size(), 2u);
  EXPECT_EQ(decoded.fields[0].vector(), decompress<float>(blobs[0]).vector());
  EXPECT_EQ(decoded.fields[1].shape(), b.shape());
  EXPECT_LE(max_abs_error<float>(b.values(), decoded.fields[1].values()),
            resolve_abs_eb(b, config) + 1e-12);
}

TEST(ParallelCodec, BlockModeCountsBlockTasks) {
  std::vector<FloatArray> fields;
  fields.push_back(smooth_field(Shape(12, 4), 51));
  fields.push_back(smooth_field(Shape(9, 4), 52));
  const ParallelCompressResult r =
      parallel_compress(fields, test_config(), 4, 4);
  EXPECT_EQ(r.task_count, 3u + 3u);  // ceil(12/4) + ceil(9/4)
  for (const auto& blob : r.blobs) EXPECT_TRUE(is_block_container(blob));
}

TEST(LocalPipeline, BlockModeMatchesWholeFileQuality) {
  std::vector<std::string> names;
  std::vector<FloatArray> fields;
  for (auto& f : generate_application("CESM", 0.02, 8)) {
    names.push_back(f.name);
    fields.push_back(std::move(f.data));
  }
  LocalPipelineConfig config;
  config.compression = test_config();
  config.workers = 3;

  const LocalPipelineResult whole =
      run_local_pipeline(names, fields, config);
  config.block_slabs = 4;
  const LocalPipelineResult blocked =
      run_local_pipeline(names, fields, config);

  // Both honor the same resolved bound; blocked mode must too.
  EXPECT_GT(blocked.min_psnr_db, 0.0);
  double worst_eb = 0.0;
  for (const auto& f : fields) {
    worst_eb = std::max(worst_eb, resolve_abs_eb(f, config.compression));
  }
  EXPECT_LE(whole.max_error, worst_eb + 1e-12);
  EXPECT_LE(blocked.max_error, worst_eb + 1e-12);

  const ComputeRates rates = measured_compute_rates(blocked, config.workers);
  EXPECT_GT(rates.compress_bps_per_core, 0.0);
  EXPECT_GT(rates.decompress_bps_per_core, 0.0);
}

TEST(ClusterModel, BlockTasksBreakWholeFileSaturation) {
  // One 1 GB file on 64 cores: whole-file tasks saturate at the
  // single-file compute time; block tasks keep scaling.
  const std::vector<double> one_file{1e9};
  ComputeRates rates;
  const SharedFilesystem fs = site("Anvil").fs;
  const double whole =
      cluster_compress_seconds(one_file, 1, 64, rates, fs, 0.0);
  const double blocked =
      cluster_compress_seconds(one_file, 1, 64, rates, fs, 1e9 / 64.0);
  EXPECT_GT(whole, blocked * 4.0);
  // block_bytes = 0 stays exactly the legacy whole-file model.
  EXPECT_DOUBLE_EQ(
      whole, cluster_compress_seconds(one_file, 1, 64, rates, fs));

  const double dwhole =
      cluster_decompress_seconds(one_file, 1, 64, rates, fs, 0.0);
  const double dblocked =
      cluster_decompress_seconds(one_file, 1, 64, rates, fs, 1e9 / 64.0);
  EXPECT_GE(dwhole, dblocked);
}

TEST(BlockContainerWriter, StreamedBytesMatchBufferedAssembly) {
  // The streaming writer (begin_block sink / append_block + finish)
  // must emit exactly the bytes of the one-shot builder.
  const std::vector<Bytes> payloads = {
      {1, 2, 3, 4}, {5, 6}, {7, 8, 9, 10, 11}};
  const Shape shape(5, 2);
  const Bytes reference = build_block_container(shape, 2, payloads);

  BlockContainerWriter writer(2);
  // Mix both append styles: a sink-streamed block and copied blocks.
  ByteSink& sink = writer.begin_block();
  sink.put_bytes(payloads[0]);
  writer.end_block();
  writer.append_block(payloads[1]);
  writer.append_block(payloads[2]);
  EXPECT_EQ(writer.block_count(), 3u);
  EXPECT_EQ(writer.payload_bytes(), 4u + 2u + 5u);
  EXPECT_EQ(writer.finish(shape), reference);
}

TEST(BlockContainerWriter, MisuseThrows) {
  {
    BlockContainerWriter writer(2);
    (void)writer.begin_block();
    EXPECT_THROW((void)writer.begin_block(), InvalidArgument);  // reopen
    EXPECT_THROW((void)writer.finish(Shape(2)), InvalidArgument);  // open
  }
  {
    BlockContainerWriter writer(2);
    (void)writer.begin_block();
    EXPECT_THROW(writer.end_block(), InvalidArgument);  // empty payload
  }
  {
    BlockContainerWriter writer(2);
    writer.append_block(Bytes{1});
    // 1 block appended, but Shape(5) at block_slabs=2 plans 3.
    EXPECT_THROW((void)writer.finish(Shape(5)), InvalidArgument);
  }
  EXPECT_THROW(BlockContainerWriter(0), InvalidArgument);
}

TEST(ClusterModel, CalibrateRatesInvertsMeasurement) {
  const ComputeRates rates = calibrate_rates(8e8, 2.0, 0.5, 4);
  EXPECT_DOUBLE_EQ(rates.compress_bps_per_core, 8e8 / (2.0 * 4));
  EXPECT_DOUBLE_EQ(rates.decompress_bps_per_core, 8e8 / (0.5 * 4));
  EXPECT_THROW(calibrate_rates(0.0, 1.0, 1.0, 4), InvalidArgument);
}

}  // namespace
}  // namespace ocelot
