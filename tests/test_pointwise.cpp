// Tests for the pointwise-relative error-bound mode (extension).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "compressor/pointwise.hpp"
#include "datagen/datasets.hpp"

namespace ocelot {
namespace {

FloatArray wide_dynamic_range_field(std::uint64_t seed) {
  // Values spanning ~7 decades with both signs and exact zeros — the
  // regime where absolute bounds destroy small values.
  FloatArray data(Shape(40, 40));
  Rng rng(seed);
  for (float& v : data.values()) {
    const double mag = std::pow(10.0, rng.uniform(-4.0, 3.0));
    v = static_cast<float>(rng.chance(0.5) ? mag : -mag);
  }
  data.at(0, 0) = 0.0f;
  data.at(7, 7) = 0.0f;
  return data;
}

class PointwiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PointwiseSweep, RelativeBoundHoldsEverywhere) {
  const double rel = GetParam();
  const FloatArray data = wide_dynamic_range_field(3);
  const Bytes blob = compress_pointwise_rel(data, rel);
  const FloatArray recon = decompress_pointwise_rel(blob);
  ASSERT_EQ(recon.shape(), data.shape());

  for (std::size_t i = 0; i < data.size(); ++i) {
    const double x = data[i];
    const double xr = recon[i];
    // A float cast of exp() adds at most ~1 ulp of relative error.
    EXPECT_LE(std::abs(xr - x), rel * std::abs(x) + 1e-7 * std::abs(x))
        << "at " << i << ": " << x << " vs " << xr;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, PointwiseSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 1e-1));

TEST(Pointwise, ZerosAreExact) {
  const FloatArray data = wide_dynamic_range_field(4);
  const FloatArray recon =
      decompress_pointwise_rel(compress_pointwise_rel(data, 1e-2));
  EXPECT_EQ(recon.at(0, 0), 0.0f);
  EXPECT_EQ(recon.at(7, 7), 0.0f);
}

TEST(Pointwise, SignsArePreserved) {
  const FloatArray data = wide_dynamic_range_field(5);
  const FloatArray recon =
      decompress_pointwise_rel(compress_pointwise_rel(data, 1e-1));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::signbit(data[i]), std::signbit(recon[i])) << i;
  }
}

TEST(Pointwise, NonFiniteSurviveVerbatim) {
  FloatArray data = wide_dynamic_range_field(6);
  data.at(3, 3) = std::numeric_limits<float>::quiet_NaN();
  data.at(9, 9) = std::numeric_limits<float>::infinity();
  const FloatArray recon =
      decompress_pointwise_rel(compress_pointwise_rel(data, 1e-2));
  EXPECT_TRUE(std::isnan(recon.at(3, 3)));
  EXPECT_TRUE(std::isinf(recon.at(9, 9)));
}

TEST(Pointwise, BeatsAbsoluteBoundOnSmallValues) {
  // With an absolute bound sized for the largest values, small values
  // lose all precision; the pointwise mode preserves them.
  const FloatArray data = wide_dynamic_range_field(7);
  const FloatArray recon =
      decompress_pointwise_rel(compress_pointwise_rel(data, 1e-2));
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != 0.0f) {
      worst_rel = std::max(
          worst_rel, std::abs(static_cast<double>(recon[i]) - data[i]) /
                         std::abs(static_cast<double>(data[i])));
    }
  }
  EXPECT_LE(worst_rel, 1e-2 + 1e-6);
}

TEST(Pointwise, CompressesWideRangeData) {
  const FloatArray data = generate_field("Nyx", "baryon_density", 0.05, 8);
  const Bytes blob = compress_pointwise_rel(data, 1e-2);
  EXPECT_LT(blob.size(), data.byte_size());
}

TEST(Pointwise, InvalidArgsThrow) {
  const FloatArray data = wide_dynamic_range_field(9);
  EXPECT_THROW((void)compress_pointwise_rel(data, 0.0), InvalidArgument);
  EXPECT_THROW((void)compress_pointwise_rel(data, 1.5), InvalidArgument);
  FloatArray empty;
  EXPECT_THROW((void)compress_pointwise_rel(empty, 0.1), InvalidArgument);
}

TEST(Pointwise, CorruptBlobThrows) {
  const FloatArray data = wide_dynamic_range_field(10);
  Bytes blob = compress_pointwise_rel(data, 1e-2);
  blob[0] = 'X';
  EXPECT_THROW((void)decompress_pointwise_rel(blob), CorruptStream);

  Bytes truncated = compress_pointwise_rel(data, 1e-2);
  truncated.resize(truncated.size() - 10);
  EXPECT_THROW((void)decompress_pointwise_rel(truncated), CorruptStream);
}

}  // namespace
}  // namespace ocelot
