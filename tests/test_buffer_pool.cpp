// Tests for the streaming scratch pools: acquire/release reuse,
// lease RAII under exceptions, stats accounting, and concurrent use
// from the executor's worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/buffer_pool.hpp"
#include "exec/thread_pool.hpp"

namespace ocelot {
namespace {

TEST(BufferPool, AcquireReleasePreservesCapacity) {
  BufferPool pool;
  Bytes a = pool.acquire(1024);
  EXPECT_GE(a.capacity(), 1024u);
  a.resize(600);
  pool.release(std::move(a));

  // The same storage comes back cleared but with capacity intact.
  Bytes b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 1024u);

  const auto stats = pool.stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
}

TEST(BufferPool, StatsTrackOutstandingAndFree) {
  BufferPool pool;
  Bytes a = pool.acquire();
  Bytes b = pool.acquire();
  EXPECT_EQ(pool.stats().outstanding, 2u);
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().outstanding, 1u);
  EXPECT_EQ(pool.stats().free, 1u);
  pool.release(std::move(b));
  pool.trim();
  EXPECT_EQ(pool.stats().free, 0u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, PooledBufferReleasesOnDestruction) {
  BufferPool pool;
  {
    PooledBuffer lease(pool, 64);
    lease->push_back(7);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().free, 1u);
}

TEST(BufferPool, PooledBufferReleasesWhenOwnerThrows) {
  BufferPool pool;
  const auto throwing_stage = [&] {
    PooledBuffer lease(pool, 128);
    lease->assign(100, 1);
    throw std::runtime_error("stage failure");
  };
  EXPECT_THROW(throwing_stage(), std::runtime_error);
  // The buffer went back to the pool, not out of circulation.
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().free, 1u);
}

TEST(BufferPool, PooledBufferMoveTransfersTheLease) {
  BufferPool pool;
  PooledBuffer a(pool);
  a->push_back(42);
  PooledBuffer b = std::move(a);
  EXPECT_FALSE(a.leased());
  EXPECT_TRUE(b.leased());
  EXPECT_EQ((*b)[0], 42);
  b.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(ScratchPool, LeaseRoundTripAndTake) {
  ScratchPool<float> pool;
  {
    ScratchLease<float> lease(pool, 32);
    lease->assign(10, 1.5f);
    std::vector<float> taken = lease.take();  // disarms the lease
    EXPECT_EQ(taken.size(), 10u);
    pool.release(std::move(taken));
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().free, 1u);
  EXPECT_EQ(pool.stats().created, 1u);
}

TEST(BufferPool, SteadyStateReusesAcrossParallelForBatches) {
  // The executor's worker threads are created per parallel_for call;
  // a process-wide pool is what carries capacity across calls. After
  // a warm-up batch, later batches must be served from the free list.
  BufferPool pool;
  const auto batch = [&] {
    parallel_for(64, 4, [&](std::size_t) {
      PooledBuffer lease(pool, 256);
      lease->assign(200, 9);
    });
  };
  batch();
  batch();
  batch();
  const auto after = pool.stats();
  // 192 acquires total; fresh buffers are bounded by worker
  // concurrency (4), everything else is served from the free list.
  EXPECT_LE(after.created, 4u);
  EXPECT_EQ(after.created + after.reused, 192u);
  EXPECT_GE(after.reused, 188u);
  EXPECT_EQ(after.outstanding, 0u);
}

TEST(BufferPool, SharedAndLocalSingletonsAreDistinct) {
  BufferPool& shared = BufferPool::shared();
  BufferPool& local = BufferPool::local();
  EXPECT_NE(&shared, &local);
  EXPECT_EQ(&shared, &BufferPool::shared());
  EXPECT_EQ(&local, &BufferPool::local());
}

TEST(BufferPool, FreeListIsBounded) {
  BufferPool pool;
  std::vector<Bytes> leased;
  for (int i = 0; i < 200; ++i) leased.push_back(pool.acquire(16));
  for (auto& b : leased) pool.release(std::move(b));
  // Releases beyond the cap destroy buffers instead of hoarding them.
  EXPECT_LE(pool.stats().free, 64u);
}

}  // namespace
}  // namespace ocelot
