// Unit tests for RLE and the pluggable lossless backend chain.
#include <gtest/gtest.h>

#include "codec/lossless.hpp"
#include "codec/rle.hpp"
#include "common/rng.hpp"

namespace ocelot {
namespace {

TEST(Rle, EmptyInput) {
  EXPECT_TRUE(rle_decompress(rle_compress({})).empty());
}

TEST(Rle, NoRuns) {
  const Bytes input = {1, 2, 3, 4, 5};
  EXPECT_EQ(rle_decompress(rle_compress(input)), input);
}

TEST(Rle, PureRun) {
  const Bytes input(10000, 9);
  const Bytes packed = rle_compress(input);
  EXPECT_EQ(rle_decompress(packed), input);
  EXPECT_LT(packed.size(), 16u);
}

TEST(Rle, ExactDoubleByteIsNotExpandedWrongly) {
  const Bytes input = {5, 5, 6, 6, 7};
  EXPECT_EQ(rle_decompress(rle_compress(input)), input);
}

TEST(Rle, MixedRunsAndLiterals) {
  Rng rng(11);
  Bytes input;
  for (int block = 0; block < 200; ++block) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto run = static_cast<std::size_t>(rng.uniform_int(1, 50));
    input.insert(input.end(), run, v);
  }
  EXPECT_EQ(rle_decompress(rle_compress(input)), input);
}

TEST(Rle, RunOverflowThrows) {
  BytesWriter w;
  w.put_varint(3);            // claims 3 bytes
  w.put<std::uint8_t>(1);
  w.put<std::uint8_t>(1);
  w.put_varint(100);          // run of 102 > 3
  EXPECT_THROW((void)rle_decompress(w.bytes()), CorruptStream);
}

/// Sink-form lossless compress/decompress (the Bytes-returning
/// overloads are deprecated; tests drive the streaming entry points).
Bytes lossless_pack(const Bytes& input, LosslessBackend backend) {
  Bytes out;
  ByteSink sink(out);
  lossless_compress(input, backend, sink);
  return out;
}

Bytes lossless_unpack(const Bytes& packed) {
  Bytes out;
  lossless_decompress_into(packed, out);
  return out;
}

TEST(Lossless, AllBackendsRoundTrip) {
  Rng rng(12);
  Bytes input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(rng.chance(0.8)
                        ? 0
                        : static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  for (const auto backend :
       {LosslessBackend::kNone, LosslessBackend::kLzb,
        LosslessBackend::kRleLzb}) {
    const Bytes packed = lossless_pack(input, backend);
    EXPECT_EQ(lossless_unpack(packed), input)
        << "backend=" << to_string(backend);
  }
}

TEST(Lossless, BackendIdIsEmbedded) {
  const Bytes input(100, 3);
  const Bytes packed = lossless_pack(input, LosslessBackend::kLzb);
  EXPECT_EQ(packed[0], static_cast<std::uint8_t>(LosslessBackend::kLzb));
}

TEST(Lossless, UnknownBackendIdThrows) {
  Bytes bad = {99, 1, 2, 3};
  EXPECT_THROW((void)lossless_unpack(bad), CorruptStream);
}

TEST(Lossless, SparseDataPrefersRleChain) {
  // Heavily sparse stream: RLE+LZB should beat plain storage by a lot.
  const Bytes input(50000, 0);
  const Bytes packed = lossless_pack(input, LosslessBackend::kRleLzb);
  EXPECT_LT(packed.size(), 100u);
}

TEST(Lossless, NamesAreStable) {
  EXPECT_EQ(to_string(LosslessBackend::kNone), "none");
  EXPECT_EQ(to_string(LosslessBackend::kLzb), "lzb");
  EXPECT_EQ(to_string(LosslessBackend::kRleLzb), "rle+lzb");
}

}  // namespace
}  // namespace ocelot
