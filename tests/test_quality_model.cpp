// Tests for the quality-prediction models (tree, forest, ad-hoc).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "predictor/quality_model.hpp"

namespace ocelot {
namespace {

/// Synthetic training samples with a learnable structure: ratio driven
/// by p0/rrle, time by element count and entropy, PSNR by log-eb.
std::vector<QualitySample> make_samples(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<QualitySample> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    QualitySample s;
    const double log_eb = rng.uniform(-6.0, -1.0);
    const double p0 = rng.uniform(0.0, 1.0);
    const double big_p0 = rng.uniform(0.1, 0.9);
    const double entropy = rng.uniform(1.0, 8.0);
    const double rrle = 1.0 / ((1.0 - p0) * big_p0 + (1.0 - big_p0));
    s.features = {log_eb, 2.0,      0.0,  1.0,  1.0, entropy,
                  0.01,   p0,       big_p0, (1.0 - p0) * 10.0, rrle};
    s.n_elements = static_cast<std::size_t>(rng.uniform_int(10000, 200000));
    s.compression_ratio = 1.5 + 40.0 * p0 * p0 + rng.normal(0.0, 0.3);
    s.compression_ratio = std::max(1.0, s.compression_ratio);
    const double per_elem = 1e-8 * (1.0 + entropy / 4.0);
    s.compress_seconds = per_elem * static_cast<double>(s.n_elements);
    s.psnr_db = 30.0 - 18.0 * log_eb + rng.normal(0.0, 2.0);
    s.group = i % 3;
    samples.push_back(s);
  }
  return samples;
}

TEST(QualityModel, LearnsRatioStructure) {
  const auto train = make_samples(600, 1);
  const auto test = make_samples(150, 2);
  const QualityModel model = QualityModel::train(train);

  std::vector<double> truth, pred;
  for (const auto& s : test) {
    truth.push_back(std::log2(s.compression_ratio));
    pred.push_back(
        std::log2(model.predict(s.features, s.n_elements).compression_ratio));
  }
  const RegressionMetrics m = evaluate_regression(truth, pred);
  EXPECT_GT(m.r2, 0.8) << "log-ratio prediction should capture structure";
}

TEST(QualityModel, TimeScalesWithElementCount) {
  const auto train = make_samples(600, 3);
  const QualityModel model = QualityModel::train(train);
  const auto& probe = train.front();
  const double t_small = model.predict(probe.features, 10000).compress_seconds;
  const double t_large =
      model.predict(probe.features, 1000000).compress_seconds;
  EXPECT_NEAR(t_large / t_small, 100.0, 1.0);
}

TEST(QualityModel, PsnrTracksErrorBound) {
  const auto train = make_samples(800, 4);
  const QualityModel model = QualityModel::train(train);
  FeatureVector tight = train.front().features;
  FeatureVector loose = tight;
  tight[0] = -6.0;
  loose[0] = -1.0;
  EXPECT_GT(model.predict(tight, 1000).psnr_db,
            model.predict(loose, 1000).psnr_db);
}

TEST(QualityModel, EmptyTrainingThrows) {
  EXPECT_THROW((void)QualityModel::train({}), InvalidArgument);
}

TEST(ForestQualityModel, ComparableToTree) {
  const auto train = make_samples(500, 5);
  const auto test = make_samples(100, 6);
  const QualityModel tree_model = QualityModel::train(train);
  const ForestQualityModel forest_model = ForestQualityModel::train(train);

  double tree_se = 0.0, forest_se = 0.0;
  for (const auto& s : test) {
    const double t = std::log2(s.compression_ratio);
    const double tp = std::log2(
        tree_model.predict(s.features, s.n_elements).compression_ratio);
    const double fp = std::log2(
        forest_model.predict(s.features, s.n_elements).compression_ratio);
    tree_se += (tp - t) * (tp - t);
    forest_se += (fp - t) * (fp - t);
  }
  EXPECT_LT(forest_se, tree_se * 1.5);
}

TEST(AdHocEstimator, ExactWhenModelMatches) {
  // Build samples whose true ratio follows the formula with C1 = 2.
  std::vector<QualitySample> samples;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    QualitySample s;
    const double p0 = rng.uniform(0.2, 0.95);
    const double big_p0 = rng.uniform(0.2, 0.8);
    s.features = {};
    s.features[7] = p0;
    s.features[8] = big_p0;
    s.compression_ratio = 1.0 / (2.0 * (1.0 - p0) * big_p0 + (1.0 - big_p0));
    samples.push_back(s);
  }
  const AdHocRatioEstimator est = AdHocRatioEstimator::fit(samples);
  EXPECT_NEAR(est.c1, 2.0, 1e-6);
  for (const auto& s : samples) {
    EXPECT_NEAR(est.estimate(s.features[7], s.features[8]),
                s.compression_ratio, 1e-6);
  }
}

TEST(AdHocEstimator, C1DoesNotTransferAcrossRegimes) {
  // Fit C1 on a Nyx-like regime, evaluate on a Miranda-like regime
  // whose ratio law differs: errors should blow up (the Fig. 6 story).
  Rng rng(8);
  std::vector<QualitySample> nyx;
  for (int i = 0; i < 100; ++i) {
    QualitySample s;
    const double p0 = rng.uniform(0.3, 0.9);
    const double big_p0 = rng.uniform(0.3, 0.7);
    s.features[7] = p0;
    s.features[8] = big_p0;
    s.compression_ratio =
        1.0 / (1.0 * (1.0 - p0) * big_p0 + (1.0 - big_p0));
    nyx.push_back(s);
  }
  const AdHocRatioEstimator est = AdHocRatioEstimator::fit(nyx);

  double worst_rel_err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double p0 = rng.uniform(0.3, 0.9);
    const double big_p0 = rng.uniform(0.3, 0.7);
    // Miranda-like: ratio deviates non-linearly from the formula.
    const double truth =
        3.0 * std::pow(1.0 / ((1.0 - p0) * big_p0 + (1.0 - big_p0)), 1.6);
    const double guess = est.estimate(p0, big_p0);
    worst_rel_err =
        std::max(worst_rel_err, std::abs(guess - truth) / truth);
  }
  EXPECT_GT(worst_rel_err, 0.5);
}

}  // namespace
}  // namespace ocelot
