// Tests for the online adaptive advisor and the OCB1 v1.1 per-block
// backend index: mixed compressor families in one container, legacy
// v1.0 reads, corrupt-backend-byte rejection, byte-determinism of the
// adaptive pipeline across thread counts, error-bound compliance, and
// the trained-model prediction path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "core/adaptive.hpp"
#include "core/local_pipeline.hpp"
#include "datagen/datasets.hpp"
#include "exec/parallel_codec.hpp"
#include "io/block_container.hpp"

namespace ocelot {
namespace {

FloatArray smooth_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  double walk = 0.0;
  for (float& v : data.values()) {
    walk += rng.normal(0.0, 0.05);
    v = static_cast<float>(walk);
  }
  return data;
}

/// A rougher field: oscillation plus noise, so backends rank
/// differently than on the smooth random walk.
FloatArray rough_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  FloatArray data(shape);
  std::size_t i = 0;
  for (float& v : data.values()) {
    v = static_cast<float>(std::sin(static_cast<double>(i++) * 0.37) +
                           rng.normal(0.0, 0.2));
  }
  return data;
}

CompressionConfig rel_config(double eb = 1e-3) {
  CompressionConfig config;
  config.eb_mode = EbMode::kValueRangeRel;
  config.eb = eb;
  return config;
}

std::vector<FloatArray> mixed_fields() {
  std::vector<FloatArray> fields;
  fields.push_back(smooth_field(Shape(24, 12, 7), 3));
  fields.push_back(rough_field(Shape(30, 16, 5), 4));
  return fields;
}

TEST(BlockContainerV11, MixedBackendsRoundTripAndIndexNamesEveryBlock) {
  const FloatArray field = smooth_field(Shape(12, 9, 5), 11);
  const CompressionConfig config = rel_config();
  const double abs_eb = resolve_abs_eb(field, config);

  // Compress each 4-slab block with a different registered backend.
  const auto spans = plan_blocks(field.shape().dim(0), 4);
  const auto backends = BackendRegistry::instance().list();
  ASSERT_GE(backends.size(), 2u);
  const std::size_t slab_elems =
      field.shape().dim(1) * field.shape().dim(2);
  BlockContainerWriter writer(4);
  std::vector<std::uint8_t> expected_ids;
  for (std::size_t b = 0; b < spans.size(); ++b) {
    CompressionConfig block_config = config;
    block_config.backend = backends[b % backends.size()]->name();
    block_config.eb_mode = EbMode::kAbsolute;
    block_config.eb = abs_eb;
    expected_ids.push_back(backends[b % backends.size()]->wire_id());
    const Shape shape = block_shape(field.shape(), spans[b]);
    std::vector<float> data(
        field.values().begin() +
            static_cast<std::ptrdiff_t>(spans[b].slab_begin * slab_elems),
        field.values().begin() +
            static_cast<std::ptrdiff_t>(spans[b].slab_begin * slab_elems +
                                        shape.size()));
    writer.append_block(
        compress(FloatArray(shape, std::move(data)), block_config));
  }
  const Bytes container = writer.finish(field.shape());

  // Per-block backend ids are recoverable from the index alone.
  const BlockContainerInfo info = read_block_index(container);
  EXPECT_TRUE(info.has_backend_ids);
  ASSERT_EQ(info.blocks.size(), expected_ids.size());
  for (std::size_t b = 0; b < expected_ids.size(); ++b) {
    EXPECT_EQ(info.blocks[b].backend_id, expected_ids[b]) << "block " << b;
  }

  // The mixed container decodes through the standard block-parallel
  // path, honoring the shared bound.
  const BlockDecompressResult decoded = block_decompress(container, 3);
  ASSERT_EQ(decoded.field.shape(), field.shape());
  EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
            abs_eb + 1e-12);
}

TEST(BlockContainerV11, LegacyV10ContainerStillReads) {
  const FloatArray field = smooth_field(Shape(8, 6), 21);
  const CompressionConfig config = rel_config();
  CompressionConfig abs_config = config;
  abs_config.eb_mode = EbMode::kAbsolute;
  abs_config.eb = resolve_abs_eb(field, config);

  // Build v1.0 bytes by hand: no version byte, no backend bytes.
  const auto spans = plan_blocks(field.shape().dim(0), 4);
  std::vector<Bytes> payloads;
  const std::size_t slab_elems = field.shape().dim(1);
  for (const auto& span : spans) {
    const Shape shape = block_shape(field.shape(), span);
    std::vector<float> data(
        field.values().begin() +
            static_cast<std::ptrdiff_t>(span.slab_begin * slab_elems),
        field.values().begin() +
            static_cast<std::ptrdiff_t>(span.slab_begin * slab_elems +
                                        shape.size()));
    payloads.push_back(compress(FloatArray(shape, std::move(data)),
                                abs_config));
  }
  BytesWriter legacy;
  legacy.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("OCB1"), 4));
  legacy.put(static_cast<std::uint8_t>(2));  // rank — no version byte
  legacy.put_varint(field.shape().dim(0));
  legacy.put_varint(field.shape().dim(1));
  legacy.put_varint(4);  // block_slabs
  legacy.put_varint(payloads.size());
  for (const auto& payload : payloads) {
    legacy.put_varint(payload.size());
    legacy.put(crc32(payload));
  }
  for (const auto& payload : payloads) legacy.put_bytes(payload);

  const BlockContainerInfo info = read_block_index(legacy.bytes());
  EXPECT_FALSE(info.has_backend_ids);
  for (const auto& entry : info.blocks) {
    EXPECT_EQ(entry.backend_id, kUnknownBackendId);
  }
  const BlockDecompressResult decoded = block_decompress(legacy.bytes(), 2);
  EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
            abs_config.eb + 1e-12);
}

TEST(BlockContainerV11, CorruptBackendByteRejected) {
  const FloatArray field = smooth_field(Shape(12, 6), 23);
  const BlockCompressResult r = block_compress(field, rel_config(), 2, 4);
  const BlockContainerInfo info = read_block_index(r.container);
  ASSERT_TRUE(info.has_backend_ids);
  ASSERT_GE(info.blocks.size(), 2u);

  // The final index entry's backend byte sits immediately before the
  // first payload. Flipping it desynchronizes index and payload header.
  Bytes corrupted = r.container;
  corrupted[info.blocks.front().offset - 1] ^= 0x2A;
  const BlockContainerInfo bad = read_block_index(corrupted);
  const std::size_t last = bad.blocks.size() - 1;
  EXPECT_THROW((void)block_payload(corrupted, bad, last), CorruptStream);
  EXPECT_THROW((void)block_decompress(corrupted, 2), CorruptStream);
  // Other blocks stay readable via random access.
  EXPECT_NO_THROW((void)block_payload(corrupted, bad, 0));
}

TEST(BlockContainerV11, TruncatedMixedContainerRejected) {
  const FloatArray field = smooth_field(Shape(10, 5), 25);
  const BlockCompressResult r = block_compress(field, rel_config(), 2, 3);
  for (std::size_t cut = 1; cut < r.container.size(); cut += 7) {
    Bytes truncated(r.container.begin(),
                    r.container.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(
        {
          const BlockContainerInfo info = read_block_index(truncated);
          for (std::size_t b = 0; b < info.blocks.size(); ++b) {
            (void)block_payload(truncated, info, b);
          }
        },
        Error)
        << "cut " << cut;
  }
}

TEST(AdaptivePolicy, ByteDeterministicAcrossThreadCounts) {
  const std::vector<FloatArray> fields = mixed_fields();
  const CompressionConfig config = rel_config();
  std::vector<Bytes> reference;
  for (const std::size_t workers : {1u, 2u, 5u}) {
    AdvisorPolicy policy;  // fresh policy: same seed, same cold state
    const ParallelCompressResult r =
        parallel_compress(fields, config, workers, 4, &policy);
    if (reference.empty()) {
      reference = r.blobs;
    } else {
      ASSERT_EQ(r.blobs.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(r.blobs[i], reference[i])
            << "workers=" << workers << " field=" << i;
      }
    }
  }
}

TEST(AdaptivePolicy, HonorsFieldBoundAndRecordsRecoverableDecisions) {
  const std::vector<FloatArray> fields = mixed_fields();
  const CompressionConfig config = rel_config();
  AdvisorPolicy policy;
  const ParallelCompressResult r =
      parallel_compress(fields, config, 2, 4, &policy);

  const ParallelDecompressResult decoded = parallel_decompress(r.blobs, 2);
  std::size_t log_row = 0;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const double abs_eb = resolve_abs_eb(fields[i], config);
    EXPECT_LE(max_abs_error<float>(fields[i].values(),
                                   decoded.fields[i].values()),
              abs_eb + 1e-12)
        << "field " << i;

    // Container index and the policy's decision log agree block by
    // block — the advise table is recoverable from the output alone.
    const BlockContainerInfo info = read_block_index(r.blobs[i]);
    EXPECT_TRUE(info.has_backend_ids);
    for (std::size_t b = 0; b < info.blocks.size(); ++b, ++log_row) {
      // Rows land in decision order (calibration wave first), so match
      // by (field, block) instead of position.
      const auto& log = policy.log();
      const auto it = std::find_if(
          log.begin(), log.end(), [&](const AdaptiveDecisionRecord& rec) {
            return rec.field == i && rec.block == b;
          });
      ASSERT_NE(it, log.end());
      EXPECT_EQ(info.blocks[b].backend_id, it->backend_id)
          << "field " << i << " block " << b;
      EXPECT_LE(it->abs_eb, abs_eb * (1.0 + 1e-12));
      EXPECT_GT(it->observed_ratio, 0.0);
    }
  }
  EXPECT_EQ(policy.log().size(), log_row);
  EXPECT_EQ(policy.summary().blocks, log_row);
}

TEST(AdaptivePolicy, MatchesBestFixedBackendOnMixedFields) {
  const std::vector<FloatArray> fields = mixed_fields();
  const CompressionConfig config = rel_config();

  double best_fixed = 0.0;
  for (const CompressorBackend* backend :
       BackendRegistry::instance().list()) {
    CompressionConfig fixed = config;
    fixed.backend = backend->name();
    best_fixed =
        std::max(best_fixed, parallel_compress(fields, fixed, 2, 4).ratio());
  }

  AdvisorPolicy policy;
  const double adaptive =
      parallel_compress(fields, config, 2, 4, &policy).ratio();
  // Keep-best duels mean adaptive cannot lose a dueled block, and the
  // leader tracks the per-field winner; a small slack absorbs blocks
  // decided before the first duel feedback.
  EXPECT_GE(adaptive, best_fixed * 0.95)
      << "adaptive " << adaptive << " vs best fixed " << best_fixed;
}

TEST(AdaptivePolicy, EbScaleCandidatesTightenUnderQualityFloor) {
  const FloatArray field = rough_field(Shape(24, 10, 6), 9);
  const CompressionConfig config = rel_config(1e-2);
  const double abs_eb = resolve_abs_eb(field, config);

  AdaptiveOptions options;
  options.eb_scales = {1.0, 0.25};
  options.min_psnr_db = 70.0;  // the loose bound cannot reach this
  AdvisorPolicy policy(options);
  const BlockCompressResult r = block_compress(field, config, 2, 4, &policy);

  bool tightened = false;
  for (const AdaptiveDecisionRecord& record : policy.log()) {
    EXPECT_LE(record.abs_eb, abs_eb * (1.0 + 1e-12));
    if (record.abs_eb < abs_eb * 0.5) tightened = true;
  }
  EXPECT_TRUE(tightened) << "quality floor never tightened a block bound";

  const BlockDecompressResult decoded = block_decompress(r.container, 2);
  EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
            abs_eb + 1e-12);
}

TEST(AdaptivePolicy, TrainedModelPathIsDeterministicAndBounded) {
  // Tiny quality model trained on real round trips of both candidate
  // families, then used as the policy's predictor.
  std::vector<QualitySample> samples;
  const std::vector<FloatArray> train = mixed_fields();
  for (const FloatArray& data : train) {
    for (const char* backend : {"sz3-interp", "lorenzo"}) {
      for (const double eb : {1e-2, 1e-3, 1e-4}) {
        CompressionConfig config = rel_config(eb);
        config.backend = backend;
        const RoundTripStats stats = measure_roundtrip(data, config);
        QualitySample sample;
        sample.features = make_feature_vector(data, config, 20);
        sample.compression_ratio = stats.compression_ratio;
        sample.compress_seconds = stats.compress_seconds;
        sample.psnr_db = stats.psnr_db;
        sample.n_elements = data.size();
        samples.push_back(sample);
      }
    }
  }
  const QualityModel model = QualityModel::train(samples);

  AdaptiveOptions options;
  options.model = &model;
  options.backends = {"sz3-interp", "lorenzo"};
  const FloatArray field = smooth_field(Shape(20, 8, 6), 31);
  const CompressionConfig config = rel_config();

  Bytes reference;
  for (const std::size_t workers : {1u, 3u}) {
    AdvisorPolicy policy(options);
    const BlockCompressResult r =
        block_compress(field, config, workers, 4, &policy);
    if (reference.empty()) {
      reference = r.container;
    } else {
      EXPECT_EQ(r.container, reference);
    }
    const BlockDecompressResult decoded = block_decompress(r.container, 2);
    EXPECT_LE(max_abs_error<float>(field.values(), decoded.field.values()),
              resolve_abs_eb(field, config) + 1e-12);
    for (const AdaptiveDecisionRecord& record : policy.log()) {
      EXPECT_GT(record.predicted_ratio, 0.0);
    }
  }
}

/// A policy that tries to loosen the bound must be rejected by the
/// executor (the field-level error bound is non-negotiable).
class LooseningPolicy final : public BlockPolicy {
 public:
  void begin(std::size_t, std::size_t, const CompressionConfig& base) override {
    base_ = base;
  }
  bool wants_probe(const BlockContext&) const override { return false; }
  void probe(const BlockContext&, const FloatArray&) override {}
  BlockDecision decide(const BlockContext& ctx) override {
    BlockDecision decision;
    decision.config = base_;
    decision.config.eb_mode = EbMode::kAbsolute;
    decision.config.eb = ctx.field_abs_eb * 2.0;  // too loose
    return decision;
  }
  void observe(const BlockContext&, const BlockDecision&,
               const BlockOutcome&) override {}

 private:
  CompressionConfig base_;
};

TEST(BlockPolicyContract, LoosenedBoundRejected) {
  const FloatArray field = smooth_field(Shape(8, 4), 41);
  LooseningPolicy policy;
  EXPECT_THROW((void)block_compress(field, rel_config(), 1, 2, &policy),
               InvalidArgument);
}

TEST(BlockPolicyContract, PolicyRequiresBlockMode) {
  AdvisorPolicy policy;
  std::vector<FloatArray> fields;
  fields.push_back(smooth_field(Shape(6, 4), 43));
  EXPECT_THROW(
      (void)parallel_compress(fields, rel_config(), 1, /*block_slabs=*/0,
                              &policy),
      InvalidArgument);
}

TEST(LocalPipeline, AdaptiveModeRunsEndToEndAndReportsMix) {
  std::vector<std::string> names{"a", "b"};
  std::vector<FloatArray> fields = mixed_fields();
  LocalPipelineConfig config;
  config.compression = rel_config();
  config.workers = 2;
  config.adaptive = true;  // block_slabs defaults to 8

  const LocalPipelineResult result =
      run_local_pipeline(names, fields, config);
  EXPECT_GT(result.adaptive.blocks, 0u);
  EXPECT_FALSE(result.adaptive.backend_blocks.empty());
  double worst_eb = 0.0;
  for (const auto& f : fields) {
    worst_eb = std::max(worst_eb, resolve_abs_eb(f, config.compression));
  }
  EXPECT_LE(result.max_error, worst_eb + 1e-12);
  for (const auto& blob : result.compression.blobs) {
    EXPECT_TRUE(is_block_container(blob));
  }
}

}  // namespace
}  // namespace ocelot
