// Tests for the quality advisor (config selection under constraints).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "core/advisor.hpp"
#include "datagen/datasets.hpp"
#include "features/features.hpp"

namespace ocelot {
namespace {

/// Trains a small quality model on real round trips over generated
/// fields; shared across advisor tests.
const QualityModel& trained_model() {
  static const QualityModel model = [] {
    std::vector<QualitySample> samples;
    for (const char* app : {"CESM", "Miranda"}) {
      const auto fields = generate_application(app, 0.04, 7);
      for (const auto& field : fields) {
        const DataFeatures df = extract_data_features(field.data);
        for (const double eb : {1e-5, 1e-4, 1e-3, 1e-2}) {
          CompressionConfig config;
          config.backend = "sz3-interp";
          config.eb_mode = EbMode::kValueRangeRel;
          config.eb = eb;
          const double abs_eb = resolve_abs_eb(field.data, config);
          const CompressorFeatures cf =
              extract_compressor_features(field.data, abs_eb, 10);
          QualitySample s;
          s.features = assemble_feature_vector(
              abs_eb, BackendRegistry::instance().by_name(config.backend).wire_id(),
              df, cf);
          const RoundTripStats stats = measure_roundtrip(field.data, config);
          s.compression_ratio = stats.compression_ratio;
          s.compress_seconds = stats.compress_seconds;
          s.psnr_db = std::isinf(stats.psnr_db) ? 200.0 : stats.psnr_db;
          s.n_elements = field.data.size();
          samples.push_back(s);
        }
      }
    }
    return QualityModel::train(samples);
  }();
  return model;
}

std::vector<CompressionConfig> candidate_sweep() {
  std::vector<CompressionConfig> candidates;
  for (const double eb : {1e-5, 1e-4, 1e-3, 1e-2}) {
    CompressionConfig config;
    config.backend = "sz3-interp";
    config.eb_mode = EbMode::kValueRangeRel;
    config.eb = eb;
    candidates.push_back(config);
  }
  return candidates;
}

TEST(Advisor, ScoresEveryCandidate) {
  const FloatArray data = generate_field("CESM", "TMQ", 0.04, 3);
  QualityConstraints constraints;
  constraints.min_psnr_db = 0.0;  // everything feasible
  const Advice advice =
      advise(trained_model(), data, candidate_sweep(), constraints, 10);
  EXPECT_EQ(advice.options.size(), 4u);
  ASSERT_TRUE(advice.best_index.has_value());
  for (const auto& opt : advice.options) {
    EXPECT_TRUE(opt.feasible);
    EXPECT_GT(opt.prediction.compression_ratio, 0.0);
  }
}

TEST(Advisor, PicksHighestRatioAmongFeasible) {
  const FloatArray data = generate_field("CESM", "TMQ", 0.04, 3);
  QualityConstraints constraints;
  constraints.min_psnr_db = 0.0;
  const Advice advice =
      advise(trained_model(), data, candidate_sweep(), constraints, 10);
  ASSERT_TRUE(advice.best_index.has_value());
  const double best_ratio =
      advice.options[*advice.best_index].prediction.compression_ratio;
  for (const auto& opt : advice.options) {
    EXPECT_LE(opt.prediction.compression_ratio, best_ratio + 1e-9);
  }
}

TEST(Advisor, PsnrConstraintExcludesLooseBounds) {
  const FloatArray data = generate_field("CESM", "TMQ", 0.04, 3);
  QualityConstraints strict;
  strict.min_psnr_db = 95.0;
  const Advice advice =
      advise(trained_model(), data, candidate_sweep(), strict, 10);
  // The loosest bound (1e-2 relative) should be infeasible under a
  // strict PSNR requirement, while some tighter bound passes.
  bool any_infeasible = false, any_feasible = false;
  for (const auto& opt : advice.options) {
    (opt.feasible ? any_feasible : any_infeasible) = true;
  }
  EXPECT_TRUE(any_infeasible);
  EXPECT_TRUE(any_feasible);
  if (advice.best_index) {
    EXPECT_TRUE(advice.options[*advice.best_index].feasible);
  }
}

TEST(Advisor, ImpossibleConstraintsYieldNoChoice) {
  const FloatArray data = generate_field("CESM", "TMQ", 0.04, 3);
  QualityConstraints impossible;
  impossible.min_psnr_db = 1e9;
  const Advice advice =
      advise(trained_model(), data, candidate_sweep(), impossible, 10);
  EXPECT_FALSE(advice.best_index.has_value());
}

TEST(Advisor, EmptyCandidateListThrows) {
  const FloatArray data = generate_field("CESM", "TMQ", 0.04, 3);
  EXPECT_THROW(
      (void)advise(trained_model(), data, {}, QualityConstraints{}, 10),
      InvalidArgument);
}

}  // namespace
}  // namespace ocelot
