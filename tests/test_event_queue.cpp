// Differential and regression tests for the event-queue pair: the
// calendar queue must pop the exact (time, seq, payload) sequence the
// reference binary heap pops on any workload, both must keep memory
// O(live) under schedule/cancel churn, and the supporting pieces
// (InlineFunction, ChunkPool) must behave as advertised.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/inline_function.hpp"
#include "common/pool_alloc.hpp"
#include "common/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"

namespace ocelot::sim {
namespace {

/// One scripted queue operation, generated once and replayed against
/// both implementations.
struct Op {
  enum Kind { kPush, kPop, kCancel } kind;
  double time_draw = 0.0;   ///< for kPush: offset factor over `now`
  std::size_t target = 0;   ///< for kCancel: index into issued handles
};

std::vector<Op> make_script(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rng.uniform();
    if (r < 0.55) {
      Op op{Op::kPush, 0.0, 0};
      const double shape = rng.uniform();
      if (shape < 0.25) {
        op.time_draw = 0.0;  // exactly `now`: exercises tie-breaking
      } else if (shape < 0.55) {
        op.time_draw = rng.uniform(0.0, 1.0);  // near past/present
      } else if (shape < 0.9) {
        op.time_draw = rng.uniform(1.0, 50.0);  // bursty mid-range
      } else {
        op.time_draw = rng.uniform(1e4, 1e6);  // far future
      }
      ops.push_back(op);
    } else if (r < 0.85) {
      ops.push_back(Op{Op::kPop, 0.0, 0});
    } else {
      ops.push_back(
          Op{Op::kCancel, 0.0,
             static_cast<std::size_t>(rng.uniform_int(0, 1 << 20))});
    }
  }
  return ops;
}

/// Replays `ops` on a queue of `kind`; returns the popped
/// (time, payload) sequence. Push times honour the engine contract
/// (>= last popped time).
std::vector<std::pair<double, int>> replay(QueueKind kind,
                                           const std::vector<Op>& ops) {
  EventQueue queue(kind);
  std::vector<std::pair<double, int>> popped;
  std::vector<EventHandle> handles;
  double now = 0.0;
  int payload = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush: {
        const int id = payload++;
        handles.push_back(queue.push(
            now + op.time_draw, [&popped, &now, id] {
              // The pop loop below records the time; remember payload.
              popped.emplace_back(now, id);
            }));
        break;
      }
      case Op::kPop: {
        if (queue.empty()) break;
        auto [time, cb] = queue.pop();
        now = time;
        cb();
        break;
      }
      case Op::kCancel: {
        if (handles.empty()) break;
        handles[op.target % handles.size()].cancel();
        break;
      }
    }
  }
  while (!queue.empty()) {
    auto [time, cb] = queue.pop();
    now = time;
    cb();
  }
  return popped;
}

TEST(EventQueueDifferential, CalendarMatchesHeapOnRandomWorkloads) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99999ull}) {
    const std::vector<Op> ops = make_script(seed, 4000);
    const auto heap = replay(QueueKind::kHeap, ops);
    const auto calendar = replay(QueueKind::kCalendar, ops);
    ASSERT_EQ(heap.size(), calendar.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i].first, calendar[i].first)
          << "seed " << seed << " pop " << i;
      EXPECT_EQ(heap[i].second, calendar[i].second)
          << "seed " << seed << " pop " << i;
    }
  }
}

TEST(EventQueueDifferential, TiesPopInSubmissionOrder) {
  for (const QueueKind kind : {QueueKind::kCalendar, QueueKind::kHeap}) {
    EventQueue queue(kind);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      queue.push(3.25, [&order, i] { order.push_back(i); });
    }
    while (!queue.empty()) queue.pop().second();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueDifferential, NearPastPushAfterFarFuturePop) {
  // Events scheduled behind the scan frontier (but >= the last popped
  // time) must still come out in order — the calendar rewinds.
  for (const QueueKind kind : {QueueKind::kCalendar, QueueKind::kHeap}) {
    EventQueue queue(kind);
    queue.push(1e6, [] {});
    ASSERT_FALSE(queue.empty());
    EXPECT_EQ(queue.pop().first, 1e6);
    queue.push(1e6 + 1.0, [] {});
    queue.push(1e6, [] {});  // == last popped time: near past
    EXPECT_EQ(queue.pop().first, 1e6);
    EXPECT_EQ(queue.pop().first, 1e6 + 1.0);
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueueChurn, MemoryStaysProportionalToLiveEvents) {
  // Schedule/cancel churn: every round adds two events and cancels
  // one; tombstone sweeps must keep physical storage O(live) for both
  // implementations.
  for (const QueueKind kind : {QueueKind::kCalendar, QueueKind::kHeap}) {
    EventQueue queue(kind);
    Rng rng(5);
    double now = 0.0;
    for (int round = 0; round < 20000; ++round) {
      // The timeout-rearm pattern that used to leak: each round arms
      // two far-future timeouts, retracts them (they never reach the
      // pop frontier, so only the threshold sweep can reclaim them),
      // and executes one near event.
      EventHandle a = queue.push(now + rng.uniform(1e5, 2e5), [] {});
      EventHandle b = queue.push(now + rng.uniform(1e5, 2e5), [] {});
      queue.push(now + rng.uniform(0.0, 10.0), [] {});
      a.cancel();
      b.cancel();
      if (!queue.empty()) now = queue.pop().first;
      const std::size_t bound = 4 * (queue.live() + 1) + 64;
      ASSERT_LE(queue.physical_entries(), bound)
          << "kind " << static_cast<int>(kind) << " round " << round;
    }
    // The heap can only reclaim deep tombstones through compaction;
    // the calendar's bucket-head pruning alone keeps this workload at
    // a handful of physical entries (the bound above proves it).
    if (kind == QueueKind::kHeap) EXPECT_GT(queue.purges(), 0u);
  }
}

TEST(EventQueueChurn, MassCancellationIsSweptPromptly) {
  for (const QueueKind kind : {QueueKind::kCalendar, QueueKind::kHeap}) {
    EventQueue queue(kind);
    std::vector<EventHandle> handles;
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(queue.push(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 100 != 0) handles[i].cancel();
    }
    // A few pushes after the mass cancel trigger the sweep threshold.
    for (int i = 0; i < 100; ++i) {
      queue.push(20000.0 + i, [] {});
    }
    EXPECT_EQ(queue.live(), 200u);
    EXPECT_LE(queue.physical_entries(), 4 * (queue.live() + 1) + 64);
    EXPECT_GT(queue.purges(), 0u);
  }
}

TEST(CalendarQueue, EagerPurgeSweepsTombstonesBehindLiveHeads) {
  // Tombstones sitting behind a live bucket head are invisible to the
  // lazy head pruning; only the eager whole-calendar purge reclaims
  // them once they outnumber live events.
  CalendarQueue queue;
  std::uint64_t seq = 0;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 1000; ++i) {
    queue.push(static_cast<double>(i), seq++, [] {});  // live head
    doomed.push_back(queue.push(i + 0.3, seq++, [] {}));
    doomed.push_back(queue.push(i + 0.6, seq++, [] {}));
  }
  for (EventHandle& h : doomed) h.cancel();
  EXPECT_EQ(queue.purges(), 0u);
  queue.push(1000.0, seq++, [] {});  // trips the tombstones > live check
  EXPECT_GT(queue.purges(), 0u);
  EXPECT_EQ(queue.live(), 1001u);
  EXPECT_EQ(queue.physical_entries(), 1001u);
  std::size_t popped = 0;
  while (!queue.empty()) {
    queue.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 1001u);
}

TEST(CalendarQueue, BucketArrayGrowsAndShrinksWithLoad) {
  CalendarQueue queue;
  Rng rng(11);
  const std::size_t initial_buckets = queue.bucket_count();
  std::uint64_t seq = 0;
  for (int i = 0; i < 10000; ++i) {
    queue.push(rng.uniform(0.0, 1000.0), seq++, [] {});
  }
  EXPECT_GT(queue.bucket_count(), initial_buckets);
  EXPECT_GT(queue.resizes(), 0u);
  double last = -1.0;
  while (!queue.empty()) {
    auto [time, cb] = queue.pop();
    EXPECT_GE(time, last);
    last = time;
  }
  EXPECT_EQ(queue.bucket_count(), initial_buckets);
}

TEST(InlineFunction, SmallCapturesStayInline) {
  int hits = 0;
  InlineFunction<void(), 64> fn([&hits] { ++hits; });
  EXPECT_TRUE(fn.is_inline());
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, OversizedCapturesFallBackToHeap) {
  double big[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  InlineFunction<double(), 64> fn([big] { return big[0] + big[11]; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_DOUBLE_EQ(fn(), 13.0);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<void(), 64> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  InlineFunction<void(), 64> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counter.use_count(), 2);  // exactly one owner moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
  b = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // captures destroyed on reset
}

TEST(ChunkPool, RecyclesFreedBlocks) {
  ChunkPool pool;
  void* a = pool.allocate(48);
  pool.deallocate(a, 48);
  void* b = pool.allocate(40);  // same 64-byte size class
  EXPECT_EQ(a, b);
  pool.deallocate(b, 40);
  EXPECT_EQ(pool.chunks_allocated(), 1u);
  EXPECT_EQ(pool.oversize_allocs(), 0u);
}

TEST(ChunkPool, OversizeBlocksPassThrough) {
  ChunkPool pool;
  void* big = pool.allocate(1 << 20);
  EXPECT_EQ(pool.oversize_allocs(), 1u);
  EXPECT_EQ(pool.chunks_allocated(), 0u);
  pool.deallocate(big, 1 << 20);
}

TEST(PoolAllocator, BacksStandardContainers) {
  auto pool = std::make_shared<ChunkPool>();
  std::vector<double, PoolAllocator<double>> v{PoolAllocator<double>(pool)};
  for (int i = 0; i < 1000; ++i) v.push_back(i * 0.5);
  EXPECT_DOUBLE_EQ(v[999], 499.5);
  EXPECT_GT(pool->chunks_allocated(), 0u);
}

}  // namespace
}  // namespace ocelot::sim
