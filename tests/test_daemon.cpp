// ocelotd end-to-end and unit tests: OCR1 framing, per-tenant
// admission + max-min fair scheduling, and the daemon's full
// accept -> admit -> compress -> respond path over a unix socket.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/options.hpp"
#include "core/engine.hpp"
#include "datagen/datasets.hpp"
#include "io/dataset_file.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/protocol.hpp"
#include "server/scheduler.hpp"

namespace ocelot::server {
namespace {

std::string test_socket_path(const std::string& tag) {
  return "/tmp/ocelot_test_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, FrameRoundTripsEveryField) {
  Frame frame;
  frame.type = FrameType::kCompress;
  frame.id = 0x1234567;
  frame.tenant = "climate-sim";
  frame.options = "eb=1e-3 backend=sz3";
  frame.payload = {0, 1, 2, 255, 128, 7};

  const Bytes wire = encode_frame(frame);
  // Body starts after the u32 length prefix.
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, wire.data(), sizeof(body_len));
  ASSERT_EQ(body_len + 4, wire.size());

  const Frame back = decode_frame(
      std::span<const std::uint8_t>(wire).subspan(4));
  EXPECT_EQ(back.type, frame.type);
  EXPECT_EQ(back.id, frame.id);
  EXPECT_EQ(back.tenant, frame.tenant);
  EXPECT_EQ(back.options, frame.options);
  EXPECT_EQ(back.payload, frame.payload);
}

TEST(Protocol, EmptyFieldsRoundTrip) {
  Frame frame;
  frame.type = FrameType::kPing;
  const Bytes wire = encode_frame(frame);
  const Frame back = decode_frame(
      std::span<const std::uint8_t>(wire).subspan(4));
  EXPECT_EQ(back.type, FrameType::kPing);
  EXPECT_EQ(back.id, 0u);
  EXPECT_TRUE(back.tenant.empty());
  EXPECT_TRUE(back.payload.empty());
}

TEST(Protocol, RejectsBadMagic) {
  Frame frame;
  frame.type = FrameType::kPing;
  Bytes wire = encode_frame(frame);
  wire[4] = 'X';  // first magic byte
  EXPECT_THROW(
      (void)decode_frame(std::span<const std::uint8_t>(wire).subspan(4)),
      CorruptStream);
}

TEST(Protocol, RejectsUnknownFrameType) {
  Frame frame;
  frame.type = FrameType::kPing;
  Bytes wire = encode_frame(frame);
  wire[8] = 99;  // type byte after the 4-byte magic
  EXPECT_THROW(
      (void)decode_frame(std::span<const std::uint8_t>(wire).subspan(4)),
      CorruptStream);
}

TEST(Protocol, RejectsTruncatedAndTrailingBodies) {
  Frame frame;
  frame.type = FrameType::kOk;
  frame.payload = {1, 2, 3, 4};
  Bytes wire = encode_frame(frame);
  const auto body = std::span<const std::uint8_t>(wire).subspan(4);
  EXPECT_THROW((void)decode_frame(body.first(body.size() - 2)),
               CorruptStream);
  Bytes trailing(body.begin(), body.end());
  trailing.push_back(0);
  EXPECT_THROW((void)decode_frame(trailing), CorruptStream);
}

TEST(Protocol, ReadFrameEnforcesLengthBounds) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Oversized: length prefix far past the cap, no body needed.
  const std::uint32_t huge = 1u << 20;
  ASSERT_EQ(::write(fds[1], &huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW((void)read_frame(fds[0], /*max_frame_bytes=*/1 << 16),
               CorruptStream);
  ::close(fds[0]);
  ::close(fds[1]);

  // Truncated: the header promises more body than ever arrives.
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t len = 20;
  ASSERT_EQ(::write(fds[1], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(::write(fds[1], "OCR1\x03", 5), 5);
  ::close(fds[1]);
  EXPECT_THROW((void)read_frame(fds[0], 1 << 16), CorruptStream);
  ::close(fds[0]);

  // Clean EOF before any byte: nullopt, not an error.
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  EXPECT_FALSE(read_frame(fds[0], 1 << 16).has_value());
  ::close(fds[0]);
}

// --------------------------------------------------------------- scheduler

TEST(FairScheduler, BoundsQueueDepthPerTenant) {
  TenantQuota quota;
  quota.max_queued = 2;
  FairScheduler scheduler(quota);
  EXPECT_EQ(scheduler.submit("t", 10, [] {}), Admit::kQueued);
  EXPECT_EQ(scheduler.submit("t", 10, [] {}), Admit::kQueued);
  EXPECT_EQ(scheduler.submit("t", 10, [] {}), Admit::kQueueFull);
  // Another tenant's queue is independent.
  EXPECT_EQ(scheduler.submit("u", 10, [] {}), Admit::kQueued);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(FairScheduler, BoundsQueuedBytesPerTenant) {
  TenantQuota quota;
  quota.max_queued_bytes = 100;
  FairScheduler scheduler(quota);
  EXPECT_EQ(scheduler.submit("t", 60, [] {}), Admit::kQueued);
  EXPECT_EQ(scheduler.submit("t", 60, [] {}), Admit::kBytesFull);
  EXPECT_EQ(scheduler.submit("t", 40, [] {}), Admit::kQueued);
}

TEST(FairScheduler, DrainRejectsNewWorkServesQueued) {
  FairScheduler scheduler;
  EXPECT_EQ(scheduler.submit("t", 1, [] {}), Admit::kQueued);
  scheduler.drain();
  EXPECT_EQ(scheduler.submit("t", 1, [] {}), Admit::kDraining);
  EXPECT_TRUE(scheduler.pop().has_value());  // queued job still served
  EXPECT_FALSE(scheduler.pop().has_value()); // drained and empty
}

TEST(FairScheduler, WeightedMaxMinInterleavesByWeight) {
  FairScheduler scheduler;
  TenantQuota heavy;
  heavy.weight = 3.0;
  heavy.max_queued = 64;
  scheduler.set_quota("alpha", heavy);

  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(scheduler.submit("alpha", 100, [] {}), Admit::kQueued);
    ASSERT_EQ(scheduler.submit("beta", 100, [] {}), Admit::kQueued);
  }
  int alpha_in_first_half = 0;
  for (int i = 0; i < 40; ++i) {
    const auto job = scheduler.pop();
    ASSERT_TRUE(job.has_value());
    if (job->tenant == "alpha") ++alpha_in_first_half;
  }
  // weight 3 vs 1: alpha should take ~30 of the first 40 dispatches.
  EXPECT_GE(alpha_in_first_half, 27);
  EXPECT_LE(alpha_in_first_half, 33);
}

TEST(FairScheduler, ReArrivalClampDropsIdleCredit) {
  FairScheduler scheduler;
  // "busy" accrues service alone.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(scheduler.submit("busy", 100, [] {}), Admit::kQueued);
  }
  for (int i = 0; i < 9; ++i) (void)scheduler.pop();
  // "fresh" arrives while busy is still backlogged: its counter is
  // lifted to the backlogged minimum instead of starting from zero.
  ASSERT_EQ(scheduler.submit("fresh", 100, [] {}), Admit::kQueued);
  double busy_norm = -1.0;
  double fresh_norm = -1.0;
  for (const auto& [tenant, norm] : scheduler.served()) {
    if (tenant == "busy") busy_norm = norm;
    if (tenant == "fresh") fresh_norm = norm;
  }
  EXPECT_GT(busy_norm, 0.0);
  EXPECT_GE(fresh_norm, busy_norm);
}

// ------------------------------------------------------------------ daemon

/// What the daemon computes for a compress request, done directly
/// against the Engine facade — the byte-determinism oracle.
Bytes engine_reference_compress(const Bytes& field_bytes,
                                const std::string& options_line) {
  OptionSet options = OptionSet::from_line(options_line, "request");
  CompressionOptionRules rules;
  rules.advisor_knobs_need_policy = true;
  const EngineRequest request = parse_compression_options(options, rules);
  options.reject_unknown("request");
  const LoadedField field = load_field(field_bytes);
  Bytes out;
  (void)Engine::shared().compress(field.data, request, out);
  return out;
}

Bytes small_field_bytes() {
  static const Bytes bytes = save_field(
      "Miranda/density", generate_field("Miranda", "density", 0.05, 7));
  return bytes;
}

TEST(Daemon, CompressBytesMatchCliAndEngine) {
  const std::string path = test_socket_path("bytes");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 2;
  Daemon daemon(config);
  daemon.start();

  const Bytes field_bytes = small_field_bytes();
  for (const char* options : {"eb=1e-3 backend=sz3",
                              "eb=1e-3 policy=adaptive block_slabs=4"}) {
    Client client = Client::connect_unix(path);
    std::string stats_line;
    const Bytes via_daemon =
        client.compress("tenant-a", field_bytes, options, &stats_line);
    EXPECT_EQ(via_daemon, engine_reference_compress(field_bytes, options))
        << options;
    EXPECT_NE(stats_line.find("raw="), std::string::npos);
  }
  daemon.shutdown();
}

TEST(Daemon, DecompressRoundTripsThroughService) {
  const std::string path = test_socket_path("roundtrip");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 2;
  Daemon daemon(config);
  daemon.start();

  const Bytes field_bytes = small_field_bytes();
  Client client = Client::connect_unix(path);
  const Bytes blob =
      client.compress("tenant-a", field_bytes, "eb=1e-3 backend=sz3");
  const Bytes back = client.decompress("tenant-a", blob);

  const LoadedField original = load_field(field_bytes);
  const LoadedField decoded = load_field(back);
  ASSERT_TRUE(decoded.data.shape() == original.data.shape());
  daemon.shutdown();
}

TEST(Daemon, PingAndBadOptionsOverTcp) {
  DaemonConfig config;
  config.tcp_port = 0;  // ephemeral
  Daemon daemon(config);
  daemon.start();
  ASSERT_GT(daemon.tcp_port(), 0);

  Client client = Client::connect_tcp("127.0.0.1", daemon.tcp_port());
  client.ping();
  try {
    (void)client.compress("t", small_field_bytes(), "bogus_knob=1");
    FAIL() << "expected RequestRejected";
  } catch (const RequestRejected& e) {
    EXPECT_EQ(e.code(), "bad-request");
    EXPECT_NE(std::string(e.what()).find("bogus_knob"), std::string::npos);
  }
  daemon.shutdown();
}

/// Raw connection helper for malformed-bytes tests (Client refuses to
/// send garbage, so speak to the socket directly).
int raw_unix_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

TEST(Daemon, GarbageFrameGetsErrorThenClose) {
  const std::string path = test_socket_path("garbage");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 1;
  Daemon daemon(config);
  daemon.start();

  const int fd = raw_unix_connect(path);
  const std::uint32_t len = 9;
  ASSERT_EQ(::write(fd, &len, sizeof(len)), static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(::write(fd, "XXXXXXXXX", 9), 9);
  const auto reply = read_frame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->options, error_code::kBadRequest);
  // The daemon drops the connection after a protocol violation.
  EXPECT_FALSE(read_frame(fd, kDefaultMaxFrameBytes).has_value());
  ::close(fd);
  daemon.shutdown();
}

TEST(Daemon, OversizedFrameRejectedBeforeBuffering) {
  const std::string path = test_socket_path("oversized");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 1;
  config.max_frame_bytes = 1 << 16;
  Daemon daemon(config);
  daemon.start();

  const int fd = raw_unix_connect(path);
  const std::uint32_t len = 1 << 20;  // past the configured cap
  ASSERT_EQ(::write(fd, &len, sizeof(len)), static_cast<ssize_t>(sizeof(len)));
  const auto reply = read_frame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->options, error_code::kBadRequest);
  EXPECT_FALSE(read_frame(fd, kDefaultMaxFrameBytes).has_value());
  ::close(fd);
  daemon.shutdown();
}

TEST(Daemon, OversizedResponseAnswersErrorInsteadOfHanging) {
  const Bytes field_bytes = small_field_bytes();
  const Bytes blob =
      engine_reference_compress(field_bytes, "eb=1e-3 backend=sz3");
  // Cap sized so the decompress request fits but its response (the
  // decompressed field, larger than the blob) does not.
  const std::size_t cap = blob.size() + 1024;
  ASSERT_GT(field_bytes.size(), cap);

  const std::string path = test_socket_path("bigresp");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 1;
  config.max_frame_bytes = cap;
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(path);
  try {
    (void)client.decompress("tenant-a", blob);
    FAIL() << "expected RequestRejected";
  } catch (const RequestRejected& e) {
    EXPECT_EQ(e.code(), error_code::kInternal);
    EXPECT_NE(std::string(e.what()).find("frame-size cap"),
              std::string::npos);
  }
  // The connection survives: the error frame was a reply, not a
  // protocol violation.
  client.ping();
  daemon.shutdown();
}

TEST(Daemon, QuotaFloodSurfacesBusyBackpressure) {
  const std::string path = test_socket_path("quota");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 1;
  TenantQuota tight;
  tight.max_queued = 1;
  config.tenant_quotas.emplace_back("flooder", tight);
  Daemon daemon(config);
  daemon.start();

  const Bytes field_bytes = small_field_bytes();
  std::atomic<int> ok{0};
  std::atomic<int> busy{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&] {
      Client client = Client::connect_unix(path);
      try {
        (void)client.compress("flooder", field_bytes, "eb=1e-3");
        ++ok;
      } catch (const RequestRejected& e) {
        EXPECT_EQ(e.code(), "busy");
        ++busy;
      }
    });
  }
  for (auto& t : clients) t.join();
  // With one worker and a queue bound of one, an 8-way burst cannot
  // all be admitted; and at least one request must succeed.
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(busy.load(), 1);
  EXPECT_EQ(ok.load() + busy.load(), 8);
  daemon.shutdown();
}

TEST(Daemon, ConcurrentTenantsStayByteDeterministic) {
  const std::string path = test_socket_path("concurrent");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 4;
  Daemon daemon(config);
  daemon.start();

  const Bytes field_bytes = small_field_bytes();
  const std::string options = "eb=1e-3 policy=adaptive block_slabs=4";
  const Bytes expected = engine_reference_compress(field_bytes, options);

  std::vector<Bytes> results(6);
  std::vector<std::thread> clients;
  clients.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    clients.emplace_back([&, i] {
      Client client = Client::connect_unix(path);
      results[i] = client.compress("tenant-" + std::to_string(i % 3),
                                   field_bytes, options);
    });
  }
  for (auto& t : clients) t.join();
  for (const Bytes& blob : results) {
    EXPECT_EQ(blob, expected);
  }
  daemon.shutdown();
}

TEST(Daemon, GracefulDrainAnswersEveryRequest) {
  const std::string path = test_socket_path("drain");
  DaemonConfig config;
  config.unix_path = path;
  config.workers = 2;
  Daemon daemon(config);
  daemon.start();

  const Bytes field_bytes = small_field_bytes();
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(6);
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([&] {
      try {
        Client client = Client::connect_unix(path);
        (void)client.compress("t", field_bytes, "eb=1e-3");
        ++answered;
      } catch (const RequestRejected&) {
        ++answered;  // draining/busy rejection is still an answer
      } catch (const Error&) {
        // Connection raced the listener teardown; acceptable, but the
        // daemon must not hang — reaching here still counts the thread.
        ++answered;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  daemon.shutdown();  // drain: queued + in-flight work still completes
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), 6);

  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.scheduler.queued, 0u);  // nothing abandoned in queue
  daemon.shutdown();  // idempotent
}

}  // namespace
}  // namespace ocelot::server
