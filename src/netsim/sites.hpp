#pragma once
// Calibrated testbed profiles: the paper's three supercomputers
// (Table III) and the WAN routes between them (Table II / VIII).
//
// Route bandwidths and per-file costs are calibrated so the model's
// uncompressed transfer times match the paper's measured T(NP) values;
// filesystem parameters are calibrated so Fig. 9's decompression
// degradation appears at the observed node counts.

#include <string>
#include <vector>

#include "netsim/filesystem.hpp"
#include "netsim/gridftp.hpp"

namespace ocelot {

/// One machine partition from Table III, plus calibrated substrate
/// parameters used by the compute/filesystem models.
struct SiteSpec {
  std::string site;       ///< "Anvil", "Bebop", "Cori"
  std::string partition;  ///< e.g. "wholenode"
  int nodes = 0;
  std::string cpu;
  int cores_per_node = 0;
  double memory_gb = 0.0;
  SharedFilesystem fs;    ///< parallel filesystem model
};

/// Table III rows (bdwall/knlall from Bebop, wholenode from Anvil,
/// haswell from Cori).
const std::vector<SiteSpec>& site_catalog();

/// Lookup by site name; throws NotFound for unknown sites.
const SiteSpec& site(const std::string& name);

/// Calibrated WAN route; throws NotFound for unknown pairs.
/// Known routes: Anvil->Cori, Anvil->Bebop, Bebop->Cori, Cori->Bebop.
LinkProfile route(const std::string& src, const std::string& dst);

}  // namespace ocelot
