#pragma once
// GridFTP-style wide-area transfer cost model.
//
// Calibrated against the paper's own measurements (Table II: 300 GB
// between Cori and Bebop as 1 MB ... 1 GB files; Table VIII route
// speeds). The model captures the three effects Ocelot exploits:
//
//   1. per-file handling cost on the control channel is additive, so
//      many small files crater throughput (Table II's 247 MB/s at
//      300k x 1 MB vs 1.12 GB/s at 3k x 100 MB);
//   2. a single file transfer is capped at `parallelism` streams, each
//      a fraction of the pipe, so too few files cannot fill the link
//      (the Miranda grouped-transfer slowdown in Table VIII);
//   3. measured speeds fluctuate with ambient traffic, modelled as
//      deterministic seeded jitter.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ocelot {

/// Globus endpoint-pair tuning (GridFTP concurrency semantics).
struct EndpointSettings {
  int concurrency = 32;    ///< files in flight
  int parallelism = 4;     ///< TCP streams per file
  int pipeline_depth = 8;  ///< queued commands per channel
};

/// A WAN route between two sites.
struct LinkProfile {
  std::string name;               ///< e.g. "Anvil->Cori"
  double bandwidth_bps = 1e9;     ///< achievable aggregate bandwidth
  double rtt_s = 0.05;            ///< round-trip time
  double per_file_overhead_s = 3.2e-3;  ///< control-channel cost per file
  double startup_s = 2.0;         ///< task auth/listing startup
  double stream_fraction = 0.025; ///< single stream's share of the pipe
  double jitter_frac = 0.0;       ///< +- relative speed fluctuation
  std::uint64_t jitter_seed = 0;  ///< seed for deterministic jitter
};

/// Result of a modelled transfer (the *uncontended* cost: what this
/// transfer achieves with the link to itself).
struct TransferEstimate {
  double duration_s = 0.0;
  double effective_speed_bps = 0.0;  ///< total bytes / duration
  double data_seconds = 0.0;         ///< time attributable to payload
  double overhead_seconds = 0.0;     ///< startup + per-file handling
  /// Payload bandwidth this transfer can use alone (bytes/s); this is
  /// its demand when it contends with other flows on the shared link.
  double eff_bandwidth_bps = 0.0;
  double startup_seconds = 0.0;      ///< task auth/listing startup
  double per_file_seconds = 0.0;     ///< control-channel cost per file
  double jitter = 1.0;               ///< applied speed fluctuation factor
  /// Per-file completion offsets from transfer start, nondecreasing.
  std::vector<double> completion_times;
};

/// Deterministic fluid model of a GridFTP transfer.
class GridFtpModel {
 public:
  explicit GridFtpModel(EndpointSettings settings = {})
      : settings_(settings) {}

  /// Estimates the transfer of `file_bytes` over `link`.
  /// Throws InvalidArgument on an empty file list.
  [[nodiscard]] TransferEstimate estimate(std::span<const double> file_bytes,
                                          const LinkProfile& link) const;

  [[nodiscard]] const EndpointSettings& settings() const { return settings_; }

 private:
  EndpointSettings settings_;
};

}  // namespace ocelot
