#pragma once
// Shared parallel-filesystem contention model.
//
// The paper observes (Fig. 9, Section VII-A) that parallel
// decompression *slows down* beyond a few nodes: reconstructed output
// is written at full raw size through a shared filesystem, and
// metadata/lock contention degrades per-node throughput superlinearly.
// This model captures that shape: aggregate write bandwidth
//   W(N) = min(peak, N * node_bw) / (1 + (N / n0)^k)
// peaks near N = n0 nodes and degrades beyond it; reads contend much
// more mildly.

#include <algorithm>
#include <cmath>

namespace ocelot {

struct SharedFilesystem {
  double peak_bps = 20e9;        ///< backend ceiling
  double node_bps = 6e9;         ///< one node's streaming rate
  double write_contention_n0 = 4.0;  ///< nodes where write contention bites
  double write_contention_exp = 2.5; ///< degradation exponent
  double read_contention_n0 = 32.0;
  double read_contention_exp = 1.5;

  /// Aggregate write bandwidth achieved by `nodes` concurrent writers.
  [[nodiscard]] double write_bandwidth(int nodes) const {
    const double n = std::max(1, nodes);
    const double raw = std::min(peak_bps, n * node_bps);
    return raw / (1.0 + std::pow(n / write_contention_n0,
                                 write_contention_exp));
  }

  /// Aggregate read bandwidth achieved by `nodes` concurrent readers.
  [[nodiscard]] double read_bandwidth(int nodes) const {
    const double n = std::max(1, nodes);
    const double raw = std::min(peak_bps, n * node_bps);
    return raw / (1.0 + std::pow(n / read_contention_n0,
                                 read_contention_exp));
  }
};

}  // namespace ocelot
