#include "netsim/gridftp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ocelot {

namespace {

/// SplitMix64 step: cheap deterministic hash for jitter.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic jitter factor in [1-j, 1+j] keyed on workload shape.
double jitter_factor(const LinkProfile& link, std::size_t n_files,
                     double total_bytes) {
  if (link.jitter_frac <= 0.0) return 1.0;
  const std::uint64_t key =
      mix(link.jitter_seed ^ mix(n_files) ^
          mix(static_cast<std::uint64_t>(total_bytes / 1024.0)));
  const double unit =
      static_cast<double>(key % 10000) / 10000.0;  // [0, 1)
  return 1.0 + link.jitter_frac * (2.0 * unit - 1.0);
}

}  // namespace

TransferEstimate GridFtpModel::estimate(std::span<const double> file_bytes,
                                        const LinkProfile& link) const {
  require(!file_bytes.empty(), "GridFtpModel: empty file list");
  const std::size_t n = file_bytes.size();
  const double total_bytes =
      std::accumulate(file_bytes.begin(), file_bytes.end(), 0.0);

  // Effect 2: each file is capped at parallelism streams; with fewer
  // files than needed to fill the pipe, aggregate bandwidth drops.
  const double per_file_cap =
      link.bandwidth_bps * link.stream_fraction *
      static_cast<double>(settings_.parallelism);
  const double eff_bw = std::min(
      link.bandwidth_bps, per_file_cap * static_cast<double>(std::min(
                              n, static_cast<std::size_t>(
                                     settings_.concurrency))));

  // Effect 1: additive control-channel handling per file, reduced by
  // pipelining depth (bounded below by one RTT batch per pipeline).
  const double per_file =
      std::max(link.per_file_overhead_s,
               link.rtt_s / static_cast<double>(std::max(
                                1, settings_.pipeline_depth *
                                       settings_.concurrency)));
  const double overhead = link.startup_s + per_file * static_cast<double>(n);
  const double data_seconds = total_bytes / eff_bw;

  const double jitter = jitter_factor(link, n, total_bytes);
  TransferEstimate est;
  est.data_seconds = data_seconds * jitter;
  est.overhead_seconds = overhead;
  est.duration_s = overhead + est.data_seconds;
  est.effective_speed_bps = total_bytes / est.duration_s;
  est.eff_bandwidth_bps = eff_bw;
  est.startup_seconds = link.startup_s;
  est.per_file_seconds = per_file;
  est.jitter = jitter;

  // Per-file completions: files stream through the link with handling
  // interleaved, so completion offsets accumulate both terms.
  est.completion_times.reserve(n);
  double cum_bytes = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum_bytes += file_bytes[i];
    const double t = link.startup_s +
                     per_file * static_cast<double>(i + 1) +
                     (cum_bytes / eff_bw) * jitter;
    est.completion_times.push_back(t);
  }
  // Guard against rounding: the last completion defines the duration.
  est.completion_times.back() = est.duration_s;
  return est;
}

}  // namespace ocelot
