#include "netsim/sites.hpp"

#include "common/error.hpp"

namespace ocelot {

namespace {

SharedFilesystem anvil_fs() {
  // Calibrated so decompression write bandwidth peaks around 2-4 nodes
  // (Fig. 9 right) and a single node still streams a few GB/s. The
  // read path must sustain ~70 GB/s at 16 nodes or compression of the
  // CESM subset could not finish in the paper's 32.5 s.
  SharedFilesystem fs;
  fs.peak_bps = 100e9;
  fs.node_bps = 6e9;
  fs.write_contention_n0 = 3.0;
  fs.write_contention_exp = 2.2;
  fs.read_contention_n0 = 24.0;
  fs.read_contention_exp = 1.4;
  return fs;
}

SharedFilesystem bebop_fs() {
  SharedFilesystem fs;
  fs.peak_bps = 30e9;
  fs.node_bps = 4e9;
  fs.write_contention_n0 = 8.0;
  fs.write_contention_exp = 1.6;
  fs.read_contention_n0 = 32.0;
  fs.read_contention_exp = 1.3;
  return fs;
}

SharedFilesystem cori_fs() {
  // Cori's scratch sustains ~23 GB/s for 8 writer nodes (Table VIII
  // CESM DPTime 69.4 s over 1.61 TB).
  SharedFilesystem fs;
  fs.peak_bps = 61e9;
  fs.node_bps = 12e9;
  fs.write_contention_n0 = 6.0;
  fs.write_contention_exp = 1.7;
  fs.read_contention_n0 = 48.0;
  fs.read_contention_exp = 1.2;
  return fs;
}

}  // namespace

const std::vector<SiteSpec>& site_catalog() {
  static const std::vector<SiteSpec> catalog = {
      {"Bebop", "bdwall", 664, "Intel Xeon E5-2695v4", 36, 128.0, bebop_fs()},
      {"Bebop", "knlall", 348, "Intel Xeon Phi 7230", 64, 96.0, bebop_fs()},
      {"Anvil", "wholenode", 750, "Two AMD Milan @ 2.45GHz", 128, 256.0,
       anvil_fs()},
      {"Cori", "haswell", 2388, "Intel Xeon E5-2698 v3", 32, 128.0,
       cori_fs()},
  };
  return catalog;
}

const SiteSpec& site(const std::string& name) {
  for (const auto& s : site_catalog()) {
    if (s.site == name) return s;  // first partition is the default
  }
  throw NotFound("unknown site: " + name);
}

LinkProfile route(const std::string& src, const std::string& dst) {
  // Bandwidths calibrated to the paper's measured uncompressed
  // transfer speeds (Table VIII T(NP) column; Table II for Cori<->Bebop).
  auto make = [&](double bw, std::uint64_t seed) {
    LinkProfile link;
    link.name = src + "->" + dst;
    link.bandwidth_bps = bw;
    link.rtt_s = 0.05;
    link.per_file_overhead_s = 3.25e-3;
    link.startup_s = 2.0;
    // A single GridFTP stream gets ~1.2% of the pipe: 8 grouped files
    // x 4 streams reach only ~38% utilization, reproducing the
    // Miranda grouped-transfer slowdown in Table VIII.
    link.stream_fraction = 0.012;
    link.jitter_frac = 0.06;
    link.jitter_seed = seed;
    return link;
  };
  if (src == "Anvil" && dst == "Cori") return make(3.9e9, 11);
  if (src == "Anvil" && dst == "Bebop") return make(0.93e9, 22);
  if (src == "Bebop" && dst == "Cori") return make(1.12e9, 33);
  if (src == "Cori" && dst == "Bebop") return make(1.16e9, 44);
  if (src == "Bebop" && dst == "Anvil") return make(0.93e9, 55);
  if (src == "Cori" && dst == "Anvil") return make(3.9e9, 66);
  throw NotFound("unknown route: " + src + "->" + dst);
}

}  // namespace ocelot
