#pragma once
// Discrete-event simulation engine.
//
// The WAN transfer testbed (three supercomputers, batch schedulers,
// funcX dispatch) runs in virtual time on this engine: events are
// (time, callback) pairs executed in nondecreasing time order, with a
// monotone sequence number breaking ties deterministically.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace ocelot {

/// Single-threaded discrete-event scheduler with a virtual clock.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `time` (>= now).
  void schedule_at(double time, Callback cb) {
    require(time >= now_, "Simulation: cannot schedule in the past");
    queue_.push(Event{time, seq_++, std::move(cb)});
  }

  /// Schedules `cb` after `delay` seconds of virtual time.
  void schedule_in(double delay, Callback cb) {
    require(delay >= 0.0, "Simulation: negative delay");
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue drains. Returns events executed.
  std::size_t run() {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      step();
      ++executed;
    }
    return executed;
  }

  /// Runs events with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(double t) {
    require(t >= now_, "Simulation: cannot run backwards");
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().time <= t) {
      step();
      ++executed;
    }
    now_ = t;
    return executed;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void step() {
    // Move the event out before invoking: callbacks may schedule more.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.cb();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ocelot
