#pragma once
// Compatibility header: the discrete-event engine moved to src/sim/.
//
// The WAN transfer testbed (three supercomputers, batch schedulers,
// funcX dispatch) runs in virtual time on sim::Engine: events are
// (time, callback) pairs executed in nondecreasing time order with a
// monotone sequence number breaking ties deterministically, plus
// cancellable event handles and named process handles. Existing code
// keeps using the `Simulation` name.

#include "sim/engine.hpp"

namespace ocelot {

using Simulation = sim::Engine;

}  // namespace ocelot
