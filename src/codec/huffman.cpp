#include "codec/huffman.hpp"

#include <algorithm>
#include <array>

#include "common/arena.hpp"
#include "common/bitstream.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "compressor/kernels/dispatch.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

constexpr int kMaxCodeLength = 57;

/// Dense-window histogram cap: ranges wider than this fall back to the
/// sort-based path. Quant codes cluster around the radius and byte
/// planes span <= 256, so the window is tiny in practice; the cap also
/// bounds it against O(n) so zeroing never dominates counting.
constexpr std::uint64_t kDenseHistSpan = 1u << 17;

/// Emit-table cap (entries): symbols spanning a wider range use the
/// binary-search emit path.
constexpr std::uint64_t kEmitTableSpan = 1u << 17;

/// Decode lookup covers codes up to this many bits; longer codes (rare
/// tail symbols) take the canonical walk.
constexpr int kDecodeLutBits = 11;

std::uint64_t bit_reverse(std::uint64_t w, int len) {
  std::uint64_t r = 0;
  for (int i = 0; i < len; ++i) {
    r = (r << 1) | (w & 1u);
    w >>= 1;
  }
  return r;
}

/// Huffman tree depths for `syms`/`weights` (symbol-sorted), written
/// into `lengths` (aligned with syms). Returns the max depth; may
/// exceed kMaxCodeLength for pathological weights — the caller
/// rescales and retries. The heap replays std::priority_queue's exact
/// push/pop sequence (push_back+push_heap / pop_heap+pop_back with the
/// same ((weight, height), index) ordering), so tie-breaking — and
/// with it every emitted table byte — matches the historical coder.
int tree_depths_into(
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    std::span<const std::uint64_t> weights, ScratchArena& arena,
    std::span<std::pair<std::uint32_t, int>> lengths) {
  struct TreeNode {
    std::uint64_t weight;
    int height;
    std::int64_t symbol;  // >= 0 for leaves, -1 for internal
    int left = -1;
    int right = -1;
  };
  using QItem = std::pair<std::pair<std::uint64_t, int>, int>;  // ((w,h), idx)

  const std::size_t u = hist.size();
  const ScratchArena::Mark m = arena.mark();
  std::span<TreeNode> nodes = arena.alloc<TreeNode>(2 * u);
  std::span<QItem> heap = arena.alloc<QItem>(u);
  std::size_t n_nodes = 0;
  std::size_t hn = 0;
  const auto greater = std::greater<>{};
  for (std::size_t i = 0; i < u; ++i) {
    nodes[n_nodes] = {weights[i], 0, static_cast<std::int64_t>(hist[i].first),
                      -1, -1};
    heap[hn++] = {{weights[i], 0}, static_cast<int>(n_nodes)};
    std::push_heap(heap.begin(), heap.begin() + hn, greater);
    ++n_nodes;
  }
  while (hn > 1) {
    std::pop_heap(heap.begin(), heap.begin() + hn, greater);
    const QItem a = heap[--hn];
    std::pop_heap(heap.begin(), heap.begin() + hn, greater);
    const QItem b = heap[--hn];
    TreeNode parent;
    parent.weight = a.first.first + b.first.first;
    parent.height = std::max(a.first.second, b.first.second) + 1;
    parent.symbol = -1;
    parent.left = a.second;
    parent.right = b.second;
    nodes[n_nodes] = parent;
    heap[hn++] = {{parent.weight, parent.height}, static_cast<int>(n_nodes)};
    std::push_heap(heap.begin(), heap.begin() + hn, greater);
    ++n_nodes;
  }

  // Iterative DFS from the root (last node), then sort by symbol.
  std::span<std::pair<int, int>> stack =
      arena.alloc<std::pair<int, int>>(2 * u);
  std::size_t sn = 0;
  stack[sn++] = {static_cast<int>(n_nodes) - 1, 0};
  std::size_t out = 0;
  int max_depth = 0;
  while (sn > 0) {
    const auto [idx, depth] = stack[--sn];
    const TreeNode& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[out++] = {static_cast<std::uint32_t>(n.symbol), depth};
      max_depth = std::max(max_depth, depth);
    } else {
      stack[sn++] = {n.left, depth + 1};
      stack[sn++] = {n.right, depth + 1};
    }
  }
  std::sort(lengths.begin(), lengths.end());
  arena.rewind(m);
  return max_depth;
}

/// Canonical code views, arena-backed and sorted by symbol.
struct CodeView {
  std::span<const std::pair<std::uint32_t, int>> lengths;
  std::span<const std::uint64_t> rev;  ///< bit-reversed codewords, aligned
};

/// Builds the canonical code for a symbol-sorted histogram: tree
/// depths (with the historical rescale-retry depth cap), then
/// canonical codewords assigned by (length, symbol), stored
/// bit-reversed so LSB-first accumulator emission reproduces the
/// MSB-first bit order of the original per-bit writer.
CodeView build_canonical(
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    ScratchArena& arena) {
  const std::size_t u = hist.size();
  std::span<std::pair<std::uint32_t, int>> lengths =
      arena.alloc<std::pair<std::uint32_t, int>>(u);
  std::span<std::uint64_t> rev = arena.alloc<std::uint64_t>(u);
  if (u == 1) {
    // Degenerate code: a single symbol encoded in zero bits.
    lengths[0] = {hist[0].first, 0};
    rev[0] = 0;
    return {lengths, rev};
  }

  std::span<std::uint64_t> scaled = arena.alloc<std::uint64_t>(u);
  for (std::size_t i = 0; i < u; ++i) scaled[i] = hist[i].second;
  while (tree_depths_into(hist, scaled, arena, lengths) > kMaxCodeLength) {
    // Flatten the distribution and retry; halving weights (floor at 1)
    // strictly reduces the weight ratio that causes deep trees.
    for (std::uint64_t& w : scaled) w = std::max<std::uint64_t>(1, w / 2);
  }

  // Canonical assignment: sort by (length, symbol); codewords count
  // up, shifting left at every length increase.
  const ScratchArena::Mark m = arena.mark();
  std::span<std::uint32_t> order = arena.alloc<std::uint32_t>(u);
  for (std::size_t i = 0; i < u; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths[a].second != lengths[b].second)
      return lengths[a].second < lengths[b].second;
    return lengths[a].first < lengths[b].first;
  });
  std::uint64_t next = 0;
  int prev_len = lengths[order[0]].second;
  for (const std::uint32_t idx : order) {
    const int len = lengths[idx].second;
    next <<= (len - prev_len);
    prev_len = len;
    rev[idx] = bit_reverse(next++, len);
  }
  arena.rewind(m);
  return {lengths, rev};
}

/// Packs the bit payload through a 64-bit accumulator. Bits land
/// LSB-first per byte exactly like BitWriter: appending the
/// bit-reversed codeword at the accumulator's fill point emits the
/// codeword MSB-first. Flushing keeps the fill <= 7, and 7 + 57-bit
/// max codeword fits the accumulator.
void emit_payload(std::span<const std::uint32_t> symbols, const CodeView& code,
                  ScratchArena& arena, Bytes& dst) {
  std::uint64_t acc = 0;
  int nbits = 0;
  const auto put = [&](std::uint64_t rev, int len) {
    acc |= rev << nbits;
    nbits += len;
    while (nbits >= 8) {
      dst.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      nbits -= 8;
    }
  };

  const std::uint32_t min_sym = code.lengths.front().first;
  const std::uint32_t max_sym = code.lengths.back().first;
  const std::uint64_t range =
      static_cast<std::uint64_t>(max_sym) - min_sym + 1;
  if (range <= kEmitTableSpan) {
    // Dense (reversed codeword << 6 | length) table over the symbol
    // range: one load + shift per symbol.
    const ScratchArena::Mark m = arena.mark();
    std::span<std::uint64_t> lut = arena.alloc<std::uint64_t>(range);
    std::fill(lut.begin(), lut.end(), 0);
    for (std::size_t i = 0; i < code.lengths.size(); ++i) {
      lut[code.lengths[i].first - min_sym] =
          (code.rev[i] << 6) |
          static_cast<std::uint64_t>(code.lengths[i].second);
    }
    for (const std::uint32_t s : symbols) {
      const std::uint64_t e = lut[s - min_sym];
      put(e >> 6, static_cast<int>(e & 63u));
    }
    arena.rewind(m);
  } else {
    for (const std::uint32_t s : symbols) {
      const auto it = std::lower_bound(
          code.lengths.begin(), code.lengths.end(), s,
          [](const auto& entry, std::uint32_t v) { return entry.first < v; });
      const auto idx = static_cast<std::size_t>(it - code.lengths.begin());
      put(code.rev[idx], code.lengths[idx].second);
    }
  }
  if (nbits > 0) dst.push_back(static_cast<std::uint8_t>(acc));
}

/// Everything after the symbol count: code build, table emit, payload.
/// `hist` must be the exact symbol-sorted histogram of `symbols`.
void encode_with_hist(
    std::span<const std::uint32_t> symbols,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    ScratchArena& arena, ByteSink& out) {
  const CodeView code = build_canonical(hist, arena);

  // Table: unique count, then delta-coded symbols with lengths.
  out.put_varint(code.lengths.size());
  std::uint32_t prev = 0;
  for (const auto& [sym, len] : code.lengths) {
    out.put_varint(sym - prev);
    out.put_varint(static_cast<std::uint64_t>(len));
    prev = sym;
  }

  // The payload length is fully determined by the histogram, so the
  // blob's varint prefix can go out before a single bit is packed —
  // the bit stream then lands directly in the sink's buffer. lengths
  // and the histogram are sorted over the same symbol set, so they
  // align index by index.
  std::uint64_t payload_bits = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    payload_bits +=
        hist[i].second * static_cast<std::uint64_t>(code.lengths[i].second);
  }
  out.put_varint((payload_bits + 7) / 8);
  out.reserve((payload_bits + 7) / 8);
  if (payload_bits > 0) emit_payload(symbols, code, arena, out.target());
}

/// Symbol-sorted histogram in arena storage: dense window counting
/// when the (SIMD-scanned) symbol range is narrow, sort + run-length
/// otherwise.
std::span<const std::pair<std::uint32_t, std::uint64_t>> histogram_into_arena(
    std::span<const std::uint32_t> symbols, ScratchArena& arena) {
  std::uint32_t lo = 0, hi = 0;
  kernels::u32_min_max(symbols.data(), symbols.size(), lo, hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  if (range <= kDenseHistSpan &&
      range <= 8 * static_cast<std::uint64_t>(symbols.size()) + 1024) {
    std::span<std::uint64_t> win = arena.alloc<std::uint64_t>(range);
    std::fill(win.begin(), win.end(), 0);
    for (const std::uint32_t s : symbols) ++win[s - lo];
    std::size_t unique = 0;
    for (const std::uint64_t c : win) unique += c != 0 ? 1 : 0;
    std::span<std::pair<std::uint32_t, std::uint64_t>> hist =
        arena.alloc<std::pair<std::uint32_t, std::uint64_t>>(unique);
    std::size_t out = 0;
    for (std::uint64_t i = 0; i < range; ++i) {
      if (win[i] != 0) {
        hist[out++] = {lo + static_cast<std::uint32_t>(i), win[i]};
      }
    }
    return hist;
  }
  std::span<std::uint32_t> sorted = arena.alloc<std::uint32_t>(symbols.size());
  std::copy(symbols.begin(), symbols.end(), sorted.begin());
  std::sort(sorted.begin(), sorted.end());
  std::span<std::pair<std::uint32_t, std::uint64_t>> hist =
      arena.alloc<std::pair<std::uint32_t, std::uint64_t>>(sorted.size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    const std::uint32_t sym = sorted[i];
    std::size_t run = i + 1;
    while (run < sorted.size() && sorted[run] == sym) ++run;
    hist[out++] = {sym, run - i};
    i = run;
  }
  return hist.first(out);
}

}  // namespace

SymbolCounts count_symbols(std::span<const std::uint32_t> symbols) {
  SymbolCounts counts;
  for (const std::uint32_t s : symbols) ++counts[s];
  return counts;
}

SymbolHist histogram_symbols(std::span<const std::uint32_t> symbols) {
  SymbolHist hist;
  if (symbols.empty()) return hist;
  ArenaScope scope;
  const auto view = histogram_into_arena(symbols, scope.arena());
  hist.assign(view.begin(), view.end());
  return hist;
}

HuffmanCode HuffmanCode::from_counts(const SymbolCounts& counts) {
  return from_histogram(SymbolHist(counts.begin(), counts.end()));
}

HuffmanCode HuffmanCode::from_histogram(const SymbolHist& counts) {
  require(!counts.empty(), "HuffmanCode: empty histogram");
  HuffmanCode code;
  ArenaScope scope;
  const CodeView view = build_canonical(counts, scope.arena());
  code.lengths_.assign(view.lengths.begin(), view.lengths.end());
  code.codewords_.resize(view.rev.size());
  for (std::size_t i = 0; i < view.rev.size(); ++i) {
    code.codewords_[i] = bit_reverse(view.rev[i], view.lengths[i].second);
  }
  return code;
}

int HuffmanCode::length(std::uint32_t symbol) const {
  const auto it = std::lower_bound(
      lengths_.begin(), lengths_.end(), symbol,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  if (it == lengths_.end() || it->first != symbol) return 0;
  return it->second;
}

std::uint64_t HuffmanCode::codeword(std::uint32_t symbol) const {
  const auto it = std::lower_bound(
      lengths_.begin(), lengths_.end(), symbol,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  require(it != lengths_.end() && it->first == symbol,
          "codeword: unknown symbol");
  return codewords_[static_cast<std::size_t>(it - lengths_.begin())];
}

std::uint64_t HuffmanCode::encoded_bits(const SymbolCounts& counts) const {
  std::uint64_t bits = 0;
  for (const auto& [sym, cnt] : counts) {
    bits += cnt * static_cast<std::uint64_t>(length(sym));
  }
  return bits;
}

void huffman_encode(std::span<const std::uint32_t> symbols, ByteSink& out) {
  out.put_varint(symbols.size());
  if (symbols.empty()) return;
  ArenaScope scope;
  std::span<const std::pair<std::uint32_t, std::uint64_t>> hist;
  {
    OCELOT_SPAN("codec.huffman.histogram");
    hist = histogram_into_arena(symbols, scope.arena());
  }
  encode_with_hist(symbols, hist, scope.arena(), out);
}

void huffman_encode(
    std::span<const std::uint32_t> symbols,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    ByteSink& out) {
  out.put_varint(symbols.size());
  if (symbols.empty()) return;
  ArenaScope scope;
  encode_with_hist(symbols, hist, scope.arena(), out);
}

Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  BytesWriter out;
  huffman_encode(symbols, out);
  return out.take();
}

void huffman_decode_into(std::span<const std::uint8_t> data,
                         std::vector<std::uint32_t>& out) {
  out.clear();
  BytesReader in(data);
  const std::uint64_t n = in.get_varint();
  if (n == 0) return;
  out.reserve(n);

  const std::uint64_t unique = in.get_varint();
  if (unique == 0) throw CorruptStream("huffman: empty code table");
  ArenaScope scope;
  ScratchArena& arena = scope.arena();
  std::span<std::pair<std::uint32_t, int>> lengths =
      arena.alloc<std::pair<std::uint32_t, int>>(unique);
  std::uint32_t sym = 0;
  for (std::uint64_t i = 0; i < unique; ++i) {
    sym += static_cast<std::uint32_t>(in.get_varint());
    const int len = static_cast<int>(in.get_varint());
    if (len < 0 || len > kMaxCodeLength)
      throw CorruptStream("huffman: bad code length");
    lengths[i] = {sym, len};
  }

  if (unique == 1) {
    // Zero-bit degenerate code.
    out.assign(n, lengths[0].first);
    (void)in.get_blob();
    return;
  }

  // Canonical decode tables: per length, the first codeword and the
  // symbols of that length in canonical order; codes up to
  // kDecodeLutBits also get a direct (reversed-prefix -> symbol,
  // length) lookup.
  std::span<std::uint32_t> order = arena.alloc<std::uint32_t>(unique);
  for (std::uint64_t i = 0; i < unique; ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (lengths[a].second != lengths[b].second)
      return lengths[a].second < lengths[b].second;
    return lengths[a].first < lengths[b].first;
  });

  std::array<std::uint64_t, kMaxCodeLength + 2> first_code{};
  std::array<std::uint64_t, kMaxCodeLength + 2> count_at{};
  std::array<std::size_t, kMaxCodeLength + 2> offset_at{};
  std::span<std::uint32_t> symbols_in_order =
      arena.alloc<std::uint32_t>(unique);
  const int max_len = lengths[order[unique - 1]].second;
  const int lut_bits = std::min(kDecodeLutBits, max_len);
  const std::size_t lut_size = std::size_t{1} << lut_bits;
  std::span<std::uint32_t> lut = arena.alloc<std::uint32_t>(lut_size);
  std::fill(lut.begin(), lut.end(), 0);
  {
    std::uint64_t next = 0;
    std::size_t pos = 0;
    int prev_len = lengths[order[0]].second;
    if (prev_len == 0) throw CorruptStream("huffman: zero-length code");
    for (const std::uint32_t idx : order) {
      const int len = lengths[idx].second;
      next <<= (len - prev_len);
      prev_len = len;
      if (count_at[static_cast<std::size_t>(len)] == 0) {
        first_code[static_cast<std::size_t>(len)] = next;
        offset_at[static_cast<std::size_t>(len)] = pos;
      }
      ++count_at[static_cast<std::size_t>(len)];
      symbols_in_order[pos] = lengths[idx].first;
      if (len <= lut_bits) {
        const std::uint64_t rev = bit_reverse(next, len);
        const std::uint32_t entry =
            (static_cast<std::uint32_t>(pos) << 6) |
            static_cast<std::uint32_t>(len);
        for (std::uint64_t fill = rev; fill < lut_size;
             fill += std::uint64_t{1} << len) {
          lut[fill] = entry;
        }
      }
      ++pos;
      ++next;
    }
  }

  // Buffered payload reads: a 64-bit window refilled bytewise. The
  // LUT consumes whole codewords; longer codes fall back to the
  // canonical first_code walk bit by bit.
  const auto payload = in.get_blob();
  const std::uint8_t* p = payload.data();
  const std::size_t nbytes = payload.size();
  std::size_t bpos = 0;
  std::uint64_t acc = 0;
  int navail = 0;
  const std::uint64_t lut_mask = lut_size - 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    while (navail <= 56 && bpos < nbytes) {
      acc |= static_cast<std::uint64_t>(p[bpos++]) << navail;
      navail += 8;
    }
    const std::uint32_t e = lut[acc & lut_mask];
    const int len = static_cast<int>(e & 63u);
    if (len != 0 && len <= navail) {
      out.push_back(symbols_in_order[e >> 6]);
      acc >>= len;
      navail -= len;
      continue;
    }
    // Slow path: codes longer than the LUT, or a (possibly truncated)
    // stream tail.
    std::uint64_t cw = 0;
    int l = 0;
    while (true) {
      if (navail == 0) {
        if (bpos < nbytes) {
          acc = p[bpos++];
          navail = 8;
        } else {
          throw CorruptStream("bit stream exhausted");
        }
      }
      cw = (cw << 1) | (acc & 1u);
      acc >>= 1;
      --navail;
      ++l;
      if (l > kMaxCodeLength) throw CorruptStream("huffman: code too long");
      const auto ls = static_cast<std::size_t>(l);
      if (count_at[ls] != 0 && cw >= first_code[ls] &&
          cw < first_code[ls] + count_at[ls]) {
        out.push_back(symbols_in_order[offset_at[ls] + (cw - first_code[ls])]);
        break;
      }
    }
  }
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> data) {
  std::vector<std::uint32_t> out;
  huffman_decode_into(data, out);
  return out;
}

}  // namespace ocelot
