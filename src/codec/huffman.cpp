#include "codec/huffman.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "common/bitstream.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

constexpr int kMaxCodeLength = 57;

struct TreeNode {
  std::uint64_t weight;
  int height;           // for deterministic tie-breaking and depth control
  std::int64_t symbol;  // >= 0 for leaves, -1 for internal
  int left = -1;
  int right = -1;
};

/// Computes per-symbol depths of the Huffman tree for `counts` (a
/// symbol-sorted histogram). Returns pairs sorted by symbol. May
/// exceed kMaxCodeLength for pathological weights; the caller rescales
/// and retries.
std::vector<std::pair<std::uint32_t, int>> tree_depths(
    const SymbolHist& counts) {
  std::vector<TreeNode> nodes;
  nodes.reserve(counts.size() * 2);
  using QItem = std::pair<std::pair<std::uint64_t, int>, int>;  // ((w,h), idx)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (const auto& [sym, cnt] : counts) {
    nodes.push_back({cnt, 0, static_cast<std::int64_t>(sym)});
    pq.push({{cnt, 0}, static_cast<int>(nodes.size()) - 1});
  }
  while (pq.size() > 1) {
    const auto a = pq.top();
    pq.pop();
    const auto b = pq.top();
    pq.pop();
    TreeNode parent;
    parent.weight = a.first.first + b.first.first;
    parent.height = std::max(a.first.second, b.first.second) + 1;
    parent.symbol = -1;
    parent.left = a.second;
    parent.right = b.second;
    nodes.push_back(parent);
    pq.push({{parent.weight, parent.height}, static_cast<int>(nodes.size()) - 1});
  }

  std::vector<std::pair<std::uint32_t, int>> depths;
  depths.reserve(counts.size());
  // Iterative DFS from the root (last node).
  std::vector<std::pair<int, int>> stack{{static_cast<int>(nodes.size()) - 1, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      depths.emplace_back(static_cast<std::uint32_t>(n.symbol), depth);
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  std::sort(depths.begin(), depths.end());
  return depths;
}

}  // namespace

SymbolCounts count_symbols(std::span<const std::uint32_t> symbols) {
  SymbolCounts counts;
  for (const std::uint32_t s : symbols) ++counts[s];
  return counts;
}

SymbolHist histogram_symbols(std::span<const std::uint32_t> symbols) {
  SymbolHist hist;
  if (symbols.empty()) return hist;
  // Sort a pooled copy and run-length it: one scratch vector instead
  // of a map node per unique symbol.
  ScratchLease<std::uint32_t> sorted(ScratchPool<std::uint32_t>::shared(),
                                     symbols.size());
  sorted->assign(symbols.begin(), symbols.end());
  std::sort(sorted->begin(), sorted->end());
  for (std::size_t i = 0; i < sorted->size();) {
    const std::uint32_t sym = (*sorted)[i];
    std::size_t run = i + 1;
    while (run < sorted->size() && (*sorted)[run] == sym) ++run;
    hist.emplace_back(sym, run - i);
    i = run;
  }
  return hist;
}

HuffmanCode HuffmanCode::from_counts(const SymbolCounts& counts) {
  return from_histogram(SymbolHist(counts.begin(), counts.end()));
}

HuffmanCode HuffmanCode::from_histogram(const SymbolHist& counts) {
  require(!counts.empty(), "HuffmanCode: empty histogram");
  HuffmanCode code;
  if (counts.size() == 1) {
    // Degenerate code: a single symbol encoded in zero bits.
    code.lengths_ = {{counts.begin()->first, 0}};
    code.codewords_ = {0};
    return code;
  }

  SymbolHist scaled = counts;
  while (true) {
    auto depths = tree_depths(scaled);
    const int max_depth =
        std::max_element(depths.begin(), depths.end(),
                         [](const auto& a, const auto& b) {
                           return a.second < b.second;
                         })
            ->second;
    if (max_depth <= kMaxCodeLength) {
      code.lengths_ = std::move(depths);
      break;
    }
    // Flatten the distribution and retry; halving weights (floor at 1)
    // strictly reduces the weight ratio that causes deep trees.
    for (auto& [sym, cnt] : scaled) cnt = std::max<std::uint64_t>(1, cnt / 2);
  }
  code.assign_canonical_codewords();
  return code;
}

void HuffmanCode::assign_canonical_codewords() {
  // Canonical assignment: sort by (length, symbol); codewords count up,
  // shifting left at every length increase.
  std::vector<std::size_t> order(lengths_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths_[a].second != lengths_[b].second)
      return lengths_[a].second < lengths_[b].second;
    return lengths_[a].first < lengths_[b].first;
  });

  codewords_.assign(lengths_.size(), 0);
  std::uint64_t next = 0;
  int prev_len = lengths_[order[0]].second;
  for (const std::size_t idx : order) {
    const int len = lengths_[idx].second;
    next <<= (len - prev_len);
    prev_len = len;
    codewords_[idx] = next++;
  }
}

int HuffmanCode::length(std::uint32_t symbol) const {
  const auto it = std::lower_bound(
      lengths_.begin(), lengths_.end(), symbol,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  if (it == lengths_.end() || it->first != symbol) return 0;
  return it->second;
}

std::uint64_t HuffmanCode::codeword(std::uint32_t symbol) const {
  const auto it = std::lower_bound(
      lengths_.begin(), lengths_.end(), symbol,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  require(it != lengths_.end() && it->first == symbol,
          "codeword: unknown symbol");
  return codewords_[static_cast<std::size_t>(it - lengths_.begin())];
}

std::uint64_t HuffmanCode::encoded_bits(const SymbolCounts& counts) const {
  std::uint64_t bits = 0;
  for (const auto& [sym, cnt] : counts) {
    bits += cnt * static_cast<std::uint64_t>(length(sym));
  }
  return bits;
}

void huffman_encode(std::span<const std::uint32_t> symbols, ByteSink& out) {
  out.put_varint(symbols.size());
  if (symbols.empty()) return;

  SymbolHist counts;
  HuffmanCode code;
  {
    OCELOT_SPAN("codec.huffman.histogram");
    counts = histogram_symbols(symbols);
    code = HuffmanCode::from_histogram(counts);
  }

  // Table: unique count, then delta-coded symbols with lengths.
  out.put_varint(code.lengths_.size());
  std::uint32_t prev = 0;
  for (const auto& [sym, len] : code.lengths_) {
    out.put_varint(sym - prev);
    out.put_varint(static_cast<std::uint64_t>(len));
    prev = sym;
  }

  // The payload length is fully determined by the histogram, so the
  // blob's varint prefix can go out before a single bit is packed —
  // the bit stream then lands directly in the sink's buffer instead of
  // an intermediate vector. lengths_ and the histogram are sorted over
  // the same symbol set, so they align index by index.
  std::uint64_t payload_bits = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    payload_bits += counts[i].second *
                    static_cast<std::uint64_t>(code.lengths_[i].second);
  }
  out.put_varint((payload_bits + 7) / 8);
  out.reserve((payload_bits + 7) / 8);

  // Fast per-symbol lookup aligned with lengths_ order.
  BitWriter bits(out.target());
  for (const std::uint32_t s : symbols) {
    const auto it = std::lower_bound(
        code.lengths_.begin(), code.lengths_.end(), s,
        [](const auto& entry, std::uint32_t v) { return entry.first < v; });
    const std::size_t idx =
        static_cast<std::size_t>(it - code.lengths_.begin());
    const int len = code.lengths_[idx].second;
    const std::uint64_t w = code.codewords_[idx];
    // Emit MSB-first so canonical prefix decoding works bit by bit.
    for (int b = len - 1; b >= 0; --b) bits.put_bit((w >> b) & 1u);
  }
  bits.flush();
}

Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  BytesWriter out;
  huffman_encode(symbols, out);
  return out.take();
}

void huffman_decode_into(std::span<const std::uint8_t> data,
                         std::vector<std::uint32_t>& out) {
  out.clear();
  BytesReader in(data);
  const std::uint64_t n = in.get_varint();
  if (n == 0) return;
  out.reserve(n);

  const std::uint64_t unique = in.get_varint();
  if (unique == 0) throw CorruptStream("huffman: empty code table");
  std::vector<std::pair<std::uint32_t, int>> lengths;
  lengths.reserve(unique);
  std::uint32_t sym = 0;
  for (std::uint64_t i = 0; i < unique; ++i) {
    sym += static_cast<std::uint32_t>(in.get_varint());
    const int len = static_cast<int>(in.get_varint());
    if (len < 0 || len > kMaxCodeLength)
      throw CorruptStream("huffman: bad code length");
    lengths.emplace_back(sym, len);
  }

  if (unique == 1) {
    // Zero-bit degenerate code.
    out.assign(n, lengths[0].first);
    (void)in.get_blob();
    return;
  }

  // Canonical decode tables: per length, the first codeword and the
  // symbols of that length in canonical order.
  std::vector<std::size_t> order(lengths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths[a].second != lengths[b].second)
      return lengths[a].second < lengths[b].second;
    return lengths[a].first < lengths[b].first;
  });

  std::array<std::uint64_t, kMaxCodeLength + 2> first_code{};
  std::array<std::uint64_t, kMaxCodeLength + 2> count_at{};
  std::array<std::size_t, kMaxCodeLength + 2> offset_at{};
  std::vector<std::uint32_t> symbols_in_order;
  symbols_in_order.reserve(lengths.size());
  {
    std::uint64_t next = 0;
    int prev_len = lengths[order[0]].second;
    if (prev_len == 0) throw CorruptStream("huffman: zero-length code");
    for (const std::size_t idx : order) {
      const int len = lengths[idx].second;
      next <<= (len - prev_len);
      prev_len = len;
      if (count_at[static_cast<std::size_t>(len)] == 0) {
        first_code[static_cast<std::size_t>(len)] = next;
        offset_at[static_cast<std::size_t>(len)] = symbols_in_order.size();
      }
      ++count_at[static_cast<std::size_t>(len)];
      symbols_in_order.push_back(lengths[idx].first);
      ++next;
    }
  }

  const auto payload = in.get_blob();
  BitReader bits(payload);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t codeword = 0;
    int len = 0;
    while (true) {
      codeword = (codeword << 1) | static_cast<std::uint64_t>(bits.get_bit());
      ++len;
      if (len > kMaxCodeLength) throw CorruptStream("huffman: code too long");
      const auto l = static_cast<std::size_t>(len);
      if (count_at[l] != 0 && codeword >= first_code[l] &&
          codeword < first_code[l] + count_at[l]) {
        out.push_back(
            symbols_in_order[offset_at[l] + (codeword - first_code[l])]);
        break;
      }
    }
  }
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> data) {
  std::vector<std::uint32_t> out;
  huffman_decode_into(data, out);
  return out;
}

}  // namespace ocelot
