#include "codec/entropy.hpp"
#include <sstream>

#include "codec/huffman.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot {

std::string entropy_caps_to_string(std::uint32_t caps) {
  std::string s;
  const auto append = [&](const char* part) {
    if (!s.empty()) s += '+';
    s += part;
  };
  if (caps & kEntropyCapCodes) append("codes");
  if (caps & kEntropyCapBytes) append("bytes");
  if (caps & kEntropyCapChained) append("lzb-chain");
  return s.empty() ? "-" : s;
}

// --- default code lowering -------------------------------------------
// Byte-stage adapters: a u32 code stream becomes four byte planes (all
// low bytes first, then each higher plane). Quantized codes cluster
// near the radius, so the upper planes are near-constant runs — the
// shape BWT/MTF and LZW exploit — while staying a trivially invertible
// permutation of the little-endian bytes.

void EntropyStage::encode_into(std::span<const std::uint32_t> codes,
                               ByteSink& out) const {
  PooledBuffer planes(BufferPool::shared());
  planes->reserve(codes.size() * 4);
  for (int p = 0; p < 4; ++p) {
    for (const std::uint32_t code : codes) {
      planes->push_back(static_cast<std::uint8_t>(code >> (8 * p)));
    }
  }
  encode_bytes_into(*planes, out);
}

void EntropyStage::decode_into(std::span<const std::uint8_t> payload,
                               std::vector<std::uint32_t>& out) const {
  PooledBuffer planes(BufferPool::shared());
  decode_bytes_into(payload, *planes);
  if (planes->size() % 4 != 0)
    throw CorruptStream("entropy: code planes misaligned");
  const std::size_t n = planes->size() / 4;
  out.assign(n, 0);
  for (int p = 0; p < 4; ++p) {
    const std::uint8_t* plane = planes->data() + p * n;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] |= static_cast<std::uint32_t>(plane[i]) << (8 * p);
    }
  }
}

// --- stage 0: the legacy Huffman+lossless chain ----------------------

namespace {

/// Stage 0 wraps the pre-registry entropy chain. Its payload carries
/// its own LosslessBackend leading byte (written by lossless_compress),
/// which is exactly why ids 1-2 are reserved: a legacy section is a
/// stage-0 section whose first byte happens to be the lossless id.
class HuffmanLzbStage final : public EntropyStage {
 public:
  [[nodiscard]] std::string name() const override { return "huffman"; }
  [[nodiscard]] std::uint8_t wire_id() const override {
    return kEntropyHuffmanId;
  }
  [[nodiscard]] std::string description() const override {
    return "canonical Huffman + lossless chain (legacy default)";
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return kEntropyCapCodes | kEntropyCapBytes | kEntropyCapChained;
  }

  void encode_into(std::span<const std::uint32_t> codes,
                   ByteSink& out) const override {
    PooledBuffer huff(BufferPool::shared());
    ByteSink huff_sink(*huff);
    {
      OCELOT_SPAN("codec.huffman");
      huffman_encode(codes, huff_sink);
    }
    OCELOT_SPAN("codec.lossless");
    lossless_compress(*huff, LosslessBackend::kLzb, out);
  }

  void decode_into(std::span<const std::uint8_t> payload,
                   std::vector<std::uint32_t>& out) const override {
    PooledBuffer huff(BufferPool::shared());
    lossless_decompress_into(payload, *huff);
    huffman_decode_into(*huff, out);
  }

  void encode_bytes_into(std::span<const std::uint8_t> raw,
                         ByteSink& out) const override {
    ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(),
                                     raw.size());
    wide->assign(raw.begin(), raw.end());
    encode_into(*wide, out);
  }

  void decode_bytes_into(std::span<const std::uint8_t> payload,
                         Bytes& out) const override {
    ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(), 0);
    decode_into(payload, *wide);
    out.clear();
    out.reserve(wide->size());
    for (const std::uint32_t v : *wide) {
      if (v > 0xFF) throw CorruptStream("entropy: byte symbol out of range");
      out.push_back(static_cast<std::uint8_t>(v));
    }
  }
};

}  // namespace

std::unique_ptr<EntropyStage> make_huffman_stage() {
  return std::make_unique<HuffmanLzbStage>();
}

// --- packed-section dispatch -----------------------------------------

void entropy_encode_codes(std::span<const std::uint32_t> codes,
                          const EntropyStage& stage, LosslessBackend lossless,
                          ByteSink& out) {
  if (stage.wire_id() == kEntropyHuffmanId) {
    // Legacy chain, honoring the configured lossless backend: the
    // section's leading byte is the lossless id, and the bytes match
    // the pre-registry writer bit for bit.
    PooledBuffer huff(BufferPool::shared());
    ByteSink huff_sink(*huff);
    {
      OCELOT_SPAN("codec.huffman");
      huffman_encode(codes, huff_sink);
    }
    OCELOT_SPAN("codec.lossless");
    lossless_compress(*huff, lossless, out);
    return;
  }
  out.put(stage.wire_id());
  stage.encode_into(codes, out);
}

void entropy_encode_codes_hist(
    std::span<const std::uint32_t> codes,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    const EntropyStage& stage, LosslessBackend lossless, ByteSink& out) {
  if (stage.wire_id() == kEntropyHuffmanId) {
    PooledBuffer huff(BufferPool::shared());
    ByteSink huff_sink(*huff);
    {
      OCELOT_SPAN("codec.huffman");
      huffman_encode(codes, hist, huff_sink);
    }
    OCELOT_SPAN("codec.lossless");
    lossless_compress(*huff, lossless, out);
    return;
  }
  entropy_encode_codes(codes, stage, lossless, out);
}

void entropy_decode_codes_into(std::span<const std::uint8_t> packed,
                               std::vector<std::uint32_t>& out) {
  if (packed.empty()) throw CorruptStream("entropy: empty codes section");
  const std::uint8_t id = packed[0];
  if (id <= kMaxLegacyEntropyId) {
    // Legacy chain: the id byte is the lossless backend id and belongs
    // to the lossless framing, so the whole span passes through.
    PooledBuffer huff(BufferPool::shared());
    lossless_decompress_into(packed, *huff);
    huffman_decode_into(*huff, out);
    return;
  }
  EntropyRegistry::instance().by_id(id).decode_into(packed.subspan(1), out);
}

// --- registry --------------------------------------------------------

EntropyRegistry::EntropyRegistry() {
  add(make_huffman_stage());
  add(make_ans_stage());
  add(make_bwt_mtf_stage());
  add(make_lzw_stage());
}

EntropyRegistry& EntropyRegistry::instance() {
  static EntropyRegistry registry;
  return registry;
}

const EntropyStage& EntropyRegistry::add(std::unique_ptr<EntropyStage> stage) {
  require(stage != nullptr, "EntropyRegistry: null stage");
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string name = stage->name();
  const std::uint8_t id = stage->wire_id();
  require(!name.empty(), "EntropyRegistry: empty stage name");
  if (id != kEntropyHuffmanId && id <= kMaxLegacyEntropyId)
    throw InvalidArgument(
        "EntropyRegistry: wire ids 1-2 are reserved for the legacy "
        "lossless chain (" +
        name + ")");
  if (by_name_.count(name) > 0)
    throw InvalidArgument("EntropyRegistry: duplicate stage name " + name);
  if (by_id_.count(id) > 0)
    throw InvalidArgument("EntropyRegistry: duplicate stage wire id " +
                          std::to_string(id) + " (" + name + ")");
  const EntropyStage* raw = stage.get();
  by_id_[id] = std::move(stage);
  by_name_[name] = raw;
  return *raw;
}

const EntropyStage& EntropyRegistry::by_name(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::ostringstream msg;
    msg << "unknown entropy stage: " << name << " (registered:";
    for (const auto& [id, stage] : by_id_) msg << " " << stage->name();
    msg << ")";
    throw InvalidArgument(msg.str());
  }
  return *it->second;
}

const EntropyStage& EntropyRegistry::by_id(std::uint8_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end())
    throw CorruptStream("entropy: unknown stage id " + std::to_string(id));
  return *it->second;
}

const EntropyStage* EntropyRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const EntropyStage* EntropyRegistry::find_by_id(std::uint8_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

std::vector<const EntropyStage*> EntropyRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const EntropyStage*> stages;
  stages.reserve(by_id_.size());
  for (const auto& [id, stage] : by_id_) stages.push_back(stage.get());
  return stages;
}

EntropyStageRegistrar::EntropyStageRegistrar(
    std::unique_ptr<EntropyStage> stage) {
  try {
    EntropyRegistry::instance().add(std::move(stage));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: entropy stage registration failed: %s\n",
                 e.what());
    std::abort();
  }
}

std::vector<std::string> registered_entropy_stage_names() {
  std::vector<std::string> names;
  for (const EntropyStage* s : EntropyRegistry::instance().list()) {
    names.push_back(s->name());
  }
  return names;
}

}  // namespace ocelot
