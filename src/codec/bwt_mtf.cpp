#include "codec/bwt_mtf.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "codec/entropy.hpp"
#include "codec/huffman.hpp"
#include "codec/rle.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

/// Transform chunk size. Chunking bounds the suffix-array working set
/// (a few MB of u32 scratch) and keeps per-chunk primary indices in
/// two varint bytes.
constexpr std::size_t kChunk = std::size_t{1} << 16;

/// Sorts all cyclic rotations of `s` by counting-sort prefix doubling:
/// p[i] is the start of the i-th rotation in sorted order. O(n log n)
/// regardless of content, so the all-equal streams the plane split
/// produces do not degenerate. Scratch vectors are caller-owned so the
/// per-chunk loop reuses their capacity.
void sort_rotations(std::span<const std::uint8_t> s, std::vector<std::uint32_t>& p,
                    std::vector<std::uint32_t>& c, std::vector<std::uint32_t>& pn,
                    std::vector<std::uint32_t>& cn,
                    std::vector<std::uint32_t>& cnt) {
  const std::size_t n = s.size();
  p.resize(n);
  c.resize(n);
  pn.resize(n);
  cn.resize(n);
  cnt.assign(std::max<std::size_t>(256, n), 0);

  for (const std::uint8_t b : s) ++cnt[b];
  for (std::size_t i = 1; i < 256; ++i) cnt[i] += cnt[i - 1];
  for (std::size_t i = n; i-- > 0;) p[--cnt[s[i]]] = static_cast<std::uint32_t>(i);
  c[p[0]] = 0;
  std::uint32_t classes = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (s[p[i]] != s[p[i - 1]]) ++classes;
    c[p[i]] = classes - 1;
  }

  for (std::size_t h = 1; h < n && classes < n; h <<= 1) {
    // pn is p shifted back by h: already sorted by the second half of
    // the 2h-prefix, so one stable counting sort on the first half
    // finishes the round.
    for (std::size_t i = 0; i < n; ++i) {
      pn[i] = static_cast<std::uint32_t>((p[i] + n - h) % n);
    }
    std::fill(cnt.begin(), cnt.begin() + classes, 0);
    for (std::size_t i = 0; i < n; ++i) ++cnt[c[pn[i]]];
    for (std::size_t i = 1; i < classes; ++i) cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;) p[--cnt[c[pn[i]]]] = pn[i];

    cn[p[0]] = 0;
    classes = 1;
    for (std::size_t i = 1; i < n; ++i) {
      const bool same = c[p[i]] == c[p[i - 1]] &&
                        c[(p[i] + h) % n] == c[(p[i - 1] + h) % n];
      if (!same) ++classes;
      cn[p[i]] = classes - 1;
    }
    c.swap(cn);
  }
}

/// Move-to-front table shared across the whole stream (chunks included)
/// so cross-chunk locality carries over.
struct MtfTable {
  std::array<std::uint8_t, 256> order;

  MtfTable() { std::iota(order.begin(), order.end(), std::uint8_t{0}); }

  std::uint8_t encode(std::uint8_t b) {
    std::uint8_t j = 0;
    while (order[j] != b) ++j;
    std::memmove(&order[1], &order[0], j);
    order[0] = b;
    return j;
  }

  std::uint8_t decode(std::uint8_t j) {
    const std::uint8_t b = order[j];
    std::memmove(&order[1], &order[0], j);
    order[0] = b;
    return b;
  }
};

/// LF-mapping inverse of one chunk transform; appends to `out`.
void inverse_bwt(std::span<const std::uint8_t> last, std::uint32_t primary,
                 std::vector<std::uint32_t>& lf, Bytes& out) {
  const std::size_t n = last.size();
  std::array<std::uint32_t, 257> starts{};
  for (const std::uint8_t b : last) ++starts[b + 1];
  for (std::size_t i = 1; i <= 256; ++i) starts[i] += starts[i - 1];

  lf.resize(n);
  std::array<std::uint32_t, 256> seen{};
  for (std::size_t i = 0; i < n; ++i) {
    lf[i] = starts[last[i]] + seen[last[i]]++;
  }

  const std::size_t base = out.size();
  out.resize(base + n);
  std::uint32_t row = primary;
  for (std::size_t k = n; k-- > 0;) {
    out[base + k] = last[row];
    row = lf[row];
  }
}

}  // namespace

void bwt_mtf_encode(std::span<const std::uint8_t> raw, ByteSink& out) {
  OCELOT_SPAN("codec.bwt");
  out.put_varint(raw.size());
  if (raw.empty()) return;

  const std::size_t chunks = (raw.size() + kChunk - 1) / kChunk;
  out.put_varint(chunks);

  PooledBuffer mtf(BufferPool::shared());
  mtf->reserve(raw.size());
  MtfTable table;
  std::vector<std::uint32_t> p, c, pn, cn, cnt;
  for (std::size_t ci = 0; ci < chunks; ++ci) {
    const auto s = raw.subspan(ci * kChunk,
                               std::min(kChunk, raw.size() - ci * kChunk));
    sort_rotations(s, p, c, pn, cn, cnt);
    const std::size_t n = s.size();
    std::uint32_t primary = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] == 0) primary = static_cast<std::uint32_t>(i);
    }
    out.put_varint(primary);
    for (std::size_t i = 0; i < n; ++i) {
      mtf->push_back(table.encode(s[(p[i] + n - 1) % n]));
    }
  }

  PooledBuffer rle(BufferPool::shared());
  ByteSink rle_sink(*rle);
  rle_compress(*mtf, rle_sink);

  ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(),
                                   rle->size());
  wide->assign(rle->begin(), rle->end());
  huffman_encode(*wide, out);
}

void bwt_mtf_decode_into(std::span<const std::uint8_t> data, Bytes& out) {
  OCELOT_SPAN("codec.bwt");
  out.clear();
  BytesReader in(data);
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size == 0) {
    if (!in.exhausted()) throw CorruptStream("bwt: trailing bytes");
    return;
  }
  if (raw_size > (std::uint64_t{1} << 40))
    throw CorruptStream("bwt: implausible raw size");

  const std::uint64_t chunks = in.get_varint();
  if (chunks != (raw_size + kChunk - 1) / kChunk)
    throw CorruptStream("bwt: chunk count mismatch");
  std::vector<std::uint32_t> primaries(chunks);
  for (std::uint64_t ci = 0; ci < chunks; ++ci) {
    const std::uint64_t primary = in.get_varint();
    const std::uint64_t len =
        std::min<std::uint64_t>(kChunk, raw_size - ci * kChunk);
    if (primary >= len) throw CorruptStream("bwt: primary row out of range");
    primaries[ci] = static_cast<std::uint32_t>(primary);
  }

  ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(), 0);
  huffman_decode_into(in.get_bytes(in.remaining()), *wide);
  PooledBuffer rle(BufferPool::shared());
  rle->reserve(wide->size());
  for (const std::uint32_t v : *wide) {
    if (v > 0xFF) throw CorruptStream("bwt: symbol out of range");
    rle->push_back(static_cast<std::uint8_t>(v));
  }

  PooledBuffer mtf(BufferPool::shared());
  rle_decompress_into(*rle, *mtf);
  if (mtf->size() != raw_size)
    throw CorruptStream("bwt: transform length mismatch");

  MtfTable table;
  for (auto& b : *mtf) b = table.decode(b);

  out.reserve(raw_size);
  std::vector<std::uint32_t> lf;
  for (std::uint64_t ci = 0; ci < chunks; ++ci) {
    const std::size_t len =
        std::min<std::uint64_t>(kChunk, raw_size - ci * kChunk);
    inverse_bwt(std::span<const std::uint8_t>(*mtf).subspan(ci * kChunk, len),
                primaries[ci], lf, out);
  }
}

namespace {

class BwtMtfStage final : public EntropyStage {
 public:
  [[nodiscard]] std::string name() const override { return "bwt-mtf"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return kEntropyBwtId; }
  [[nodiscard]] std::string description() const override {
    return "block-sorting chain: BWT (64 KB chunks) + MTF + RLE + Huffman";
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return kEntropyCapBytes;
  }

  void encode_bytes_into(std::span<const std::uint8_t> raw,
                         ByteSink& out) const override {
    bwt_mtf_encode(raw, out);
  }

  void decode_bytes_into(std::span<const std::uint8_t> payload,
                         Bytes& out) const override {
    bwt_mtf_decode_into(payload, out);
  }
};

}  // namespace

std::unique_ptr<EntropyStage> make_bwt_mtf_stage() {
  return std::make_unique<BwtMtfStage>();
}

}  // namespace ocelot
