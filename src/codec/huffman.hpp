#pragma once
// Canonical Huffman coding over 32-bit symbols.
//
// The SZ-style compressors emit streams of quantization codes (centered
// around the zero bin); Huffman coding is the variable-length encoder
// that turns the skewed code distribution into a compact bit stream
// (Section III-A of the paper). The code table is also used standalone
// by the feature extractor to compute the P0 feature (the share of the
// encoded bit stream occupied by the zero bin).
//
// Stream layout: varint symbol-count, varint unique-count, delta-coded
// (symbol, code-length) pairs, then the canonical bit stream.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace ocelot {

/// Symbol frequency histogram.
using SymbolCounts = std::map<std::uint32_t, std::uint64_t>;

/// Builds a histogram of a symbol stream.
SymbolCounts count_symbols(std::span<const std::uint32_t> symbols);

/// A canonical Huffman code: per-symbol code lengths and codewords.
class HuffmanCode {
 public:
  /// Builds an optimal prefix code from symbol frequencies.
  ///
  /// Counts must be non-empty. Code lengths are capped at 57 bits by
  /// iterative frequency rescaling (never triggered by realistic data).
  static HuffmanCode from_counts(const SymbolCounts& counts);

  /// Code length in bits for `symbol`; 0 if the symbol is not in the code.
  [[nodiscard]] int length(std::uint32_t symbol) const;

  /// Canonical codeword for `symbol` (valid when length(symbol) > 0).
  [[nodiscard]] std::uint64_t codeword(std::uint32_t symbol) const;

  /// Total encoded size in bits for the histogram `counts`.
  [[nodiscard]] std::uint64_t encoded_bits(const SymbolCounts& counts) const;

  /// All (symbol, length) pairs sorted by symbol.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, int>>& lengths()
      const {
    return lengths_;
  }

 private:
  // Sorted by symbol; codewords_ aligned with lengths_.
  std::vector<std::pair<std::uint32_t, int>> lengths_;
  std::vector<std::uint64_t> codewords_;

  void assign_canonical_codewords();
  friend Bytes huffman_encode(std::span<const std::uint32_t>);
  friend std::vector<std::uint32_t> huffman_decode(
      std::span<const std::uint8_t>);
};

/// Encodes a symbol stream (table + bits). Empty input yields a valid
/// stream that decodes to an empty vector.
Bytes huffman_encode(std::span<const std::uint32_t> symbols);

/// Decodes a stream produced by huffman_encode.
/// Throws CorruptStream on malformed input.
std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> data);

}  // namespace ocelot
