#pragma once
// Canonical Huffman coding over 32-bit symbols.
//
// The SZ-style compressors emit streams of quantization codes (centered
// around the zero bin); Huffman coding is the variable-length encoder
// that turns the skewed code distribution into a compact bit stream
// (Section III-A of the paper). The code table is also used standalone
// by the feature extractor to compute the P0 feature (the share of the
// encoded bit stream occupied by the zero bin).
//
// Stream layout: varint symbol-count, varint unique-count, delta-coded
// (symbol, code-length) pairs, then the canonical bit stream.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace ocelot {

/// Symbol frequency histogram (map form, for callers that probe
/// individual symbols — e.g. the feature extractor).
using SymbolCounts = std::map<std::uint32_t, std::uint64_t>;

/// Flat histogram: (symbol, count) pairs sorted by symbol. The encoder
/// works on this form — building it is one sort over pooled scratch
/// instead of one map node allocation per unique symbol.
using SymbolHist = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

/// Builds a histogram of a symbol stream.
SymbolCounts count_symbols(std::span<const std::uint32_t> symbols);

/// Flat-histogram variant (sorted by symbol).
SymbolHist histogram_symbols(std::span<const std::uint32_t> symbols);

/// A canonical Huffman code: per-symbol code lengths and codewords.
class HuffmanCode {
 public:
  /// Builds an optimal prefix code from symbol frequencies.
  ///
  /// Counts must be non-empty. Code lengths are capped at 57 bits by
  /// iterative frequency rescaling (never triggered by realistic data).
  static HuffmanCode from_counts(const SymbolCounts& counts);

  /// Same code from the flat form; `hist` must be sorted by symbol.
  static HuffmanCode from_histogram(const SymbolHist& hist);

  /// Code length in bits for `symbol`; 0 if the symbol is not in the code.
  [[nodiscard]] int length(std::uint32_t symbol) const;

  /// Canonical codeword for `symbol` (valid when length(symbol) > 0).
  [[nodiscard]] std::uint64_t codeword(std::uint32_t symbol) const;

  /// Total encoded size in bits for the histogram `counts`.
  [[nodiscard]] std::uint64_t encoded_bits(const SymbolCounts& counts) const;

  /// All (symbol, length) pairs sorted by symbol.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, int>>& lengths()
      const {
    return lengths_;
  }

 private:
  // Sorted by symbol; codewords_ aligned with lengths_.
  std::vector<std::pair<std::uint32_t, int>> lengths_;
  std::vector<std::uint64_t> codewords_;
};

/// Encodes a symbol stream (table + bits) into `out`. The payload
/// length is precomputed from the code-length table, so the bit stream
/// packs straight into the sink's buffer — no intermediate vector.
/// Empty input yields a valid stream that decodes to an empty vector.
void huffman_encode(std::span<const std::uint32_t> symbols, ByteSink& out);

/// Histogram-aware variant for fused callers that already counted the
/// symbols while producing them. `hist` must be the exact
/// symbol-sorted histogram of `symbols`; the stream is byte-identical
/// to the histogram-free overload.
void huffman_encode(
    std::span<const std::uint32_t> symbols,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
[[deprecated("use huffman_encode(symbols, sink)")]] Bytes huffman_encode(
    std::span<const std::uint32_t> symbols);

/// Decodes a stream produced by huffman_encode into `out` (cleared
/// first; capacity is reused). Throws CorruptStream on malformed input.
void huffman_decode_into(std::span<const std::uint8_t> data,
                         std::vector<std::uint32_t>& out);

/// Convenience wrapper returning a fresh vector.
[[deprecated("use huffman_decode_into(data, out)")]] std::vector<std::uint32_t>
huffman_decode(std::span<const std::uint8_t> data);

}  // namespace ocelot
