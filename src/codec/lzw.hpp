#pragma once
// Variable-width LZW over byte streams.
//
// The dictionary coder of the stage family: codes 0-255 are literals,
// fresh phrases take ids from 256 up to a 65536-entry cap (no clear
// code — once full, both sides simply stop adding, so the dictionaries
// stay identical without reset bookkeeping). Code widths grow with the
// dictionary: the m-th code (1-based) on either side is written and
// read with bit_width(min(254 + m, 65535)) bits, which is exactly the
// encoder's largest emittable id at that step — the classic
// early-change off-by-one cannot happen because both sides share the
// formula.
//
// Stream layout: varint raw size, then the LSB-first code bit stream
// (BitWriter framing, zero-padded to a byte boundary).
//
// Registered as entropy stage "lzw" (wire id 5, see entropy.hpp).

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

/// Encodes `raw` into `out` (appended; no stage-id byte).
void lzw_encode(std::span<const std::uint8_t> raw, ByteSink& out);

/// Decodes a stream produced by lzw_encode. Throws CorruptStream on
/// out-of-range codes or a bit stream that disagrees with the raw size.
void lzw_decode_into(std::span<const std::uint8_t> data, Bytes& out);

}  // namespace ocelot
