#pragma once
// Pluggable lossless backend applied after Huffman coding.
//
// Mirrors SZ3's modular design where the final dictionary-coding stage
// is swappable (zstd in SZ3; LZB here). The backend id is stored in the
// compressed container so decompression is self-describing.

#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.hpp"

namespace ocelot {

enum class LosslessBackend : std::uint8_t {
  kNone = 0,  ///< store bytes as-is
  kLzb = 1,   ///< LZ77-style dictionary coder
  kRleLzb = 2 ///< run-length pass, then LZB
};

/// Human-readable backend name ("none", "lzb", "rle+lzb").
std::string to_string(LosslessBackend backend);

/// Applies the chosen backend. Output embeds the backend id.
Bytes lossless_compress(std::span<const std::uint8_t> raw,
                        LosslessBackend backend);

/// Inverts lossless_compress, dispatching on the embedded backend id.
/// Throws CorruptStream on malformed input.
Bytes lossless_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ocelot
