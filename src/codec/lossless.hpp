#pragma once
// Pluggable lossless backend applied after Huffman coding.
//
// Mirrors SZ3's modular design where the final dictionary-coding stage
// is swappable (zstd in SZ3; LZB here). The backend id is stored in the
// compressed container so decompression is self-describing.
//
// The sink/_into entry points are the streaming data path: they append
// into caller-provided buffers (typically pooled scratch or the final
// blob) so chained stages never materialize intermediate vectors. New
// codec code must use these; the Bytes-returning forms are
// compatibility wrappers.

#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.hpp"

namespace ocelot {

enum class LosslessBackend : std::uint8_t {
  kNone = 0,  ///< store bytes as-is
  kLzb = 1,   ///< LZ77-style dictionary coder
  kRleLzb = 2 ///< run-length pass, then LZB
};

/// Human-readable backend name ("none", "lzb", "rle+lzb").
std::string to_string(LosslessBackend backend);

/// Applies the chosen backend, appending to `out` (backend id first).
/// Chained stages (rle+lzb) run through pooled scratch.
void lossless_compress(std::span<const std::uint8_t> raw,
                       LosslessBackend backend, ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
[[deprecated("use lossless_compress(raw, backend, sink)")]] Bytes
lossless_compress(std::span<const std::uint8_t> raw, LosslessBackend backend);

/// Inverts lossless_compress into `out` (cleared first; capacity is
/// reused), dispatching on the embedded backend id.
/// Throws CorruptStream on malformed input.
void lossless_decompress_into(std::span<const std::uint8_t> compressed,
                              Bytes& out);

/// Convenience wrapper returning a fresh buffer.
[[deprecated("use lossless_decompress_into(compressed, out)")]] Bytes
lossless_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ocelot
