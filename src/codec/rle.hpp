#pragma once
// Byte-level run-length coding with a double-byte escape.
//
// Runs of three or more equal bytes are stored as two copies of the
// byte plus a varint of the remaining run length. Useful ahead of LZB
// for extremely sparse quantization streams and exercised by the
// lossless-backend chain tests.

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

/// Encodes `raw` into `out` (appending).
void rle_compress(std::span<const std::uint8_t> raw, ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
Bytes rle_compress(std::span<const std::uint8_t> raw);

/// Decodes into `out` (cleared first; capacity is reused).
/// Throws CorruptStream on malformed input.
void rle_decompress_into(std::span<const std::uint8_t> compressed, Bytes& out);

/// Convenience wrapper returning a fresh buffer.
Bytes rle_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ocelot
