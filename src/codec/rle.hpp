#pragma once
// Byte-level run-length coding with a double-byte escape.
//
// Runs of three or more equal bytes are stored as two copies of the
// byte plus a varint of the remaining run length. Used ahead of LZB
// for extremely sparse quantization streams (LosslessBackend::kRleLzb)
// and as the run-squeezing sub-stage of the "bwt-mtf" entropy pipeline
// (codec/bwt_mtf.hpp), whose MTF output is dominated by zero runs.

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

/// Encodes `raw` into `out` (appending).
void rle_compress(std::span<const std::uint8_t> raw, ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
Bytes rle_compress(std::span<const std::uint8_t> raw);

/// Decodes into `out` (cleared first; capacity is reused).
/// Throws CorruptStream on malformed input.
void rle_decompress_into(std::span<const std::uint8_t> compressed, Bytes& out);

/// Convenience wrapper returning a fresh buffer.
Bytes rle_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ocelot
