#pragma once
// Byte-level run-length coding with a double-byte escape.
//
// Runs of three or more equal bytes are stored as two copies of the
// byte plus a varint of the remaining run length. Useful ahead of LZB
// for extremely sparse quantization streams and exercised by the
// lossless-backend chain tests.

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

Bytes rle_compress(std::span<const std::uint8_t> raw);

/// Throws CorruptStream on malformed input.
Bytes rle_decompress(std::span<const std::uint8_t> compressed);

}  // namespace ocelot
