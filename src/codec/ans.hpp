#pragma once
// Tabled static rANS coder over u32 symbol streams.
//
// A range-variant asymmetric numeral system with a per-block static
// frequency table: symbol frequencies are normalized to a power-of-two
// scale (12-15 bits, grown with the alphabet), the encoder folds
// symbols into one 32-bit state with byte-granular renormalization,
// and the decoder walks the stream back with a slot->symbol table.
// Unlike Huffman, code lengths are not rounded to whole bits, so rANS
// sits within ~0.1% of the sampled entropy — on the skewed
// quantization-bin histograms the SZ pipelines produce it matches or
// beats the Huffman+lzb chain without any dictionary pass.
//
// Stream layout: varint symbol count; then (when non-empty) a mode
// byte — 1 = rANS with scale byte, delta-coded (symbol, freq) table
// and the length-prefixed state+byte stream (encoder-reversed, so the
// decoder reads forward); 0 = plain varint symbols, the fallback for
// alphabets too large to table (> 2^15 unique symbols).
//
// Registered as entropy stage "ans" (wire id 3, see entropy.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace ocelot {

/// Encodes `symbols` into `out` (appended; no stage-id byte).
void ans_encode(std::span<const std::uint32_t> symbols, ByteSink& out);

/// Decodes a stream produced by ans_encode. Throws CorruptStream on
/// malformed tables, a dangling final state, or trailing bytes.
void ans_decode_into(std::span<const std::uint8_t> data,
                     std::vector<std::uint32_t>& out);

}  // namespace ocelot
