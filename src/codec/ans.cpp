#include "codec/ans.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "codec/entropy.hpp"
#include "codec/huffman.hpp"
#include "codec/lossless.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

/// Lower bound of the renormalization interval: the encoder starts
/// here and the decoder must land back on it, which doubles as a
/// cheap integrity check on the whole stream.
constexpr std::uint32_t kRansLow = 1u << 23;

// Wide scale range: small blocks with modest alphabets genuinely
// prefer a tiny table (an 8-bit scale is 1-byte freq varints and
// little precision to lose over a short stream), large blocks want
// the finest model. The encoder's cost-aware selector picks within
// this range; renormalization stays sound for any scale below the 23
// bits of kRansLow.
constexpr int kMinScaleBits = 8;
constexpr int kMaxScaleBits = 15;

/// Alphabets beyond this cannot give every symbol a nonzero slot at
/// the maximum scale; such blocks fall back to plain varints.
constexpr std::size_t kMaxUnique = std::size_t{1} << kMaxScaleBits;

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeRans = 1;

/// Normalizes the histogram to sum exactly 1 << scale_bits, keeping
/// every present symbol at frequency >= 1. Deterministic: rounding
/// drift is absorbed by the most frequent symbol (ties -> lowest
/// index), clamped at 1 so no symbol ever loses its slot.
std::vector<std::uint32_t> normalize_freqs(const SymbolHist& hist,
                                           std::uint64_t total,
                                           int scale_bits) {
  const std::uint64_t target = std::uint64_t{1} << scale_bits;
  std::vector<std::uint32_t> freqs(hist.size());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    const std::uint64_t scaled = hist[i].second * target / total;
    freqs[i] = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, scaled));
    sum += freqs[i];
  }
  while (sum != target) {
    std::size_t top = 0;
    for (std::size_t i = 1; i < freqs.size(); ++i) {
      if (freqs[i] > freqs[top]) top = i;
    }
    if (sum > target) {
      const std::uint64_t take =
          std::min<std::uint64_t>(freqs[top] - 1, sum - target);
      freqs[top] -= static_cast<std::uint32_t>(take);
      sum -= take;
    } else {
      freqs[top] += static_cast<std::uint32_t>(target - sum);
      sum = target;
    }
  }
  return freqs;
}

void encode_raw(std::span<const std::uint32_t> symbols, ByteSink& out) {
  out.put(kModeRaw);
  for (const std::uint32_t s : symbols) out.put_varint(s);
}

}  // namespace

void ans_encode(std::span<const std::uint32_t> symbols, ByteSink& out) {
  OCELOT_SPAN("codec.ans");
  out.put_varint(symbols.size());
  if (symbols.empty()) return;

  const SymbolHist hist = histogram_symbols(symbols);
  if (hist.size() > kMaxUnique) {
    encode_raw(symbols, out);
    return;
  }

  // Scale selection is cost-aware: a finer scale models a skewed
  // histogram more accurately (fewer cross-entropy bits per symbol)
  // but spends more header bytes on larger frequency varints. Both
  // terms fall straight out of the normalized table, so every scale is
  // priced exactly — estimated payload plus header — without encoding
  // anything, and the cheapest wins. Pure function of the histogram,
  // so the choice is deterministic.
  int scale_bits = kMaxScaleBits;
  std::vector<std::uint32_t> freqs;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int sb = kMinScaleBits; sb <= kMaxScaleBits; ++sb) {
    if ((std::size_t{1} << sb) < hist.size()) continue;  // a slot each
    std::vector<std::uint32_t> candidate =
        normalize_freqs(hist, symbols.size(), sb);
    double bits = 0.0;
    double header_bytes = 0.0;
    for (std::size_t i = 0; i < hist.size(); ++i) {
      bits += static_cast<double>(hist[i].second) *
              (sb - std::log2(static_cast<double>(candidate[i])));
      header_bytes += candidate[i] < 128 ? 1.0 : candidate[i] < 16384 ? 2.0
                                                                      : 3.0;
    }
    const double cost = bits / 8.0 + header_bytes;
    if (cost < best_cost) {
      best_cost = cost;
      scale_bits = sb;
      freqs = std::move(candidate);
    }
  }
  std::vector<std::uint32_t> cum(freqs.size() + 1, 0);
  for (std::size_t i = 0; i < freqs.size(); ++i) cum[i + 1] = cum[i] + freqs[i];

  out.put(kModeRans);
  out.put(static_cast<std::uint8_t>(scale_bits));
  // Struct-of-arrays table: every symbol delta, then every frequency.
  // Quantizer alphabets are near-contiguous, so the delta run is
  // almost all 0x01 — laid out together it collapses under the
  // stage's trailing lossless pass, which interleaved (delta, freq)
  // pairs would hide.
  out.put_varint(hist.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    out.put_varint(hist[i].first - prev);
    prev = hist[i].first;
  }
  for (std::size_t i = 0; i < hist.size(); ++i) out.put_varint(freqs[i]);

  // rANS is last-in-first-out: symbols fold in reverse so the decoder
  // reads them forward, and the emitted bytes come out backwards into
  // scratch before one reversed append lands them in the sink.
  PooledBuffer rev(BufferPool::shared());
  std::uint64_t x = kRansLow;
  for (std::size_t i = symbols.size(); i-- > 0;) {
    const auto it = std::lower_bound(
        hist.begin(), hist.end(), symbols[i],
        [](const auto& entry, std::uint32_t s) { return entry.first < s; });
    const auto idx = static_cast<std::size_t>(it - hist.begin());
    const std::uint64_t f = freqs[idx];
    const std::uint64_t x_max = ((kRansLow >> scale_bits) << 8) * f;
    while (x >= x_max) {
      rev->push_back(static_cast<std::uint8_t>(x));
      x >>= 8;
    }
    x = ((x / f) << scale_bits) + (x % f) + cum[idx];
  }
  // Final 32-bit state, low byte first: reversal turns it into the
  // big-endian prefix the decoder starts from.
  for (int b = 0; b < 32; b += 8) {
    rev->push_back(static_cast<std::uint8_t>(x >> b));
  }

  out.put_varint(rev->size());
  out.reserve(rev->size());
  for (std::size_t i = rev->size(); i-- > 0;) out.put((*rev)[i]);
}

void ans_decode_into(std::span<const std::uint8_t> data,
                     std::vector<std::uint32_t>& out) {
  OCELOT_SPAN("codec.ans");
  out.clear();
  BytesReader in(data);
  const std::uint64_t n = in.get_varint();
  if (n == 0) return;
  // A one-symbol alphabet legitimately packs any count into a few
  // bytes, so only an absolute ceiling (matching the container's
  // element cap) guards the reserve below against hostile counts.
  if (n > (std::uint64_t{1} << 40))
    throw CorruptStream("ans: implausible symbol count");
  out.reserve(n);

  const auto mode = in.get<std::uint8_t>();
  if (mode == kModeRaw) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = in.get_varint();
      if (v > 0xFFFFFFFFull) throw CorruptStream("ans: symbol out of range");
      out.push_back(static_cast<std::uint32_t>(v));
    }
    return;
  }
  if (mode != kModeRans) throw CorruptStream("ans: unknown stream mode");

  const int scale_bits = in.get<std::uint8_t>();
  if (scale_bits < kMinScaleBits || scale_bits > kMaxScaleBits)
    throw CorruptStream("ans: bad scale");
  const std::uint64_t table_size = std::uint64_t{1} << scale_bits;
  const std::uint64_t unique = in.get_varint();
  if (unique == 0 || unique > table_size)
    throw CorruptStream("ans: bad table size");

  std::vector<std::uint32_t> syms(unique);
  std::vector<std::uint32_t> freqs(unique);
  std::vector<std::uint32_t> cum(unique + 1, 0);
  std::uint64_t sym = 0;
  for (std::uint64_t i = 0; i < unique; ++i) {
    sym += in.get_varint();
    if (sym > 0xFFFFFFFFull) throw CorruptStream("ans: symbol overflow");
    syms[i] = static_cast<std::uint32_t>(sym);
  }
  for (std::uint64_t i = 0; i < unique; ++i) {
    const std::uint64_t f = in.get_varint();
    if (f == 0 || f > table_size) throw CorruptStream("ans: bad frequency");
    freqs[i] = static_cast<std::uint32_t>(f);
    cum[i + 1] = cum[i] + freqs[i];
    if (cum[i + 1] > table_size) throw CorruptStream("ans: table overflows");
  }
  if (cum[unique] != table_size)
    throw CorruptStream("ans: table does not fill the scale");

  // Slot -> table index, one u16 per slot (at most 64 KB).
  std::vector<std::uint16_t> slot2idx(table_size);
  for (std::uint64_t i = 0; i < unique; ++i) {
    std::fill(slot2idx.begin() + cum[i], slot2idx.begin() + cum[i + 1],
              static_cast<std::uint16_t>(i));
  }

  const auto stream = in.get_blob();
  if (!in.exhausted()) throw CorruptStream("ans: trailing bytes");
  if (stream.size() < 4) throw CorruptStream("ans: truncated state");
  std::uint64_t x = 0;
  for (int i = 0; i < 4; ++i) x = (x << 8) | stream[i];
  std::size_t pos = 4;

  const std::uint64_t mask = table_size - 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = x & mask;
    const std::uint16_t idx = slot2idx[slot];
    out.push_back(syms[idx]);
    x = freqs[idx] * (x >> scale_bits) + slot - cum[idx];
    while (x < kRansLow) {
      if (pos >= stream.size()) throw CorruptStream("ans: stream exhausted");
      x = (x << 8) | stream[pos++];
    }
  }
  // The state must unwind exactly to the encoder's start and consume
  // every stream byte; anything else is corruption.
  if (x != kRansLow) throw CorruptStream("ans: state mismatch");
  if (pos != stream.size()) throw CorruptStream("ans: unconsumed stream");
}

namespace {

class AnsStage final : public EntropyStage {
 public:
  [[nodiscard]] std::string name() const override { return "ans"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return kEntropyAnsId; }
  [[nodiscard]] std::string description() const override {
    return "tabled static rANS (8-15 bit scale, varint fallback)";
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return kEntropyCapCodes | kEntropyCapBytes | kEntropyCapChained;
  }

  // The stage payload is a lossless pass over the rANS stream,
  // mirroring the legacy Huffman chain: a static-table coder maps a
  // symbol run onto a periodic state orbit, so its output bytes repeat
  // and a dictionary/run pass recovers the run redundancy an order-0
  // model cannot see. The pass is chosen per payload — lzb and
  // rle+lzb both run and the smaller result wins (the lossless header
  // byte is self-describing, so decode just dispatches). Deterministic
  // for a given payload, and what keeps "ans" at or above the legacy
  // chain's ratio on run-heavy quantized codes.
  void encode_into(std::span<const std::uint32_t> codes,
                   ByteSink& out) const override {
    PooledBuffer stream(BufferPool::shared());
    ByteSink stream_sink(*stream);
    ans_encode(codes, stream_sink);
    PooledBuffer lzb(BufferPool::shared());
    ByteSink lzb_sink(*lzb);
    lossless_compress(*stream, LosslessBackend::kLzb, lzb_sink);
    PooledBuffer rle(BufferPool::shared());
    ByteSink rle_sink(*rle);
    lossless_compress(*stream, LosslessBackend::kRleLzb, rle_sink);
    const Bytes& best = rle->size() < lzb->size() ? *rle : *lzb;
    out.put_bytes(best);
  }

  void decode_into(std::span<const std::uint8_t> payload,
                   std::vector<std::uint32_t>& out) const override {
    PooledBuffer stream(BufferPool::shared());
    lossless_decompress_into(payload, *stream);
    ans_decode_into(*stream, out);
  }

  void encode_bytes_into(std::span<const std::uint8_t> raw,
                         ByteSink& out) const override {
    ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(),
                                     raw.size());
    wide->assign(raw.begin(), raw.end());
    encode_into(*wide, out);
  }

  void decode_bytes_into(std::span<const std::uint8_t> payload,
                         Bytes& out) const override {
    ScratchLease<std::uint32_t> wide(ScratchPool<std::uint32_t>::shared(), 0);
    decode_into(payload, *wide);
    out.clear();
    out.reserve(wide->size());
    for (const std::uint32_t v : *wide) {
      if (v > 0xFF) throw CorruptStream("ans: byte symbol out of range");
      out.push_back(static_cast<std::uint8_t>(v));
    }
  }
};

}  // namespace

std::unique_ptr<EntropyStage> make_ans_stage() {
  return std::make_unique<AnsStage>();
}

}  // namespace ocelot
