#pragma once
// Pluggable entropy-stage registry.
//
// The quantized-code streams every compressor backend produces used to
// funnel into one hard-wired Huffman+lossless chain. This seam opens
// that layer the same way backend.hpp opened the predictor layer: an
// EntropyStage is resolved by name (when writing, from
// CompressionConfig::entropy) or by the wire id stored in a packed
// section's leading byte (when reading), and the stage owns the
// encode/decode of the section payload.
//
// Wire format of a packed codes section:
//
//   [u8 id][payload...]
//
//   id 0-2  legacy Huffman+lossless chain. The byte doubles as the
//           LosslessBackend id (0 none, 1 lzb, 2 rle+lzb) so blobs
//           written before the registry existed parse bit-exactly —
//           and the default path still emits these exact bytes.
//   id >= 3 EntropyRegistry stage id; the stage decodes the payload.
//
// Because ids 1 and 2 are spoken for by the legacy chain, the registry
// refuses to register them; "huffman" itself is stage 0 and new
// stages start at 3 (ans), 4 (bwt-mtf), 5 (lzw).
//
// Stages follow the PR 4 zero-copy rules: encode appends into a
// ByteSink (no intermediate vectors on the caller's side), decode
// consumes a span. Stages natively coding u32 symbol streams set
// kEntropyCapCodes and override encode_into/decode_into; byte-stream
// stages (BWT, LZW) implement the *_bytes_into pair and inherit the
// default code lowering, which splits the u32 stream into byte planes
// (all low bytes, then the next plane, ...) so small codes become the
// long runs those coders feed on.
//
// Adding a stage = implement EntropyStage, pick a fresh wire id >= 3,
// and register it — in the EntropyRegistry constructor (entropy.cpp)
// for in-tree stages or with a namespace-scope EntropyStageRegistrar
// for out-of-tree ones. See CONTRIBUTING.md for the full recipe.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "codec/lossless.hpp"
#include "common/bytes.hpp"

namespace ocelot {

/// Capability flags of an entropy stage (display + dispatch hints).
enum EntropyCaps : std::uint32_t {
  kEntropyCapCodes = 1u << 0,  ///< natively codes u32 symbol streams
  kEntropyCapBytes = 1u << 1,  ///< natively codes raw byte streams
  kEntropyCapChained = 1u << 2,  ///< chains the shared lossless stage
};

/// "codes+bytes+lzb-chain" — human-readable capability list.
std::string entropy_caps_to_string(std::uint32_t caps);

/// Wire ids of the built-in stages. 1 and 2 are reserved: on the wire
/// they alias the legacy chain's LosslessBackend byte (see above).
inline constexpr std::uint8_t kEntropyHuffmanId = 0;
inline constexpr std::uint8_t kMaxLegacyEntropyId = 2;
inline constexpr std::uint8_t kEntropyAnsId = 3;
inline constexpr std::uint8_t kEntropyBwtId = 4;
inline constexpr std::uint8_t kEntropyLzwId = 5;

/// One entropy coder family: turns a quantized-code stream (or a raw
/// byte stream) into a compressed section payload and back. The
/// payload excludes the leading stage-id byte — the dispatch helpers
/// below own that byte.
class EntropyStage {
 public:
  virtual ~EntropyStage() = default;

  /// Registry key (stable, lowercase, e.g. "ans").
  [[nodiscard]] virtual std::string name() const = 0;
  /// Wire id written as a packed section's leading byte. Ids 0-2 are
  /// the legacy chain and must never be reassigned.
  [[nodiscard]] virtual std::uint8_t wire_id() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  [[nodiscard]] virtual std::uint32_t capabilities() const = 0;

  /// Encodes a u32 symbol stream into `out`. The default lowers the
  /// stream into byte planes and delegates to encode_bytes_into;
  /// native symbol coders override both directions.
  virtual void encode_into(std::span<const std::uint32_t> codes,
                           ByteSink& out) const;
  virtual void decode_into(std::span<const std::uint8_t> payload,
                           std::vector<std::uint32_t>& out) const;

  /// Encodes a raw byte stream into `out`.
  virtual void encode_bytes_into(std::span<const std::uint8_t> raw,
                                 ByteSink& out) const = 0;
  virtual void decode_bytes_into(std::span<const std::uint8_t> payload,
                                 Bytes& out) const = 0;
};

/// Encodes `codes` as a self-describing packed section: the stage-id
/// byte, then the stage payload. The default huffman stage reproduces
/// the legacy Huffman+`lossless` bytes exactly (its id byte IS the
/// lossless backend id), so default-path blobs stay bit-identical.
void entropy_encode_codes(std::span<const std::uint32_t> codes,
                          const EntropyStage& stage, LosslessBackend lossless,
                          ByteSink& out);

/// Histogram-aware variant for fused encoders that counted the symbols
/// while quantizing. `hist` must be the exact symbol-sorted histogram
/// of `codes`; the huffman stage then skips its counting pass, other
/// stages ignore the histogram. Bytes are identical to
/// entropy_encode_codes for every stage.
void entropy_encode_codes_hist(
    std::span<const std::uint32_t> codes,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    const EntropyStage& stage, LosslessBackend lossless, ByteSink& out);

/// Decodes a packed codes section, dispatching on the leading byte.
/// Throws CorruptStream for empty sections and unknown stage ids.
void entropy_decode_codes_into(std::span<const std::uint8_t> packed,
                               std::vector<std::uint32_t>& out);

/// Process-wide entropy-stage registry, keyed by name and by wire id.
/// The built-in stages are registered on first access; additional
/// stages register via add() (see EntropyStageRegistrar). Mirrors
/// BackendRegistry (backend.hpp) member for member.
class EntropyRegistry {
 public:
  static EntropyRegistry& instance();

  /// Registers a stage. Throws InvalidArgument on a name/wire-id clash
  /// or a reserved legacy id (1, 2). Returns the registered stage.
  const EntropyStage& add(std::unique_ptr<EntropyStage> stage);

  /// Lookup for writers: throws InvalidArgument (listing the
  /// registered names) when `name` is unknown.
  [[nodiscard]] const EntropyStage& by_name(const std::string& name) const;

  /// Lookup for readers: throws CorruptStream when the wire id is
  /// unknown (a foreign or corrupt section).
  [[nodiscard]] const EntropyStage& by_id(std::uint8_t id) const;

  /// Nullptr instead of throwing.
  [[nodiscard]] const EntropyStage* find(const std::string& name) const;

  /// Nullptr instead of throwing (foreign or corrupt wire ids).
  [[nodiscard]] const EntropyStage* find_by_id(std::uint8_t id) const;

  /// All registered stages in wire-id order.
  [[nodiscard]] std::vector<const EntropyStage*> list() const;

 private:
  EntropyRegistry();

  mutable std::mutex mu_;
  std::map<std::uint8_t, std::unique_ptr<EntropyStage>> by_id_;
  std::map<std::string, const EntropyStage*> by_name_;
};

/// Registers a stage at static-initialization time from any linked
/// translation unit:
///   namespace { const EntropyStageRegistrar reg{
///       std::make_unique<MyStage>()}; }
/// A clash here is unrecoverable (no handler can exist during static
/// init), so it is reported to stderr before aborting instead of
/// escaping as an exception into std::terminate.
struct EntropyStageRegistrar {
  explicit EntropyStageRegistrar(std::unique_ptr<EntropyStage> stage);
};

/// Names of all registered entropy stages, in wire-id order.
std::vector<std::string> registered_entropy_stage_names();

/// Built-in stages, defined next to their coders: huffman+lossless
/// (entropy.cpp), ans (ans.cpp), bwt-mtf (bwt_mtf.cpp), lzw (lzw.cpp).
std::unique_ptr<EntropyStage> make_huffman_stage();
std::unique_ptr<EntropyStage> make_ans_stage();
std::unique_ptr<EntropyStage> make_bwt_mtf_stage();
std::unique_ptr<EntropyStage> make_lzw_stage();

}  // namespace ocelot
