#pragma once
// LZ77-style byte compressor ("LZB") with an LZ4-like block format.
//
// This is the dictionary-coding stage of the lossless backend (the
// paper's SZ pipeline applies a dictionary coder after Huffman; SZ3
// uses zstd). LZB uses greedy hash-chain matching over a 64 KiB window
// with 4-byte minimum matches.
//
// Block format: varint raw size, then sequences of
//   token byte   (hi nibble: literal length, lo nibble: match length - 4,
//                 15 in either nibble extends with 255-run bytes)
//   literals
//   2-byte LE offset + extension bytes  (absent in the final sequence)

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

/// Compresses `raw` into `out`; output is never catastrophically larger
/// than input (worst case ~raw/255 + raw + 16 bytes). The match table
/// is thread-local scratch, so repeated calls on one thread allocate
/// nothing.
void lzb_compress(std::span<const std::uint8_t> raw, ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
[[deprecated("use lzb_compress(raw, sink)")]] Bytes lzb_compress(
    std::span<const std::uint8_t> raw);

/// Decompresses a stream produced by lzb_compress into `out` (cleared
/// first; capacity is reused). Throws CorruptStream on malformed input.
void lzb_decompress_into(std::span<const std::uint8_t> compressed, Bytes& out);

/// Convenience wrapper returning a fresh buffer.
[[deprecated("use lzb_decompress_into(compressed, out)")]] Bytes lzb_decompress(
    std::span<const std::uint8_t> compressed);

}  // namespace ocelot
