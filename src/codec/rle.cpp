#include "codec/rle.hpp"

#include "common/error.hpp"

namespace ocelot {

void rle_compress(std::span<const std::uint8_t> raw, ByteSink& out) {
  out.put_varint(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::uint8_t v = raw[i];
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == v) ++run;
    if (run >= 2) {
      // Two copies signal a run; the varint carries the remainder.
      out.put(v);
      out.put(v);
      out.put_varint(run - 2);
    } else {
      out.put(v);
    }
    i += run;
  }
}

Bytes rle_compress(std::span<const std::uint8_t> raw) {
  BytesWriter out;
  rle_compress(raw, out);
  return out.take();
}

void rle_decompress_into(std::span<const std::uint8_t> compressed,
                         Bytes& out) {
  out.clear();
  BytesReader in(compressed);
  const std::uint64_t raw_size = in.get_varint();
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const auto v = in.get<std::uint8_t>();
    out.push_back(v);
    if (out.size() < raw_size && in.remaining() > 0) {
      // Peek for the run escape: a second identical byte.
      BytesReader peek_check = in;  // cheap copy: span + offset
      const auto next = peek_check.get<std::uint8_t>();
      if (next == v) {
        in = peek_check;
        const std::uint64_t extra = in.get_varint();
        if (out.size() + 1 + extra > raw_size)
          throw CorruptStream("rle: run overflow");
        out.insert(out.end(), 1 + extra, v);
      }
    }
  }
}

Bytes rle_decompress(std::span<const std::uint8_t> compressed) {
  Bytes out;
  rle_decompress_into(compressed, out);
  return out;
}

}  // namespace ocelot
