#include "codec/lossless.hpp"

#include "codec/lzb.hpp"
#include "codec/rle.hpp"
#include "common/error.hpp"

namespace ocelot {

std::string to_string(LosslessBackend backend) {
  switch (backend) {
    case LosslessBackend::kNone:
      return "none";
    case LosslessBackend::kLzb:
      return "lzb";
    case LosslessBackend::kRleLzb:
      return "rle+lzb";
  }
  return "unknown";
}

Bytes lossless_compress(std::span<const std::uint8_t> raw,
                        LosslessBackend backend) {
  BytesWriter out;
  out.put(static_cast<std::uint8_t>(backend));
  switch (backend) {
    case LosslessBackend::kNone:
      out.put_bytes(raw);
      break;
    case LosslessBackend::kLzb: {
      const Bytes packed = lzb_compress(raw);
      out.put_bytes(packed);
      break;
    }
    case LosslessBackend::kRleLzb: {
      const Bytes rle = rle_compress(raw);
      const Bytes packed = lzb_compress(rle);
      out.put_bytes(packed);
      break;
    }
    default:
      throw InvalidArgument("lossless_compress: unknown backend");
  }
  return out.take();
}

Bytes lossless_decompress(std::span<const std::uint8_t> compressed) {
  BytesReader in(compressed);
  const auto id = in.get<std::uint8_t>();
  const auto payload = in.get_bytes(in.remaining());
  switch (static_cast<LosslessBackend>(id)) {
    case LosslessBackend::kNone:
      return Bytes(payload.begin(), payload.end());
    case LosslessBackend::kLzb:
      return lzb_decompress(payload);
    case LosslessBackend::kRleLzb: {
      const Bytes rle = lzb_decompress(payload);
      return rle_decompress(rle);
    }
  }
  throw CorruptStream("lossless_decompress: unknown backend id");
}

}  // namespace ocelot
