#include "codec/lossless.hpp"

#include "codec/lzb.hpp"
#include "codec/rle.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace ocelot {

std::string to_string(LosslessBackend backend) {
  switch (backend) {
    case LosslessBackend::kNone:
      return "none";
    case LosslessBackend::kLzb:
      return "lzb";
    case LosslessBackend::kRleLzb:
      return "rle+lzb";
  }
  return "unknown";
}

void lossless_compress(std::span<const std::uint8_t> raw,
                       LosslessBackend backend, ByteSink& out) {
  out.put(static_cast<std::uint8_t>(backend));
  switch (backend) {
    case LosslessBackend::kNone:
      out.put_bytes(raw);
      break;
    case LosslessBackend::kLzb:
      lzb_compress(raw, out);
      break;
    case LosslessBackend::kRleLzb: {
      PooledBuffer rle(BufferPool::shared(), raw.size());
      ByteSink rle_sink(*rle);
      rle_compress(raw, rle_sink);
      lzb_compress(*rle, out);
      break;
    }
    default:
      throw InvalidArgument("lossless_compress: unknown backend");
  }
}

Bytes lossless_compress(std::span<const std::uint8_t> raw,
                        LosslessBackend backend) {
  BytesWriter out;
  lossless_compress(raw, backend, out);
  return out.take();
}

void lossless_decompress_into(std::span<const std::uint8_t> compressed,
                              Bytes& out) {
  BytesReader in(compressed);
  const auto id = in.get<std::uint8_t>();
  const auto payload = in.get_bytes(in.remaining());
  switch (static_cast<LosslessBackend>(id)) {
    case LosslessBackend::kNone:
      out.assign(payload.begin(), payload.end());
      return;
    case LosslessBackend::kLzb:
      lzb_decompress_into(payload, out);
      return;
    case LosslessBackend::kRleLzb: {
      PooledBuffer rle(BufferPool::shared());
      lzb_decompress_into(payload, *rle);
      rle_decompress_into(*rle, out);
      return;
    }
  }
  throw CorruptStream("lossless_decompress: unknown backend id");
}

Bytes lossless_decompress(std::span<const std::uint8_t> compressed) {
  Bytes out;
  lossless_decompress_into(compressed, out);
  return out;
}

}  // namespace ocelot
