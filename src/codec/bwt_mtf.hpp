#pragma once
// BWT/MTF+RLE entropy pipeline over byte streams.
//
// The classic block-sorting chain: a Burrows-Wheeler transform over
// fixed 64 KB chunks (cyclic suffix array by counting-sort prefix
// doubling, so degenerate all-equal inputs stay O(n log n)) groups
// equal contexts, move-to-front turns that locality into small byte
// values, the shared RLE codec (codec/rle.hpp) squeezes the runs, and
// a canonical Huffman pass codes what remains. Quantized-code streams
// reach it plane-split (see entropy.hpp), so the near-constant high
// planes collapse into runs.
//
// Stream layout: varint raw size; then (when non-empty) varint chunk
// count, one varint primary-row index per chunk, and the Huffman
// stream of the RLE'd MTF output of all chunk transforms concatenated.
//
// Registered as entropy stage "bwt-mtf" (wire id 4, see entropy.hpp).

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace ocelot {

/// Encodes `raw` into `out` (appended; no stage-id byte).
void bwt_mtf_encode(std::span<const std::uint8_t> raw, ByteSink& out);

/// Decodes a stream produced by bwt_mtf_encode. Throws CorruptStream
/// on malformed chunk geometry or primary indices.
void bwt_mtf_decode_into(std::span<const std::uint8_t> data, Bytes& out);

}  // namespace ocelot
