#include "codec/lzw.hpp"

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "codec/entropy.hpp"
#include "common/bitstream.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

constexpr std::uint32_t kMaxDict = 1u << 16;

/// Width in bits of the m-th code (1-based) in the stream. The encoder
/// emitting its m-th code has assigned ids up to 255 + (m - 1), so
/// bit_width(254 + m) always covers the largest emittable id; the
/// decoder's dictionary lags one entry behind, which is precisely the
/// cScSc case (code == next) the decoder special-cases.
int code_width(std::uint64_t m) {
  const std::uint64_t top = std::min<std::uint64_t>(254 + m, kMaxDict - 1);
  return std::bit_width(top);
}

/// Decoder dictionary entry for code 256 + i: the phrase is the
/// expansion of `prev` followed by `last`; `first` caches the phrase's
/// first byte for the cScSc case.
struct LzwEntry {
  std::uint32_t prev;
  std::uint8_t last;
  std::uint8_t first;
};

}  // namespace

void lzw_encode(std::span<const std::uint8_t> raw, ByteSink& out) {
  OCELOT_SPAN("codec.lzw");
  out.put_varint(raw.size());
  if (raw.empty()) return;

  // Phrase (prefix code, next byte) -> code. Literals are implicit.
  std::unordered_map<std::uint64_t, std::uint32_t> dict;
  dict.reserve(std::min<std::size_t>(raw.size(), kMaxDict));
  std::uint32_t next = 256;

  BitWriter bits(out.target());
  std::uint64_t emitted = 0;
  std::uint32_t w = raw[0];
  for (std::size_t i = 1; i < raw.size(); ++i) {
    const std::uint8_t c = raw[i];
    const std::uint64_t key = (static_cast<std::uint64_t>(w) << 8) | c;
    const auto it = dict.find(key);
    if (it != dict.end()) {
      w = it->second;
      continue;
    }
    bits.put_bits(w, code_width(++emitted));
    if (next < kMaxDict) dict.emplace(key, next++);
    w = c;
  }
  bits.put_bits(w, code_width(++emitted));
  bits.flush();
}

void lzw_decode_into(std::span<const std::uint8_t> data, Bytes& out) {
  OCELOT_SPAN("codec.lzw");
  out.clear();
  BytesReader in(data);
  const std::uint64_t raw_size = in.get_varint();
  if (raw_size == 0) {
    if (!in.exhausted()) throw CorruptStream("lzw: trailing bytes");
    return;
  }
  if (raw_size > (std::uint64_t{1} << 40))
    throw CorruptStream("lzw: implausible raw size");
  out.reserve(raw_size);

  BitReader bits(in.get_bytes(in.remaining()));
  std::vector<LzwEntry> entries;
  entries.reserve(kMaxDict - 256);
  std::uint32_t next = 256;

  const auto first_byte = [&](std::uint32_t code) -> std::uint8_t {
    return code < 256 ? static_cast<std::uint8_t>(code)
                      : entries[code - 256].first;
  };
  // Expands `code` onto `out` by walking the prefix chain backwards
  // through `stack`.
  std::vector<std::uint8_t> stack;
  const auto expand = [&](std::uint32_t code) {
    stack.clear();
    while (code >= 256) {
      stack.push_back(entries[code - 256].last);
      code = entries[code - 256].prev;
    }
    stack.push_back(static_cast<std::uint8_t>(code));
    out.insert(out.end(), stack.rbegin(), stack.rend());
  };

  // First code is always a literal (8 bits cannot exceed 255).
  std::uint64_t m = 1;
  std::uint32_t prev = static_cast<std::uint32_t>(bits.get_bits(code_width(m)));
  out.push_back(static_cast<std::uint8_t>(prev));

  while (out.size() < raw_size) {
    const auto code =
        static_cast<std::uint32_t>(bits.get_bits(code_width(++m)));
    if (code > next) throw CorruptStream("lzw: code out of range");
    if (code == next && next >= kMaxDict)
      throw CorruptStream("lzw: code out of range");
    // The entry the encoder created right after emitting `prev`. When
    // code == next this is the phrase being decoded (cScSc), so the
    // entry must exist before the expansion walks it.
    if (next < kMaxDict) {
      const std::uint8_t fc =
          code == next ? first_byte(prev) : first_byte(code);
      entries.push_back({prev, fc, first_byte(prev)});
      ++next;
    }
    expand(code);
    if (out.size() > raw_size) throw CorruptStream("lzw: output overrun");
    prev = code;
  }
}

namespace {

class LzwStage final : public EntropyStage {
 public:
  [[nodiscard]] std::string name() const override { return "lzw"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return kEntropyLzwId; }
  [[nodiscard]] std::string description() const override {
    return "variable-width LZW (64K dictionary, no reset)";
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return kEntropyCapBytes;
  }

  void encode_bytes_into(std::span<const std::uint8_t> raw,
                         ByteSink& out) const override {
    lzw_encode(raw, out);
  }

  void decode_bytes_into(std::span<const std::uint8_t> payload,
                         Bytes& out) const override {
    lzw_decode_into(payload, out);
  }
};

}  // namespace

std::unique_ptr<EntropyStage> make_lzw_stage() {
  return std::make_unique<LzwStage>();
}

}  // namespace ocelot
