#include "codec/lzb.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace ocelot {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(Bytes& out, std::size_t extra) {
  // 255-run extension used after a nibble value of 15.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

std::size_t get_length(BytesReader& in, std::size_t nibble) {
  std::size_t len = nibble;
  if (nibble == 15) {
    while (true) {
      const auto b = in.get<std::uint8_t>();
      len += b;
      if (b != 255) break;
    }
  }
  return len;
}

void emit_sequence(Bytes& out, std::span<const std::uint8_t> literals,
                   std::size_t offset, std::size_t match_len) {
  const std::size_t lit_nibble = std::min<std::size_t>(literals.size(), 15);
  const std::size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const std::size_t match_nibble = std::min<std::size_t>(match_code, 15);
  out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) put_length(out, literals.size() - 15);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len > 0) {
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xFF));
    if (match_nibble == 15) put_length(out, match_code - 15);
  }
}

}  // namespace

void lzb_compress(std::span<const std::uint8_t> raw, ByteSink& sink) {
  sink.put_varint(raw.size());
  if (raw.empty()) return;
  Bytes& out = sink.target();

  // Single-entry hash table of the most recent position per 4-byte
  // hash. Thread-local scratch: the 512 KiB table is allocated once
  // per thread instead of once per call.
  thread_local std::vector<std::int64_t> table;
  table.assign(1u << kHashBits, -1);
  const std::uint8_t* base = raw.data();
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  while (pos + kMinMatch <= raw.size()) {
    const std::uint32_t h = hash4(base + pos);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(pos);

    std::size_t match_len = 0;
    if (cand >= 0 &&
        pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
        std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
      const std::size_t cpos = static_cast<std::size_t>(cand);
      match_len = kMinMatch;
      const std::size_t limit = raw.size() - pos;
      while (match_len < limit &&
             base[cpos + match_len] == base[pos + match_len]) {
        ++match_len;
      }
    }

    if (match_len >= kMinMatch) {
      emit_sequence(out, raw.subspan(literal_start, pos - literal_start),
                    pos - static_cast<std::size_t>(cand), match_len);
      // Refresh the table inside the match so later data can reference it.
      const std::size_t end = pos + match_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= end && p + kMinMatch <= raw.size();
           p += 8) {  // sparse refresh keeps compression fast
        table[hash4(base + p)] = static_cast<std::int64_t>(p);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }

  // Trailing literals (possibly the whole input).
  emit_sequence(out, raw.subspan(literal_start), 0, 0);
}

Bytes lzb_compress(std::span<const std::uint8_t> raw) {
  BytesWriter out;
  lzb_compress(raw, out);
  return out.take();
}

void lzb_decompress_into(std::span<const std::uint8_t> compressed,
                         Bytes& out) {
  out.clear();
  BytesReader in(compressed);
  const std::uint64_t raw_size = in.get_varint();
  out.reserve(raw_size);

  while (out.size() < raw_size) {
    const auto token = in.get<std::uint8_t>();
    const std::size_t lit_len = get_length(in, token >> 4);
    const auto lits = in.get_bytes(lit_len);
    out.insert(out.end(), lits.begin(), lits.end());
    if (out.size() > raw_size) throw CorruptStream("lzb: literal overflow");
    if (out.size() == raw_size) break;

    const auto lo = in.get<std::uint8_t>();
    const auto hi = in.get<std::uint8_t>();
    const std::size_t offset = lo | (static_cast<std::size_t>(hi) << 8);
    if (offset == 0 || offset > out.size())
      throw CorruptStream("lzb: bad match offset");
    const std::size_t match_len = get_length(in, token & 0xF) + kMinMatch;
    if (out.size() + match_len > raw_size)
      throw CorruptStream("lzb: match overflow");
    // Byte-by-byte copy: overlapping matches (offset < len) replicate.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
}

Bytes lzb_decompress(std::span<const std::uint8_t> compressed) {
  Bytes out;
  lzb_decompress_into(compressed, out);
  return out;
}

}  // namespace ocelot
