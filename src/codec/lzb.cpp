#include "codec/lzb.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"

namespace ocelot {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(Bytes& out, std::size_t extra) {
  // 255-run extension used after a nibble value of 15.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

std::size_t get_length(BytesReader& in, std::size_t nibble) {
  std::size_t len = nibble;
  if (nibble == 15) {
    while (true) {
      const auto b = in.get<std::uint8_t>();
      len += b;
      if (b != 255) break;
    }
  }
  return len;
}

void emit_sequence(Bytes& out, std::span<const std::uint8_t> literals,
                   std::size_t offset, std::size_t match_len) {
  const std::size_t lit_nibble = std::min<std::size_t>(literals.size(), 15);
  const std::size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const std::size_t match_nibble = std::min<std::size_t>(match_code, 15);
  out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) put_length(out, literals.size() - 15);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len > 0) {
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xFF));
    if (match_nibble == 15) put_length(out, match_code - 15);
  }
}

/// Greedy match extension past the verified kMinMatch prefix. Word-at-
/// a-time on little-endian (first mismatching byte from countr_zero of
/// the XOR), bytewise otherwise — both walk the same greedy frontier,
/// so the emitted sequences are identical.
std::size_t extend_match(const std::uint8_t* base, std::size_t cpos,
                         std::size_t pos, std::size_t limit) {
  std::size_t len = kMinMatch;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + sizeof(std::uint64_t) <= limit) {
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, base + cpos + len, sizeof(a));
      std::memcpy(&b, base + pos + len, sizeof(b));
      const std::uint64_t x = a ^ b;
      if (x != 0) {
        return len + (static_cast<std::size_t>(std::countr_zero(x)) >> 3);
      }
      len += sizeof(std::uint64_t);
    }
  }
  while (len < limit && base[cpos + len] == base[pos + len]) ++len;
  return len;
}

/// The match loop, with the table policy factored out so the epoch-
/// versioned fast path and the (>= 4 GiB input) plain-vector fallback
/// share one definition. A policy exposes get(h) -> most recent
/// position or -1, and put(h, pos).
template <typename Table>
void compress_core(std::span<const std::uint8_t> raw, Bytes& out,
                   Table&& table) {
  const std::uint8_t* base = raw.data();
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  while (pos + kMinMatch <= raw.size()) {
    const std::uint32_t h = hash4(base + pos);
    const std::int64_t cand = table.get(h);
    table.put(h, pos);

    std::size_t match_len = 0;
    if (cand >= 0 && pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
        std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
      match_len = extend_match(base, static_cast<std::size_t>(cand), pos,
                               raw.size() - pos);
    }

    if (match_len >= kMinMatch) {
      emit_sequence(out, raw.subspan(literal_start, pos - literal_start),
                    pos - static_cast<std::size_t>(cand), match_len);
      // Refresh the table inside the match so later data can reference it.
      const std::size_t end = pos + match_len;
      for (std::size_t p = pos + 1;
           p + kMinMatch <= end && p + kMinMatch <= raw.size();
           p += 8) {  // sparse refresh keeps compression fast
        table.put(hash4(base + p), p);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }

  // Trailing literals (possibly the whole input).
  emit_sequence(out, raw.subspan(literal_start), 0, 0);
}

/// Single-entry hash table of the most recent position per 4-byte
/// hash, held in the thread's arena as a persistent slot and versioned
/// by an epoch word: an entry (epoch << 32 | pos) is live only when
/// its upper half matches the current call's epoch, so stale positions
/// read as "no candidate" and the 512 KiB table is zeroed once per
/// thread (and at the ~2^32-call epoch wrap) instead of every call.
struct EpochTable {
  static constexpr std::size_t kWords = (std::size_t{1} << kHashBits) + 1;

  explicit EpochTable(ScratchArena& arena) {
    const auto slot = arena.persistent(ScratchArena::Slot::kLzbTable,
                                       kWords * sizeof(std::uint64_t));
    words_ = reinterpret_cast<std::uint64_t*>(slot.bytes.data());
    if (slot.fresh || words_[0] == 0xFFFFFFFFull) {
      std::memset(words_, 0, kWords * sizeof(std::uint64_t));
    }
    epoch_ = ++words_[0];
  }

  [[nodiscard]] std::int64_t get(std::uint32_t h) const {
    const std::uint64_t e = words_[1 + h];
    if ((e >> 32) != epoch_) return -1;
    return static_cast<std::int64_t>(e & 0xFFFFFFFFull);
  }
  void put(std::uint32_t h, std::size_t pos) {
    words_[1 + h] = (epoch_ << 32) | static_cast<std::uint64_t>(pos);
  }

  std::uint64_t* words_;
  std::uint64_t epoch_;
};

/// Fallback for inputs whose positions do not fit the 32-bit packed
/// entry (>= 4 GiB). Allocates per call; such inputs never hit the
/// steady-state block loop.
struct VectorTable {
  std::vector<std::int64_t> entries =
      std::vector<std::int64_t>(std::size_t{1} << kHashBits, -1);

  [[nodiscard]] std::int64_t get(std::uint32_t h) const { return entries[h]; }
  void put(std::uint32_t h, std::size_t pos) {
    entries[h] = static_cast<std::int64_t>(pos);
  }
};

}  // namespace

void lzb_compress(std::span<const std::uint8_t> raw, ByteSink& sink) {
  sink.put_varint(raw.size());
  if (raw.empty()) return;
  Bytes& out = sink.target();
  if (raw.size() > 0xFFFFFFFFull) {
    compress_core(raw, out, VectorTable{});
    return;
  }
  compress_core(raw, out, EpochTable{ScratchArena::current()});
}

Bytes lzb_compress(std::span<const std::uint8_t> raw) {
  BytesWriter out;
  lzb_compress(raw, out);
  return out.take();
}

void lzb_decompress_into(std::span<const std::uint8_t> compressed,
                         Bytes& out) {
  out.clear();
  BytesReader in(compressed);
  const std::uint64_t raw_size = in.get_varint();
  out.reserve(raw_size);

  while (out.size() < raw_size) {
    const auto token = in.get<std::uint8_t>();
    const std::size_t lit_len = get_length(in, token >> 4);
    const auto lits = in.get_bytes(lit_len);
    out.insert(out.end(), lits.begin(), lits.end());
    if (out.size() > raw_size) throw CorruptStream("lzb: literal overflow");
    if (out.size() == raw_size) break;

    const auto lo = in.get<std::uint8_t>();
    const auto hi = in.get<std::uint8_t>();
    const std::size_t offset = lo | (static_cast<std::size_t>(hi) << 8);
    if (offset == 0 || offset > out.size())
      throw CorruptStream("lzb: bad match offset");
    const std::size_t match_len = get_length(in, token & 0xF) + kMinMatch;
    if (out.size() + match_len > raw_size)
      throw CorruptStream("lzb: match overflow");
    // Byte-by-byte copy: overlapping matches (offset < len) replicate.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
}

Bytes lzb_decompress(std::span<const std::uint8_t> compressed) {
  Bytes out;
  lzb_decompress_into(compressed, out);
  return out;
}

}  // namespace ocelot
