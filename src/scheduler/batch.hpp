#pragma once
// Batch-scheduler simulation (node waiting time, Section VII-B).
//
// Ocelot's sentinel exists because compute-node requests on shared
// clusters are not granted immediately: the paper observed 0-30 s when
// nodes were idle, and minutes to hours otherwise, with no quantifiable
// pattern. The scheduler model separates capacity (nodes held by jobs)
// from ambient queueing delay (other users), which a WaitModel supplies:
// immediate (Anvil in the paper's runs), trace-driven (tests), or
// stochastic (bimodal: usually short, occasionally very long).

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "netsim/simulation.hpp"

namespace ocelot {

/// Ambient queueing delay ahead of a job, in seconds of virtual time.
class WaitModel {
 public:
  virtual ~WaitModel() = default;
  virtual double next_wait_seconds() = 0;
};

/// Nodes are granted as soon as capacity allows (Anvil behaviour).
class ImmediateWait final : public WaitModel {
 public:
  double next_wait_seconds() override { return 0.0; }
};

/// Replays a fixed wait sequence; repeats the last entry when drained.
class TraceWait final : public WaitModel {
 public:
  explicit TraceWait(std::vector<double> waits) : waits_(std::move(waits)) {
    require(!waits_.empty(), "TraceWait: empty trace");
  }
  double next_wait_seconds() override {
    const double w = waits_[std::min(pos_, waits_.size() - 1)];
    ++pos_;
    return w;
  }

 private:
  std::vector<double> waits_;
  std::size_t pos_ = 0;
};

/// Bimodal wait: with probability `p_idle` a short uniform wait in
/// [0, short_max]; otherwise exponential with mean `long_mean`
/// (minutes-to-hours regime).
class StochasticWait final : public WaitModel {
 public:
  StochasticWait(std::uint64_t seed, double p_idle = 0.6,
                 double short_max = 30.0, double long_mean = 900.0)
      : rng_(seed), p_idle_(p_idle), short_max_(short_max),
        long_mean_(long_mean) {}

  double next_wait_seconds() override {
    if (rng_.chance(p_idle_)) return rng_.uniform(0.0, short_max_);
    return rng_.exponential(1.0 / long_mean_);
  }

 private:
  Rng rng_;
  double p_idle_;
  double short_max_;
  double long_mean_;
};

/// Handle to a granted allocation; release() returns the nodes.
class BatchScheduler;
struct Allocation {
  int nodes = 0;
  double granted_at = 0.0;
};

/// Utilization counters for one scheduler, integrated in virtual time.
struct SchedulerStats {
  std::uint64_t grants = 0;
  double total_wait_seconds = 0.0;  ///< sum of submit->grant latencies
  double node_seconds = 0.0;        ///< integral of nodes in use
  int peak_nodes_in_use = 0;
  std::size_t peak_queue_length = 0;
};

/// Capacity-constrained batch scheduler over a Simulation. Requests
/// are served in (priority desc, submission order) — plain FIFO when
/// every request carries the default priority. The head of the queue
/// blocks later requests (no backfill), matching the conservative
/// behaviour the paper's sentinel assumes.
class BatchScheduler {
 public:
  using GrantCallback = InlineFunction<void(const Allocation&), 64>;

  BatchScheduler(Simulation& sim, int total_nodes,
                 std::unique_ptr<WaitModel> wait_model)
      : sim_(sim), free_nodes_(total_nodes), total_nodes_(total_nodes),
        wait_(std::move(wait_model)) {
    require(total_nodes > 0, "BatchScheduler: need at least one node");
    require(wait_ != nullptr, "BatchScheduler: null wait model");
  }

  /// Queues a request for `nodes`; `on_grant` fires (in virtual time)
  /// after both the ambient wait and capacity are satisfied. Higher
  /// `priority` requests overtake lower ones still in the queue.
  void submit(int nodes, GrantCallback on_grant, int priority = 0);

  /// Returns an allocation's nodes to the pool, unblocking the queue.
  void release(const Allocation& alloc);

  [[nodiscard]] int free_nodes() const { return free_nodes_; }
  [[nodiscard]] int total_nodes() const { return total_nodes_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Counters valid up to the current virtual time.
  [[nodiscard]] SchedulerStats stats() const;

 private:
  struct Pending {
    int nodes;
    int priority;
    double submitted_at;
    GrantCallback on_grant;
    bool wait_elapsed = false;
  };

  void try_dispatch();
  void account_usage();

  Simulation& sim_;
  int free_nodes_;
  int total_nodes_;
  std::unique_ptr<WaitModel> wait_;
  std::deque<std::shared_ptr<Pending>> queue_;
  SchedulerStats stats_;
  double last_usage_update_ = 0.0;
};

}  // namespace ocelot
