#include "scheduler/batch.hpp"

namespace ocelot {

void BatchScheduler::submit(int nodes, GrantCallback on_grant) {
  require(nodes > 0, "BatchScheduler: request must be positive");
  require(nodes <= total_nodes_,
          "BatchScheduler: request exceeds machine size");
  auto pending = std::make_shared<Pending>();
  pending->nodes = nodes;
  pending->on_grant = std::move(on_grant);
  queue_.push_back(pending);

  // The ambient wait (other users' queue pressure) elapses first; only
  // then does the request contend for capacity.
  const double wait = wait_->next_wait_seconds();
  sim_.schedule_in(wait, [this, pending] {
    pending->wait_elapsed = true;
    try_dispatch();
  });
}

void BatchScheduler::release(const Allocation& alloc) {
  require(alloc.nodes > 0, "BatchScheduler: bad release");
  free_nodes_ += alloc.nodes;
  require(free_nodes_ <= total_nodes_, "BatchScheduler: double release");
  try_dispatch();
}

void BatchScheduler::try_dispatch() {
  // FIFO: grant from the head while the head is ready and fits.
  while (!queue_.empty()) {
    const auto& head = queue_.front();
    if (!head->wait_elapsed || head->nodes > free_nodes_) break;
    free_nodes_ -= head->nodes;
    Allocation alloc;
    alloc.nodes = head->nodes;
    alloc.granted_at = sim_.now();
    auto cb = std::move(head->on_grant);
    queue_.pop_front();
    cb(alloc);
  }
}

}  // namespace ocelot
