#include "scheduler/batch.hpp"

#include <algorithm>

namespace ocelot {

void BatchScheduler::submit(int nodes, GrantCallback on_grant, int priority) {
  require(nodes > 0, "BatchScheduler: request must be positive");
  require(nodes <= total_nodes_,
          "BatchScheduler: request exceeds machine size");
  // Pendings churn once per grant; draw them from the engine's pool so
  // steady-state scheduling stays allocation-free.
  auto pending = std::allocate_shared<Pending>(
      PoolAllocator<Pending>(sim_.object_pool()));
  pending->nodes = nodes;
  pending->priority = priority;
  pending->submitted_at = sim_.now();
  pending->on_grant = std::move(on_grant);

  // Insert behind every request of the same or higher priority so that
  // equal priorities keep strict FIFO order.
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [priority](const std::shared_ptr<Pending>& p) {
                            return p->priority < priority;
                          });
  queue_.insert(pos, pending);
  stats_.peak_queue_length = std::max(stats_.peak_queue_length, queue_.size());

  // The ambient wait (other users' queue pressure) elapses first; only
  // then does the request contend for capacity.
  const double wait = wait_->next_wait_seconds();
  sim_.schedule_in(wait, [this, pending] {
    pending->wait_elapsed = true;
    try_dispatch();
  });
}

void BatchScheduler::release(const Allocation& alloc) {
  require(alloc.nodes > 0, "BatchScheduler: bad release");
  account_usage();
  free_nodes_ += alloc.nodes;
  require(free_nodes_ <= total_nodes_, "BatchScheduler: double release");
  try_dispatch();
}

void BatchScheduler::try_dispatch() {
  // Grant from the head while the head is ready and fits; a blocked
  // head blocks everything behind it (no backfill).
  while (!queue_.empty()) {
    const auto& head = queue_.front();
    if (!head->wait_elapsed || head->nodes > free_nodes_) break;
    account_usage();
    free_nodes_ -= head->nodes;
    Allocation alloc;
    alloc.nodes = head->nodes;
    alloc.granted_at = sim_.now();
    ++stats_.grants;
    stats_.total_wait_seconds += sim_.now() - head->submitted_at;
    stats_.peak_nodes_in_use =
        std::max(stats_.peak_nodes_in_use, total_nodes_ - free_nodes_);
    auto cb = std::move(head->on_grant);
    queue_.pop_front();
    cb(alloc);
  }
}

void BatchScheduler::account_usage() {
  const double now = sim_.now();
  stats_.node_seconds +=
      static_cast<double>(total_nodes_ - free_nodes_) *
      (now - last_usage_update_);
  last_usage_update_ = now;
}

SchedulerStats BatchScheduler::stats() const {
  SchedulerStats snapshot = stats_;
  snapshot.node_seconds +=
      static_cast<double>(total_nodes_ - free_nodes_) *
      (sim_.now() - last_usage_update_);
  return snapshot;
}

}  // namespace ocelot
