#include "exec/parallel_codec.hpp"

#include "common/timer.hpp"
#include "compressor/compressor.hpp"
#include "exec/thread_pool.hpp"

namespace ocelot {

ParallelCompressResult parallel_compress(
    const std::vector<FloatArray>& fields, const CompressionConfig& config,
    std::size_t workers) {
  ParallelCompressResult result;
  result.blobs.resize(fields.size());
  Timer timer;
  parallel_for(fields.size(), workers, [&](std::size_t i) {
    result.blobs[i] = compress(fields[i], config);
  });
  result.wall_seconds = timer.seconds();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    result.total_raw_bytes += static_cast<double>(fields[i].byte_size());
    result.total_compressed_bytes +=
        static_cast<double>(result.blobs[i].size());
  }
  return result;
}

ParallelDecompressResult parallel_decompress(const std::vector<Bytes>& blobs,
                                             std::size_t workers) {
  ParallelDecompressResult result;
  result.fields.resize(blobs.size());
  Timer timer;
  parallel_for(blobs.size(), workers, [&](std::size_t i) {
    result.fields[i] = decompress<float>(blobs[i]);
  });
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ocelot
