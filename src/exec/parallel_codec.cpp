#include "exec/parallel_codec.hpp"

#include <algorithm>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "compressor/compressor.hpp"
#include "exec/thread_pool.hpp"
#include "io/block_container.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

/// One block task: (field, block span) plus the field's pre-resolved
/// absolute bound so every block honors the full-field error bound.
struct BlockTask {
  std::size_t field = 0;
  std::size_t block = 0;
  BlockSpan span;
};

/// Runs `fn` against a pooled copy of the block's contiguous slab
/// range. The slice storage returns to the pool even when `fn` throws.
template <typename Fn>
void with_block_copy(const FloatArray& field, const BlockSpan& span,
                     Fn&& fn) {
  const Shape shape = block_shape(field.shape(), span);
  const std::size_t slab_elems =
      field.shape().dim(1) * field.shape().dim(2);
  const std::size_t begin = span.slab_begin * slab_elems;
  auto& pool = ScratchPool<float>::shared();
  std::vector<float> data = pool.acquire(shape.size());
  data.assign(
      field.values().begin() + static_cast<std::ptrdiff_t>(begin),
      field.values().begin() +
          static_cast<std::ptrdiff_t>(begin + shape.size()));
  FloatArray block(shape, std::move(data));
  try {
    fn(block);
  } catch (...) {
    pool.release(block.release());
    throw;
  }
  pool.release(block.release());
}

/// Compresses the block's contiguous slab range through pooled slice
/// scratch, streaming the blob into `sink`.
void compress_block_slice(const FloatArray& field, const BlockSpan& span,
                          const CompressionConfig& config, ByteSink& sink) {
  with_block_copy(field, span, [&](const FloatArray& block) {
    compress_into(block, config, sink);
  });
}

ParallelCompressResult blocked_compress_impl(
    std::span<const FloatArray> fields, const CompressionConfig& config,
    std::size_t workers, std::size_t block_slabs, BlockPolicy* policy) {
  ParallelCompressResult result;
  result.blobs.resize(fields.size());

  // Per-field block plans and pre-resolved absolute bounds, then one
  // flat task list so every core stays busy even for a single field.
  // The timer covers the planning scan too: the whole-file mode pays
  // its bound resolution inside compress(), so both modes' walls
  // measure the same work.
  Timer timer;
  std::vector<std::vector<PooledBuffer>> block_blobs(fields.size());
  std::vector<double> abs_ebs(fields.size());
  std::vector<BlockTask> tasks;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    abs_ebs[f] = resolve_abs_eb(fields[f], config);
    const auto spans = plan_blocks(fields[f].shape().dim(0), block_slabs);
    block_blobs[f].resize(spans.size());
    tasks.reserve(tasks.size() + spans.size());
    for (std::size_t b = 0; b < spans.size(); ++b) {
      tasks.push_back({f, b, spans[b]});
    }
  }
  result.task_count = tasks.size();

  // Workers compress slabs into pooled buffers: slab scratch and blob
  // storage both cycle through the shared pools, so steady state runs
  // with no fresh allocation per block. The RAII lease keeps a
  // throwing task from stranding its buffer.
  const auto context_of = [&](std::size_t t) {
    const FloatArray& field = fields[tasks[t].field];
    const std::size_t slab_elems = field.shape().dim(1) * field.shape().dim(2);
    return BlockContext{tasks[t].field,
                        tasks[t].block,
                        t,
                        abs_ebs[tasks[t].field],
                        field.byte_size(),
                        tasks[t].span.slab_count * slab_elems * sizeof(float)};
  };
  const auto compress_task = [&](std::size_t t,
                                 const CompressionConfig& block_config) {
    OCELOT_SPAN("compress.block");
    const BlockTask& task = tasks[t];
    PooledBuffer blob(BufferPool::shared());
    ByteSink sink(*blob);
    compress_block_slice(fields[task.field], task.span, block_config, sink);
    OCELOT_COUNT("block.compressed_bytes", blob->size());
    OCELOT_HIST("block.compressed_bytes", blob->size());
    block_blobs[task.field][task.block] = std::move(blob);
  };
  const auto check_bound = [&](std::size_t t, const CompressionConfig& c) {
    require(c.eb_mode == EbMode::kAbsolute && c.eb > 0.0 &&
                c.eb <= abs_ebs[tasks[t].field] * (1.0 + 1e-12),
            "block policy: decision must carry an absolute bound no "
            "looser than the field's");
  };

  if (policy == nullptr) {
    parallel_for(tasks.size(), workers, [&](std::size_t t) {
      CompressionConfig block_config = config;
      block_config.eb_mode = EbMode::kAbsolute;
      block_config.eb = abs_ebs[tasks[t].field];
      compress_task(t, block_config);
    });
  } else {
    // Policy mode runs in waves: concurrent probes, sequential
    // decisions, concurrent compression, sequential feedback. Wave
    // geometry depends only on the task list, so the emitted bytes are
    // identical for every worker count (see block_policy.hpp).
    policy->begin(fields.size(), tasks.size(), config);
    std::vector<BlockDecision> decisions(tasks.size());
    std::vector<BlockOutcome> outcomes(tasks.size());
    // Calibration-first order: every field's block 0 goes into the
    // first wave, so its calibration probe and duel feedback land
    // before any other block of that field is decided — without this,
    // a field small enough to fit in one wave could never benefit
    // from its own calibration. The order depends only on the task
    // list, preserving the cross-worker determinism contract;
    // container assembly is by (field, block), so output bytes are
    // unaffected by processing order.
    std::vector<std::size_t> order;
    order.reserve(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (tasks[t].block == 0) order.push_back(t);
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (tasks[t].block != 0) order.push_back(t);
    }
    const std::size_t wave = std::max<std::size_t>(1, policy->wave_tasks());
    const std::size_t calibration_tasks = fields.size();  // one block 0 each
    for (std::size_t w0 = 0; w0 < tasks.size();) {
      std::size_t w1 = std::min(tasks.size(), w0 + wave);
      // The calibration wave never mixes with regular blocks: its
      // observations must land before any non-first block is decided.
      if (w0 < calibration_tasks) w1 = std::min(w1, calibration_tasks);
      parallel_for(w1 - w0, workers, [&](std::size_t i) {
        const std::size_t t = order[w0 + i];
        const BlockContext ctx = context_of(t);
        if (!policy->wants_probe(ctx)) return;
        OCELOT_SPAN("advisor.probe");
        OCELOT_COUNT("advisor.probes", 1);
        with_block_copy(
            fields[tasks[t].field], tasks[t].span,
            [&](const FloatArray& block) { policy->probe(ctx, block); });
      });
      {
        OCELOT_SPAN("advisor.decide");
        for (std::size_t w = w0; w < w1; ++w) {
          const std::size_t t = order[w];
          decisions[t] = policy->decide(context_of(t));
          OCELOT_COUNT("advisor.decisions", 1);
          check_bound(t, decisions[t].config);
          if (decisions[t].has_challenger) {
            OCELOT_COUNT("advisor.challengers", 1);
            check_bound(t, decisions[t].challenger);
          }
        }
      }
      parallel_for(w1 - w0, workers, [&](std::size_t i) {
        const std::size_t t = order[w0 + i];
        const BlockTask& task = tasks[t];
        const std::size_t slab_elems =
            fields[task.field].shape().dim(1) *
            fields[task.field].shape().dim(2);
        BlockOutcome& outcome = outcomes[t];
        outcome = {};
        outcome.raw_bytes = task.span.slab_count * slab_elems * sizeof(float);
        compress_task(t, decisions[t].config);
        outcome.primary_bytes = block_blobs[task.field][task.block]->size();
        if (decisions[t].has_challenger) {
          // Keep-best exploration: the challenger's payload replaces
          // the primary's only when strictly smaller, so exploring can
          // never cost ratio (and the comparison is byte-deterministic).
          PooledBuffer primary = std::move(block_blobs[task.field][task.block]);
          compress_task(t, decisions[t].challenger);
          outcome.challenger_bytes =
              block_blobs[task.field][task.block]->size();
          outcome.kept_challenger =
              outcome.challenger_bytes < outcome.primary_bytes;
          if (outcome.kept_challenger) {
            OCELOT_COUNT("advisor.challenger_wins", 1);
          } else {
            block_blobs[task.field][task.block] = std::move(primary);
          }
        }
      });
      {
        OCELOT_SPAN("advisor.observe");
        for (std::size_t w = w0; w < w1; ++w) {
          const std::size_t t = order[w];
          policy->observe(context_of(t), decisions[t], outcomes[t]);
        }
      }
      w0 = w1;
    }
  }

  // Streaming assembly: payloads append into one arena per field; the
  // pooled block buffers are recycled as they are consumed.
  OCELOT_SPAN("container.finish");
  for (std::size_t f = 0; f < fields.size(); ++f) {
    BlockContainerWriter writer(block_slabs);
    std::size_t payload_total = 0;
    for (PooledBuffer& blob : block_blobs[f]) payload_total += blob->size();
    writer.reserve_payload(payload_total, block_blobs[f].size());
    for (PooledBuffer& blob : block_blobs[f]) {
      writer.append_block(*blob);
      blob.reset();
    }
    result.blobs[f] = writer.finish(fields[f].shape());
  }
  result.wall_seconds = timer.seconds();
  return result;
}

/// Decompresses one container's blocks into `out` (pre-allocated with
/// the container's full shape); `block` indexes the container's plan.
void decode_block_into(std::span<const std::uint8_t> container,
                       const BlockContainerInfo& info, std::size_t block,
                       const BlockSpan& span, FloatArray& out) {
  OCELOT_SPAN("decompress.block");
  // The lease survives any decode/validation throw: decompress_reusing
  // restores the storage on failure and the decoded array hands it
  // back below, so corrupt blocks cannot drain the pool.
  ScratchLease<float> lease(ScratchPool<float>::shared());
  FloatArray decoded =
      decompress_reusing<float>(block_payload(container, info, block), *lease);
  const Shape expected = block_shape(info.shape, span);
  if (!(decoded.shape() == expected)) {
    *lease = decoded.release();
    throw CorruptStream("block container: block shape does not match the plan");
  }
  const std::size_t slab_elems = info.shape.dim(1) * info.shape.dim(2);
  std::memcpy(out.values().data() + span.slab_begin * slab_elems,
              decoded.values().data(), decoded.byte_size());
  *lease = decoded.release();
}

}  // namespace

ParallelCompressResult parallel_compress(
    const std::vector<FloatArray>& fields, const CompressionConfig& config,
    std::size_t workers, std::size_t block_slabs, BlockPolicy* policy) {
  require(policy == nullptr || block_slabs > 0,
          "parallel_compress: a block policy requires block mode");
  ParallelCompressResult result;
  if (block_slabs > 0) {
    result =
        blocked_compress_impl(fields, config, workers, block_slabs, policy);
  } else {
    result.blobs.resize(fields.size());
    result.task_count = fields.size();
    Timer timer;
    parallel_for(fields.size(), workers, [&](std::size_t i) {
      result.blobs[i] = compress(fields[i], config);
    });
    result.wall_seconds = timer.seconds();
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    result.total_raw_bytes += static_cast<double>(fields[i].byte_size());
    result.total_compressed_bytes +=
        static_cast<double>(result.blobs[i].size());
  }
  return result;
}

ParallelDecompressResult parallel_decompress(const std::vector<Bytes>& blobs,
                                             std::size_t workers) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(blobs.size());
  for (const auto& blob : blobs) views.emplace_back(blob);
  return parallel_decompress(views, workers);
}

ParallelDecompressResult parallel_decompress(
    const std::vector<std::span<const std::uint8_t>>& blobs,
    std::size_t workers) {
  ParallelDecompressResult result;
  result.fields.resize(blobs.size());

  // Flatten: whole-file blobs are one task; containers contribute one
  // task per block, writing into a pre-allocated output array.
  struct DecodeTask {
    std::size_t blob = 0;
    std::size_t block = 0;   ///< meaningful iff blocked
    bool blocked = false;
    BlockSpan span;
  };
  std::vector<BlockContainerInfo> infos(blobs.size());
  std::vector<DecodeTask> tasks;
  Timer timer;
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (is_block_container(blobs[i])) {
      infos[i] = read_block_index(blobs[i]);
      result.fields[i] = FloatArray(infos[i].shape);
      const auto spans =
          plan_blocks(infos[i].shape.dim(0), infos[i].block_slabs);
      for (std::size_t b = 0; b < spans.size(); ++b) {
        tasks.push_back({i, b, true, spans[b]});
      }
    } else {
      tasks.push_back({i, 0, false, {}});
    }
  }
  parallel_for(tasks.size(), workers, [&](std::size_t t) {
    const DecodeTask& task = tasks[t];
    if (task.blocked) {
      decode_block_into(blobs[task.blob], infos[task.blob], task.block,
                        task.span, result.fields[task.blob]);
    } else {
      result.fields[task.blob] = decompress<float>(blobs[task.blob]);
    }
  });
  result.wall_seconds = timer.seconds();
  return result;
}

BlockCompressResult block_compress(const FloatArray& field,
                                   const CompressionConfig& config,
                                   std::size_t workers,
                                   std::size_t block_slabs,
                                   BlockPolicy* policy) {
  require(block_slabs > 0, "block_compress: zero block size");
  ParallelCompressResult r =
      blocked_compress_impl(std::span<const FloatArray>(&field, 1), config,
                            workers, block_slabs, policy);
  BlockCompressResult result;
  result.container = std::move(r.blobs.front());
  result.wall_seconds = r.wall_seconds;
  result.n_blocks = r.task_count;
  result.raw_bytes = static_cast<double>(field.byte_size());
  return result;
}

BlockDecompressResult block_decompress(
    std::span<const std::uint8_t> container, std::size_t workers) {
  ParallelDecompressResult r = parallel_decompress({container}, workers);
  BlockDecompressResult result;
  result.field = std::move(r.fields.front());
  result.wall_seconds = r.wall_seconds;
  return result;
}

}  // namespace ocelot
