#include "exec/parallel_codec.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "compressor/compressor.hpp"
#include "exec/thread_pool.hpp"
#include "io/block_container.hpp"

namespace ocelot {

namespace {

/// One block task: (field, block span) plus the field's pre-resolved
/// absolute bound so every block honors the full-field error bound.
struct BlockTask {
  std::size_t field = 0;
  std::size_t block = 0;
  BlockSpan span;
};

/// Copies the block's contiguous slab range out of the field.
FloatArray slice_block(const FloatArray& field, const BlockSpan& span) {
  const Shape shape = block_shape(field.shape(), span);
  const std::size_t slab_elems =
      field.shape().dim(1) * field.shape().dim(2);
  const std::size_t begin = span.slab_begin * slab_elems;
  std::vector<float> data(
      field.values().begin() + static_cast<std::ptrdiff_t>(begin),
      field.values().begin() +
          static_cast<std::ptrdiff_t>(begin + shape.size()));
  return {shape, std::move(data)};
}

ParallelCompressResult blocked_compress_impl(
    std::span<const FloatArray> fields, const CompressionConfig& config,
    std::size_t workers, std::size_t block_slabs) {
  ParallelCompressResult result;
  result.blobs.resize(fields.size());

  // Per-field block plans and pre-resolved absolute bounds, then one
  // flat task list so every core stays busy even for a single field.
  // The timer covers the planning scan too: the whole-file mode pays
  // its bound resolution inside compress(), so both modes' walls
  // measure the same work.
  Timer timer;
  std::vector<std::vector<Bytes>> block_blobs(fields.size());
  std::vector<double> abs_ebs(fields.size());
  std::vector<BlockTask> tasks;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    abs_ebs[f] = resolve_abs_eb(fields[f], config);
    const auto spans = plan_blocks(fields[f].shape().dim(0), block_slabs);
    block_blobs[f].resize(spans.size());
    for (std::size_t b = 0; b < spans.size(); ++b) {
      tasks.push_back({f, b, spans[b]});
    }
  }
  result.task_count = tasks.size();

  parallel_for(tasks.size(), workers, [&](std::size_t t) {
    const BlockTask& task = tasks[t];
    CompressionConfig block_config = config;
    block_config.eb_mode = EbMode::kAbsolute;
    block_config.eb = abs_ebs[task.field];
    block_blobs[task.field][task.block] =
        compress(slice_block(fields[task.field], task.span), block_config);
  });
  for (std::size_t f = 0; f < fields.size(); ++f) {
    result.blobs[f] = build_block_container(fields[f].shape(), block_slabs,
                                            block_blobs[f]);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

/// Decompresses one container's blocks into `out` (pre-allocated with
/// the container's full shape); `block` indexes the container's plan.
void decode_block_into(std::span<const std::uint8_t> container,
                       const BlockContainerInfo& info, std::size_t block,
                       const BlockSpan& span, FloatArray& out) {
  const FloatArray decoded =
      decompress<float>(block_payload(container, info, block));
  const Shape expected = block_shape(info.shape, span);
  require(decoded.shape() == expected,
          "block container: block shape does not match the plan");
  const std::size_t slab_elems = info.shape.dim(1) * info.shape.dim(2);
  std::memcpy(out.values().data() + span.slab_begin * slab_elems,
              decoded.values().data(), decoded.byte_size());
}

}  // namespace

ParallelCompressResult parallel_compress(
    const std::vector<FloatArray>& fields, const CompressionConfig& config,
    std::size_t workers, std::size_t block_slabs) {
  ParallelCompressResult result;
  if (block_slabs > 0) {
    result = blocked_compress_impl(fields, config, workers, block_slabs);
  } else {
    result.blobs.resize(fields.size());
    result.task_count = fields.size();
    Timer timer;
    parallel_for(fields.size(), workers, [&](std::size_t i) {
      result.blobs[i] = compress(fields[i], config);
    });
    result.wall_seconds = timer.seconds();
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    result.total_raw_bytes += static_cast<double>(fields[i].byte_size());
    result.total_compressed_bytes +=
        static_cast<double>(result.blobs[i].size());
  }
  return result;
}

ParallelDecompressResult parallel_decompress(const std::vector<Bytes>& blobs,
                                             std::size_t workers) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(blobs.size());
  for (const auto& blob : blobs) views.emplace_back(blob);
  return parallel_decompress(views, workers);
}

ParallelDecompressResult parallel_decompress(
    const std::vector<std::span<const std::uint8_t>>& blobs,
    std::size_t workers) {
  ParallelDecompressResult result;
  result.fields.resize(blobs.size());

  // Flatten: whole-file blobs are one task; containers contribute one
  // task per block, writing into a pre-allocated output array.
  struct DecodeTask {
    std::size_t blob = 0;
    std::size_t block = 0;   ///< meaningful iff blocked
    bool blocked = false;
    BlockSpan span;
  };
  std::vector<BlockContainerInfo> infos(blobs.size());
  std::vector<DecodeTask> tasks;
  Timer timer;
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (is_block_container(blobs[i])) {
      infos[i] = read_block_index(blobs[i]);
      result.fields[i] = FloatArray(infos[i].shape);
      const auto spans =
          plan_blocks(infos[i].shape.dim(0), infos[i].block_slabs);
      for (std::size_t b = 0; b < spans.size(); ++b) {
        tasks.push_back({i, b, true, spans[b]});
      }
    } else {
      tasks.push_back({i, 0, false, {}});
    }
  }
  parallel_for(tasks.size(), workers, [&](std::size_t t) {
    const DecodeTask& task = tasks[t];
    if (task.blocked) {
      decode_block_into(blobs[task.blob], infos[task.blob], task.block,
                        task.span, result.fields[task.blob]);
    } else {
      result.fields[task.blob] = decompress<float>(blobs[task.blob]);
    }
  });
  result.wall_seconds = timer.seconds();
  return result;
}

BlockCompressResult block_compress(const FloatArray& field,
                                   const CompressionConfig& config,
                                   std::size_t workers,
                                   std::size_t block_slabs) {
  require(block_slabs > 0, "block_compress: zero block size");
  ParallelCompressResult r = blocked_compress_impl(
      std::span<const FloatArray>(&field, 1), config, workers, block_slabs);
  BlockCompressResult result;
  result.container = std::move(r.blobs.front());
  result.wall_seconds = r.wall_seconds;
  result.n_blocks = r.task_count;
  result.raw_bytes = static_cast<double>(field.byte_size());
  return result;
}

BlockDecompressResult block_decompress(
    std::span<const std::uint8_t> container, std::size_t workers) {
  ParallelDecompressResult r = parallel_decompress({container}, workers);
  BlockDecompressResult result;
  result.field = std::move(r.fields.front());
  result.wall_seconds = r.wall_seconds;
  return result;
}

}  // namespace ocelot
