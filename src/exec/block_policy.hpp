#pragma once
// Per-block compression-policy hook for the block-parallel executor.
//
// The block mode of parallel_compress can delegate the choice of
// compressor backend, entropy stage, and error bound to a BlockPolicy,
// block by block (the decision is a whole CompressionConfig).
// The executor drives the policy in fixed-size waves of tasks, with a
// strict phase protocol chosen so that decisions are deterministic no
// matter how many worker threads run:
//
//   1. probe()   — concurrent, one call per task in the wave: cheap
//                  feature sampling against the block's data. Results
//                  are stored by task index, so concurrent calls never
//                  race.
//   2. decide()  — sequential: pick the block's backend + absolute
//                  error bound from the probed features and everything
//                  observed so far.
//   3. (compress)— concurrent: the executor compresses each block
//                  under its decided config.
//   4. observe() — sequential, same order as decide(): the measured
//                  outcome feeds back into the policy, so blocks in
//                  later waves (and later fields in the same batch)
//                  benefit from what earlier blocks actually achieved.
//
// Tasks are processed in calibration-first order, not ascending task
// index: the first wave holds exactly every field's block 0 (so
// per-field calibration feedback lands before any other block of that
// field is decided), and the remaining tasks follow in field-major
// order, chunked into wave_tasks()-sized waves. Within a wave the two
// sequential phases run in that same order. The order is a pure
// function of the task list — never of the worker count.
//
// Because every policy-state mutation happens in the two sequential
// phases, and wave boundaries depend only on the task list (never on
// the worker count), a given input + policy configuration always
// yields byte-identical containers across thread counts.
//
// core/adaptive.hpp provides the production implementation (the online
// adaptive advisor); this header keeps the executor free of any
// dependency on the feature/predictor layers.

#include <cstddef>
#include <cstdint>

#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Identifies one block task of a batch compression run.
struct BlockContext {
  std::size_t field = 0;        ///< index of the field in the batch
  std::size_t block = 0;        ///< block index within the field
  std::size_t task = 0;         ///< global task index (field-major order)
  double field_abs_eb = 0.0;    ///< bound resolved against the full field
  std::size_t field_bytes = 0;  ///< raw bytes of the whole field
  std::size_t block_bytes = 0;  ///< raw bytes of this block
};

/// One per-block decision: the exact configuration the block
/// compresses under (eb_mode is always kAbsolute, and config.eb must
/// not exceed ctx.field_abs_eb so the field-level bound holds), plus
/// the prediction that justified it.
///
/// A decision may nominate a challenger: the executor then compresses
/// the block under both configurations and keeps the smaller payload
/// (ties keep the primary), so an exploration step can never cost
/// ratio — only the challenger's compute time. Both outcomes reach
/// observe(), which is how the policy buys unbiased block-granularity
/// observations of candidates it would not otherwise pick.
struct BlockDecision {
  CompressionConfig config;
  std::uint8_t backend_id = 0;   ///< wire id of config.backend
  double predicted_ratio = 0.0;  ///< policy's ratio estimate
  bool has_challenger = false;
  CompressionConfig challenger;
  std::uint8_t challenger_id = 0;
};

/// Measured outcome of one compressed block.
struct BlockOutcome {
  std::size_t raw_bytes = 0;
  std::size_t primary_bytes = 0;     ///< decision.config's payload size
  std::size_t challenger_bytes = 0;  ///< 0 when no challenger ran
  bool kept_challenger = false;      ///< challenger payload won the block
};

/// Per-block backend / error-bound selection hook (see file comment
/// for the phase protocol and its determinism contract).
class BlockPolicy {
 public:
  virtual ~BlockPolicy() = default;

  /// Called once before any probe, with the batch geometry and the
  /// run's base configuration (the policy overrides backend and error
  /// bound but should inherit the remaining tunables from it).
  virtual void begin(std::size_t n_fields, std::size_t n_tasks,
                     const CompressionConfig& base) = 0;

  /// Tasks per wave. Must not depend on the worker count.
  [[nodiscard]] virtual std::size_t wave_tasks() const { return 32; }

  /// Whether probe() should run for this block. Returning false lets
  /// the executor skip materializing the block a first time when the
  /// policy has nothing to measure on it (e.g. no constraint or model
  /// consumes the features). Must be deterministic in ctx alone.
  [[nodiscard]] virtual bool wants_probe(const BlockContext& ctx) const {
    (void)ctx;
    return true;
  }

  /// Concurrent feature sampling for one block (store by ctx.task).
  virtual void probe(const BlockContext& ctx, const FloatArray& block) = 0;

  /// Sequential decision for one block (calibration-first order; see
  /// the file comment).
  virtual BlockDecision decide(const BlockContext& ctx) = 0;

  /// Sequential feedback after the block compressed (same order as
  /// decide()).
  virtual void observe(const BlockContext& ctx, const BlockDecision& decision,
                       const BlockOutcome& outcome) = 0;
};

}  // namespace ocelot
