#include "exec/cluster_model.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace ocelot {

namespace {

/// Expands per-file byte sizes into per-task compute seconds; with a
/// block size each file becomes several equal block tasks (the last
/// one short), matching the real block-parallel codec's task list.
/// The per-file task count is capped: beyond ~1M blocks the makespan
/// is indistinguishable from perfectly divisible work, and the cap
/// keeps a mis-scaled block_bytes (e.g. MB-vs-bytes confusion) from
/// exploding the task list.
std::vector<double> compute_tasks(std::span<const double> file_bytes,
                                  double bps_per_core, double block_bytes) {
  constexpr double kMaxTasksPerFile = 1 << 20;
  std::vector<double> tasks;
  tasks.reserve(file_bytes.size());
  for (const double b : file_bytes) {
    if (block_bytes <= 0.0 || b <= block_bytes) {
      tasks.push_back(b / bps_per_core);
      continue;
    }
    const double piece_size =
        std::max(block_bytes, b / kMaxTasksPerFile);
    double remaining = b;
    while (remaining > 0.0) {
      const double piece = std::min(piece_size, remaining);
      tasks.push_back(piece / bps_per_core);
      remaining -= piece;
    }
  }
  return tasks;
}

}  // namespace

ComputeRates calibrate_rates(double raw_bytes, double compress_wall_s,
                             double decompress_wall_s, std::size_t workers) {
  require(raw_bytes > 0.0 && compress_wall_s > 0.0 &&
              decompress_wall_s > 0.0 && workers > 0,
          "calibrate_rates: non-positive measurement");
  ComputeRates rates;
  rates.compress_bps_per_core =
      raw_bytes / (compress_wall_s * static_cast<double>(workers));
  rates.decompress_bps_per_core =
      raw_bytes / (decompress_wall_s * static_cast<double>(workers));
  return rates;
}

double lpt_makespan(std::span<const double> task_seconds, int slots) {
  require(slots > 0, "lpt_makespan: need at least one slot");
  if (task_seconds.empty()) return 0.0;

  std::vector<double> sorted(task_seconds.begin(), task_seconds.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Min-heap of slot finish times; assign each task to the least-loaded.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  const int used = std::min<int>(slots, static_cast<int>(sorted.size()));
  for (int i = 0; i < used; ++i) heap.push(0.0);
  for (const double t : sorted) {
    const double head = heap.top();
    heap.pop();
    heap.push(head + t);
  }
  double makespan = 0.0;
  while (!heap.empty()) {
    makespan = std::max(makespan, heap.top());
    heap.pop();
  }
  return makespan;
}

double cluster_compress_seconds(std::span<const double> file_bytes,
                                int nodes, int cores_per_node,
                                const ComputeRates& rates,
                                const SharedFilesystem& fs,
                                double block_bytes) {
  require(nodes > 0 && cores_per_node > 0, "cluster model: bad geometry");
  const std::vector<double> tasks =
      compute_tasks(file_bytes, rates.compress_bps_per_core, block_bytes);
  const double total =
      std::accumulate(file_bytes.begin(), file_bytes.end(), 0.0);
  const double compute = lpt_makespan(tasks, nodes * cores_per_node);
  const double read_io = total / fs.read_bandwidth(nodes);
  return std::max(compute, read_io);
}

double cluster_decompress_seconds(std::span<const double> file_bytes,
                                  int nodes, int cores_per_node,
                                  const ComputeRates& rates,
                                  const SharedFilesystem& fs,
                                  double block_bytes) {
  require(nodes > 0 && cores_per_node > 0, "cluster model: bad geometry");
  const std::vector<double> tasks =
      compute_tasks(file_bytes, rates.decompress_bps_per_core, block_bytes);
  const double total =
      std::accumulate(file_bytes.begin(), file_bytes.end(), 0.0);
  const double compute = lpt_makespan(tasks, nodes * cores_per_node);
  const double write_io = total / fs.write_bandwidth(nodes);
  return std::max(compute, write_io);
}

}  // namespace ocelot
