#include "exec/cluster_model.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace ocelot {

double lpt_makespan(std::span<const double> task_seconds, int slots) {
  require(slots > 0, "lpt_makespan: need at least one slot");
  if (task_seconds.empty()) return 0.0;

  std::vector<double> sorted(task_seconds.begin(), task_seconds.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Min-heap of slot finish times; assign each task to the least-loaded.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  const int used = std::min<int>(slots, static_cast<int>(sorted.size()));
  for (int i = 0; i < used; ++i) heap.push(0.0);
  for (const double t : sorted) {
    const double head = heap.top();
    heap.pop();
    heap.push(head + t);
  }
  double makespan = 0.0;
  while (!heap.empty()) {
    makespan = std::max(makespan, heap.top());
    heap.pop();
  }
  return makespan;
}

double cluster_compress_seconds(std::span<const double> file_bytes,
                                int nodes, int cores_per_node,
                                const ComputeRates& rates,
                                const SharedFilesystem& fs) {
  require(nodes > 0 && cores_per_node > 0, "cluster model: bad geometry");
  std::vector<double> tasks;
  tasks.reserve(file_bytes.size());
  double total = 0.0;
  for (const double b : file_bytes) {
    tasks.push_back(b / rates.compress_bps_per_core);
    total += b;
  }
  const double compute = lpt_makespan(tasks, nodes * cores_per_node);
  const double read_io = total / fs.read_bandwidth(nodes);
  return std::max(compute, read_io);
}

double cluster_decompress_seconds(std::span<const double> file_bytes,
                                  int nodes, int cores_per_node,
                                  const ComputeRates& rates,
                                  const SharedFilesystem& fs) {
  require(nodes > 0 && cores_per_node > 0, "cluster model: bad geometry");
  std::vector<double> tasks;
  tasks.reserve(file_bytes.size());
  double total = 0.0;
  for (const double b : file_bytes) {
    tasks.push_back(b / rates.decompress_bps_per_core);
    total += b;
  }
  const double compute = lpt_makespan(tasks, nodes * cores_per_node);
  const double write_io = total / fs.write_bandwidth(nodes);
  return std::max(compute, write_io);
}

}  // namespace ocelot
