#pragma once
// Fixed-size worker pool for real parallel (de)compression.
//
// The paper's compression executor is an MPI program where each rank
// compresses a disjoint set of files; on a single machine the same
// structure is a thread pool with one task per file. Used by the
// local pipeline and by Fig. 9-style scaling measurements.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace ocelot {

/// Simple FIFO thread pool; tasks are void() callables.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `n_threads` workers and waits.
/// Exceptions from tasks propagate (first one wins).
void parallel_for(std::size_t n, std::size_t n_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ocelot
