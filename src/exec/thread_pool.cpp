#include "exec/thread_pool.hpp"

#include <atomic>

#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace ocelot {

ThreadPool::ThreadPool(std::size_t n_threads) {
  require(n_threads > 0, "ThreadPool: need at least one thread");
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  std::size_t depth = 0;
  {
    std::scoped_lock lock(mutex_);
    require(!stop_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(packaged));
    depth = queue_.size();
  }
  OCELOT_HIST("exec.queue_depth", depth);
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // exceptions land in the task's future
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t n_threads,
                  const std::function<void(std::size_t)>& fn) {
  require(n_threads > 0, "parallel_for: need at least one thread");
  if (n == 0) return;
  OCELOT_SPAN("exec.wave");
  OCELOT_COUNT("exec.waves", 1);
  OCELOT_COUNT("exec.tasks", n);
  const std::uint64_t wave_from = monotonic_now_ns();
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t workers = std::min(n, n_threads);
  if (workers == 1) {
    // Inline fast path: a lone worker gains nothing from a spawned
    // thread, and phase-heavy callers (the policy-driven block codec
    // runs several parallel_for phases per wave) would otherwise pay
    // a thread start/join per phase.
    body();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(body);
    for (auto& t : threads) t.join();
  }
  OCELOT_HIST("exec.wave_us", (monotonic_now_ns() - wave_from) / 1000);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ocelot
