#pragma once
// Real parallel (de)compression of a file batch (Section VII-A).
//
// Two parallelization modes:
//   * whole-file (the paper's executor): each worker compresses whole
//     files ("we let each core handle the compression of a set of
//     files in parallel"); speedup saturates when workers outnumber
//     files, exactly as Fig. 9 (left) shows.
//   * block-parallel: each file is split into fixed-size blocks along
//     its slowest dimension and every (file, block) pair is an
//     independent task, so a single large field keeps all cores busy.
//     Blobs become OCB1 block containers (see io/block_container.hpp)
//     and decompression is block-parallel too.
//
// The block mode optionally takes a BlockPolicy (see block_policy.hpp)
// that picks each block's backend and error bound online; the policy
// runs in wave-sequenced phases so containers stay byte-identical
// across worker counts.

#include <cstddef>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"
#include "exec/block_policy.hpp"

namespace ocelot {

/// Outcome of a parallel compression run.
struct ParallelCompressResult {
  std::vector<Bytes> blobs;     ///< one per input file, in order
  double wall_seconds = 0.0;
  double total_raw_bytes = 0.0;
  double total_compressed_bytes = 0.0;
  std::size_t task_count = 0;   ///< files (whole-file) or blocks (blocked)

  [[nodiscard]] double ratio() const {
    return total_compressed_bytes > 0.0
               ? total_raw_bytes / total_compressed_bytes
               : 0.0;
  }
};

/// Compresses `fields` with `workers` threads. `block_slabs` == 0
/// keeps the whole-file mode; a positive value splits every field into
/// blocks of that many slowest-dimension slabs, compresses all blocks
/// of all files concurrently, and emits one OCB1 container per field.
/// The error bound is resolved against each full field before
/// splitting, so blocked output honors the same bound as the
/// single-shot codec, and container bytes are identical for every
/// worker count.
///
/// `policy` (block mode only) delegates each block's backend and
/// error-bound choice to a BlockPolicy; decisions and feedback run at
/// deterministic wave barriers, so the container bytes still do not
/// depend on the worker count. The policy may tighten but never loosen
/// a block's bound relative to the field-resolved bound.
ParallelCompressResult parallel_compress(
    const std::vector<FloatArray>& fields, const CompressionConfig& config,
    std::size_t workers, std::size_t block_slabs = 0,
    BlockPolicy* policy = nullptr);

/// Decompresses `blobs` with `workers` threads; returns arrays in
/// order. Each blob may be a plain OCZ1 blob or an OCB1 block
/// container (detected by magic); container blocks decompress
/// concurrently.
struct ParallelDecompressResult {
  std::vector<FloatArray> fields;
  double wall_seconds = 0.0;
};

ParallelDecompressResult parallel_decompress(const std::vector<Bytes>& blobs,
                                             std::size_t workers);

/// View-based overload: decodes without copying blob storage (the
/// single-container wrapper below and zero-copy callers use this).
ParallelDecompressResult parallel_decompress(
    const std::vector<std::span<const std::uint8_t>>& blobs,
    std::size_t workers);

/// Single-field convenience wrappers used by the scaling bench and the
/// rate calibration path.
struct BlockCompressResult {
  Bytes container;
  double wall_seconds = 0.0;
  std::size_t n_blocks = 0;
  double raw_bytes = 0.0;

  [[nodiscard]] double ratio() const {
    return container.empty() ? 0.0
                             : raw_bytes /
                                   static_cast<double>(container.size());
  }
};

BlockCompressResult block_compress(const FloatArray& field,
                                   const CompressionConfig& config,
                                   std::size_t workers,
                                   std::size_t block_slabs,
                                   BlockPolicy* policy = nullptr);

struct BlockDecompressResult {
  FloatArray field;
  double wall_seconds = 0.0;
};

BlockDecompressResult block_decompress(std::span<const std::uint8_t> container,
                                       std::size_t workers);

}  // namespace ocelot
