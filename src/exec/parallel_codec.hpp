#pragma once
// Real parallel (de)compression of a file batch (Section VII-A).
//
// Each worker compresses whole files ("we let each core handle the
// compression of a set of files in parallel"); speedup saturates when
// workers outnumber files, exactly as Fig. 9 (left) shows.

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Outcome of a parallel compression run.
struct ParallelCompressResult {
  std::vector<Bytes> blobs;     ///< one per input file, in order
  double wall_seconds = 0.0;
  double total_raw_bytes = 0.0;
  double total_compressed_bytes = 0.0;

  [[nodiscard]] double ratio() const {
    return total_compressed_bytes > 0.0
               ? total_raw_bytes / total_compressed_bytes
               : 0.0;
  }
};

/// Compresses `fields` with `workers` threads.
ParallelCompressResult parallel_compress(
    const std::vector<FloatArray>& fields, const CompressionConfig& config,
    std::size_t workers);

/// Decompresses `blobs` with `workers` threads; returns arrays in order.
struct ParallelDecompressResult {
  std::vector<FloatArray> fields;
  double wall_seconds = 0.0;
};

ParallelDecompressResult parallel_decompress(const std::vector<Bytes>& blobs,
                                             std::size_t workers);

}  // namespace ocelot
