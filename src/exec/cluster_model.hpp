#pragma once
// Cluster-scale (de)compression cost model for the simulation.
//
// The paper measures parallel compression on up to 16 nodes x 128
// cores (Fig. 9) — far beyond a laptop. This model computes virtual-
// time makespans from calibrated per-core throughputs plus the shared-
// filesystem contention model:
//
//   compression  = max(LPT makespan of per-file compute, read I/O)
//   decompression= max(LPT makespan of per-file compute, write I/O)
//
// Compute and I/O overlap (streaming), hence max() rather than a sum.
// Compression reads raw input; decompression writes raw output, which
// is why decompression is the I/O-bound direction that degrades with
// node count (Fig. 9 right).

#include <span>
#include <vector>

#include "netsim/filesystem.hpp"

namespace ocelot {

/// Per-application, per-site calibrated throughputs (raw bytes/s/core).
struct ComputeRates {
  double compress_bps_per_core = 25e6;
  double decompress_bps_per_core = 200e6;
};

/// Derives per-core throughputs from a measured block-parallel run
/// (raw bytes processed, wall seconds, worker count) — the bridge from
/// the real thread-pool codec to the virtual-time campaign model.
ComputeRates calibrate_rates(double raw_bytes, double compress_wall_s,
                             double decompress_wall_s, std::size_t workers);

/// Longest-processing-time-first makespan of `task_seconds` on `slots`
/// parallel workers. Exact for our purposes (greedy 4/3-approximation).
double lpt_makespan(std::span<const double> task_seconds, int slots);

/// Virtual-time cost of compressing `file_bytes` (raw sizes) on
/// `nodes` x `cores_per_node` workers against filesystem `fs`.
/// `block_bytes` > 0 models the block-parallel codec: every file is
/// split into ceil(size / block_bytes) independent tasks, so the
/// compute makespan keeps falling when workers outnumber files instead
/// of saturating at the largest whole file. 0 keeps the paper's
/// whole-file executor.
double cluster_compress_seconds(std::span<const double> file_bytes,
                                int nodes, int cores_per_node,
                                const ComputeRates& rates,
                                const SharedFilesystem& fs,
                                double block_bytes = 0.0);

/// Virtual-time cost of decompressing back to `file_bytes` raw sizes.
double cluster_decompress_seconds(std::span<const double> file_bytes,
                                  int nodes, int cores_per_node,
                                  const ComputeRates& rates,
                                  const SharedFilesystem& fs,
                                  double block_bytes = 0.0);

}  // namespace ocelot
