#pragma once
// Priority event queue with deterministic tie-breaking.
//
// Events are ordered by (time, sequence number): two events at the
// same virtual time run in submission order, which makes every run of
// the same scenario reproduce the same schedule bit for bit.
//
// Two interchangeable implementations sit behind EventQueue:
//   * CalendarQueue (default): O(1) amortized rotating bucket array
//     with pooled, allocation-free event records (calendar_queue.hpp);
//   * HeapQueue: the reference binary heap with lazy deletion and one
//     shared EventState allocation per event — the original
//     implementation, kept selectable (OCELOT_SIM_QUEUE=heap) for
//     differential testing and as the bench baseline.
// Both implement the exact same total order, so which one runs is
// unobservable in simulation results. The heap compacts itself when
// cancelled tombstones exceed half its entries, bounding memory at
// O(live) under schedule/cancel churn.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event.hpp"
#include "sim/tuning.hpp"

namespace ocelot::sim {

/// Reference implementation: binary min-heap over (time, seq) with
/// lazily-deleted cancellations and threshold-triggered compaction.
class HeapQueue {
 public:
  using Callback = detail::EventCallback;

  HeapQueue() : counters_(std::make_shared<detail::QueueCounters>()) {}

  EventHandle push(double time, std::uint64_t seq, Callback cb) {
    auto state = std::make_shared<detail::EventState>();
    state->counters = counters_;
    state->cb = std::move(cb);
    ++counters_->live;
    heap_.push_back(Entry{time, seq, state});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    maybe_compact();
    return EventHandle(std::move(state));
  }

  /// Earliest live event time; only valid when !empty().
  [[nodiscard]] double next_time() {
    drop_cancelled();
    return heap_.front().time;
  }

  [[nodiscard]] bool empty() {
    drop_cancelled();
    return heap_.empty();
  }

  [[nodiscard]] std::size_t live() const { return counters_->live; }

  /// Pops the earliest live event; only valid when !empty().
  std::pair<double, Callback> pop() {
    drop_cancelled();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    entry.state->fired = true;
    --counters_->live;
    maybe_compact();
    return {entry.time, std::move(entry.state->cb)};
  }

  [[nodiscard]] std::size_t physical_entries() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::shared_ptr<detail::EventState> state;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && heap_.front().state->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
  }

  /// Sweeps every tombstone once cancelled entries outnumber live
  /// ones, keeping memory O(live) under schedule/cancel churn.
  void maybe_compact() {
    if (heap_.size() < 64 || heap_.size() <= 2 * counters_->live) return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [](const Entry& e) {
                                 return e.state->cancelled;
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    ++compactions_;
  }

  std::vector<Entry> heap_;
  std::shared_ptr<detail::QueueCounters> counters_;
  std::uint64_t compactions_ = 0;
};

class EventQueue {
 public:
  using Callback = detail::EventCallback;

  explicit EventQueue(QueueKind kind = default_queue_kind()) : kind_(kind) {}

  /// Enqueues `cb` at virtual time `time`; returns a cancellable
  /// handle. `time` must be finite and >= the last popped time.
  EventHandle push(double time, Callback cb) {
    require(std::isfinite(time), "EventQueue: event time must be finite");
    const std::uint64_t seq = seq_++;
    if (kind_ == QueueKind::kCalendar) {
      return calendar_.push(time, seq, std::move(cb));
    }
    return heap_.push(time, seq, std::move(cb));
  }

  /// Earliest live event time; only valid when !empty().
  [[nodiscard]] double next_time() {
    return kind_ == QueueKind::kCalendar ? calendar_.next_time()
                                         : heap_.next_time();
  }

  /// True when no live events remain.
  [[nodiscard]] bool empty() {
    return kind_ == QueueKind::kCalendar ? calendar_.empty() : heap_.empty();
  }

  /// Number of live (non-cancelled, unfired) events.
  [[nodiscard]] std::size_t live() const {
    return kind_ == QueueKind::kCalendar ? calendar_.live() : heap_.live();
  }

  /// Pops the earliest live event; only valid when !empty().
  std::pair<double, Callback> pop() {
    return kind_ == QueueKind::kCalendar ? calendar_.pop() : heap_.pop();
  }

  [[nodiscard]] QueueKind kind() const { return kind_; }

  /// Entries physically stored (live + uncollected tombstones) — the
  /// churn regression bound for both implementations.
  [[nodiscard]] std::size_t physical_entries() const {
    return kind_ == QueueKind::kCalendar ? calendar_.physical_entries()
                                         : heap_.physical_entries();
  }

  /// Tombstone sweeps performed (calendar purges or heap compactions).
  [[nodiscard]] std::uint64_t purges() const {
    return kind_ == QueueKind::kCalendar ? calendar_.purges()
                                         : heap_.compactions();
  }

  /// Calendar bucket-array rebuilds (0 in heap mode).
  [[nodiscard]] std::uint64_t resizes() const {
    return kind_ == QueueKind::kCalendar ? calendar_.resizes() : 0;
  }

 private:
  QueueKind kind_;
  std::uint64_t seq_ = 0;
  CalendarQueue calendar_;
  HeapQueue heap_;
};

}  // namespace ocelot::sim
