#pragma once
// Priority event queue with deterministic tie-breaking.
//
// Events are ordered by (time, sequence number): two events at the
// same virtual time run in submission order, which makes every run of
// the same scenario reproduce the same schedule bit for bit.
// Cancelled events stay in the heap and are discarded lazily when they
// reach the head, so cancellation is O(1).

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event.hpp"

namespace ocelot::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() : counters_(std::make_shared<detail::QueueCounters>()) {}

  /// Enqueues `cb` at virtual time `time`; returns a cancellable handle.
  EventHandle push(double time, Callback cb) {
    auto state = std::make_shared<detail::EventState>();
    state->counters = counters_;
    ++counters_->live;
    heap_.push(Entry{time, seq_++, state, std::move(cb)});
    return EventHandle(state);
  }

  /// Earliest live event time; only valid when !empty().
  [[nodiscard]] double next_time() {
    drop_cancelled();
    return heap_.top().time;
  }

  /// True when no live events remain.
  [[nodiscard]] bool empty() {
    drop_cancelled();
    return heap_.empty();
  }

  /// Number of live (non-cancelled, unfired) events.
  [[nodiscard]] std::size_t live() const { return counters_->live; }

  /// Pops the earliest live event; only valid when !empty().
  std::pair<double, Callback> pop() {
    drop_cancelled();
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    entry.state->fired = true;
    --counters_->live;
    return {entry.time, std::move(entry.cb)};
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::shared_ptr<detail::EventState> state;
    Callback cb;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::shared_ptr<detail::QueueCounters> counters_;
  std::uint64_t seq_ = 0;
};

}  // namespace ocelot::sim
