#pragma once
// Process handles: named, observable activities in the simulation.
//
// A process is a logical thread of virtual-time work (a campaign, a
// transfer, a sentinel run). The engine stamps spawn/exit times and
// notifies observers on exit, which is how the orchestrator tracks
// per-campaign lifetimes without threading state through callbacks.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/pool_alloc.hpp"

namespace ocelot::sim {

class Engine;

enum class ProcessState { kRunning, kDone, kCancelled };

class Process {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] ProcessState state() const { return state_; }
  [[nodiscard]] bool running() const {
    return state_ == ProcessState::kRunning;
  }
  [[nodiscard]] double spawned_at() const { return spawned_at_; }

  /// Exit time; only meaningful once the process left kRunning.
  [[nodiscard]] double exited_at() const { return exited_at_; }

  /// Registers an exit observer; fires once, on finish() or cancel().
  void on_exit(std::function<void()> cb) {
    require(state_ == ProcessState::kRunning,
            "Process: cannot observe an exited process");
    observers_.push_back(std::move(cb));
  }

  /// Marks the process done at the current virtual time.
  void finish();

  /// Marks the process cancelled at the current virtual time.
  void cancel();

 private:
  friend class Engine;
  // The engine spawns processes via allocate_shared on its ChunkPool
  // (object + control block in one recycled slot); the allocator's
  // construct() needs the same access the engine has.
  friend class ocelot::PoolAllocator<Process>;
  Process(Engine& engine, std::string name, std::uint64_t id, double now)
      : engine_(engine), name_(std::move(name)), id_(id), spawned_at_(now) {}

  void exit_with(ProcessState state);

  Engine& engine_;
  std::string name_;
  std::uint64_t id_;
  ProcessState state_ = ProcessState::kRunning;
  double spawned_at_ = 0.0;
  double exited_at_ = 0.0;
  std::vector<std::function<void()>> observers_;
};

using ProcessHandle = std::shared_ptr<Process>;

}  // namespace ocelot::sim
