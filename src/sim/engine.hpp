#pragma once
// Discrete-event simulation engine.
//
// The simulation substrate for the whole WAN-transfer testbed: a
// monotonic SimClock, an EventQueue with deterministic
// (time, sequence) ordering, cancellable EventHandles, and named
// Process handles for tracking long-running activities. All the
// virtual-time subsystems (funcX dispatch, batch scheduling, GridFTP
// transfers, campaigns) run as callbacks on one Engine, so concurrent
// workloads contend for shared resources instead of living in
// separate, closed-form timelines.
//
// Fleet scale: the default calendar-queue scheduler plus pooled event
// records and pooled process handles make the schedule→fire→drop
// cycle allocation-free in steady state; pass QueueKind::kHeap (or
// set OCELOT_SIM_QUEUE=heap) to run on the reference binary heap
// instead — results are bit-identical either way.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/pool_alloc.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/tuning.hpp"

namespace ocelot::sim {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  explicit Engine(QueueKind queue_kind = default_queue_kind())
      : queue_(queue_kind), pool_(std::make_shared<ChunkPool>()) {}

  /// Current virtual time in seconds.
  [[nodiscard]] double now() const { return clock_.now(); }

  /// Schedules `cb` at absolute virtual time `time` (>= now).
  EventHandle schedule_at(double time, Callback cb) {
    require(time >= clock_.now(), "Simulation: cannot schedule in the past");
    return queue_.push(time, std::move(cb));
  }

  /// Schedules `cb` after `delay` seconds of virtual time.
  EventHandle schedule_in(double delay, Callback cb) {
    require(delay >= 0.0, "Simulation: negative delay");
    return schedule_at(clock_.now() + delay, std::move(cb));
  }

  /// Runs until the event queue drains. Returns events executed.
  std::size_t run() {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      step();
      ++executed;
    }
    return executed;
  }

  /// Runs events with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(double t) {
    require(t >= clock_.now(), "Simulation: cannot run backwards");
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= t) {
      step();
      ++executed;
    }
    clock_.advance_to(t);
    return executed;
  }

  [[nodiscard]] bool idle() { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.live(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  [[nodiscard]] QueueKind queue_kind() const { return queue_.kind(); }

  /// The queue's tombstone sweeps so far (purge-rate observability).
  [[nodiscard]] std::uint64_t queue_purges() const { return queue_.purges(); }

  /// Spawns a named process starting at the current virtual time.
  ProcessHandle spawn(std::string name) {
    auto proc = std::allocate_shared<Process>(PoolAllocator<Process>(pool_),
                                              *this, std::move(name),
                                              next_process_id_++, now());
    processes_.push_back(proc);
    return proc;
  }

  /// All processes ever spawned (running and exited).
  [[nodiscard]] const std::vector<ProcessHandle>& processes() const {
    return processes_;
  }

  /// Number of processes still in kRunning.
  [[nodiscard]] std::size_t running_processes() const {
    std::size_t n = 0;
    for (const auto& p : processes_) {
      if (p->running()) ++n;
    }
    return n;
  }

  /// The engine's object pool (processes; services sharing the
  /// engine's single-threaded lifecycle may draw from it too).
  [[nodiscard]] const std::shared_ptr<ChunkPool>& object_pool() const {
    return pool_;
  }

 private:
  void step() {
    auto [time, cb] = queue_.pop();
    clock_.advance_to(time);
    ++executed_;
    OCELOT_COUNT("sim.events", 1);
    OCELOT_HIST("sim.queue_depth", static_cast<double>(queue_.live()));
    cb();
  }

  SimClock clock_;
  EventQueue queue_;
  std::shared_ptr<ChunkPool> pool_;
  std::vector<ProcessHandle> processes_;
  std::uint64_t executed_ = 0;
  std::uint64_t next_process_id_ = 0;
};

inline void Process::exit_with(ProcessState state) {
  require(state_ == ProcessState::kRunning, "Process: already exited");
  state_ = state;
  exited_at_ = engine_.now();
  auto observers = std::move(observers_);
  observers_.clear();
  for (auto& cb : observers) cb();
}

inline void Process::finish() { exit_with(ProcessState::kDone); }
inline void Process::cancel() { exit_with(ProcessState::kCancelled); }

}  // namespace ocelot::sim
