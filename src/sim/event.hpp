#pragma once
// Cancellable event handles for the discrete-event engine.
//
// Every scheduled callback gets an EventHandle. Cancelling a handle
// before the event fires removes it from the logical queue (the entry
// is dropped lazily when it reaches the head); cancelling after it
// fired is a no-op. Handles are cheap to copy and may outlive the
// engine safely.

#include <cstdint>
#include <memory>

namespace ocelot::sim {

namespace detail {

/// Live-event bookkeeping shared between the queue and its handles.
struct QueueCounters {
  std::size_t live = 0;
};

struct EventState {
  bool cancelled = false;
  bool fired = false;
  std::weak_ptr<QueueCounters> counters;
};

}  // namespace detail

class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not cancelled.
  [[nodiscard]] bool active() const {
    return state_ && !state_->cancelled && !state_->fired;
  }

  /// Cancels the event; returns false if it already fired or was
  /// already cancelled (or the handle is empty).
  bool cancel() {
    if (!active()) return false;
    state_->cancelled = true;
    if (auto counters = state_->counters.lock()) --counters->live;
    return true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<detail::EventState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::EventState> state_;
};

}  // namespace ocelot::sim
