#pragma once
// Cancellable event handles for the discrete-event engine.
//
// Every scheduled callback gets an EventHandle. Cancelling a handle
// before the event fires removes it from the logical queue (the entry
// is dropped lazily when it reaches the head, or eagerly by a purge);
// cancelling after it fired is a no-op. Handles are cheap to copy and
// may outlive the engine safely.
//
// Two storage models back a handle, matching the two EventQueue
// implementations:
//   * calendar (default): the event lives in a slot of the queue's
//     EventPool — a free-listed record array with generation counters,
//     so scheduling allocates nothing in steady state. The handle
//     holds (weak pool, slot, generation); a stale generation means
//     the event already fired.
//   * heap (reference): one shared EventState per event, exactly the
//     original allocation behaviour, kept for differential testing.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/inline_function.hpp"

namespace ocelot::sim {

namespace detail {

/// Inline-storage budget for event callbacks: the deepest capture in
/// the repo (funcX completion wrapping a nested task callback) is
/// ~80 bytes, so 128 keeps every sim callback allocation-free while
/// larger captures still work via the heap fallback.
using EventCallback = InlineFunction<void(), 128>;

/// Live-event bookkeeping shared between the heap queue and its
/// handles.
struct QueueCounters {
  std::size_t live = 0;
};

/// Reference (heap-queue) per-event record.
struct EventState {
  bool cancelled = false;
  bool fired = false;
  std::weak_ptr<QueueCounters> counters;
  EventCallback cb;
};

/// Slot pool for calendar-queue event records: a vector of reusable
/// slots threaded on a LIFO free list. Generations disambiguate
/// handles to recycled slots; cancelled slots stay allocated (as
/// tombstones the queue sweeps) until collected.
class EventPool {
 public:
  struct Slot {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    bool cancelled = false;
    EventCallback cb;
  };

  /// Creates a live slot; returns its index.
  std::uint32_t acquire(double time, std::uint64_t seq, EventCallback cb) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    s.time = time;
    s.seq = seq;
    s.cancelled = false;
    s.cb = std::move(cb);
    ++live_;
    return idx;
  }

  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return slots_[idx];
  }

  /// Handle-side: is (idx, gen) still a scheduled, uncancelled event?
  [[nodiscard]] bool handle_active(std::uint32_t idx,
                                   std::uint32_t gen) const {
    return idx < slots_.size() && slots_[idx].gen == gen &&
           !slots_[idx].cancelled;
  }

  /// Handle-side cancellation; returns false when stale or repeated.
  bool cancel(std::uint32_t idx, std::uint32_t gen) {
    if (!handle_active(idx, gen)) return false;
    slots_[idx].cancelled = true;
    slots_[idx].cb = nullptr;  // free captures immediately
    --live_;
    ++tombstones_;
    return true;
  }

  /// Pops a live slot's payload and recycles it.
  std::pair<double, EventCallback> take(std::uint32_t idx) {
    Slot& s = slots_[idx];
    std::pair<double, EventCallback> out{s.time, std::move(s.cb)};
    s.cb = nullptr;
    ++s.gen;
    --live_;
    free_.push_back(idx);
    return out;
  }

  /// Recycles a cancelled slot discovered by a sweep.
  void collect_tombstone(std::uint32_t idx) {
    Slot& s = slots_[idx];
    ++s.gen;
    --tombstones_;
    free_.push_back(idx);
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace detail

class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not cancelled.
  [[nodiscard]] bool active() const {
    if (state_) return !state_->cancelled && !state_->fired;
    if (auto pool = pool_.lock()) return pool->handle_active(slot_, gen_);
    return false;
  }

  /// Cancels the event; returns false if it already fired or was
  /// already cancelled (or the handle is empty).
  bool cancel() {
    if (state_) {
      if (state_->cancelled || state_->fired) return false;
      state_->cancelled = true;
      state_->cb = nullptr;  // free captures immediately
      if (auto counters = state_->counters.lock()) --counters->live;
      return true;
    }
    if (auto pool = pool_.lock()) return pool->cancel(slot_, gen_);
    return false;
  }

 private:
  friend class HeapQueue;
  friend class CalendarQueue;
  explicit EventHandle(std::shared_ptr<detail::EventState> state)
      : state_(std::move(state)) {}
  EventHandle(const std::shared_ptr<detail::EventPool>& pool,
              std::uint32_t slot, std::uint32_t gen)
      : pool_(pool), slot_(slot), gen_(gen) {}

  // Heap (reference) mode: shared per-event state.
  std::shared_ptr<detail::EventState> state_;
  // Calendar mode: (pool, slot, generation). The pool reference is
  // weak so a callback capturing its own handle (task objects do)
  // cannot keep the whole pool — and thus itself — alive in a cycle.
  std::weak_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

}  // namespace ocelot::sim
