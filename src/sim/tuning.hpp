#pragma once
// Runtime-selectable implementations of the simulation hot path.
//
// The fleet-scale engine keeps the original, allocation-heavy
// implementations around as *references*: the binary-heap event queue
// (lazy deletion, one shared_ptr per event) and the from-scratch
// max-min fair-share recompute. Differential tests pop both queues in
// lockstep and diff whole orchestrator reports across fair-share
// modes, and bench_sim_scaling measures the optimized path against
// the reference configuration. Process-wide defaults come from the
// environment so any test or bench binary can be flipped without a
// rebuild:
//
//   OCELOT_SIM_QUEUE=heap|calendar   event-queue implementation
//   OCELOT_SIM_REFERENCE=1          reference fair-share recompute
//
// Both knobs select between implementations with identical observable
// behaviour — same pop order, same sim results — so flipping them
// must never change a report.

namespace ocelot::sim {

enum class QueueKind {
  kCalendar,  ///< rotating bucket-array scheduler (default)
  kHeap,      ///< reference binary heap with lazy deletion
};

/// Process default for new Engines: OCELOT_SIM_QUEUE, else kCalendar.
[[nodiscard]] QueueKind default_queue_kind();

/// When true, FairShareChannels constructed afterwards use the
/// reference full-recompute allocation path instead of the
/// incremental sorted-demand structure. Seeded from
/// OCELOT_SIM_REFERENCE at process start.
[[nodiscard]] bool reference_fair_share();
void set_reference_fair_share(bool reference);

}  // namespace ocelot::sim
