#include "sim/link_flap.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ocelot::sim {

LinkFlap::LinkFlap(Engine& engine, FairShareChannel& channel,
                   LinkFlapConfig config, KeepRunning keep_running)
    : engine_(engine), channel_(channel), config_(config),
      keep_running_(std::move(keep_running)), rng_(config.seed) {
  require(config_.mean_up_seconds > 0.0, "LinkFlap: mean_up must be positive");
  require(config_.mean_down_seconds > 0.0,
          "LinkFlap: mean_down must be positive");
  require(config_.degraded_fraction > 0.0 && config_.degraded_fraction <= 1.0,
          "LinkFlap: degraded_fraction must be in (0, 1]");
  require(config_.start_time >= 0.0, "LinkFlap: negative start time");
}

void LinkFlap::start() {
  require(!started_, "LinkFlap: already started");
  started_ = true;
  base_capacity_ = channel_.capacity();
  const double delay =
      config_.start_time + rng_.exponential(1.0 / config_.mean_up_seconds);
  next_ = engine_.schedule_at(delay, [this] { transition(); });
}

void LinkFlap::stop() {
  next_.cancel();
  if (degraded_) {
    channel_.set_capacity(base_capacity_);
    degraded_ = false;
    ++flaps_;
  }
}

void LinkFlap::transition() {
  if (keep_running_ && !keep_running_()) {
    // Fleet is done: leave the link healthy and stop rescheduling so
    // the event queue can drain.
    if (degraded_) {
      channel_.set_capacity(base_capacity_);
      degraded_ = false;
      ++flaps_;
    }
    return;
  }
  double delay;
  if (degraded_) {
    channel_.set_capacity(base_capacity_);
    degraded_ = false;
    delay = rng_.exponential(1.0 / config_.mean_up_seconds);
  } else {
    channel_.set_capacity(base_capacity_ * config_.degraded_fraction);
    degraded_ = true;
    delay = rng_.exponential(1.0 / config_.mean_down_seconds);
  }
  ++flaps_;
  OCELOT_COUNT("sim.linkflap.transitions", 1);
  next_ = engine_.schedule_in(delay, [this] { transition(); });
}

}  // namespace ocelot::sim
