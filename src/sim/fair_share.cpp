#include "sim/fair_share.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "sim/tuning.hpp"

namespace ocelot::sim {

namespace {

/// Slack for floating-point completion checks, relative to `scale`.
double eps_for(double scale) { return 1e-9 * (1.0 + std::abs(scale)); }

}  // namespace

std::vector<double> max_min_allocation(double capacity,
                                       std::span<const double> demands) {
  require(capacity > 0.0, "max_min_allocation: capacity must be positive");
  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty()) return alloc;

  // Process demands smallest-first: each round either satisfies the
  // smallest unmet demand or splits what is left evenly.
  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demands[a] != demands[b]) return demands[a] < demands[b];
    return a < b;
  });

  double remaining = capacity;
  std::size_t unmet = demands.size();
  for (const std::size_t i : order) {
    require(demands[i] > 0.0, "max_min_allocation: demands must be positive");
    const double fair = remaining / static_cast<double>(unmet);
    alloc[i] = std::min(demands[i], fair);
    remaining -= alloc[i];
    --unmet;
  }
  return alloc;
}

FairShareChannel::FairShareChannel(Engine& engine, std::string name,
                                   double capacity)
    : engine_(engine), name_(std::move(name)), capacity_(capacity),
      reference_(reference_fair_share()), last_update_(engine.now()) {
  require(capacity > 0.0, "FairShareChannel: capacity must be positive");
}

FairShareChannel::FlowId FairShareChannel::open_flow(double demand,
                                                     double work_seconds,
                                                     FlowCallback on_complete,
                                                     double stat_units) {
  require(demand > 0.0, "FairShareChannel: demand must be positive");
  require(work_seconds >= 0.0, "FairShareChannel: negative work");
  sync_progress();

  if (stat_units < 0.0) stat_units = demand * work_seconds;
  const FlowId id = flows_.size();
  Flow& flow = flows_.emplace_back();
  segments_.emplace_back(PoolAllocator<Segment>(engine_.object_pool()));
  Hot& hot = hot_.emplace_back();
  hot.demand = demand;
  hot.work = work_seconds;
  hot.stat_rate = work_seconds > 0.0 ? stat_units / work_seconds : 0.0;
  flow.opened_at = engine_.now();
  flow.on_complete = std::move(on_complete);
  active_.push_back(id);
  if (reference_) reference_index_.emplace(id, id);
  sorted_.insert(
      std::upper_bound(sorted_.begin(), sorted_.end(),
                       std::make_pair(demand, id)),
      std::make_pair(demand, id));
  ++stats_.flows_opened;
  stats_.peak_flows = std::max(stats_.peak_flows, active_.size());

  reallocate();
  return id;
}

void FairShareChannel::cancel_flow(FlowId id) {
  require(id < flows_.size(), "FairShareChannel: unknown flow");
  Flow& flow = flows_[id];
  if (!flow.active) return;
  sync_progress();
  flow.active = false;
  flow.closed_at = engine_.now();
  // The completion callback will never fire; drop it now so whatever
  // it captures (e.g. the cancelled transfer task) can be freed.
  flow.on_complete = nullptr;
  remove_active(id, hot_[id].demand);
  ++stats_.flows_cancelled;
  reallocate();
}

void FairShareChannel::set_capacity(double capacity) {
  require(capacity > 0.0, "FairShareChannel: capacity must be positive");
  if (capacity == capacity_) return;
  sync_progress();
  capacity_ = capacity;
  reallocate();
}

bool FairShareChannel::flow_active(FlowId id) const {
  return flow_ref(id).active;
}

const FairShareChannel::Flow& FairShareChannel::flow_ref(FlowId id) const {
  require(id < flows_.size(), "FairShareChannel: unknown flow");
  return flows_[id];
}

const FairShareChannel::Hot& FairShareChannel::hot_ref(FlowId id) const {
  require(id < hot_.size(), "FairShareChannel: unknown flow");
  return hot_[id];
}

double FairShareChannel::progress_at(FlowId id, double t) const {
  const Flow& flow = flow_ref(id);
  const SegmentVec& segments = segments_[id];
  if (t <= flow.opened_at || segments.empty()) return 0.0;
  const double horizon = std::min(t, flow.closed_at);
  double progress = 0.0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const Segment& seg = segments[k];
    if (seg.wall >= horizon) break;
    const double seg_end =
        (k + 1 < segments.size()) ? segments[k + 1].wall : horizon;
    const double dt = std::min(horizon, seg_end) - seg.wall;
    progress = seg.service + seg.fraction * std::max(0.0, dt);
  }
  // An active flow may have progressed past the last sync point, but
  // never past its total work.
  return std::min(progress, hot_ref(id).work);
}

double FairShareChannel::delivery_time(FlowId id, double s) const {
  const Flow& flow = flow_ref(id);
  const Hot& hot = hot_ref(id);
  if (s <= 0.0) return flow.opened_at;
  const double eps = eps_for(hot.work);
  // Service the flow ever receives: all of it while active or once
  // completed; frozen at the cancellation point otherwise. An active
  // flow's last segment extrapolates at the current rate.
  const double ceiling =
      (flow.active || flow.completed) ? hot.work : hot.progress;
  if (s > ceiling + eps) return kNever;
  const SegmentVec& segments = segments_[id];
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const Segment& seg = segments[k];
    const double seg_service_end =
        (k + 1 < segments.size()) ? segments[k + 1].service : ceiling;
    if (s <= seg_service_end + eps || k + 1 == segments.size()) {
      if (seg.fraction <= 0.0) return seg.wall;
      const double wall = seg.wall + (s - seg.service) / seg.fraction;
      return std::min(wall, flow.closed_at);
    }
  }
  return kNever;
}

void FairShareChannel::sync_progress() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    double rate_units = 0.0;
    for (const FlowId id : active_) {
      Hot& hot = hot_[slot_of(id)];
      hot.progress = std::min(hot.work, hot.progress + hot.fraction * dt);
      rate_units += hot.fraction * hot.stat_rate;
    }
    stats_.units_delivered += rate_units * dt;
    stats_.flow_seconds += static_cast<double>(active_.size()) * dt;
    if (!active_.empty()) stats_.busy_seconds += dt;
  }
  last_update_ = now;
}

void FairShareChannel::apply_fraction(std::size_t slot, double fraction,
                                      double now, double& earliest) {
  Hot& hot = hot_[slot];
  // hot.fraction mirrors segments.back().fraction (and is -1 while the
  // history is empty), so an unchanged rate skips the cold record
  // entirely.
  if (hot.fraction != fraction) {
    SegmentVec& segments = segments_[slot];
    if (!segments.empty() && segments.back().wall == now) {
      // Batch same-timestamp rate updates: no virtual time has passed
      // since the last segment began, so overwrite its rate in place
      // instead of accumulating zero-width segments.
      segments.back().fraction = fraction;
    } else {
      segments.push_back(Segment{now, hot.progress, fraction});
    }
    hot.fraction = fraction;
  }
  const double remaining = hot.work - hot.progress;
  const double finish = remaining <= 0.0 ? now : now + remaining / fraction;
  earliest = std::min(earliest, finish);
}

void FairShareChannel::remove_active(FlowId id, double demand) {
  active_.erase(std::find(active_.begin(), active_.end(), id));
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(),
                                   std::make_pair(demand, id));
  // The exact (demand, id) pair was inserted at open_flow, so the
  // search always lands on it.
  sorted_.erase(it);
}

void FairShareChannel::reallocate() {
  const double now = engine_.now();
  ++reallocs_;
  OCELOT_COUNT("sim.fairshare.reallocs", 1);
  OCELOT_HIST("sim.fairshare.flows", static_cast<double>(active_.size()));

  double earliest = kNever;
  if (reference_) {
    // Reference path: full max-min recompute with scratch vectors and
    // an internal sort, exactly the original implementation.
    std::vector<double> demands;
    demands.reserve(active_.size());
    for (const FlowId id : active_) {
      demands.push_back(hot_[slot_of(id)].demand);
    }
    const std::vector<double> alloc = max_min_allocation(capacity_, demands);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const std::size_t slot = slot_of(active_[i]);
      apply_fraction(slot, alloc[i] / hot_[slot].demand, now, earliest);
    }
  } else {
    // Incremental path: sorted_ already holds (demand, id) ascending —
    // the same order max_min_allocation sorts into (ids ascend in
    // active_-position order) — so one sequential pass performs the
    // identical floating-point operations and yields bit-identical
    // rates with zero allocations.
    double remaining = capacity_;
    std::size_t unmet = sorted_.size();
    for (const auto& [demand, id] : sorted_) {
      const double fair = remaining / static_cast<double>(unmet);
      const double alloc = std::min(demand, fair);
      remaining -= alloc;
      --unmet;
      apply_fraction(static_cast<std::size_t>(id), alloc / demand, now,
                     earliest);
    }
  }

  next_completion_.cancel();
  if (earliest < kNever) {
    next_completion_ =
        engine_.schedule_at(earliest, [this] { on_completion_event(); });
  }
}

void FairShareChannel::on_completion_event() {
  sync_progress();
  // Collect every flow that has (numerically) finished, in id order —
  // ids are assigned monotonically, so this is deterministic.
  done_scratch_.clear();
  for (const FlowId id : active_) {
    const Hot& hot = hot_[slot_of(id)];
    if (hot.progress >= hot.work - eps_for(hot.work)) {
      done_scratch_.push_back(id);
    }
  }
  callbacks_scratch_.clear();
  for (const FlowId id : done_scratch_) {
    const std::size_t slot = slot_of(id);
    Hot& hot = hot_[slot];
    Flow& flow = flows_[slot];
    hot.progress = hot.work;  // pin exact completion
    flow.active = false;
    flow.completed = true;
    flow.closed_at = engine_.now();
    remove_active(id, hot.demand);
    ++stats_.flows_completed;
    if (flow.on_complete) {
      callbacks_scratch_.push_back(std::move(flow.on_complete));
    }
    flow.on_complete = nullptr;
  }
  reallocate();
  for (auto& cb : callbacks_scratch_) cb();
  callbacks_scratch_.clear();
}

}  // namespace ocelot::sim
