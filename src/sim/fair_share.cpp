#include "sim/fair_share.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ocelot::sim {

namespace {

/// Slack for floating-point completion checks, relative to `scale`.
double eps_for(double scale) { return 1e-9 * (1.0 + std::abs(scale)); }

}  // namespace

std::vector<double> max_min_allocation(double capacity,
                                       std::span<const double> demands) {
  require(capacity > 0.0, "max_min_allocation: capacity must be positive");
  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty()) return alloc;

  // Process demands smallest-first: each round either satisfies the
  // smallest unmet demand or splits what is left evenly.
  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demands[a] != demands[b]) return demands[a] < demands[b];
    return a < b;
  });

  double remaining = capacity;
  std::size_t unmet = demands.size();
  for (const std::size_t i : order) {
    require(demands[i] > 0.0, "max_min_allocation: demands must be positive");
    const double fair = remaining / static_cast<double>(unmet);
    alloc[i] = std::min(demands[i], fair);
    remaining -= alloc[i];
    --unmet;
  }
  return alloc;
}

FairShareChannel::FairShareChannel(Engine& engine, std::string name,
                                   double capacity)
    : engine_(engine), name_(std::move(name)), capacity_(capacity),
      last_update_(engine.now()) {
  require(capacity > 0.0, "FairShareChannel: capacity must be positive");
}

FairShareChannel::FlowId FairShareChannel::open_flow(
    double demand, double work_seconds, std::function<void()> on_complete,
    double stat_units) {
  require(demand > 0.0, "FairShareChannel: demand must be positive");
  require(work_seconds >= 0.0, "FairShareChannel: negative work");
  sync_progress();

  if (stat_units < 0.0) stat_units = demand * work_seconds;
  const FlowId id = next_id_++;
  Flow flow;
  flow.demand = demand;
  flow.work = work_seconds;
  flow.stat_rate = work_seconds > 0.0 ? stat_units / work_seconds : 0.0;
  flow.opened_at = engine_.now();
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  active_.push_back(id);
  ++stats_.flows_opened;
  stats_.peak_flows = std::max(stats_.peak_flows, active_.size());

  reallocate();
  return id;
}

void FairShareChannel::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  require(it != flows_.end(), "FairShareChannel: unknown flow");
  if (!it->second.active) return;
  sync_progress();
  it->second.active = false;
  it->second.closed_at = engine_.now();
  // The completion callback will never fire; drop it now so whatever
  // it captures (e.g. the cancelled transfer task) can be freed.
  it->second.on_complete = nullptr;
  active_.erase(std::find(active_.begin(), active_.end(), id));
  ++stats_.flows_cancelled;
  reallocate();
}

bool FairShareChannel::flow_active(FlowId id) const {
  return flow_ref(id).active;
}

const FairShareChannel::Flow& FairShareChannel::flow_ref(FlowId id) const {
  auto it = flows_.find(id);
  require(it != flows_.end(), "FairShareChannel: unknown flow");
  return it->second;
}

double FairShareChannel::progress_at(FlowId id, double t) const {
  const Flow& flow = flow_ref(id);
  if (t <= flow.opened_at || flow.segments.empty()) return 0.0;
  const double horizon = std::min(t, flow.closed_at);
  double progress = 0.0;
  for (std::size_t k = 0; k < flow.segments.size(); ++k) {
    const Segment& seg = flow.segments[k];
    if (seg.wall >= horizon) break;
    const double seg_end = (k + 1 < flow.segments.size())
                               ? flow.segments[k + 1].wall
                               : horizon;
    const double dt = std::min(horizon, seg_end) - seg.wall;
    progress = seg.service + seg.fraction * std::max(0.0, dt);
  }
  // An active flow may have progressed past the last sync point, but
  // never past its total work.
  return std::min(progress, flow.work);
}

double FairShareChannel::delivery_time(FlowId id, double s) const {
  const Flow& flow = flow_ref(id);
  if (s <= 0.0) return flow.opened_at;
  const double eps = eps_for(flow.work);
  // Service the flow ever receives: all of it while active or once
  // completed; frozen at the cancellation point otherwise. An active
  // flow's last segment extrapolates at the current rate.
  const double ceiling =
      (flow.active || flow.completed) ? flow.work : flow.progress;
  if (s > ceiling + eps) return kNever;
  for (std::size_t k = 0; k < flow.segments.size(); ++k) {
    const Segment& seg = flow.segments[k];
    const double seg_service_end = (k + 1 < flow.segments.size())
                                       ? flow.segments[k + 1].service
                                       : ceiling;
    if (s <= seg_service_end + eps || k + 1 == flow.segments.size()) {
      if (seg.fraction <= 0.0) return seg.wall;
      const double wall = seg.wall + (s - seg.service) / seg.fraction;
      return std::min(wall, flow.closed_at);
    }
  }
  return kNever;
}

void FairShareChannel::sync_progress() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    double rate_units = 0.0;
    for (const FlowId id : active_) {
      Flow& flow = flows_[id];
      flow.progress =
          std::min(flow.work, flow.progress + flow.fraction * dt);
      rate_units += flow.fraction * flow.stat_rate;
    }
    stats_.units_delivered += rate_units * dt;
    stats_.flow_seconds += static_cast<double>(active_.size()) * dt;
    if (!active_.empty()) stats_.busy_seconds += dt;
  }
  last_update_ = now;
}

void FairShareChannel::reallocate() {
  const double now = engine_.now();
  std::vector<double> demands;
  demands.reserve(active_.size());
  for (const FlowId id : active_) demands.push_back(flows_[id].demand);
  const std::vector<double> alloc = max_min_allocation(capacity_, demands);

  double earliest = kNever;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Flow& flow = flows_[active_[i]];
    const double fraction = alloc[i] / flow.demand;
    if (flow.segments.empty() ||
        flow.segments.back().fraction != fraction) {
      flow.segments.push_back(Segment{now, flow.progress, fraction});
    }
    flow.fraction = fraction;
    const double remaining = flow.work - flow.progress;
    const double finish =
        remaining <= 0.0 ? now : now + remaining / fraction;
    earliest = std::min(earliest, finish);
  }

  next_completion_.cancel();
  if (earliest < kNever) {
    next_completion_ =
        engine_.schedule_at(earliest, [this] { on_completion_event(); });
  }
}

void FairShareChannel::on_completion_event() {
  sync_progress();
  // Collect every flow that has (numerically) finished, in id order —
  // ids are assigned monotonically, so this is deterministic.
  std::vector<FlowId> done;
  for (const FlowId id : active_) {
    Flow& flow = flows_[id];
    if (flow.progress >= flow.work - eps_for(flow.work)) {
      done.push_back(id);
    }
  }
  std::vector<std::function<void()>> callbacks;
  for (const FlowId id : done) {
    Flow& flow = flows_[id];
    flow.progress = flow.work;  // pin exact completion
    flow.active = false;
    flow.completed = true;
    flow.closed_at = engine_.now();
    active_.erase(std::find(active_.begin(), active_.end(), id));
    ++stats_.flows_completed;
    if (flow.on_complete) callbacks.push_back(std::move(flow.on_complete));
  }
  reallocate();
  for (auto& cb : callbacks) cb();
}

}  // namespace ocelot::sim
