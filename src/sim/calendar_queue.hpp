#pragma once
// Calendar-queue event scheduler (rotating bucket array).
//
// The classic O(1)-amortized alternative to a binary heap for
// discrete-event simulation (Brown, CACM 1988): virtual time is cut
// into fixed-width buckets arranged in a circular "year"; an event at
// time t lives in bucket floor(t/width) mod nbuckets, each bucket
// sorted by the engine's total (time, seq) order. Popping scans
// forward from the current bucket — almost always a hit in the first
// bucket when the width matches the event density — and the bucket
// count doubles/halves as the live count grows/shrinks, re-estimating
// the width from the actual time spread. A full fruitless rotation
// (sparse far-future events) falls back to a direct jump to the
// global minimum, so pathological distributions degrade to O(buckets)
// per pop instead of spinning.
//
// Determinism contract: pops come out in exactly the total order
// (time, seq) — bit-identical to the reference heap — and nothing
// here consults wall clocks or unseeded randomness. Push times must
// be >= the last popped time (the engine's no-scheduling-in-the-past
// rule), which is what keeps each bucket's consumed prefix ordered
// before every new arrival.
//
// Cancelled events become tombstones: O(1) at cancel time, swept
// lazily at bucket heads, and purged eagerly in one pass whenever
// they outnumber live events (keeping memory O(live)).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event.hpp"

namespace ocelot::sim {

class CalendarQueue {
 public:
  using Callback = detail::EventCallback;

  CalendarQueue()
      : pool_(std::make_shared<detail::EventPool>()), buckets_(kMinBuckets) {}

  EventHandle push(double time, std::uint64_t seq, Callback cb) {
    const std::uint32_t idx = pool_->acquire(time, seq, std::move(cb));
    const std::int64_t vb = vbucket_of(time);
    if (!started_ || vb < vcur_) {
      vcur_ = vb;  // first event, or a near-past arrival: rewind
      started_ = true;
    }
    insert_sorted(bucket_at(vb), idx);
    ++entries_;
    if (pool_->tombstones() > pool_->live() && entries_ >= kPurgeFloor) {
      purge();
    }
    if (pool_->live() > buckets_.size() * 2) {
      rebuild(buckets_.size() * 2);
    }
    return EventHandle(pool_, idx, pool_->slot(idx).gen);
  }

  /// Earliest live event time; only valid when !empty().
  [[nodiscard]] double next_time() {
    locate_min();
    const Bucket& b = bucket_at(vcur_);
    return pool_->slot(b.items[b.head]).time;
  }

  [[nodiscard]] bool empty() const { return pool_->live() == 0; }
  [[nodiscard]] std::size_t live() const { return pool_->live(); }

  /// Pops the earliest live event; only valid when !empty().
  std::pair<double, Callback> pop() {
    locate_min();
    Bucket& b = bucket_at(vcur_);
    const std::uint32_t idx = b.items[b.head++];
    if (b.head == b.items.size()) {
      b.items.clear();  // keeps capacity for reuse
      b.head = 0;
    }
    --entries_;
    auto out = pool_->take(idx);
    if (buckets_.size() > kMinBuckets && pool_->live() < buckets_.size() / 4) {
      rebuild(buckets_.size() / 2);
    }
    return out;
  }

  /// Entries physically stored in buckets (live + uncollected
  /// tombstones); the churn regression bound.
  [[nodiscard]] std::size_t physical_entries() const { return entries_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t purges() const { return purges_; }
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }

 private:
  struct Bucket {
    std::vector<std::uint32_t> items;  ///< sorted ascending by (time, seq)
    std::uint32_t head = 0;            ///< consumed prefix cursor
  };

  static constexpr std::size_t kMinBuckets = 16;  // power of two
  static constexpr std::size_t kPurgeFloor = 64;

  [[nodiscard]] std::int64_t vbucket_of(double t) const {
    // Clamp so the int64 cast stays defined for extreme times; the
    // ordering check compares recomputed vbucket values, so a clamped
    // mapping is still self-consistent.
    constexpr double kLim = 4.0e18;
    const double q = std::floor(t / width_);
    return static_cast<std::int64_t>(std::clamp(q, -kLim, kLim));
  }

  Bucket& bucket_at(std::int64_t vb) {
    return buckets_[static_cast<std::size_t>(vb) & (buckets_.size() - 1)];
  }
  const Bucket& bucket_at(std::int64_t vb) const {
    return buckets_[static_cast<std::size_t>(vb) & (buckets_.size() - 1)];
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const detail::EventPool::Slot& sa = pool_->slot(a);
    const detail::EventPool::Slot& sb = pool_->slot(b);
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.seq < sb.seq;
  }

  void insert_sorted(Bucket& b, std::uint32_t idx) {
    // Arrivals carry monotonically increasing seq, so ties and
    // monotone bursts append in O(1); the general case binary-searches
    // the unconsumed suffix.
    auto pos = std::upper_bound(
        b.items.begin() + b.head, b.items.end(), idx,
        [this](std::uint32_t x, std::uint32_t y) { return before(x, y); });
    b.items.insert(pos, idx);
  }

  /// Drops cancelled entries at `b`'s head; resets the bucket when
  /// drained. Returns true if a live head remains.
  bool prune_head(Bucket& b) {
    while (b.head < b.items.size()) {
      const std::uint32_t idx = b.items[b.head];
      if (!pool_->slot(idx).cancelled) return true;
      pool_->collect_tombstone(idx);
      ++b.head;
      --entries_;
    }
    b.items.clear();
    b.head = 0;
    return false;
  }

  /// Positions vcur_ at the bucket holding the global minimum.
  /// Requires live() > 0.
  void locate_min() {
    for (std::size_t scanned = 0; scanned <= buckets_.size(); ++scanned) {
      Bucket& b = bucket_at(vcur_);
      if (prune_head(b) &&
          vbucket_of(pool_->slot(b.items[b.head]).time) == vcur_) {
        return;  // head is within the current year: global minimum
      }
      ++vcur_;
    }
    // A whole rotation found nothing in-year: every remaining event is
    // far in the future. Jump straight to the global minimum.
    bool found = false;
    std::uint32_t best = 0;
    for (Bucket& b : buckets_) {
      if (!prune_head(b)) continue;
      const std::uint32_t head = b.items[b.head];
      if (!found || before(head, best)) {
        best = head;
        found = true;
      }
    }
    // live() > 0 guarantees found.
    vcur_ = vbucket_of(pool_->slot(best).time);
  }

  /// One-pass sweep of every tombstone (and consumed prefix storage).
  void purge() {
    for (Bucket& b : buckets_) {
      if (b.items.empty()) continue;
      std::size_t out = 0;
      for (std::size_t i = b.head; i < b.items.size(); ++i) {
        const std::uint32_t idx = b.items[i];
        if (pool_->slot(idx).cancelled) {
          pool_->collect_tombstone(idx);
          --entries_;
        } else {
          b.items[out++] = idx;
        }
      }
      b.items.resize(out);
      b.head = 0;
    }
    ++purges_;
  }

  /// Rebuilds with `nbuckets` buckets, re-estimating the width from
  /// the live events' time spread (tombstones are collected for free).
  void rebuild(std::size_t nbuckets) {
    std::vector<std::uint32_t> ids;
    ids.reserve(pool_->live());
    double lo = 0.0, hi = 0.0;
    for (Bucket& b : buckets_) {
      for (std::size_t i = b.head; i < b.items.size(); ++i) {
        const std::uint32_t idx = b.items[i];
        const detail::EventPool::Slot& s = pool_->slot(idx);
        if (s.cancelled) {
          pool_->collect_tombstone(idx);
          continue;
        }
        if (ids.empty()) {
          lo = hi = s.time;
        } else {
          lo = std::min(lo, s.time);
          hi = std::max(hi, s.time);
        }
        ids.push_back(idx);
      }
      b.items.clear();
      b.head = 0;
    }
    buckets_.resize(nbuckets);
    // Aim for ~3 events of the current spread per bucket; clamp so the
    // bucket index stays in int64 range for any representable time.
    double width = 3.0 * (hi - lo) / static_cast<double>(ids.size() + 1);
    const double mag = std::max(std::abs(lo), std::abs(hi));
    width = std::max({width, mag / 1.0e15, 1.0e-9});
    width_ = width;
    // Redistribute in global (time, seq) order: every bucket then
    // receives an ascending stream, so this is pure appends instead of
    // mid-vector inserts.
    std::sort(ids.begin(), ids.end(),
              [this](std::uint32_t a, std::uint32_t b) { return before(a, b); });
    for (const std::uint32_t idx : ids) {
      bucket_at(vbucket_of(pool_->slot(idx).time)).items.push_back(idx);
    }
    entries_ = ids.size();
    if (!ids.empty()) vcur_ = vbucket_of(lo);
    ++resizes_;
  }

  std::shared_ptr<detail::EventPool> pool_;
  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  std::int64_t vcur_ = 0;  ///< scan frontier (virtual bucket number)
  bool started_ = false;
  std::size_t entries_ = 0;
  std::uint64_t purges_ = 0;
  std::uint64_t resizes_ = 0;
};

}  // namespace ocelot::sim
