#pragma once
// Max-min fair sharing of a contended fluid resource.
//
// A FairShareChannel models one shared capacity (a WAN link's
// aggregate bandwidth) serving several concurrent flows. Each flow has
// a demand ceiling (the most it could use alone, e.g. the GridFTP
// effective bandwidth for its file mix) and a fixed amount of work
// measured in *solo-service seconds*: the virtual time the flow would
// need with its full demand. The channel allocates capacity max-min
// fairly, so a flow progresses at fraction allocation/demand of solo
// speed — exactly 1.0 when it has the channel to itself, which is what
// keeps single-campaign results identical to the closed-form model.
//
// The channel is event-driven: every flow arrival, departure or
// cancellation reallocates rates and reschedules the next completion
// (a cancellable engine event). Per-flow rate history is kept so
// callers can invert progress ("when had this flow delivered s seconds
// of service?") — the sentinel uses that to learn which files already
// moved when it cancels a transfer mid-flight.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace ocelot::sim {

/// Max-min fair allocation of `capacity` across `demands` (all > 0):
/// repeatedly satisfies the smallest unmet demand and splits the rest.
std::vector<double> max_min_allocation(double capacity,
                                       std::span<const double> demands);

/// Aggregate counters for one channel, integrated in virtual time.
struct ChannelStats {
  double units_delivered = 0.0;  ///< sum of flows' served stat_units
  double busy_seconds = 0.0;     ///< time with at least one active flow
  double flow_seconds = 0.0;     ///< integral of concurrent-flow count
  std::size_t peak_flows = 0;
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_cancelled = 0;
};

class FairShareChannel {
 public:
  using FlowId = std::uint64_t;
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  FairShareChannel(Engine& engine, std::string name, double capacity);

  /// Starts a flow needing `work_seconds` of solo service at demand
  /// `demand` capacity-units/s. `on_complete` fires at the virtual
  /// time the work finishes (not on cancellation). `stat_units` is
  /// what the flow contributes to stats().units_delivered when fully
  /// served (e.g. its payload bytes); defaults to demand * work.
  FlowId open_flow(double demand, double work_seconds,
                   std::function<void()> on_complete,
                   double stat_units = -1.0);

  /// Stops a flow mid-service; progress freezes at the current time.
  void cancel_flow(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const;

  /// Solo-service seconds delivered to `id` by wall time `t`.
  [[nodiscard]] double progress_at(FlowId id, double t) const;

  /// Wall time at which cumulative solo-service `s` was delivered to
  /// `id`; kNever if the flow ended before reaching `s`.
  [[nodiscard]] double delivery_time(FlowId id, double s) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

 private:
  /// One constant-rate stretch of a flow's service history.
  struct Segment {
    double wall;      ///< wall time the stretch began
    double service;   ///< cumulative service at that time
    double fraction;  ///< progress rate (allocation / demand)
  };

  struct Flow {
    double demand = 0.0;
    double work = 0.0;
    double stat_rate = 0.0;  ///< stat units per service-second
    double progress = 0.0;
    double fraction = 0.0;
    double opened_at = 0.0;
    double closed_at = kNever;
    bool active = true;
    bool completed = false;
    std::function<void()> on_complete;
    std::vector<Segment> segments;
  };

  const Flow& flow_ref(FlowId id) const;
  /// Advances all active flows' progress (and the stats integrals) to
  /// the current virtual time.
  void sync_progress();
  /// Recomputes fair-share rates and reschedules the next completion.
  void reallocate();
  void on_completion_event();

  Engine& engine_;
  std::string name_;
  double capacity_;
  std::map<FlowId, Flow> flows_;
  std::vector<FlowId> active_;  ///< ascending ids (insertion order)
  EventHandle next_completion_;
  double last_update_ = 0.0;
  FlowId next_id_ = 0;
  ChannelStats stats_;
};

}  // namespace ocelot::sim
