#pragma once
// Max-min fair sharing of a contended fluid resource.
//
// A FairShareChannel models one shared capacity (a WAN link's
// aggregate bandwidth) serving several concurrent flows. Each flow has
// a demand ceiling (the most it could use alone, e.g. the GridFTP
// effective bandwidth for its file mix) and a fixed amount of work
// measured in *solo-service seconds*: the virtual time the flow would
// need with its full demand. The channel allocates capacity max-min
// fairly, so a flow progresses at fraction allocation/demand of solo
// speed — exactly 1.0 when it has the channel to itself, which is what
// keeps single-campaign results identical to the closed-form model.
//
// The channel is event-driven: every flow arrival, departure,
// cancellation or capacity change reallocates rates and reschedules
// the next completion (a cancellable engine event). Per-flow rate
// history is kept so callers can invert progress ("when had this flow
// delivered s seconds of service?") — the sentinel uses that to learn
// which files already moved when it cancels a transfer mid-flight.
//
// Fleet scale: the default implementation maintains flows in a sorted
// (demand, id) structure across add/remove, so each reallocation is a
// single allocation-free sequential pass instead of a fresh
// sort + scratch vectors. The floating-point operations are performed
// in exactly the order of the reference max_min_allocation path, so
// results are bit-identical; set OCELOT_SIM_REFERENCE=1 (or
// set_reference_fair_share) to run the original full-recompute path
// for differential testing. Same-timestamp rate updates are batched
// into a single rate segment in both modes.

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/inline_function.hpp"
#include "common/pool_alloc.hpp"
#include "sim/engine.hpp"

namespace ocelot::sim {

/// Max-min fair allocation of `capacity` across `demands` (all > 0):
/// repeatedly satisfies the smallest unmet demand and splits the rest.
std::vector<double> max_min_allocation(double capacity,
                                       std::span<const double> demands);

/// Aggregate counters for one channel, integrated in virtual time.
struct ChannelStats {
  double units_delivered = 0.0;  ///< sum of flows' served stat_units
  double busy_seconds = 0.0;     ///< time with at least one active flow
  double flow_seconds = 0.0;     ///< integral of concurrent-flow count
  std::size_t peak_flows = 0;
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_cancelled = 0;
};

class FairShareChannel {
 public:
  using FlowId = std::uint64_t;
  /// Flow-completion callback; sized like the engine's event callbacks
  /// so typical captures stay allocation-free.
  using FlowCallback = InlineFunction<void(), 128>;
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  FairShareChannel(Engine& engine, std::string name, double capacity);

  /// Starts a flow needing `work_seconds` of solo service at demand
  /// `demand` capacity-units/s. `on_complete` fires at the virtual
  /// time the work finishes (not on cancellation). `stat_units` is
  /// what the flow contributes to stats().units_delivered when fully
  /// served (e.g. its payload bytes); defaults to demand * work.
  FlowId open_flow(double demand, double work_seconds,
                   FlowCallback on_complete, double stat_units = -1.0);

  /// Stops a flow mid-service; progress freezes at the current time.
  void cancel_flow(FlowId id);

  /// Changes the channel's total capacity at the current virtual time
  /// (e.g. a link degrading or recovering); rates reallocate at once.
  void set_capacity(double capacity);

  [[nodiscard]] bool flow_active(FlowId id) const;

  /// Solo-service seconds delivered to `id` by wall time `t`.
  [[nodiscard]] double progress_at(FlowId id, double t) const;

  /// Wall time at which cumulative solo-service `s` was delivered to
  /// `id`; kNever if the flow ended before reaching `s`.
  [[nodiscard]] double delivery_time(FlowId id, double s) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] bool reference_mode() const { return reference_; }
  [[nodiscard]] std::uint64_t reallocations() const { return reallocs_; }

 private:
  /// One constant-rate stretch of a flow's service history.
  struct Segment {
    double wall;      ///< wall time the stretch began
    double service;   ///< cumulative service at that time
    double fraction;  ///< progress rate (allocation / demand)
  };
  using SegmentVec = std::vector<Segment, PoolAllocator<Segment>>;

  /// Per-flow state touched on every reallocation and progress sync,
  /// split out of Flow into a dense 40-byte array so the O(active)
  /// passes stream through a few KB instead of striding over the
  /// callback- and history-bearing cold records.
  struct Hot {
    double demand = 0.0;
    double work = 0.0;
    double stat_rate = 0.0;   ///< stat units per service-second
    double progress = 0.0;
    /// Mirrors segments.back().fraction; -1 before the first
    /// allocation so the first apply always records a segment.
    double fraction = -1.0;
  };

  /// Cold per-flow state: lifecycle bookkeeping and the completion
  /// callback, touched only at open/close and on queries. The rate
  /// history lives in segments_ (parallel to flows_) so the per-
  /// reallocation segment appends stride over dense vector headers
  /// instead of these callback-bearing records.
  struct Flow {
    double opened_at = 0.0;
    double closed_at = kNever;
    bool active = true;
    bool completed = false;
    FlowCallback on_complete;
  };

  const Flow& flow_ref(FlowId id) const;
  const Hot& hot_ref(FlowId id) const;
  /// Hot-path slot resolution: the identity normally; one map lookup
  /// per access in reference mode, reproducing the original map-backed
  /// flow table so the A/B bench row carries the true pre-incremental
  /// cost (conservatively — the original's map also owned the Flow
  /// nodes, scattering them across the heap).
  [[nodiscard]] std::size_t slot_of(FlowId id) const {
    return reference_ ? reference_index_.find(id)->second
                      : static_cast<std::size_t>(id);
  }
  /// Advances all active flows' progress (and the stats integrals) to
  /// the current virtual time.
  void sync_progress();
  /// Recomputes fair-share rates and reschedules the next completion.
  void reallocate();
  /// Records `fraction` for the flow in `slot` at `now` (batching
  /// same-timestamp updates into one segment) and folds its finish
  /// time into `earliest`. Touches the cold record only when the
  /// fraction actually changed.
  void apply_fraction(std::size_t slot, double fraction, double now,
                      double& earliest);
  /// Drops `id` from active_ and from the sorted demand structure.
  void remove_active(FlowId id, double demand);
  void on_completion_event();

  Engine& engine_;
  std::string name_;
  double capacity_;
  const bool reference_;  ///< full-recompute reference path?
  std::vector<Hot> hot_;        ///< indexed by FlowId; dense hot state
  std::vector<Flow> flows_;     ///< indexed by FlowId
  std::vector<SegmentVec> segments_;  ///< indexed by FlowId; rate history
  std::vector<FlowId> active_;  ///< ascending ids (insertion order)
  /// Active flows sorted ascending by (demand, id) — maintained across
  /// add/remove so reallocation is one sequential pass.
  std::vector<std::pair<double, FlowId>> sorted_;
  /// Reference mode only: FlowId -> flows_ position, consulted on
  /// every hot-path access like the original std::map<FlowId, Flow>.
  std::map<FlowId, std::size_t> reference_index_;
  std::vector<FlowId> done_scratch_;
  std::vector<FlowCallback> callbacks_scratch_;
  EventHandle next_completion_;
  double last_update_ = 0.0;
  ChannelStats stats_;
  std::uint64_t reallocs_ = 0;
};

}  // namespace ocelot::sim
