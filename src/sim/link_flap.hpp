#pragma once
// Seeded failure injection: WAN link bandwidth flapping.
//
// A LinkFlap drives one FairShareChannel through alternating up and
// degraded periods drawn from seeded exponential distributions — the
// lightweight failure model for wide-area links whose effective
// bandwidth collapses under congestion or partial outage rather than
// dropping to zero. Each transition calls set_capacity, so in-flight
// flows reallocate max-min fairly at the flap instant and the
// orchestrator's transfer timings shift deterministically with the
// seed.
//
// The injector only reschedules itself while its keep-running
// predicate holds (the orchestrator supplies "campaigns still live"),
// so the event queue drains once the fleet finishes; if it stops while
// degraded it restores the link's base capacity first.

#include <cstdint>

#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"

namespace ocelot::sim {

struct LinkFlapConfig {
  std::uint64_t seed = 1;
  double mean_up_seconds = 600.0;    ///< mean healthy-period length
  double mean_down_seconds = 60.0;   ///< mean degraded-period length
  double degraded_fraction = 0.25;   ///< capacity multiplier while down
  double start_time = 0.0;           ///< virtual time injection begins
};

class LinkFlap {
 public:
  /// Queried before every transition; returning false stops the
  /// injector (restoring full capacity if currently degraded).
  using KeepRunning = InlineFunction<bool()>;

  LinkFlap(Engine& engine, FairShareChannel& channel, LinkFlapConfig config,
           KeepRunning keep_running);

  /// Schedules the first degradation. Call once.
  void start();

  /// Cancels any pending transition and restores full capacity.
  void stop();

  /// Transitions performed so far (degrade + restore each count).
  [[nodiscard]] std::uint64_t flaps() const { return flaps_; }
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  void transition();

  Engine& engine_;
  FairShareChannel& channel_;
  LinkFlapConfig config_;
  KeepRunning keep_running_;
  Rng rng_;
  double base_capacity_ = 0.0;
  bool started_ = false;
  bool degraded_ = false;
  std::uint64_t flaps_ = 0;
  EventHandle next_;
};

}  // namespace ocelot::sim
