#pragma once
// Monotonic virtual clock for the discrete-event engine.
//
// The clock only ever moves forward; the engine advances it to each
// event's timestamp before running the event, so every callback
// observes a consistent "now".

#include "common/error.hpp"

namespace ocelot::sim {

class SimClock {
 public:
  [[nodiscard]] double now() const { return now_; }

  /// Advances the clock to `t`; throws InvalidArgument on regression.
  void advance_to(double t) {
    require(t >= now_, "SimClock: time cannot move backwards");
    now_ = t;
  }

 private:
  double now_ = 0.0;
};

}  // namespace ocelot::sim
