#include "sim/tuning.hpp"

#include <cstdlib>
#include <cstring>

namespace ocelot::sim {

namespace {

QueueKind env_queue_kind() {
  const char* env = std::getenv("OCELOT_SIM_QUEUE");
  if (env != nullptr && std::strcmp(env, "heap") == 0) return QueueKind::kHeap;
  return QueueKind::kCalendar;
}

bool env_reference_fair_share() {
  const char* env = std::getenv("OCELOT_SIM_REFERENCE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

bool g_reference_fair_share = env_reference_fair_share();

}  // namespace

QueueKind default_queue_kind() {
  static const QueueKind kind = env_queue_kind();
  return kind;
}

bool reference_fair_share() { return g_reference_fair_share; }
void set_reference_fair_share(bool reference) {
  g_reference_fair_share = reference;
}

}  // namespace ocelot::sim
