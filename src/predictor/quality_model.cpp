#include "predictor/quality_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ocelot {

namespace {

FeatureMatrix build_matrix(const std::vector<QualitySample>& samples) {
  FeatureMatrix x;
  for (const auto& s : samples) x.add_row(s.features);
  return x;
}

std::vector<double> ratio_targets(const std::vector<QualitySample>& samples) {
  std::vector<double> y;
  y.reserve(samples.size());
  for (const auto& s : samples) y.push_back(std::log2(std::max(1.0, s.compression_ratio)));
  return y;
}

std::vector<double> time_targets(const std::vector<QualitySample>& samples) {
  std::vector<double> y;
  y.reserve(samples.size());
  for (const auto& s : samples) {
    const double per_elem =
        s.compress_seconds / std::max<std::size_t>(1, s.n_elements);
    y.push_back(std::log10(std::max(1e-12, per_elem)));
  }
  return y;
}

std::vector<double> psnr_targets(const std::vector<QualitySample>& samples) {
  std::vector<double> y;
  y.reserve(samples.size());
  for (const auto& s : samples) y.push_back(s.psnr_db);
  return y;
}

}  // namespace

QualityModel QualityModel::train(const std::vector<QualitySample>& samples,
                                 const TreeParams& params) {
  require(!samples.empty(), "QualityModel: no training samples");
  const FeatureMatrix x = build_matrix(samples);
  QualityModel model;
  model.ratio_tree_ = DecisionTreeRegressor::fit(x, ratio_targets(samples), params);
  model.time_tree_ = DecisionTreeRegressor::fit(x, time_targets(samples), params);
  model.psnr_tree_ = DecisionTreeRegressor::fit(x, psnr_targets(samples), params);
  return model;
}

QualityPrediction QualityModel::predict(const FeatureVector& features,
                                        std::size_t n_elements) const {
  QualityPrediction p;
  p.compression_ratio = std::exp2(ratio_tree_.predict(features));
  p.compress_seconds = std::pow(10.0, time_tree_.predict(features)) *
                       static_cast<double>(n_elements);
  p.psnr_db = psnr_tree_.predict(features);
  return p;
}

ForestQualityModel ForestQualityModel::train(
    const std::vector<QualitySample>& samples, const ForestParams& params) {
  require(!samples.empty(), "ForestQualityModel: no training samples");
  const FeatureMatrix x = build_matrix(samples);
  ForestQualityModel model;
  model.ratio_forest_ =
      RandomForestRegressor::fit(x, ratio_targets(samples), params);
  model.time_forest_ =
      RandomForestRegressor::fit(x, time_targets(samples), params);
  model.psnr_forest_ =
      RandomForestRegressor::fit(x, psnr_targets(samples), params);
  return model;
}

QualityPrediction ForestQualityModel::predict(const FeatureVector& features,
                                              std::size_t n_elements) const {
  const std::vector<double> row(features.begin(), features.end());
  QualityPrediction p;
  p.compression_ratio = std::exp2(ratio_forest_.predict(row));
  p.compress_seconds = std::pow(10.0, time_forest_.predict(row)) *
                       static_cast<double>(n_elements);
  p.psnr_db = psnr_forest_.predict(row);
  return p;
}

Bytes QualityModel::to_bytes() const {
  BytesWriter out;
  out.put_blob(ratio_tree_.to_bytes());
  out.put_blob(time_tree_.to_bytes());
  out.put_blob(psnr_tree_.to_bytes());
  return out.take();
}

QualityModel QualityModel::from_bytes(std::span<const std::uint8_t> data) {
  BytesReader in(data);
  QualityModel model;
  model.ratio_tree_ = DecisionTreeRegressor::from_bytes(in.get_blob());
  model.time_tree_ = DecisionTreeRegressor::from_bytes(in.get_blob());
  model.psnr_tree_ = DecisionTreeRegressor::from_bytes(in.get_blob());
  return model;
}

AdHocRatioEstimator AdHocRatioEstimator::fit(
    const std::vector<QualitySample>& samples) {
  // The estimator is linear in C1 after inversion:
  //   1/CR = C1 * a + b  with a = (1-p0)*P0, b = (1-P0).
  // Least squares on observed (a, 1/CR - b) pairs.
  double num = 0.0, den = 0.0;
  for (const auto& s : samples) {
    const double p0 = s.features[7];
    const double big_p0 = s.features[8];
    const double a = (1.0 - p0) * big_p0;
    const double b = 1.0 - big_p0;
    const double target = 1.0 / std::max(1e-9, s.compression_ratio) - b;
    num += a * target;
    den += a * a;
  }
  AdHocRatioEstimator est;
  est.c1 = den > 1e-15 ? num / den : 1.0;
  return est;
}

}  // namespace ocelot
