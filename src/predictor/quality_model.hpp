#pragma once
// Lossy-compression quality prediction (Section VI of the paper).
//
// A decision-tree regressor per target estimates, from the 11-feature
// vector, the compression ratio, the compression time, and the PSNR of
// the reconstructed data — without running the compressor. Ratio and
// per-element time are learned in log space (both span orders of
// magnitude); PSNR is learned directly in dB.
//
// Also provides the ad-hoc closed-form ratio estimator from prior work
// (Jin et al., ICDE'22): CR = 1 / (C1*(1-p0)*P0 + (1-P0)), which the
// paper shows fails on applications where the C1 tuning does not
// transfer (Fig. 6) — reproduced here as the baseline.

#include <cstdint>
#include <optional>
#include <vector>

#include "features/features.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

namespace ocelot {

/// One training observation: features plus measured ground truth.
struct QualitySample {
  FeatureVector features{};
  double compression_ratio = 1.0;
  double compress_seconds = 0.0;
  double psnr_db = 0.0;
  std::size_t n_elements = 0;
  int group = 0;  ///< application id, for stratified splits
};

/// Model output for one (dataset, config) pair.
struct QualityPrediction {
  double compression_ratio = 1.0;
  double compress_seconds = 0.0;
  double psnr_db = 0.0;
};

/// Three-target decision-tree quality model.
class QualityModel {
 public:
  /// Trains on measured samples. Throws InvalidArgument on empty input.
  static QualityModel train(const std::vector<QualitySample>& samples,
                            const TreeParams& params = {});

  /// Predicts quality for a feature vector describing `n_elements`
  /// samples (time scales with element count).
  [[nodiscard]] QualityPrediction predict(const FeatureVector& features,
                                          std::size_t n_elements) const;

  [[nodiscard]] const DecisionTreeRegressor& ratio_tree() const {
    return ratio_tree_;
  }
  [[nodiscard]] const DecisionTreeRegressor& time_tree() const {
    return time_tree_;
  }
  [[nodiscard]] const DecisionTreeRegressor& psnr_tree() const {
    return psnr_tree_;
  }

  /// Serializes all three trees (train once, ship to campaigns).
  [[nodiscard]] Bytes to_bytes() const;

  /// Restores a model serialized by to_bytes.
  static QualityModel from_bytes(std::span<const std::uint8_t> data);

 private:
  DecisionTreeRegressor ratio_tree_;  ///< target: log2(compression ratio)
  DecisionTreeRegressor time_tree_;   ///< target: log10(seconds/element)
  DecisionTreeRegressor psnr_tree_;   ///< target: PSNR in dB
};

/// Random-forest variant of the quality model (ablation extension).
class ForestQualityModel {
 public:
  static ForestQualityModel train(const std::vector<QualitySample>& samples,
                                  const ForestParams& params = {});
  [[nodiscard]] QualityPrediction predict(const FeatureVector& features,
                                          std::size_t n_elements) const;

 private:
  RandomForestRegressor ratio_forest_;
  RandomForestRegressor time_forest_;
  RandomForestRegressor psnr_forest_;
};

/// Ad-hoc closed-form compression-ratio estimator (prior-work baseline).
struct AdHocRatioEstimator {
  double c1 = 1.0;  ///< application-specific tuning constant

  [[nodiscard]] double estimate(double p0, double big_p0) const {
    const double denom = c1 * (1.0 - p0) * big_p0 + (1.0 - big_p0);
    return denom > 1e-12 ? 1.0 / denom : 1e12;
  }

  /// Least-squares fit of C1 on (p0, P0, true ratio) observations,
  /// mimicking the per-application tuning the prior work requires.
  static AdHocRatioEstimator fit(const std::vector<QualitySample>& samples);
};

}  // namespace ocelot
