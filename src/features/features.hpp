#pragma once
// Compression-quality features (Section VI of the paper).
//
// Three categories feed the quality-prediction model:
//   config-based     — error bound (log10) and compressor type,
//   data-based       — min, max, value range, byte entropy, average
//                      Lorenzo error,
//   compressor-based — statistics of quantization bins computed on a
//                      subsample with *original-value* predictions:
//                      p0 (share of the zero bin), P0 (share of the
//                      zero bin's bits in the Huffman-encoded stream),
//                      quantization entropy, and the run-length
//                      estimator Rrle = 1 / ((1-p0)*P0 + (1-P0)).
//
// Extraction cost is controlled by the sampling stride (1% sampling =
// stride 100), which the paper shows reduces overhead from >70% to
// <5% of compression time (Fig. 13-A).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Names (and count) of the model features, in vector order.
inline constexpr std::array<const char*, 11> kFeatureNames = {
    "log10_eb",        "compressor_type", "min",
    "max",             "value_range",     "byte_entropy",
    "avg_lorenzo_err", "p0",              "P0",
    "quant_entropy",   "rrle"};

inline constexpr std::size_t kFeatureCount = kFeatureNames.size();

using FeatureVector = std::array<double, kFeatureCount>;

/// Data-based features: properties of the field itself.
struct DataFeatures {
  double min = 0.0;
  double max = 0.0;
  double value_range = 0.0;
  double byte_entropy = 0.0;      ///< bits per byte of the raw encoding
  double avg_lorenzo_error = 0.0; ///< mean |v - lorenzo(v)| on originals
};

/// Compressor-based features: quantization-bin statistics.
struct CompressorFeatures {
  double p0 = 0.0;            ///< fraction of zero-bin codes
  double big_p0 = 0.0;        ///< zero bin's share of Huffman bits (P0)
  double quant_entropy = 0.0; ///< entropy of sampled quantization bins
  double rrle = 0.0;          ///< run-length estimator
  std::size_t sampled_points = 0;
};

/// Extracts data-based features (full-pass; cheap single sweep).
template <typename T>
DataFeatures extract_data_features(const NdArray<T>& data);

/// Extracts quantization-bin features on a subsample.
///
/// `sample_stride` keeps every k-th point (k=100 reproduces the paper's
/// 1% sampling). Predictions use original values, matching the paper's
/// note that features are computed with real data rather than
/// reconstructed values.
template <typename T>
CompressorFeatures extract_compressor_features(const NdArray<T>& data,
                                               double abs_eb,
                                               std::size_t sample_stride = 100);

/// Assembles the full 11-feature vector for a (dataset, config) pair.
template <typename T>
FeatureVector make_feature_vector(const NdArray<T>& data,
                                  const CompressionConfig& config,
                                  std::size_t sample_stride = 100);

/// Assembles the vector from precomputed parts (avoids re-extraction
/// in sweeps over error bounds / backends). `backend_id` is the
/// registered backend's wire id — the categorical "compressor type"
/// feature, stable across processes because wire ids are stable (the
/// legacy Pipeline enum values 0-3 kept their ids, so models trained
/// before the registry refactor still apply).
FeatureVector assemble_feature_vector(double abs_eb, std::uint8_t backend_id,
                                      const DataFeatures& df,
                                      const CompressorFeatures& cf);

}  // namespace ocelot
