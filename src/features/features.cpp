#include "features/features.hpp"

#include <cmath>
#include <map>

#include "codec/huffman.hpp"
#include "common/stats.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "compressor/quantizer.hpp"
#include "compressor/traversal.hpp"

namespace ocelot {

template <typename T>
DataFeatures extract_data_features(const NdArray<T>& data) {
  DataFeatures f;
  const ValueSummary s = summarize(data.values());
  f.min = s.min;
  f.max = s.max;
  f.value_range = s.range;
  f.byte_entropy = byte_entropy_of(data.values());
  f.avg_lorenzo_error = average_lorenzo_error(data);
  return f;
}

template DataFeatures extract_data_features<float>(const NdArray<float>&);
template DataFeatures extract_data_features<double>(const NdArray<double>&);

namespace {

/// Lorenzo prediction from *original* neighbors at (i, j, k).
template <typename T>
double lorenzo_pred_original(const NdArray<T>& data, std::size_t i,
                             std::size_t j, std::size_t k) {
  const Shape& shape = data.shape();
  const int rank = shape.rank();
  const std::size_t n1 = rank >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = rank >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;
  const std::size_t s2 = n2;
  const auto vals = data.values();
  auto at = [&](std::size_t a, std::size_t b, std::size_t c) -> double {
    return static_cast<double>(vals[a * s1 + b * s2 + c]);
  };
  const bool bi = i > 0, bj = j > 0, bk = k > 0;
  if (rank <= 1) return bi ? at(i - 1, 0, 0) : 0.0;
  if (rank == 2) {
    return (bi ? at(i - 1, j, 0) : 0.0) + (bj ? at(i, j - 1, 0) : 0.0) -
           (bi && bj ? at(i - 1, j - 1, 0) : 0.0);
  }
  return (bi ? at(i - 1, j, k) : 0.0) + (bj ? at(i, j - 1, k) : 0.0) +
         (bk ? at(i, j, k - 1) : 0.0) -
         (bi && bj ? at(i - 1, j - 1, k) : 0.0) -
         (bi && bk ? at(i - 1, j, k - 1) : 0.0) -
         (bj && bk ? at(i, j - 1, k - 1) : 0.0) +
         (bi && bj && bk ? at(i - 1, j - 1, k - 1) : 0.0);
}

}  // namespace

template <typename T>
CompressorFeatures extract_compressor_features(const NdArray<T>& data,
                                               double abs_eb,
                                               std::size_t sample_stride) {
  require(abs_eb > 0.0, "extract_compressor_features: eb must be positive");
  require(sample_stride >= 1, "extract_compressor_features: zero stride");

  const Shape& shape = data.shape();
  const int rank = shape.rank();
  const std::size_t n1 = rank >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = rank >= 3 ? shape.dim(2) : 1;
  const auto vals = data.values();

  const double bin = 2.0 * abs_eb;
  constexpr std::int64_t kRadius = kDefaultQuantRadius;

  std::vector<std::uint32_t> bins;
  bins.reserve(data.size() / sample_stride + 1);

  // Visit every sample_stride-th point in linear order; recover the
  // grid coordinates to form the Lorenzo prediction from originals.
  for (std::size_t idx = 0; idx < data.size(); idx += sample_stride) {
    const std::size_t i = idx / (n1 * n2);
    const std::size_t j = (idx / n2) % n1;
    const std::size_t k = idx % n2;
    const double pred = lorenzo_pred_original(data, i, j, k);
    const double diff = static_cast<double>(vals[idx]) - pred;
    const auto q = static_cast<std::int64_t>(std::llround(diff / bin));
    std::uint32_t code = 0;
    if (q > -kRadius && q < kRadius) {
      code = static_cast<std::uint32_t>(kRadius + q);
    }
    bins.push_back(code);
  }

  CompressorFeatures f;
  f.sampled_points = bins.size();
  if (bins.empty()) return f;

  const SymbolCounts counts = count_symbols(bins);
  const auto zero_it = counts.find(static_cast<std::uint32_t>(kRadius));
  const std::uint64_t zero_count =
      zero_it == counts.end() ? 0 : zero_it->second;
  f.p0 = static_cast<double>(zero_count) / static_cast<double>(bins.size());

  // P0: the zero bin's share of the Huffman-encoded bit stream.
  if (counts.size() == 1) {
    // Degenerate: one symbol dominates entirely. The encoded stream is
    // ~0 bits; attribute the whole (empty) stream to that symbol.
    f.big_p0 = zero_count > 0 ? 1.0 : 0.0;
  } else {
    const HuffmanCode code = HuffmanCode::from_counts(counts);
    const std::uint64_t total_bits = code.encoded_bits(counts);
    const std::uint64_t zero_bits =
        zero_count *
        static_cast<std::uint64_t>(code.length(static_cast<std::uint32_t>(kRadius)));
    f.big_p0 = total_bits == 0
                   ? 0.0
                   : static_cast<double>(zero_bits) /
                         static_cast<double>(total_bits);
  }

  f.quant_entropy = symbol_entropy(bins);
  const double denom = (1.0 - f.p0) * f.big_p0 + (1.0 - f.big_p0);
  f.rrle = denom > 1e-12 ? 1.0 / denom : 1e12;
  return f;
}

template CompressorFeatures extract_compressor_features<float>(
    const NdArray<float>&, double, std::size_t);
template CompressorFeatures extract_compressor_features<double>(
    const NdArray<double>&, double, std::size_t);

FeatureVector assemble_feature_vector(double abs_eb, std::uint8_t backend_id,
                                      const DataFeatures& df,
                                      const CompressorFeatures& cf) {
  FeatureVector v;
  v[0] = std::log10(abs_eb);
  v[1] = static_cast<double>(backend_id);
  v[2] = df.min;
  v[3] = df.max;
  v[4] = df.value_range;
  v[5] = df.byte_entropy;
  v[6] = df.avg_lorenzo_error;
  v[7] = cf.p0;
  v[8] = cf.big_p0;
  v[9] = cf.quant_entropy;
  v[10] = cf.rrle;
  return v;
}

template <typename T>
FeatureVector make_feature_vector(const NdArray<T>& data,
                                  const CompressionConfig& config,
                                  std::size_t sample_stride) {
  const double abs_eb = resolve_abs_eb(data, config);
  const std::uint8_t backend_id =
      BackendRegistry::instance().by_name(config.backend).wire_id();
  const DataFeatures df = extract_data_features(data);
  const CompressorFeatures cf =
      extract_compressor_features(data, abs_eb, sample_stride);
  return assemble_feature_vector(abs_eb, backend_id, df, cf);
}

template FeatureVector make_feature_vector<float>(const NdArray<float>&,
                                                  const CompressionConfig&,
                                                  std::size_t);
template FeatureVector make_feature_vector<double>(const NdArray<double>&,
                                                   const CompressionConfig&,
                                                   std::size_t);

}  // namespace ocelot
