#pragma once
// Multilevel hierarchy traversal shared by the interpolation-style
// backends: SZ3-interp (cubic) and the MGARD-style multigrid backend
// (linear, per-level quantizers via the level-aware callback).
//
// The grid is refined level by level: anchors at stride S are coded
// first (with stride-S Lorenzo predictions), then each halving level
// s = S/2 ... 1 interpolates the new points dimension by dimension.
//
// Interior points use 4-point cubic interpolation
// (-1/16, 9/16, 9/16, -1/16) when `cubic` is set; points lacking a far
// neighbor (or all points in linear mode) fall back to linear
// averaging, and border points to nearest-known copy.

#include <array>
#include <cstddef>
#include <span>

#include "common/ndarray.hpp"

namespace ocelot {

/// Largest power-of-two anchor stride <= max_stride that is also
/// meaningful for the given shape (at least 2, at most max dimension).
inline std::size_t choose_anchor_stride(const Shape& shape,
                                        std::size_t max_stride = 64) {
  std::size_t max_dim = 0;
  for (int d = 0; d < shape.rank(); ++d) max_dim = std::max(max_dim, shape.dim(d));
  std::size_t s = 2;
  while (s * 2 <= max_stride && s * 2 <= max_dim) s *= 2;
  return s;
}

/// Shared multilevel hierarchy traversal: anchors at `anchor_stride`
/// with stride-S Lorenzo predictions, then halving refinement levels
/// dimension by dimension. `cubic` selects 4-point cubic interior
/// interpolation (the SZ3 style) or pure linear averaging (the
/// multigrid style); both fall back to linear without a far neighbor
/// and to nearest-known on the high border. The callback
/// `fn(linear_index, prediction, level_stride)` receives the stride of
/// the level that codes the point (anchors get `anchor_stride`), so
/// callers can treat levels differently (e.g. per-level quantizers);
/// its return is stored into `recon` and feeds later predictions.
///
/// Within a level, pass d covers exactly the points whose *last*
/// odd-multiple-of-s coordinate is dimension d, guaranteeing every
/// point is visited once and all interpolation neighbors are already
/// reconstructed (see the coverage argument in tests/compressor).
template <typename T, typename Fn>
void hierarchy_traverse(const Shape& shape, std::span<T> recon,
                        std::size_t anchor_stride, bool cubic, Fn&& fn) {
  const int rank = shape.rank();
  const std::array<std::size_t, 3> n = {
      shape.dim(0), rank >= 2 ? shape.dim(1) : 1, rank >= 3 ? shape.dim(2) : 1};
  const std::size_t s1 = n[1] * n[2];
  const std::size_t s2 = n[2];
  auto lin = [&](std::size_t i, std::size_t j, std::size_t k) {
    return i * s1 + j * s2 + k;
  };
  auto val = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(recon[lin(i, j, k)]);
  };

  const std::size_t S = anchor_stride;

  // --- Phase 1: anchors at stride S with stride-S Lorenzo predictions.
  for (std::size_t i = 0; i < n[0]; i += S) {
    for (std::size_t j = 0; j < n[1]; j += S) {
      for (std::size_t k = 0; k < n[2]; k += S) {
        const bool bi = i >= S, bj = j >= S, bk = k >= S;
        double pred = 0.0;
        if (rank <= 1) {
          pred = bi ? val(i - S, 0, 0) : 0.0;
        } else if (rank == 2) {
          pred = (bi ? val(i - S, j, 0) : 0.0) + (bj ? val(i, j - S, 0) : 0.0) -
                 (bi && bj ? val(i - S, j - S, 0) : 0.0);
        } else {
          pred = (bi ? val(i - S, j, k) : 0.0) + (bj ? val(i, j - S, k) : 0.0) +
                 (bk ? val(i, j, k - S) : 0.0) -
                 (bi && bj ? val(i - S, j - S, k) : 0.0) -
                 (bi && bk ? val(i - S, j, k - S) : 0.0) -
                 (bj && bk ? val(i, j - S, k - S) : 0.0) +
                 (bi && bj && bk ? val(i - S, j - S, k - S) : 0.0);
        }
        const std::size_t idx = lin(i, j, k);
        recon[idx] = fn(idx, pred, S);
      }
    }
  }
  if (S == 1) return;

  // --- Phase 2: refine level by level, dimension by dimension.
  for (std::size_t s = S / 2; s >= 1; s /= 2) {
    for (int d = 0; d < rank; ++d) {
      std::array<std::size_t, 3> start{};
      std::array<std::size_t, 3> step{};
      for (int e = 0; e < 3; ++e) {
        if (e == d) {
          start[static_cast<std::size_t>(e)] = s;
          step[static_cast<std::size_t>(e)] = 2 * s;
        } else if (e < d) {
          start[static_cast<std::size_t>(e)] = 0;
          step[static_cast<std::size_t>(e)] = s;
        } else {
          start[static_cast<std::size_t>(e)] = 0;
          step[static_cast<std::size_t>(e)] = 2 * s;
        }
      }
      const std::size_t nd = n[static_cast<std::size_t>(d)];

      for (std::size_t i = start[0]; i < n[0]; i += step[0]) {
        for (std::size_t j = start[1]; j < n[1]; j += step[1]) {
          for (std::size_t k = start[2]; k < n[2]; k += step[2]) {
            const std::size_t x = d == 0 ? i : (d == 1 ? j : k);
            // Accessor for neighbors displaced along dimension d.
            auto along = [&](std::size_t xx) -> double {
              return d == 0 ? val(xx, j, k) : (d == 1 ? val(i, xx, k) : val(i, j, xx));
            };
            double pred;
            if (x + s < nd) {
              if (cubic && x >= 3 * s && x + 3 * s < nd) {
                pred = (-along(x - 3 * s) + 9.0 * along(x - s) +
                        9.0 * along(x + s) - along(x + 3 * s)) /
                       16.0;
              } else {
                pred = 0.5 * (along(x - s) + along(x + s));
              }
            } else {
              pred = along(x - s);  // border: nearest known
            }
            const std::size_t idx = lin(i, j, k);
            recon[idx] = fn(idx, pred, s);
          }
        }
      }
    }
    if (s == 1) break;
  }
}

/// Visits every grid point once in the SZ3 interpolation order,
/// calling `fn(linear_index, prediction)` and storing its return into
/// `recon`.
template <typename T, typename Fn>
void interp_traverse(const Shape& shape, std::span<T> recon,
                     std::size_t anchor_stride, Fn&& fn) {
  hierarchy_traverse(shape, recon, anchor_stride, /*cubic=*/true,
                     [&](std::size_t idx, double pred, std::size_t) {
                       return fn(idx, pred);
                     });
}

}  // namespace ocelot
