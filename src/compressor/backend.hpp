#pragma once
// Pluggable compressor-backend registry.
//
// Every layer that used to switch on the closed Pipeline enum now
// routes through this seam: compress<T>/decompress<T>/inspect_blob
// resolve a CompressorBackend by name (when writing) or by the wire id
// stored in the OCZ1 header (when reading), and the backend owns the
// payload encode/decode against the shared section container, the
// uniform quantizer, and the pluggable entropy stage (entropy.hpp —
// resolved from CompressionConfig::entropy, "huffman" by default).
//
// Adding a compressor family = implement CompressorBackend (usually
// via TypedBackend to get both dtypes from one template), pick a fresh
// wire id, and register it — in the BackendRegistry constructor
// (backend.cpp) for in-tree families or with a namespace-scope
// BackendRegistrar for out-of-tree ones. No other layer changes: the
// advisor enumerates
// candidates from the registry, the quality model keys its categorical
// feature on the wire id, and the CLI/bench pick the backend up by
// name. See CONTRIBUTING.md for the full recipe.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/lossless.hpp"
#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Parsed blob header, handed to backend decode. Layout (unchanged
/// since the enum era, so old blobs parse bit-exactly): magic "OCZ1",
/// dtype u8, backend wire id u8, resolved absolute eb f64, then the
/// varint parameter block and the shape. Blobs written with a
/// non-default entropy stage use magic "OCZ2" and carry the stage's
/// wire id in one extra byte between the backend id and the eb.
struct BlobHeader {
  std::uint8_t dtype = 0;
  std::uint8_t backend_id = 0;
  /// Entropy-stage wire id (0 for OCZ1 blobs — the legacy chain).
  std::uint8_t entropy_id = 0;
  double abs_eb = 0.0;
  std::uint32_t quant_radius = 0;
  std::size_t anchor_stride = 0;
  std::size_t block_size = 0;
  Shape shape;
};

/// Named payload sections, streamed straight into the output sink in
/// insertion order. The wire layout (varint section count, then tag +
/// length-prefixed payload per section) is identical to the old
/// buffered writer, so blobs stay bit-exact: the count byte is
/// reserved up front and patched by finish() (every in-tree backend
/// stays far below 128 sections; the rare wider varint inserts the
/// extra bytes).
class SectionWriter {
 public:
  explicit SectionWriter(ByteSink& out)
      : out_(&out), count_offset_(out.size()) {
    out.put(std::uint8_t{0});  // count placeholder, patched in finish()
  }

  /// Appends a section with an already-materialized payload.
  void add(const std::string& tag, std::span<const std::uint8_t> bytes) {
    require(!finished_, "SectionWriter: add after finish");
    out_->put_string(tag);
    out_->put_blob(bytes);
    ++count_;
  }

  /// Appends a section whose payload `fn(ByteSink&)` streams into
  /// pooled scratch (capacity reused across sections and blocks), so
  /// steady-state section assembly allocates nothing fresh.
  template <typename Fn>
  void add_streamed(const std::string& tag, Fn&& fn) {
    PooledBuffer scratch(BufferPool::shared());
    ByteSink sink(*scratch);
    fn(sink);
    add(tag, *scratch);
  }

  /// Patches the section count into the reserved slot. Must be called
  /// exactly once, after the last add.
  void finish() {
    require(!finished_, "SectionWriter: finish called twice");
    finished_ = true;
    Bytes& buf = out_->target();
    if (count_ < 0x80) {
      buf[count_offset_] = static_cast<std::uint8_t>(count_);
      return;
    }
    BytesWriter varint;
    varint.put_varint(count_);
    const Bytes& v = varint.bytes();
    buf[count_offset_] = v[0];
    buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(count_offset_) + 1,
               v.begin() + 1, v.end());
  }

 private:
  ByteSink* out_;
  std::size_t count_offset_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Zero-copy section index: tags map to views into the blob being
/// decoded (which outlives the reader), so sections are never copied.
class SectionReader {
 public:
  explicit SectionReader(BytesReader& in) {
    const std::uint64_t count = in.get_varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string tag = in.get_string();
      sections_[tag] = in.get_blob();
    }
  }

  [[nodiscard]] std::span<const std::uint8_t> get(
      const std::string& tag) const {
    const auto it = sections_.find(tag);
    if (it == sections_.end())
      throw CorruptStream("blob: missing section " + tag);
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& tag) const {
    return sections_.count(tag) > 0;
  }

 private:
  std::map<std::string, std::span<const std::uint8_t>> sections_;
};

/// Shared entropy stage for quantized-code sections. Every backend
/// funnels its quantizer output through these so ratios stay
/// comparable across families. The config form resolves the stage from
/// CompressionConfig::entropy via the EntropyRegistry and writes a
/// self-describing packed section (the decoder dispatches on the
/// section's leading byte, so unpack needs no config); with the
/// default "huffman" stage the bytes match the legacy chain exactly.
void pack_codes(std::span<const std::uint32_t> codes,
                const CompressionConfig& config, ByteSink& out);
/// Histogram-aware form for the fused encode path: `hist` must be the
/// exact symbol-sorted histogram of `codes` (FusedQuant::hist_view),
/// letting the huffman stage skip its counting pass. Bytes identical
/// to pack_codes.
void pack_codes_hist(
    std::span<const std::uint32_t> codes,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    const CompressionConfig& config, ByteSink& out);
/// Deprecated legacy forms, fixed to the Huffman+`lossless` chain.
/// Kept for wire-format tests and out-of-tree callers; new code should
/// pass the config (sink form) so the entropy stage stays pluggable.
void pack_codes(std::span<const std::uint32_t> codes, LosslessBackend lossless,
                ByteSink& out);
Bytes pack_codes(std::span<const std::uint32_t> codes,
                 LosslessBackend lossless);
void unpack_codes_into(std::span<const std::uint8_t> packed,
                       std::vector<std::uint32_t>& out);
/// Deprecated Bytes-returning wrapper; prefer unpack_codes_into.
std::vector<std::uint32_t> unpack_codes(std::span<const std::uint8_t> packed);

template <typename T>
void pack_raw_values(std::span<const T> values, LosslessBackend lossless,
                     ByteSink& out);
template <typename T>
Bytes pack_raw_values(const std::vector<T>& values, LosslessBackend lossless);
template <typename T>
void unpack_raw_values_into(std::span<const std::uint8_t> packed,
                            std::vector<T>& out);
template <typename T>
std::vector<T> unpack_raw_values(std::span<const std::uint8_t> packed);

/// One tunable knob of a backend, for `ocelot backends` and docs.
/// `field` names the CompressionConfig member that carries the value.
struct BackendParam {
  std::string field;
  std::string description;
  double default_value = 0.0;
};

/// A compression family: encodes an array into payload sections under
/// a resolved absolute error bound and decodes them back. The encode
/// and decode sides must reconstruct identical values (the quantizer
/// contract), and every backend honors max|x - x^| <= abs_eb.
class CompressorBackend {
 public:
  virtual ~CompressorBackend() = default;

  /// Registry key (stable, lowercase, e.g. "sz3-interp").
  [[nodiscard]] virtual std::string name() const = 0;
  /// Wire id stored in the OCZ1 header. Ids 0-3 are the legacy
  /// Pipeline enum values and must never be reassigned.
  [[nodiscard]] virtual std::uint8_t wire_id() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  [[nodiscard]] virtual std::vector<BackendParam> params() const { return {}; }

  virtual void encode(const NdArray<float>& data, double abs_eb,
                      const CompressionConfig& config,
                      SectionWriter& out) const = 0;
  virtual void encode(const NdArray<double>& data, double abs_eb,
                      const CompressionConfig& config,
                      SectionWriter& out) const = 0;

  /// Decodes into `out`, pre-allocated with the header's shape.
  virtual void decode(const BlobHeader& header, const SectionReader& in,
                      NdArray<float>& out) const = 0;
  virtual void decode(const BlobHeader& header, const SectionReader& in,
                      NdArray<double>& out) const = 0;
};

/// CRTP helper: implement
///   template <typename T> void encode_impl(const NdArray<T>&, double,
///       const CompressionConfig&, SectionWriter&) const;
///   template <typename T> void decode_impl(const BlobHeader&,
///       const SectionReader&, NdArray<T>&) const;
/// once and get both dtype overloads.
template <typename Derived>
class TypedBackend : public CompressorBackend {
 public:
  void encode(const NdArray<float>& data, double abs_eb,
              const CompressionConfig& config,
              SectionWriter& out) const final {
    self().template encode_impl<float>(data, abs_eb, config, out);
  }
  void encode(const NdArray<double>& data, double abs_eb,
              const CompressionConfig& config,
              SectionWriter& out) const final {
    self().template encode_impl<double>(data, abs_eb, config, out);
  }
  void decode(const BlobHeader& header, const SectionReader& in,
              NdArray<float>& out) const final {
    self().template decode_impl<float>(header, in, out);
  }
  void decode(const BlobHeader& header, const SectionReader& in,
              NdArray<double>& out) const final {
    self().template decode_impl<double>(header, in, out);
  }

 private:
  [[nodiscard]] const Derived& self() const {
    return static_cast<const Derived&>(*this);
  }
};

/// Process-wide backend registry, keyed by name and by wire id. The
/// built-in families are registered on first access, so linking the
/// library always provides them; additional backends register via
/// add() (see BackendRegistrar).
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// Registers a backend. Throws InvalidArgument on a name or wire-id
  /// clash. Returns the registered backend.
  const CompressorBackend& add(std::unique_ptr<CompressorBackend> backend);

  /// Lookup for writers: throws InvalidArgument (listing the
  /// registered names) when `name` is unknown.
  [[nodiscard]] const CompressorBackend& by_name(const std::string& name) const;

  /// Lookup for readers: throws CorruptStream when the wire id is
  /// unknown (a foreign or corrupt blob).
  [[nodiscard]] const CompressorBackend& by_id(std::uint8_t id) const;

  /// Nullptr instead of throwing.
  [[nodiscard]] const CompressorBackend* find(const std::string& name) const;

  /// Nullptr instead of throwing (foreign or corrupt wire ids).
  [[nodiscard]] const CompressorBackend* find_by_id(std::uint8_t id) const;

  /// All registered backends in wire-id order.
  [[nodiscard]] std::vector<const CompressorBackend*> list() const;

 private:
  BackendRegistry();

  mutable std::mutex mu_;
  std::map<std::uint8_t, std::unique_ptr<CompressorBackend>> by_id_;
  std::map<std::string, const CompressorBackend*> by_name_;
};

/// Registers a backend at static-initialization time from any linked
/// translation unit:
///   namespace { const BackendRegistrar reg{
///       std::make_unique<MyBackend>()}; }
/// A name/wire-id clash here is unrecoverable (no handler can exist
/// during static init), so it is reported to stderr before aborting
/// instead of escaping as an exception into std::terminate.
struct BackendRegistrar {
  explicit BackendRegistrar(std::unique_ptr<CompressorBackend> backend);
};

/// Names of all registered backends, in wire-id order.
std::vector<std::string> registered_backend_names();

/// Built-in SZ-family backends (lorenzo, sz2, sz3-interp, lorenzo2),
/// wire ids 0-3. Defined in sz_backends.cpp.
std::vector<std::unique_ptr<CompressorBackend>> make_sz_backends();

}  // namespace ocelot
