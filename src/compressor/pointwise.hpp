#pragma once
// Pointwise-relative error bounds (extension; SZ's "REL" mode).
//
// Guarantees |x - x'| <= rel * |x| for every sample, which the
// absolute-bound pipelines cannot express when a field spans many
// decades (e.g., cosmology densities). Implemented with the standard
// log-domain reduction: signs and exact zeros are stored in a
// classified side stream, and log|x| is compressed with the absolute
// bound log(1 + rel); since 1/(1+r) >= 1-r, the multiplicative
// reconstruction error stays within [1-rel, 1+rel].

#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Compresses with a pointwise-relative bound `rel` (0 < rel < 1),
/// using the named registry backend for the log-magnitude payload.
/// Non-finite samples are preserved verbatim.
Bytes compress_pointwise_rel(const FloatArray& data, double rel,
                             const std::string& backend = "sz3-interp");

/// Inverts compress_pointwise_rel. Throws CorruptStream on malformed
/// input.
FloatArray decompress_pointwise_rel(std::span<const std::uint8_t> blob);

}  // namespace ocelot
