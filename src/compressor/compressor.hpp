#pragma once
// Error-bounded lossy compression of scientific arrays.
//
// Public entry points of the compressor library: compress an NdArray
// into a self-describing blob and decompress it back. The contract is
// the error-bound invariant: for the resolved absolute bound e,
// max |original[i] - decompressed[i]| <= e for all i.
//
// Blob layout: magic "OCZ1", dtype, pipeline, resolved absolute eb,
// shape, pipeline parameters, then named sections (quantization codes
// after Huffman+backend, unpredictable raw values, and for SZ2 the
// per-block choices and coefficient streams).

#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Compresses `data` under `config`. Throws InvalidArgument for empty
/// arrays or non-positive error bounds.
template <typename T>
Bytes compress(const NdArray<T>& data, const CompressionConfig& config);

/// Decompresses a blob produced by compress<T>. Throws CorruptStream on
/// malformed input and InvalidArgument if the blob's dtype is not T.
template <typename T>
NdArray<T> decompress(std::span<const std::uint8_t> blob);

/// Metadata recovered from a blob without decompressing the payload.
struct BlobInfo {
  bool is_double = false;
  Pipeline pipeline = Pipeline::kSz3Interp;
  double abs_eb = 0.0;
  Shape shape;
  std::size_t compressed_bytes = 0;
  std::size_t raw_bytes = 0;
};

/// Parses header fields only.
BlobInfo inspect_blob(std::span<const std::uint8_t> blob);

/// Convenience round-trip measurement used by tests, benches and the
/// predictor training loop.
struct RoundTripStats {
  double compression_ratio = 0.0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  double psnr_db = 0.0;
  double max_error = 0.0;
  double abs_eb = 0.0;
  std::size_t compressed_bytes = 0;
};

template <typename T>
RoundTripStats measure_roundtrip(const NdArray<T>& data,
                                 const CompressionConfig& config);

/// Resolves a possibly-relative error bound against the data range.
template <typename T>
double resolve_abs_eb(const NdArray<T>& data, const CompressionConfig& config);

}  // namespace ocelot
