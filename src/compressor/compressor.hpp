#pragma once
// Error-bounded lossy compression of scientific arrays.
//
// Public entry points of the compressor library: compress an NdArray
// into a self-describing blob and decompress it back. The contract is
// the error-bound invariant: for the resolved absolute bound e,
// max |original[i] - decompressed[i]| <= e for all i.
//
// Dispatch is registry-based (see backend.hpp): the blob header names
// the backend by wire id, compress resolves config.backend by name,
// and the backend owns the payload. Blob layout: magic "OCZ1", dtype,
// backend wire id, resolved absolute eb, the varint parameter block,
// shape, then the backend's named sections. Blobs written with a
// non-default entropy stage (config.entropy != "huffman", see
// codec/entropy.hpp) use magic "OCZ2" with the stage's wire id in one
// extra byte after the backend id; everything else is unchanged.

#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Compresses `data` under `config`, streaming header and payload
/// sections straight into `out` — the zero-copy path: pointing the
/// sink at a pooled buffer or a container arena produces the blob with
/// no intermediate vectors. Throws InvalidArgument for empty arrays or
/// non-positive error bounds.
template <typename T>
void compress_into(const NdArray<T>& data, const CompressionConfig& config,
                   ByteSink& out);

/// Convenience wrapper returning a fresh buffer.
template <typename T>
Bytes compress(const NdArray<T>& data, const CompressionConfig& config);

/// Decompresses a blob produced by compress<T>. Throws CorruptStream on
/// malformed input and InvalidArgument if the blob's dtype is not T.
template <typename T>
NdArray<T> decompress(std::span<const std::uint8_t> blob);

/// Like decompress, but builds the output array on `storage` (resized
/// to the blob's shape, capacity reused). The pooled block codec hands
/// the vector back to its ScratchPool afterwards via
/// NdArray::release(). Exception-safe for pooling: when decoding
/// throws, the storage is moved back into `storage`, so a ScratchLease
/// holding it still returns it to the pool.
template <typename T>
NdArray<T> decompress_reusing(std::span<const std::uint8_t> blob,
                              std::vector<T>& storage);

/// Metadata recovered from a blob without decompressing the payload.
struct BlobInfo {
  bool is_double = false;
  std::string backend;          ///< registry name resolved from the wire id
  std::uint8_t backend_id = 0;  ///< raw wire id from the header
  std::string entropy;          ///< entropy-stage name ("huffman" for OCZ1)
  std::uint8_t entropy_id = 0;  ///< entropy-stage wire id
  double abs_eb = 0.0;
  Shape shape;
  std::size_t compressed_bytes = 0;
  std::size_t raw_bytes = 0;
};

/// Parses header fields only; resolves the backend and entropy-stage
/// names through their registries and throws CorruptStream for
/// unknown wire ids.
BlobInfo inspect_blob(std::span<const std::uint8_t> blob);

/// Convenience round-trip measurement used by tests, benches and the
/// predictor training loop.
struct RoundTripStats {
  double compression_ratio = 0.0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  double psnr_db = 0.0;
  double max_error = 0.0;
  double abs_eb = 0.0;
  std::size_t compressed_bytes = 0;
};

template <typename T>
RoundTripStats measure_roundtrip(const NdArray<T>& data,
                                 const CompressionConfig& config);

/// Resolves a possibly-relative error bound against the data range.
template <typename T>
double resolve_abs_eb(const NdArray<T>& data, const CompressionConfig& config);

}  // namespace ocelot
