// Built-in SZ-family backends: the four prediction pipelines that
// predated the registry, on wire ids 0-3. Payload layout is
// bit-identical to the pre-registry compressor (see the golden-blob
// test), so blobs written before the refactor still decode exactly.
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "compressor/backend.hpp"
#include "compressor/interpolation.hpp"
#include "compressor/kernels/quant_kernels.hpp"
#include "compressor/quantizer.hpp"
#include "compressor/regression.hpp"
#include "compressor/traversal.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

using kernels::FusedQuant;

/// Arena-backed reconstruction scratch: the block-parallel executor
/// compresses thousands of blocks per run, and per-block vectors were
/// the largest allocation source on that path. The arena span reuses
/// the worker's chunks, so steady-state blocks touch no heap at all.
template <typename T>
std::span<T> recon_scratch(ScratchArena& arena, std::size_t n) {
  std::span<T> recon = arena.alloc<T>(n);
  std::fill(recon.begin(), recon.end(), T{});
  return recon;
}

/// Runs the fused quantizing traversal `run(recon, quant)` and emits
/// the shared "codes"/"raw" sections — the common tail of every
/// SZ-style family. The quantizer's inline histogram feeds the entropy
/// stage directly, so no separate counting pass runs.
template <typename T, typename Run>
void quantized_encode(const NdArray<T>& data, double abs_eb,
                      const CompressionConfig& config, SectionWriter& out,
                      Run&& run) {
  ArenaScope scope;
  std::span<T> recon = recon_scratch<T>(scope.arena(), data.size());
  FusedQuant<T> quant = FusedQuant<T>::make(abs_eb, config.quant_radius,
                                            data.size(), scope.arena(),
                                            ScratchArena::Slot::kHistA);
  {
    OCELOT_SPAN("codec.predict_quantize");
    run(recon, quant);
  }
  OCELOT_COUNT("codec.raw_bytes", data.size() * sizeof(T));
  const auto hist = quant.hist_view(scope.arena());
  out.add_streamed("codes", [&](ByteSink& sink) {
    pack_codes_hist(quant.codes_view(), hist, config, sink);
  });
  out.add_streamed("raw", [&](ByteSink& sink) {
    pack_raw_values(quant.raw_view(), config.lossless, sink);
  });
}

/// Replays the "codes"/"raw" sections through `traverse(values, fn)`.
/// Decode stays on the reference traversals + QuantDecoder — the
/// correctness anchor the SIMD property tests compare against — with
/// pooled scratch for the unpacked streams.
template <typename T, typename Traverse>
void quantized_decode(const BlobHeader& header, const SectionReader& in,
                      NdArray<T>& out, Traverse&& traverse) {
  ScratchLease<std::uint32_t> codes(ScratchPool<std::uint32_t>::shared());
  unpack_codes_into(in.get("codes"), *codes);
  ScratchLease<T> raw(ScratchPool<T>::shared());
  unpack_raw_values_into(in.get("raw"), *raw);
  if (codes->size() != header.shape.size())
    throw CorruptStream("blob: code count does not match shape");
  QuantDecoder<T> quant(header.abs_eb, header.quant_radius, *codes, *raw);
  traverse(out.values(),
           [&](std::size_t, double pred) { return quant.decode(pred); });
}

class LorenzoBackend final : public TypedBackend<LorenzoBackend> {
 public:
  [[nodiscard]] std::string name() const override { return "lorenzo"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 0; }
  [[nodiscard]] std::string description() const override {
    return "pure first-order Lorenzo predictor (fast baseline)";
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    const auto original = data.values();
    quantized_encode(data, abs_eb, config, out,
                     [&](std::span<T> recon, FusedQuant<T>& quant) {
                       lorenzo_traverse<T>(
                           data.shape(), recon,
                           [&](std::size_t idx, double pred) {
                             return quant.encode1(pred, original[idx]);
                           });
                     });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    quantized_decode(header, in, out, [&](std::span<T> values, auto&& fn) {
      lorenzo_traverse<T>(header.shape, values, fn);
    });
  }
};

class Lorenzo2Backend final : public TypedBackend<Lorenzo2Backend> {
 public:
  [[nodiscard]] std::string name() const override { return "lorenzo2"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 3; }
  [[nodiscard]] std::string description() const override {
    return "second-order Lorenzo predictor (linear-trend fields)";
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    const auto original = data.values();
    quantized_encode(data, abs_eb, config, out,
                     [&](std::span<T> recon, FusedQuant<T>& quant) {
                       lorenzo2_traverse<T>(
                           data.shape(), recon,
                           [&](std::size_t idx, double pred) {
                             return quant.encode1(pred, original[idx]);
                           });
                     });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    quantized_decode(header, in, out, [&](std::span<T> values, auto&& fn) {
      lorenzo2_traverse<T>(header.shape, values, fn);
    });
  }
};

class Sz3InterpBackend final : public TypedBackend<Sz3InterpBackend> {
 public:
  [[nodiscard]] std::string name() const override { return "sz3-interp"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 2; }
  [[nodiscard]] std::string description() const override {
    return "multilevel cubic interpolation (SZ3 default)";
  }
  [[nodiscard]] std::vector<BackendParam> params() const override {
    return {{"anchor_stride", "anchor spacing cap (power of two)", 64.0}};
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    const std::size_t stride =
        choose_anchor_stride(data.shape(), config.anchor_stride);
    quantized_encode(data, abs_eb, config, out,
                     [&](std::span<T> recon, FusedQuant<T>& quant) {
                       kernels::hierarchy_encode<T>(data.shape(),
                                                    data.values().data(), recon,
                                                    stride, /*cubic=*/true,
                                                    quant);
                     });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    const std::size_t stride =
        choose_anchor_stride(header.shape, header.anchor_stride);
    quantized_decode(header, in, out, [&](std::span<T> values, auto&& fn) {
      interp_traverse<T>(header.shape, values, stride, fn);
    });
  }
};

// Coefficients are quantized coarsely relative to the point bound: the
// final error is bounded by the point quantizer regardless, so this
// only trades prediction accuracy against coefficient storage.
double coeff_eb(double abs_eb, std::size_t block_size) {
  return abs_eb / static_cast<double>(2 * block_size);
}

/// SZ2 oracle state shared between encode and decode: the previous
/// regression block's reconstructed coefficients seed the prediction of
/// the next block's coefficients.
struct CoeffPredictor {
  BlockCoeffs prev;
  double predict(int which) const {
    switch (which) {
      case 0:
        return prev.b0;
      case 1:
        return prev.b1;
      case 2:
        return prev.b2;
      default:
        return prev.b3;
    }
  }
  void update(const BlockCoeffs& recon) { prev = recon; }
};

/// Estimated block SSE for regression (with fitted coefficients) vs
/// Lorenzo (with original-value neighbors), both on original data; used
/// only for predictor selection, mirroring SZ2's sampling heuristic.
template <typename T>
std::pair<double, double> block_sse(const NdArray<T>& data,
                                    const BlockRegion& region,
                                    const BlockCoeffs& coeffs) {
  const Shape& shape = data.shape();
  const int rank = shape.rank();
  const std::size_t n1 = rank >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = rank >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;
  const std::size_t s2 = n2;
  const auto vals = data.values();
  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(vals[i * s1 + j * s2 + k]);
  };

  double sse_reg = 0.0, sse_lor = 0.0;
  for (std::size_t i = 0; i < region.len[0]; ++i) {
    for (std::size_t j = 0; j < region.len[1]; ++j) {
      for (std::size_t k = 0; k < region.len[2]; ++k) {
        const std::size_t gi = region.lo[0] + i;
        const std::size_t gj = region.lo[1] + j;
        const std::size_t gk = region.lo[2] + k;
        const double v = at(gi, gj, gk);
        const double pr = predict_block(coeffs, i, j, k);
        sse_reg += (v - pr) * (v - pr);

        const bool bi = gi > 0, bj = gj > 0, bk = gk > 0;
        double pl = 0.0;
        if (rank <= 1) {
          pl = bi ? at(gi - 1, 0, 0) : 0.0;
        } else if (rank == 2) {
          pl = (bi ? at(gi - 1, gj, 0) : 0.0) + (bj ? at(gi, gj - 1, 0) : 0.0) -
               (bi && bj ? at(gi - 1, gj - 1, 0) : 0.0);
        } else {
          pl = (bi ? at(gi - 1, gj, gk) : 0.0) +
               (bj ? at(gi, gj - 1, gk) : 0.0) +
               (bk ? at(gi, gj, gk - 1) : 0.0) -
               (bi && bj ? at(gi - 1, gj - 1, gk) : 0.0) -
               (bi && bk ? at(gi - 1, gj, gk - 1) : 0.0) -
               (bj && bk ? at(gi, gj - 1, gk - 1) : 0.0) +
               (bi && bj && bk ? at(gi - 1, gj - 1, gk - 1) : 0.0);
        }
        sse_lor += (v - pl) * (v - pl);
      }
    }
  }
  return {sse_reg, sse_lor};
}

class Sz2Backend final : public TypedBackend<Sz2Backend> {
 public:
  [[nodiscard]] std::string name() const override { return "sz2"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 1; }
  [[nodiscard]] std::string description() const override {
    return "block regression + Lorenzo hybrid (SZ2 style)";
  }
  [[nodiscard]] std::vector<BackendParam> params() const override {
    return {{"block_size", "regression block edge", 6.0}};
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    ArenaScope scope;
    std::span<T> recon = recon_scratch<T>(scope.arena(), data.size());
    FusedQuant<T> quant = FusedQuant<T>::make(abs_eb, config.quant_radius,
                                              data.size(), scope.arena(),
                                              ScratchArena::Slot::kHistA);
    const auto original = data.values();

    const Shape& shape = data.shape();
    const int rank = shape.rank();
    std::size_t n_blocks = 1;
    for (int d = 0; d < rank; ++d)
      n_blocks *= (shape.dim(d) + config.block_size - 1) / config.block_size;
    FusedQuant<double> coef_quant = FusedQuant<double>::make(
        coeff_eb(abs_eb, config.block_size), kDefaultQuantRadius, 4 * n_blocks,
        scope.arena(), ScratchArena::Slot::kHistB);
    CoeffPredictor coef_pred;
    std::span<std::uint8_t> choices =
        scope.arena().alloc<std::uint8_t>(n_blocks);
    std::size_t n_choices = 0;

    auto oracle =
        [&](const BlockRegion& region) -> std::pair<bool, BlockCoeffs> {
      const BlockCoeffs fitted = fit_block_regression(data, region);
      const auto [sse_reg, sse_lor] = block_sse(data, region, fitted);
      const bool use_reg = sse_reg < sse_lor;
      choices[n_choices++] = use_reg ? 1 : 0;
      if (!use_reg) return {false, BlockCoeffs{}};
      BlockCoeffs recon_c;
      recon_c.b0 = coef_quant.encode1(coef_pred.predict(0), fitted.b0);
      recon_c.b1 = coef_quant.encode1(coef_pred.predict(1), fitted.b1);
      if (rank >= 2)
        recon_c.b2 = coef_quant.encode1(coef_pred.predict(2), fitted.b2);
      if (rank >= 3)
        recon_c.b3 = coef_quant.encode1(coef_pred.predict(3), fitted.b3);
      coef_pred.update(recon_c);
      return {true, recon_c};
    };
    {
      OCELOT_SPAN("codec.predict_quantize");
      block_traverse<T>(shape, recon, config.block_size, oracle,
                        [&](std::size_t idx, double pred) {
                          return quant.encode1(pred, original[idx]);
                        });
    }
    OCELOT_COUNT("codec.raw_bytes", data.size() * sizeof(T));

    const auto coef_hist = coef_quant.hist_view(scope.arena());
    const auto hist = quant.hist_view(scope.arena());
    out.add_streamed("choices", [&](ByteSink& sink) {
      lossless_compress(choices.first(n_choices), config.lossless, sink);
    });
    out.add_streamed("coef_codes", [&](ByteSink& sink) {
      pack_codes_hist(coef_quant.codes_view(), coef_hist, config, sink);
    });
    out.add_streamed("coef_raw", [&](ByteSink& sink) {
      pack_raw_values(coef_quant.raw_view(), config.lossless, sink);
    });
    out.add_streamed("codes", [&](ByteSink& sink) {
      pack_codes_hist(quant.codes_view(), hist, config, sink);
    });
    out.add_streamed("raw", [&](ByteSink& sink) {
      pack_raw_values(quant.raw_view(), config.lossless, sink);
    });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    ScratchLease<std::uint32_t> codes(ScratchPool<std::uint32_t>::shared());
    unpack_codes_into(in.get("codes"), *codes);
    ScratchLease<T> raw(ScratchPool<T>::shared());
    unpack_raw_values_into(in.get("raw"), *raw);
    if (codes->size() != header.shape.size())
      throw CorruptStream("blob: code count does not match shape");
    QuantDecoder<T> quant(header.abs_eb, header.quant_radius, *codes, *raw);

    PooledBuffer choice_bytes(BufferPool::shared());
    lossless_decompress_into(in.get("choices"), *choice_bytes);
    ScratchLease<std::uint32_t> coef_codes(
        ScratchPool<std::uint32_t>::shared());
    unpack_codes_into(in.get("coef_codes"), *coef_codes);
    ScratchLease<double> coef_raw(ScratchPool<double>::shared());
    unpack_raw_values_into(in.get("coef_raw"), *coef_raw);
    QuantDecoder<double> coef_quant(coeff_eb(header.abs_eb, header.block_size),
                                    kDefaultQuantRadius, *coef_codes,
                                    *coef_raw);
    CoeffPredictor coef_pred;
    std::size_t choice_pos = 0;
    const int rank = header.shape.rank();

    auto oracle = [&](const BlockRegion&) -> std::pair<bool, BlockCoeffs> {
      if (choice_pos >= choice_bytes->size())
        throw CorruptStream("blob: choice stream exhausted");
      const bool use_reg = (*choice_bytes)[choice_pos++] != 0;
      if (!use_reg) return {false, BlockCoeffs{}};
      BlockCoeffs c;
      c.b0 = coef_quant.decode(coef_pred.predict(0));
      c.b1 = coef_quant.decode(coef_pred.predict(1));
      if (rank >= 2) c.b2 = coef_quant.decode(coef_pred.predict(2));
      if (rank >= 3) c.b3 = coef_quant.decode(coef_pred.predict(3));
      coef_pred.update(c);
      return {true, c};
    };
    block_traverse<T>(header.shape, out.values(), header.block_size, oracle,
                      [&](std::size_t, double pred) {
                        return quant.decode(pred);
                      });
  }
};

}  // namespace

std::vector<std::unique_ptr<CompressorBackend>> make_sz_backends() {
  std::vector<std::unique_ptr<CompressorBackend>> backends;
  backends.push_back(std::make_unique<LorenzoBackend>());
  backends.push_back(std::make_unique<Sz2Backend>());
  backends.push_back(std::make_unique<Sz3InterpBackend>());
  backends.push_back(std::make_unique<Lorenzo2Backend>());
  return backends;
}

}  // namespace ocelot
