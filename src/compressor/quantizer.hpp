#pragma once
// Linear-scale quantization with a strict absolute error bound.
//
// The defining contract of the SZ compression model (Section III-A):
// a prediction residual is mapped to an integer bin of width 2*eb, so
// the reconstructed value differs from the original by at most eb.
// Residuals outside the bin range (the quantizer "capacity") are marked
// unpredictable (code 0) and the original value is stored verbatim.
//
// Bin layout matches SZ: code = radius + round(residual / (2*eb)),
// so a perfect prediction lands exactly on `radius` (the "zero bin"
// whose share is the paper's p0 feature).

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ocelot {

/// Default quantizer capacity: 2*radius bins (16-bit style, like SZ).
inline constexpr std::uint32_t kDefaultQuantRadius = 32768;

/// Quantizes residuals during compression, collecting codes and
/// unpredictable values. Reconstructed values mirror the decoder
/// bit-for-bit so predictions stay symmetric.
template <typename T>
class QuantEncoder {
 public:
  QuantEncoder(double abs_eb, std::uint32_t radius = kDefaultQuantRadius)
      : eb_(abs_eb), bin_(2.0 * abs_eb), radius_(radius) {
    require(abs_eb > 0.0, "QuantEncoder: error bound must be positive");
    require(radius >= 2, "QuantEncoder: radius too small");
  }

  /// Quantizes `real` against `pred`; returns the reconstructed value.
  /// Non-finite samples (NaN/Inf, common in masked scientific fields)
  /// are stored verbatim so they survive the round trip bit-exactly.
  T encode(double pred, T real) {
    const double diff = static_cast<double>(real) - pred;
    if (!std::isfinite(diff)) {
      codes_.push_back(0);
      raw_.push_back(real);
      return real;
    }
    const auto q = static_cast<std::int64_t>(std::llround(diff / bin_));
    if (q > -static_cast<std::int64_t>(radius_) &&
        q < static_cast<std::int64_t>(radius_)) {
      const T recon = static_cast<T>(pred + static_cast<double>(q) * bin_);
      // Guard against floating-point cast widening the error past eb.
      if (std::abs(static_cast<double>(recon) - static_cast<double>(real)) <=
          eb_) {
        codes_.push_back(static_cast<std::uint32_t>(
            static_cast<std::int64_t>(radius_) + q));
        return recon;
      }
    }
    codes_.push_back(0);  // unpredictable marker
    raw_.push_back(real);
    return real;
  }

  /// Pre-sizes the code stream for `n` samples (one code per sample),
  /// avoiding growth reallocations on the hot path.
  void reserve(std::size_t n) { codes_.reserve(n); }

  [[nodiscard]] const std::vector<std::uint32_t>& codes() const {
    return codes_;
  }
  [[nodiscard]] const std::vector<T>& raw_values() const { return raw_; }
  [[nodiscard]] std::uint32_t radius() const { return radius_; }

  [[nodiscard]] std::vector<std::uint32_t> take_codes() {
    return std::move(codes_);
  }
  [[nodiscard]] std::vector<T> take_raw() { return std::move(raw_); }

 private:
  double eb_;
  double bin_;
  std::uint32_t radius_;
  std::vector<std::uint32_t> codes_;
  std::vector<T> raw_;
};

/// Replays a code stream during decompression, reproducing exactly the
/// reconstructed values the encoder computed.
template <typename T>
class QuantDecoder {
 public:
  QuantDecoder(double abs_eb, std::uint32_t radius,
               std::span<const std::uint32_t> codes, std::span<const T> raw)
      : bin_(2.0 * abs_eb), radius_(radius), codes_(codes), raw_(raw) {}

  /// Reconstructs the next value given the (symmetric) prediction.
  T decode(double pred) {
    if (code_pos_ >= codes_.size())
      throw CorruptStream("QuantDecoder: code stream exhausted");
    const std::uint32_t code = codes_[code_pos_++];
    if (code == 0) {
      if (raw_pos_ >= raw_.size())
        throw CorruptStream("QuantDecoder: raw stream exhausted");
      return raw_[raw_pos_++];
    }
    const auto q = static_cast<std::int64_t>(code) -
                   static_cast<std::int64_t>(radius_);
    return static_cast<T>(pred + static_cast<double>(q) * bin_);
  }

  [[nodiscard]] bool exhausted() const {
    return code_pos_ == codes_.size() && raw_pos_ == raw_.size();
  }

 private:
  double bin_;
  std::uint32_t radius_;
  std::span<const std::uint32_t> codes_;
  std::span<const T> raw_;
  std::size_t code_pos_ = 0;
  std::size_t raw_pos_ = 0;
};

}  // namespace ocelot
