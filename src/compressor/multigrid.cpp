#include "compressor/multigrid.hpp"

#include <vector>

#include "common/buffer_pool.hpp"
#include "compressor/interpolation.hpp"
#include "compressor/quantizer.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

/// The coarsen/correct order is the shared hierarchy traversal with
/// linear (order-1) interpolation only: coarsest nodal grid first,
/// then per-level linear corrections. The level stride the callback
/// receives picks the quantizer — corrections at the finest level
/// (s == 1) use the full bound, every coarser level the tightened one.
class MultigridBackend final : public TypedBackend<MultigridBackend> {
 public:
  [[nodiscard]] std::string name() const override { return "multigrid"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 4; }
  [[nodiscard]] std::string description() const override {
    return "MGARD-style multigrid: coarsen/correct hierarchy, per-level "
           "linear interpolation, tightened coarse-level quantization";
  }
  [[nodiscard]] std::vector<BackendParam> params() const override {
    return {{"anchor_stride", "coarsest-grid stride cap (hierarchy depth)",
             64.0}};
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    const std::size_t stride =
        choose_anchor_stride(data.shape(), config.anchor_stride);
    ScratchLease<T> recon(ScratchPool<T>::shared(), data.size());
    recon->assign(data.size(), T{});
    QuantEncoder<T> coarse(abs_eb / kMultigridCoarseTighten,
                           config.quant_radius);
    QuantEncoder<T> fine(abs_eb, config.quant_radius);
    fine.reserve(data.size());
    const auto original = data.values();
    {
      OCELOT_SPAN("codec.predict_quantize");
      hierarchy_traverse<T>(
          data.shape(), std::span<T>(*recon), stride, /*cubic=*/false,
          [&](std::size_t idx, double pred, std::size_t level) {
            return (level == 1 ? fine : coarse).encode(pred, original[idx]);
          });
    }
    OCELOT_COUNT("codec.raw_bytes", data.size() * sizeof(T));
    recon.reset();
    out.add_streamed("mg_coarse_codes", [&](ByteSink& sink) {
      pack_codes(coarse.codes(), config, sink);
    });
    out.add_streamed("mg_coarse_raw", [&](ByteSink& sink) {
      pack_raw_values(std::span<const T>(coarse.raw_values()), config.lossless,
                      sink);
    });
    out.add_streamed("codes", [&](ByteSink& sink) {
      pack_codes(fine.codes(), config, sink);
    });
    out.add_streamed("raw", [&](ByteSink& sink) {
      pack_raw_values(std::span<const T>(fine.raw_values()), config.lossless,
                      sink);
    });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    const std::size_t stride =
        choose_anchor_stride(header.shape, header.anchor_stride);
    std::vector<std::uint32_t> coarse_codes;
    unpack_codes_into(in.get("mg_coarse_codes"), coarse_codes);
    std::vector<T> coarse_raw;
    unpack_raw_values_into(in.get("mg_coarse_raw"), coarse_raw);
    std::vector<std::uint32_t> fine_codes;
    unpack_codes_into(in.get("codes"), fine_codes);
    std::vector<T> fine_raw;
    unpack_raw_values_into(in.get("raw"), fine_raw);
    if (coarse_codes.size() + fine_codes.size() != header.shape.size())
      throw CorruptStream("blob: multigrid code count does not match shape");
    QuantDecoder<T> coarse(header.abs_eb / kMultigridCoarseTighten,
                           header.quant_radius, coarse_codes, coarse_raw);
    QuantDecoder<T> fine(header.abs_eb, header.quant_radius, fine_codes,
                         fine_raw);
    hierarchy_traverse<T>(
        header.shape, out.values(), stride, /*cubic=*/false,
        [&](std::size_t, double pred, std::size_t level) {
          return (level == 1 ? fine : coarse).decode(pred);
        });
  }
};

}  // namespace

std::unique_ptr<CompressorBackend> make_multigrid_backend() {
  return std::make_unique<MultigridBackend>();
}

}  // namespace ocelot
