#include "compressor/multigrid.hpp"

#include <algorithm>
#include <vector>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "compressor/interpolation.hpp"
#include "compressor/kernels/quant_kernels.hpp"
#include "compressor/quantizer.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

/// The coarsen/correct order is the shared hierarchy traversal with
/// linear (order-1) interpolation only: coarsest nodal grid first,
/// then per-level linear corrections. The level stride the callback
/// receives picks the quantizer — corrections at the finest level
/// (s == 1) use the full bound, every coarser level the tightened one.
class MultigridBackend final : public TypedBackend<MultigridBackend> {
 public:
  [[nodiscard]] std::string name() const override { return "multigrid"; }
  [[nodiscard]] std::uint8_t wire_id() const override { return 4; }
  [[nodiscard]] std::string description() const override {
    return "MGARD-style multigrid: coarsen/correct hierarchy, per-level "
           "linear interpolation, tightened coarse-level quantization";
  }
  [[nodiscard]] std::vector<BackendParam> params() const override {
    return {{"anchor_stride", "coarsest-grid stride cap (hierarchy depth)",
             64.0}};
  }

  template <typename T>
  void encode_impl(const NdArray<T>& data, double abs_eb,
                   const CompressionConfig& config, SectionWriter& out) const {
    const std::size_t stride =
        choose_anchor_stride(data.shape(), config.anchor_stride);
    ArenaScope scope;
    std::span<T> recon = scope.arena().alloc<T>(data.size());
    std::fill(recon.begin(), recon.end(), T{});
    kernels::FusedQuant<T> coarse = kernels::FusedQuant<T>::make(
        abs_eb / kMultigridCoarseTighten, config.quant_radius, data.size(),
        scope.arena(), ScratchArena::Slot::kHistB);
    kernels::FusedQuant<T> fine = kernels::FusedQuant<T>::make(
        abs_eb, config.quant_radius, data.size(), scope.arena(),
        ScratchArena::Slot::kHistA);
    {
      OCELOT_SPAN("codec.predict_quantize");
      kernels::hierarchy_encode<T>(data.shape(), data.values().data(), recon,
                                   stride, /*cubic=*/false, fine, &coarse);
    }
    OCELOT_COUNT("codec.raw_bytes", data.size() * sizeof(T));
    const auto coarse_hist = coarse.hist_view(scope.arena());
    const auto fine_hist = fine.hist_view(scope.arena());
    out.add_streamed("mg_coarse_codes", [&](ByteSink& sink) {
      pack_codes_hist(coarse.codes_view(), coarse_hist, config, sink);
    });
    out.add_streamed("mg_coarse_raw", [&](ByteSink& sink) {
      pack_raw_values(coarse.raw_view(), config.lossless, sink);
    });
    out.add_streamed("codes", [&](ByteSink& sink) {
      pack_codes_hist(fine.codes_view(), fine_hist, config, sink);
    });
    out.add_streamed("raw", [&](ByteSink& sink) {
      pack_raw_values(fine.raw_view(), config.lossless, sink);
    });
  }

  template <typename T>
  void decode_impl(const BlobHeader& header, const SectionReader& in,
                   NdArray<T>& out) const {
    const std::size_t stride =
        choose_anchor_stride(header.shape, header.anchor_stride);
    ScratchLease<std::uint32_t> coarse_codes(
        ScratchPool<std::uint32_t>::shared());
    unpack_codes_into(in.get("mg_coarse_codes"), *coarse_codes);
    ScratchLease<T> coarse_raw(ScratchPool<T>::shared());
    unpack_raw_values_into(in.get("mg_coarse_raw"), *coarse_raw);
    ScratchLease<std::uint32_t> fine_codes(
        ScratchPool<std::uint32_t>::shared());
    unpack_codes_into(in.get("codes"), *fine_codes);
    ScratchLease<T> fine_raw(ScratchPool<T>::shared());
    unpack_raw_values_into(in.get("raw"), *fine_raw);
    if (coarse_codes->size() + fine_codes->size() != header.shape.size())
      throw CorruptStream("blob: multigrid code count does not match shape");
    QuantDecoder<T> coarse(header.abs_eb / kMultigridCoarseTighten,
                           header.quant_radius, *coarse_codes, *coarse_raw);
    QuantDecoder<T> fine(header.abs_eb, header.quant_radius, *fine_codes,
                         *fine_raw);
    hierarchy_traverse<T>(
        header.shape, out.values(), stride, /*cubic=*/false,
        [&](std::size_t, double pred, std::size_t level) {
          return (level == 1 ? fine : coarse).decode(pred);
        });
  }
};

}  // namespace

std::unique_ptr<CompressorBackend> make_multigrid_backend() {
  return std::make_unique<MultigridBackend>();
}

}  // namespace ocelot
