#include "compressor/pointwise.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "codec/lossless.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "compressor/compressor.hpp"

namespace ocelot {

namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'C', 'P', '1'};

// Per-sample class byte in the side stream.
enum SampleClass : std::uint8_t {
  kPositive = 0,
  kNegative = 1,
  kZero = 2,
  kNonFinite = 3,
};

}  // namespace

Bytes compress_pointwise_rel(const FloatArray& data, double rel,
                             const std::string& backend) {
  require(data.size() > 0, "compress_pointwise_rel: empty array");
  require(rel > 0.0 && rel < 1.0,
          "compress_pointwise_rel: rel must be in (0, 1)");

  const auto vals = data.values();
  std::vector<std::uint8_t> classes(vals.size());
  std::vector<float> log_mag(vals.size());
  std::vector<float> verbatim;  // non-finite samples, in order

  // The log array needs a neutral fill for zero/non-finite slots so
  // the predictor sees a smooth field; use the running minimum of the
  // observed log-magnitudes (computed in a first pass).
  float fill = 0.0f;
  bool have_fill = false;
  for (const float v : vals) {
    if (std::isfinite(v) && v != 0.0f) {
      const float lv = std::log(std::abs(v));
      if (!have_fill || lv < fill) {
        fill = lv;
        have_fill = true;
      }
    }
  }

  for (std::size_t i = 0; i < vals.size(); ++i) {
    const float v = vals[i];
    if (!std::isfinite(v)) {
      classes[i] = kNonFinite;
      verbatim.push_back(v);
      log_mag[i] = fill;
    } else if (v == 0.0f) {
      classes[i] = kZero;
      log_mag[i] = fill;
    } else {
      classes[i] = v > 0.0f ? kPositive : kNegative;
      log_mag[i] = std::log(std::abs(v));
    }
  }

  // |log' - log| <= log(1+rel)  =>  x'/x in [1/(1+rel), 1+rel]
  //                              subset of [1-rel, 1+rel].
  CompressionConfig config;
  config.backend = backend;
  config.eb_mode = EbMode::kAbsolute;
  config.eb = std::log1p(rel);
  const Bytes payload =
      compress(FloatArray(data.shape(), std::move(log_mag)), config);

  BytesWriter out;
  out.put_bytes(kMagic);
  out.put(rel);
  // The side streams compress into pooled scratch (reused across
  // calls) and land in the blob through put_blob; no fresh Bytes.
  {
    PooledBuffer packed(BufferPool::shared());
    ByteSink packed_sink(*packed);
    lossless_compress(classes, LosslessBackend::kRleLzb, packed_sink);
    out.put_blob(*packed);
  }
  {
    std::span<const std::uint8_t> raw{
        reinterpret_cast<const std::uint8_t*>(verbatim.data()),
        verbatim.size() * sizeof(float)};
    PooledBuffer packed(BufferPool::shared());
    ByteSink packed_sink(*packed);
    lossless_compress(raw, LosslessBackend::kLzb, packed_sink);
    out.put_blob(*packed);
  }
  out.put_blob(payload);
  return out.take();
}

FloatArray decompress_pointwise_rel(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("pointwise blob: bad magic");
  const double rel = in.get<double>();
  if (!(rel > 0.0 && rel < 1.0))
    throw CorruptStream("pointwise blob: bad rel bound");

  PooledBuffer classes(BufferPool::shared());
  lossless_decompress_into(in.get_blob(), *classes);
  PooledBuffer verbatim_bytes(BufferPool::shared());
  lossless_decompress_into(in.get_blob(), *verbatim_bytes);
  if (verbatim_bytes->size() % sizeof(float) != 0)
    throw CorruptStream("pointwise blob: misaligned verbatim stream");
  std::vector<float> verbatim(verbatim_bytes->size() / sizeof(float));
  if (!verbatim_bytes->empty()) {
    std::memcpy(verbatim.data(), verbatim_bytes->data(),
                verbatim_bytes->size());
  }

  const FloatArray log_mag = decompress<float>(in.get_blob());
  if (classes->size() != log_mag.size())
    throw CorruptStream("pointwise blob: class/payload size mismatch");

  FloatArray out(log_mag.shape());
  std::size_t verbatim_pos = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch ((*classes)[i]) {
      case kPositive:
        out[i] = std::exp(log_mag[i]);
        break;
      case kNegative:
        out[i] = -std::exp(log_mag[i]);
        break;
      case kZero:
        out[i] = 0.0f;
        break;
      case kNonFinite:
        if (verbatim_pos >= verbatim.size())
          throw CorruptStream("pointwise blob: verbatim stream exhausted");
        out[i] = verbatim[verbatim_pos++];
        break;
      default:
        throw CorruptStream("pointwise blob: bad sample class");
    }
  }
  return out;
}

}  // namespace ocelot
