#include "compressor/compressor.hpp"

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "codec/huffman.hpp"
#include "codec/lossless.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "compressor/interpolation.hpp"
#include "compressor/quantizer.hpp"
#include "compressor/regression.hpp"
#include "compressor/traversal.hpp"

namespace ocelot {

namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'C', 'Z', '1'};

template <typename T>
constexpr std::uint8_t dtype_id() {
  return sizeof(T) == 8 ? 1 : 0;
}

void write_shape(BytesWriter& out, const Shape& shape) {
  out.put(static_cast<std::uint8_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) out.put_varint(shape.dim(d));
}

Shape read_shape(BytesReader& in) {
  const int rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw CorruptStream("blob: bad rank");
  std::size_t dims[3] = {1, 1, 1};
  for (int d = 0; d < rank; ++d) {
    dims[d] = in.get_varint();
    if (dims[d] == 0) throw CorruptStream("blob: zero dimension");
  }
  if (rank == 1) return Shape(dims[0]);
  if (rank == 2) return Shape(dims[0], dims[1]);
  return Shape(dims[0], dims[1], dims[2]);
}

/// Named payload sections, serialized in insertion order.
class SectionWriter {
 public:
  void add(const std::string& tag, Bytes bytes) {
    sections_.emplace_back(tag, std::move(bytes));
  }
  void serialize(BytesWriter& out) const {
    out.put_varint(sections_.size());
    for (const auto& [tag, bytes] : sections_) {
      out.put_string(tag);
      out.put_blob(bytes);
    }
  }

 private:
  std::vector<std::pair<std::string, Bytes>> sections_;
};

class SectionReader {
 public:
  explicit SectionReader(BytesReader& in) {
    const std::uint64_t count = in.get_varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string tag = in.get_string();
      const auto blob = in.get_blob();
      sections_[tag] = Bytes(blob.begin(), blob.end());
    }
  }

  [[nodiscard]] const Bytes& get(const std::string& tag) const {
    const auto it = sections_.find(tag);
    if (it == sections_.end())
      throw CorruptStream("blob: missing section " + tag);
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& tag) const {
    return sections_.count(tag) > 0;
  }

 private:
  std::map<std::string, Bytes> sections_;
};

/// Packs a u32 code stream: Huffman then the lossless backend.
Bytes pack_codes(std::span<const std::uint32_t> codes,
                 LosslessBackend backend) {
  const Bytes huff = huffman_encode(codes);
  return lossless_compress(huff, backend);
}

std::vector<std::uint32_t> unpack_codes(std::span<const std::uint8_t> packed) {
  const Bytes huff = lossless_decompress(packed);
  return huffman_decode(huff);
}

template <typename T>
Bytes pack_raw_values(const std::vector<T>& values, LosslessBackend backend) {
  std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(values.data()),
      values.size() * sizeof(T)};
  return lossless_compress(bytes, backend);
}

template <typename T>
std::vector<T> unpack_raw_values(std::span<const std::uint8_t> packed) {
  const Bytes bytes = lossless_decompress(packed);
  if (bytes.size() % sizeof(T) != 0)
    throw CorruptStream("blob: raw value section misaligned");
  std::vector<T> values(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

// Coefficients are quantized coarsely relative to the point bound: the
// final error is bounded by the point quantizer regardless, so this
// only trades prediction accuracy against coefficient storage.
double coeff_eb(double abs_eb, std::size_t block_size) {
  return abs_eb / static_cast<double>(2 * block_size);
}

/// SZ2 oracle state shared between encode and decode: the previous
/// regression block's reconstructed coefficients seed the prediction of
/// the next block's coefficients.
struct CoeffPredictor {
  BlockCoeffs prev;
  double predict(int which) const {
    switch (which) {
      case 0:
        return prev.b0;
      case 1:
        return prev.b1;
      case 2:
        return prev.b2;
      default:
        return prev.b3;
    }
  }
  void update(const BlockCoeffs& recon) { prev = recon; }
};

/// Estimated block SSE for regression (with fitted coefficients) vs
/// Lorenzo (with original-value neighbors), both on original data; used
/// only for predictor selection, mirroring SZ2's sampling heuristic.
template <typename T>
std::pair<double, double> block_sse(const NdArray<T>& data,
                                    const BlockRegion& region,
                                    const BlockCoeffs& coeffs) {
  const Shape& shape = data.shape();
  const int rank = shape.rank();
  const std::size_t n1 = rank >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = rank >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;
  const std::size_t s2 = n2;
  const auto vals = data.values();
  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(vals[i * s1 + j * s2 + k]);
  };

  double sse_reg = 0.0, sse_lor = 0.0;
  for (std::size_t i = 0; i < region.len[0]; ++i) {
    for (std::size_t j = 0; j < region.len[1]; ++j) {
      for (std::size_t k = 0; k < region.len[2]; ++k) {
        const std::size_t gi = region.lo[0] + i;
        const std::size_t gj = region.lo[1] + j;
        const std::size_t gk = region.lo[2] + k;
        const double v = at(gi, gj, gk);
        const double pr = predict_block(coeffs, i, j, k);
        sse_reg += (v - pr) * (v - pr);

        const bool bi = gi > 0, bj = gj > 0, bk = gk > 0;
        double pl = 0.0;
        if (rank <= 1) {
          pl = bi ? at(gi - 1, 0, 0) : 0.0;
        } else if (rank == 2) {
          pl = (bi ? at(gi - 1, gj, 0) : 0.0) + (bj ? at(gi, gj - 1, 0) : 0.0) -
               (bi && bj ? at(gi - 1, gj - 1, 0) : 0.0);
        } else {
          pl = (bi ? at(gi - 1, gj, gk) : 0.0) + (bj ? at(gi, gj - 1, gk) : 0.0) +
               (bk ? at(gi, gj, gk - 1) : 0.0) -
               (bi && bj ? at(gi - 1, gj - 1, gk) : 0.0) -
               (bi && bk ? at(gi - 1, gj, gk - 1) : 0.0) -
               (bj && bk ? at(gi, gj - 1, gk - 1) : 0.0) +
               (bi && bj && bk ? at(gi - 1, gj - 1, gk - 1) : 0.0);
        }
        sse_lor += (v - pl) * (v - pl);
      }
    }
  }
  return {sse_reg, sse_lor};
}

}  // namespace

template <typename T>
double resolve_abs_eb(const NdArray<T>& data,
                      const CompressionConfig& config) {
  require(config.eb > 0.0, "compress: error bound must be positive");
  if (config.eb_mode == EbMode::kAbsolute) return config.eb;
  const ValueSummary s = summarize(data.values());
  // A constant field has zero range; fall back to the raw bound so the
  // quantizer still has a valid width.
  const double range = s.range > 0.0 ? s.range : 1.0;
  return config.eb * range;
}

template double resolve_abs_eb<float>(const NdArray<float>&,
                                      const CompressionConfig&);
template double resolve_abs_eb<double>(const NdArray<double>&,
                                       const CompressionConfig&);

template <typename T>
Bytes compress(const NdArray<T>& data, const CompressionConfig& config) {
  require(data.size() > 0, "compress: empty array");
  const double abs_eb = resolve_abs_eb(data, config);

  // Reconstruction buffer shared by the traversals.
  std::vector<T> recon(data.size());
  QuantEncoder<T> quant(abs_eb, config.quant_radius);
  const auto original = data.values();

  SectionWriter sections;

  switch (config.pipeline) {
    case Pipeline::kLorenzo: {
      lorenzo_traverse<T>(data.shape(), recon, [&](std::size_t idx, double pred) {
        return quant.encode(pred, original[idx]);
      });
      break;
    }
    case Pipeline::kLorenzo2: {
      lorenzo2_traverse<T>(data.shape(), recon,
                           [&](std::size_t idx, double pred) {
                             return quant.encode(pred, original[idx]);
                           });
      break;
    }
    case Pipeline::kSz3Interp: {
      const std::size_t stride =
          choose_anchor_stride(data.shape(), config.anchor_stride);
      interp_traverse<T>(data.shape(), recon,
                         stride, [&](std::size_t idx, double pred) {
                           return quant.encode(pred, original[idx]);
                         });
      break;
    }
    case Pipeline::kSz2: {
      QuantEncoder<double> coef_quant(coeff_eb(abs_eb, config.block_size));
      CoeffPredictor coef_pred;
      std::vector<std::uint8_t> choices;
      const int rank = data.shape().rank();

      auto oracle = [&](const BlockRegion& region)
          -> std::pair<bool, BlockCoeffs> {
        const BlockCoeffs fitted = fit_block_regression(data, region);
        const auto [sse_reg, sse_lor] = block_sse(data, region, fitted);
        const bool use_reg = sse_reg < sse_lor;
        choices.push_back(use_reg ? 1 : 0);
        if (!use_reg) return {false, BlockCoeffs{}};
        BlockCoeffs recon_c;
        recon_c.b0 = coef_quant.encode(coef_pred.predict(0), fitted.b0);
        recon_c.b1 = coef_quant.encode(coef_pred.predict(1), fitted.b1);
        if (rank >= 2)
          recon_c.b2 = coef_quant.encode(coef_pred.predict(2), fitted.b2);
        if (rank >= 3)
          recon_c.b3 = coef_quant.encode(coef_pred.predict(3), fitted.b3);
        coef_pred.update(recon_c);
        return {true, recon_c};
      };
      block_traverse<T>(data.shape(), recon, config.block_size, oracle,
                        [&](std::size_t idx, double pred) {
                          return quant.encode(pred, original[idx]);
                        });

      sections.add("choices", lossless_compress(choices, config.backend));
      sections.add("coef_codes",
                   pack_codes(coef_quant.codes(), config.backend));
      sections.add("coef_raw",
                   pack_raw_values(coef_quant.raw_values(), config.backend));
      break;
    }
    default:
      throw InvalidArgument("compress: unknown pipeline");
  }

  sections.add("codes", pack_codes(quant.codes(), config.backend));
  sections.add("raw", pack_raw_values(quant.raw_values(), config.backend));

  BytesWriter out;
  out.put_bytes(kMagic);
  out.put(dtype_id<T>());
  out.put(static_cast<std::uint8_t>(config.pipeline));
  out.put(abs_eb);
  out.put_varint(config.quant_radius);
  out.put_varint(config.anchor_stride);
  out.put_varint(config.block_size);
  write_shape(out, data.shape());
  sections.serialize(out);
  return out.take();
}

template Bytes compress<float>(const NdArray<float>&,
                               const CompressionConfig&);
template Bytes compress<double>(const NdArray<double>&,
                                const CompressionConfig&);

namespace {

struct Header {
  std::uint8_t dtype;
  Pipeline pipeline;
  double abs_eb;
  std::uint32_t quant_radius;
  std::size_t anchor_stride;
  std::size_t block_size;
  Shape shape;
};

Header read_header(BytesReader& in) {
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("blob: bad magic");
  Header h;
  h.dtype = in.get<std::uint8_t>();
  h.pipeline = static_cast<Pipeline>(in.get<std::uint8_t>());
  h.abs_eb = in.get<double>();
  if (!(h.abs_eb > 0.0)) throw CorruptStream("blob: bad error bound");
  h.quant_radius = static_cast<std::uint32_t>(in.get_varint());
  h.anchor_stride = in.get_varint();
  h.block_size = in.get_varint();
  if (h.block_size == 0) throw CorruptStream("blob: zero block size");
  h.shape = read_shape(in);
  return h;
}

}  // namespace

BlobInfo inspect_blob(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const Header h = read_header(in);
  BlobInfo info;
  info.is_double = h.dtype == 1;
  info.pipeline = h.pipeline;
  info.abs_eb = h.abs_eb;
  info.shape = h.shape;
  info.compressed_bytes = blob.size();
  info.raw_bytes = h.shape.size() * (info.is_double ? 8 : 4);
  return info;
}

template <typename T>
NdArray<T> decompress(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const Header h = read_header(in);
  if (h.dtype != dtype_id<T>())
    throw InvalidArgument("decompress: dtype mismatch");

  SectionReader sections(in);
  const std::vector<std::uint32_t> codes = unpack_codes(sections.get("codes"));
  const std::vector<T> raw = unpack_raw_values<T>(sections.get("raw"));
  if (codes.size() != h.shape.size())
    throw CorruptStream("blob: code count does not match shape");

  NdArray<T> out(h.shape);
  QuantDecoder<T> quant(h.abs_eb, h.quant_radius, codes, raw);

  switch (h.pipeline) {
    case Pipeline::kLorenzo: {
      lorenzo_traverse<T>(h.shape, out.values(),
                          [&](std::size_t, double pred) {
                            return quant.decode(pred);
                          });
      break;
    }
    case Pipeline::kLorenzo2: {
      lorenzo2_traverse<T>(h.shape, out.values(),
                           [&](std::size_t, double pred) {
                             return quant.decode(pred);
                           });
      break;
    }
    case Pipeline::kSz3Interp: {
      const std::size_t stride = choose_anchor_stride(h.shape, h.anchor_stride);
      interp_traverse<T>(h.shape, out.values(), stride,
                         [&](std::size_t, double pred) {
                           return quant.decode(pred);
                         });
      break;
    }
    case Pipeline::kSz2: {
      const Bytes choice_bytes =
          lossless_decompress(sections.get("choices"));
      const std::vector<std::uint32_t> coef_codes =
          unpack_codes(sections.get("coef_codes"));
      const std::vector<double> coef_raw =
          unpack_raw_values<double>(sections.get("coef_raw"));
      QuantDecoder<double> coef_quant(coeff_eb(h.abs_eb, h.block_size),
                                      kDefaultQuantRadius, coef_codes,
                                      coef_raw);
      CoeffPredictor coef_pred;
      std::size_t choice_pos = 0;
      const int rank = h.shape.rank();

      auto oracle = [&](const BlockRegion&) -> std::pair<bool, BlockCoeffs> {
        if (choice_pos >= choice_bytes.size())
          throw CorruptStream("blob: choice stream exhausted");
        const bool use_reg = choice_bytes[choice_pos++] != 0;
        if (!use_reg) return {false, BlockCoeffs{}};
        BlockCoeffs c;
        c.b0 = coef_quant.decode(coef_pred.predict(0));
        c.b1 = coef_quant.decode(coef_pred.predict(1));
        if (rank >= 2) c.b2 = coef_quant.decode(coef_pred.predict(2));
        if (rank >= 3) c.b3 = coef_quant.decode(coef_pred.predict(3));
        coef_pred.update(c);
        return {true, c};
      };
      block_traverse<T>(h.shape, out.values(), h.block_size, oracle,
                        [&](std::size_t, double pred) {
                          return quant.decode(pred);
                        });
      break;
    }
    default:
      throw CorruptStream("blob: unknown pipeline id");
  }
  return out;
}

template NdArray<float> decompress<float>(std::span<const std::uint8_t>);
template NdArray<double> decompress<double>(std::span<const std::uint8_t>);

template <typename T>
RoundTripStats measure_roundtrip(const NdArray<T>& data,
                                 const CompressionConfig& config) {
  RoundTripStats stats;
  Timer ct;
  const Bytes blob = compress(data, config);
  stats.compress_seconds = ct.seconds();

  Timer dt;
  const NdArray<T> recon = decompress<T>(blob);
  stats.decompress_seconds = dt.seconds();

  stats.compressed_bytes = blob.size();
  stats.compression_ratio =
      static_cast<double>(data.byte_size()) / static_cast<double>(blob.size());
  stats.psnr_db = psnr<T>(data.values(), recon.values());
  stats.max_error = max_abs_error<T>(data.values(), recon.values());
  stats.abs_eb = resolve_abs_eb(data, config);
  return stats;
}

template RoundTripStats measure_roundtrip<float>(const NdArray<float>&,
                                                 const CompressionConfig&);
template RoundTripStats measure_roundtrip<double>(const NdArray<double>&,
                                                  const CompressionConfig&);

}  // namespace ocelot
