#include "compressor/compressor.hpp"

#include <cstring>

#include "codec/entropy.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "compressor/backend.hpp"

namespace ocelot {

namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'C', 'Z', '1'};
// Header variant carrying an entropy-stage byte after the backend id.
// Emitted only when config.entropy is not the default chain, so
// default-path blobs keep the exact OCZ1 bytes.
constexpr std::uint8_t kMagic2[4] = {'O', 'C', 'Z', '2'};

template <typename T>
constexpr std::uint8_t dtype_id() {
  return sizeof(T) == 8 ? 1 : 0;
}

void write_shape(ByteSink& out, const Shape& shape) {
  out.put(static_cast<std::uint8_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) out.put_varint(shape.dim(d));
}

Shape read_shape(BytesReader& in) {
  const int rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw CorruptStream("blob: bad rank");
  std::size_t dims[3] = {1, 1, 1};
  for (int d = 0; d < rank; ++d) {
    dims[d] = in.get_varint();
    if (dims[d] == 0) throw CorruptStream("blob: zero dimension");
  }
  if (rank == 1) return Shape(dims[0]);
  if (rank == 2) return Shape(dims[0], dims[1]);
  return Shape(dims[0], dims[1], dims[2]);
}

BlobHeader read_header(BytesReader& in) {
  const auto magic = in.get_bytes(4);
  const bool v2 = std::memcmp(magic.data(), kMagic2, 4) == 0;
  if (!v2 && std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("blob: bad magic");
  BlobHeader h;
  h.dtype = in.get<std::uint8_t>();
  h.backend_id = in.get<std::uint8_t>();
  if (v2) h.entropy_id = in.get<std::uint8_t>();
  h.abs_eb = in.get<double>();
  if (!(h.abs_eb > 0.0)) throw CorruptStream("blob: bad error bound");
  h.quant_radius = static_cast<std::uint32_t>(in.get_varint());
  h.anchor_stride = in.get_varint();
  h.block_size = in.get_varint();
  if (h.block_size == 0) throw CorruptStream("blob: zero block size");
  h.shape = read_shape(in);
  return h;
}

}  // namespace

template <typename T>
double resolve_abs_eb(const NdArray<T>& data,
                      const CompressionConfig& config) {
  require(config.eb > 0.0, "compress: error bound must be positive");
  if (config.eb_mode == EbMode::kAbsolute) return config.eb;
  const ValueSummary s = summarize(data.values());
  // A constant field has zero range; fall back to the raw bound so the
  // quantizer still has a valid width.
  const double range = s.range > 0.0 ? s.range : 1.0;
  return config.eb * range;
}

template double resolve_abs_eb<float>(const NdArray<float>&,
                                      const CompressionConfig&);
template double resolve_abs_eb<double>(const NdArray<double>&,
                                       const CompressionConfig&);

template <typename T>
void compress_into(const NdArray<T>& data, const CompressionConfig& config,
                   ByteSink& out) {
  require(data.size() > 0, "compress: empty array");
  const CompressorBackend& backend =
      BackendRegistry::instance().by_name(config.backend);
  const double abs_eb = resolve_abs_eb(data, config);
  const std::uint8_t entropy_id =
      EntropyRegistry::instance().by_name(config.entropy).wire_id();

  if (entropy_id == kEntropyHuffmanId) {
    out.put_bytes(kMagic);  // default chain: unchanged OCZ1 bytes
  } else {
    out.put_bytes(kMagic2);
  }
  out.put(dtype_id<T>());
  out.put(backend.wire_id());
  if (entropy_id != kEntropyHuffmanId) out.put(entropy_id);
  out.put(abs_eb);
  out.put_varint(config.quant_radius);
  out.put_varint(config.anchor_stride);
  out.put_varint(config.block_size);
  write_shape(out, data.shape());

  // Sections stream into the same sink as they are produced; only the
  // count byte is patched afterwards, so the wire bytes match the old
  // buffered assembly exactly.
  SectionWriter sections(out);
  backend.encode(data, abs_eb, config, sections);
  sections.finish();
}

template void compress_into<float>(const NdArray<float>&,
                                   const CompressionConfig&, ByteSink&);
template void compress_into<double>(const NdArray<double>&,
                                    const CompressionConfig&, ByteSink&);

template <typename T>
Bytes compress(const NdArray<T>& data, const CompressionConfig& config) {
  BytesWriter out;
  compress_into(data, config, out);
  return out.take();
}

template Bytes compress<float>(const NdArray<float>&,
                               const CompressionConfig&);
template Bytes compress<double>(const NdArray<double>&,
                                const CompressionConfig&);

BlobInfo inspect_blob(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const BlobHeader h = read_header(in);
  const CompressorBackend& backend =
      BackendRegistry::instance().by_id(h.backend_id);
  BlobInfo info;
  info.is_double = h.dtype == 1;
  info.backend = backend.name();
  info.backend_id = h.backend_id;
  info.entropy = EntropyRegistry::instance().by_id(h.entropy_id).name();
  info.entropy_id = h.entropy_id;
  info.abs_eb = h.abs_eb;
  info.shape = h.shape;
  info.compressed_bytes = blob.size();
  info.raw_bytes = h.shape.size() * (info.is_double ? 8 : 4);
  return info;
}

template <typename T>
NdArray<T> decompress(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const BlobHeader h = read_header(in);
  if (h.dtype != dtype_id<T>())
    throw InvalidArgument("decompress: dtype mismatch");
  const CompressorBackend& backend =
      BackendRegistry::instance().by_id(h.backend_id);

  SectionReader sections(in);
  NdArray<T> out(h.shape);
  backend.decode(h, sections, out);
  return out;
}

template NdArray<float> decompress<float>(std::span<const std::uint8_t>);
template NdArray<double> decompress<double>(std::span<const std::uint8_t>);

template <typename T>
NdArray<T> decompress_reusing(std::span<const std::uint8_t> blob,
                              std::vector<T>& storage) {
  BytesReader in(blob);
  const BlobHeader h = read_header(in);
  if (h.dtype != dtype_id<T>())
    throw InvalidArgument("decompress: dtype mismatch");
  const CompressorBackend& backend =
      BackendRegistry::instance().by_id(h.backend_id);

  SectionReader sections(in);
  storage.assign(h.shape.size(), T{});
  NdArray<T> out(h.shape, std::move(storage));
  try {
    backend.decode(h, sections, out);
  } catch (...) {
    // Hand the storage back so a pooled caller's lease still returns
    // it; a corrupt blob must not bleed capacity out of the pool.
    storage = out.release();
    throw;
  }
  return out;
}

template NdArray<float> decompress_reusing<float>(std::span<const std::uint8_t>,
                                                  std::vector<float>&);
template NdArray<double> decompress_reusing<double>(
    std::span<const std::uint8_t>, std::vector<double>&);

template <typename T>
RoundTripStats measure_roundtrip(const NdArray<T>& data,
                                 const CompressionConfig& config) {
  RoundTripStats stats;
  Timer ct;
  const Bytes blob = compress(data, config);
  stats.compress_seconds = ct.seconds();

  Timer dt;
  const NdArray<T> recon = decompress<T>(blob);
  stats.decompress_seconds = dt.seconds();

  stats.compressed_bytes = blob.size();
  stats.compression_ratio =
      static_cast<double>(data.byte_size()) / static_cast<double>(blob.size());
  stats.psnr_db = psnr<T>(data.values(), recon.values());
  stats.max_error = max_abs_error<T>(data.values(), recon.values());
  stats.abs_eb = resolve_abs_eb(data, config);
  return stats;
}

template RoundTripStats measure_roundtrip<float>(const NdArray<float>&,
                                                 const CompressionConfig&);
template RoundTripStats measure_roundtrip<double>(const NdArray<double>&,
                                                  const CompressionConfig&);

}  // namespace ocelot
