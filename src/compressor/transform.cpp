#include "compressor/transform.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "codec/lossless.hpp"
#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace ocelot {

namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'C', 'T', '1'};
constexpr int kBlockEdge = 4;
constexpr int kFixedBits = 30;  ///< fixed-point precision per block

enum class BlockKind : std::uint8_t { kEmpty = 0, kCoded = 1, kRaw = 2 };

/// ZFP's 4-point integer lifting transform (exactly invertible).
void fwd_lift(std::int64_t* p, std::size_t stride) {
  std::int64_t x = p[0], y = p[stride], z = p[2 * stride], w = p[3 * stride];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0] = x; p[stride] = y; p[2 * stride] = z; p[3 * stride] = w;
}

void inv_lift(std::int64_t* p, std::size_t stride) {
  std::int64_t x = p[0], y = p[stride], z = p[2 * stride], w = p[3 * stride];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = x; p[stride] = y; p[2 * stride] = z; p[3 * stride] = w;
}

/// Applies the lifting along every line of every dimension of a
/// 4^rank block stored densely (dim 0 slowest).
template <typename LiftFn>
void lift_block(std::span<std::int64_t> block, int rank, LiftFn&& lift) {
  if (rank == 1) {
    lift(block.data(), 1);
    return;
  }
  if (rank == 2) {
    for (int i = 0; i < 4; ++i) lift(block.data() + 4 * i, 1);  // rows
    for (int j = 0; j < 4; ++j) lift(block.data() + j, 4);      // cols
    return;
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      lift(block.data() + 16 * i + 4 * j, 1);  // along dim 2
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      lift(block.data() + 16 * i + k, 4);  // along dim 1
    }
  }
  for (int j = 0; j < 4; ++j) {
    for (int k = 0; k < 4; ++k) {
      lift(block.data() + 4 * j + k, 16);  // along dim 0
    }
  }
}

struct Dims {
  std::array<std::size_t, 3> n;
  int rank;
  std::size_t block_cells;
};

Dims dims_of(const Shape& shape) {
  Dims d;
  d.rank = shape.rank();
  d.n = {shape.dim(0), d.rank >= 2 ? shape.dim(1) : 1,
         d.rank >= 3 ? shape.dim(2) : 1};
  d.block_cells = 1;
  for (int i = 0; i < d.rank; ++i) d.block_cells *= kBlockEdge;
  return d;
}

/// Gathers one block with clamp-to-edge padding; returns the padded
/// values and whether all of them are finite.
bool gather_block(const FloatArray& data, const Dims& d,
                  std::array<std::size_t, 3> lo,
                  std::span<double> out) {
  const auto vals = data.values();
  const std::size_t s1 = d.n[1] * d.n[2];
  const std::size_t s2 = d.n[2];
  bool finite = true;
  std::size_t cell = 0;
  const int e0 = kBlockEdge;
  const int e1 = d.rank >= 2 ? kBlockEdge : 1;
  const int e2 = d.rank >= 3 ? kBlockEdge : 1;
  for (int i = 0; i < e0; ++i) {
    const std::size_t gi = std::min(lo[0] + static_cast<std::size_t>(i),
                                    d.n[0] - 1);
    for (int j = 0; j < e1; ++j) {
      const std::size_t gj = std::min(lo[1] + static_cast<std::size_t>(j),
                                      d.n[1] - 1);
      for (int k = 0; k < e2; ++k) {
        const std::size_t gk = std::min(lo[2] + static_cast<std::size_t>(k),
                                        d.n[2] - 1);
        const double v = static_cast<double>(vals[gi * s1 + gj * s2 + gk]);
        if (!std::isfinite(v)) finite = false;
        out[cell++] = v;
      }
    }
  }
  return finite;
}

/// Scatters a decoded block back into the valid region of the array.
void scatter_block(FloatArray& data, const Dims& d,
                   std::array<std::size_t, 3> lo,
                   std::span<const double> block) {
  auto vals = data.values();
  const std::size_t s1 = d.n[1] * d.n[2];
  const std::size_t s2 = d.n[2];
  std::size_t cell = 0;
  const int e0 = kBlockEdge;
  const int e1 = d.rank >= 2 ? kBlockEdge : 1;
  const int e2 = d.rank >= 3 ? kBlockEdge : 1;
  for (int i = 0; i < e0; ++i) {
    for (int j = 0; j < e1; ++j) {
      for (int k = 0; k < e2; ++k, ++cell) {
        const std::size_t gi = lo[0] + static_cast<std::size_t>(i);
        const std::size_t gj = lo[1] + static_cast<std::size_t>(j);
        const std::size_t gk = lo[2] + static_cast<std::size_t>(k);
        if (gi < d.n[0] && gj < d.n[1] && gk < d.n[2]) {
          vals[gi * s1 + gj * s2 + gk] = static_cast<float>(block[cell]);
        }
      }
    }
  }
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Encodes one block's coefficients; returns true if, after local
/// decode, every valid cell respects the bound.
struct BlockCodec {
  const Dims& d;
  double abs_eb;
  double coeff_step_scale;  ///< error-amplification safety factor

  /// Transforms, truncates and locally verifies a block.
  /// Fills `payload` (exponent + coefficients) on success.
  bool encode(std::span<const double> values, BytesWriter& payload,
              std::span<double> recon) const {
    double max_abs = 0.0;
    for (const double v : values) max_abs = std::max(max_abs, std::abs(v));
    // Common-exponent fixed point: |v| < 2^e  ->  |i| < 2^kFixedBits.
    const int e = std::ilogb(max_abs) + 1;
    const double scale = std::ldexp(1.0, kFixedBits - e);

    std::vector<std::int64_t> block(values.size());
    for (std::size_t c = 0; c < values.size(); ++c) {
      block[c] = static_cast<std::int64_t>(std::llround(values[c] * scale));
    }
    lift_block(std::span<std::int64_t>(block), d.rank, fwd_lift);

    // Coefficient truncation: a step of g in a coefficient maps to at
    // most coeff_step_scale * g in the spatial domain; local
    // verification below guards the bound regardless.
    const double eb_fixed = abs_eb * scale;
    const auto step = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(eb_fixed / coeff_step_scale));

    payload.put(static_cast<std::int16_t>(e));
    payload.put_varint(static_cast<std::uint64_t>(step));
    std::vector<std::int64_t> coded(block.size());
    for (std::size_t c = 0; c < block.size(); ++c) {
      const std::int64_t q = static_cast<std::int64_t>(
          std::llround(static_cast<double>(block[c]) /
                       static_cast<double>(step)));
      coded[c] = q;
      payload.put_varint(zigzag(q));
    }

    // Local decode for verification.
    std::vector<std::int64_t> back(coded.size());
    for (std::size_t c = 0; c < coded.size(); ++c) back[c] = coded[c] * step;
    lift_block(std::span<std::int64_t>(back), d.rank, inv_lift);
    for (std::size_t c = 0; c < back.size(); ++c) {
      recon[c] = static_cast<double>(back[c]) / scale;
      if (std::abs(recon[c] - values[c]) > abs_eb) return false;
    }
    return true;
  }

  void decode(BytesReader& payload, std::span<double> out) const {
    const int e = payload.get<std::int16_t>();
    const auto step = static_cast<std::int64_t>(payload.get_varint());
    if (step <= 0) throw CorruptStream("transform: bad coefficient step");
    std::vector<std::int64_t> block(out.size());
    for (std::size_t c = 0; c < block.size(); ++c) {
      block[c] = unzigzag(payload.get_varint()) * step;
    }
    lift_block(std::span<std::int64_t>(block), d.rank, inv_lift);
    const double scale = std::ldexp(1.0, kFixedBits - e);
    for (std::size_t c = 0; c < block.size(); ++c) {
      out[c] = static_cast<double>(block[c]) / scale;
    }
  }
};

}  // namespace

Bytes transform_compress(const FloatArray& data,
                         const TransformConfig& config) {
  require(data.size() > 0, "transform_compress: empty array");
  require(config.abs_eb > 0.0,
          "transform_compress: error bound must be positive");

  const Dims d = dims_of(data.shape());
  const BlockCodec codec{d, config.abs_eb,
                         std::pow(2.0, static_cast<double>(d.rank))};

  BytesWriter body;
  std::vector<double> values(d.block_cells);
  std::vector<double> recon(d.block_cells);
  const std::size_t step1 = d.rank >= 2 ? kBlockEdge : 1;
  const std::size_t step2 = d.rank >= 3 ? kBlockEdge : 1;

  for (std::size_t bi = 0; bi < d.n[0]; bi += kBlockEdge) {
    for (std::size_t bj = 0; bj < d.n[1]; bj += step1) {
      for (std::size_t bk = 0; bk < d.n[2]; bk += step2) {
        const bool finite =
            gather_block(data, d, {bi, bj, bk}, values);
        double max_abs = 0.0;
        for (const double v : values) {
          max_abs = std::max(max_abs, std::abs(v));
        }
        if (finite && max_abs == 0.0) {
          body.put(static_cast<std::uint8_t>(BlockKind::kEmpty));
          continue;
        }
        if (finite) {
          BytesWriter payload;
          if (codec.encode(values, payload, recon)) {
            body.put(static_cast<std::uint8_t>(BlockKind::kCoded));
            body.put_bytes(payload.bytes());
            continue;
          }
        }
        // Fallback: verbatim floats (also covers NaN/Inf blocks).
        body.put(static_cast<std::uint8_t>(BlockKind::kRaw));
        for (const double v : values) {
          body.put(static_cast<float>(v));
        }
      }
    }
  }

  BytesWriter out;
  out.put_bytes(kMagic);
  out.put(config.abs_eb);
  out.put(static_cast<std::uint8_t>(d.rank));
  for (int i = 0; i < d.rank; ++i) out.put_varint(d.n[static_cast<std::size_t>(i)]);
  PooledBuffer packed(BufferPool::shared());
  ByteSink packed_sink(*packed);
  lossless_compress(body.bytes(), LosslessBackend::kLzb, packed_sink);
  out.put_blob(*packed);
  return out.take();
}

FloatArray transform_decompress(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("transform blob: bad magic");
  const double abs_eb = in.get<double>();
  if (!(abs_eb > 0.0)) throw CorruptStream("transform blob: bad bound");
  const int rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw CorruptStream("transform blob: bad rank");
  std::size_t dims[3] = {1, 1, 1};
  for (int i = 0; i < rank; ++i) {
    dims[i] = in.get_varint();
    if (dims[i] == 0) throw CorruptStream("transform blob: zero dim");
  }
  const Shape shape = rank == 1   ? Shape(dims[0])
                      : rank == 2 ? Shape(dims[0], dims[1])
                                  : Shape(dims[0], dims[1], dims[2]);

  PooledBuffer body_bytes(BufferPool::shared());
  lossless_decompress_into(in.get_blob(), *body_bytes);
  BytesReader body(*body_bytes);

  FloatArray out(shape);
  const Dims d = dims_of(shape);
  const BlockCodec codec{d, abs_eb,
                         std::pow(2.0, static_cast<double>(d.rank))};
  std::vector<double> block(d.block_cells);
  const std::size_t step1 = d.rank >= 2 ? kBlockEdge : 1;
  const std::size_t step2 = d.rank >= 3 ? kBlockEdge : 1;

  for (std::size_t bi = 0; bi < d.n[0]; bi += kBlockEdge) {
    for (std::size_t bj = 0; bj < d.n[1]; bj += step1) {
      for (std::size_t bk = 0; bk < d.n[2]; bk += step2) {
        const auto kind = static_cast<BlockKind>(body.get<std::uint8_t>());
        switch (kind) {
          case BlockKind::kEmpty:
            std::fill(block.begin(), block.end(), 0.0);
            break;
          case BlockKind::kCoded:
            codec.decode(body, block);
            break;
          case BlockKind::kRaw:
            for (double& v : block) {
              v = static_cast<double>(body.get<float>());
            }
            break;
          default:
            throw CorruptStream("transform blob: bad block kind");
        }
        scatter_block(out, d, {bi, bj, bk}, block);
      }
    }
  }
  return out;
}

}  // namespace ocelot
