#pragma once
// Transform-based error-bounded compressor (ZFP-style).
//
// The paper's future work targets transform-based compressors (ZFP,
// TTHRESH) whose quality its predictor cannot yet model; this module
// provides that comparator so the extension benches can contrast the
// two compression models (Section III-A: transform vs prediction).
//
// Design (following ZFP's structure, simplified):
//   - the grid is partitioned into 4^d blocks (d = rank),
//   - each block is aligned to a common exponent and converted to
//     fixed-point integers,
//   - a separable forward lifting transform decorrelates the block,
//   - coefficients are truncated to the precision the absolute error
//     bound allows and entropy-packed (sign + magnitude varints
//     through the shared lossless backend).
//
// The fixed-point path guarantees max |orig - recon| <= abs_eb like
// the prediction-based pipelines (verified by the same property
// tests).

#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"

namespace ocelot {

/// Transform-codec settings.
struct TransformConfig {
  double abs_eb = 1e-3;  ///< absolute error bound
};

/// Compresses with the block-transform model. Throws InvalidArgument
/// on empty input or a non-positive bound.
Bytes transform_compress(const FloatArray& data,
                         const TransformConfig& config);

/// Inverts transform_compress. Throws CorruptStream on malformed
/// input.
FloatArray transform_decompress(std::span<const std::uint8_t> blob);

}  // namespace ocelot
