#pragma once
// Compression configuration.
//
// Mirrors the paper's "config-based features": the user-facing knobs
// are the error bound (absolute or value-range-relative) and the
// compressor backend — a name-keyed entry in the BackendRegistry (see
// backend.hpp), so campaigns, the advisor, the parallel codec, and
// the CLI are all open to new compression families without touching
// this header. The numeric fields below are the per-family tunables;
// each backend documents which ones it reads via
// CompressorBackend::params().

#include <cstdint>
#include <string>

#include "codec/lossless.hpp"

namespace ocelot {

/// How the error bound is interpreted.
enum class EbMode : std::uint8_t {
  kAbsolute = 0,       ///< bound on |orig - recon| directly
  kValueRangeRel = 1,  ///< bound = eb * (max - min) of the input
};

/// User-specified compression settings.
struct CompressionConfig {
  std::string backend = "sz3-interp";  ///< BackendRegistry key
  EbMode eb_mode = EbMode::kAbsolute;
  double eb = 1e-3;
  /// EntropyRegistry key for quantized-code sections. The default
  /// ("huffman") keeps the legacy Huffman+lossless chain and the exact
  /// pre-registry wire bytes; any other stage switches the blob header
  /// to the OCZ2 variant that records the stage id.
  std::string entropy = "huffman";
  LosslessBackend lossless = LosslessBackend::kLzb;
  std::uint32_t quant_radius = 32768;  ///< quantizer capacity / 2
  std::size_t anchor_stride = 64;  ///< sz3-interp/multigrid stride cap
  std::size_t block_size = 6;      ///< sz2 block edge

  [[nodiscard]] std::string label() const {
    return backend + "/eb=" + std::to_string(eb);
  }
};

}  // namespace ocelot
