#pragma once
// Compression pipeline configuration.
//
// Mirrors the paper's "config-based features": the user-facing knobs
// are the error bound (absolute or value-range-relative) and the
// compression pipeline (compressor type). SZ3's modular structure is
// reflected by composing a predictor choice with encoder/backend
// stages.

#include <cstdint>
#include <string>

#include "codec/lossless.hpp"

namespace ocelot {

/// Prediction pipeline (the "compressor type" categorical feature).
enum class Pipeline : std::uint8_t {
  kLorenzo = 0,    ///< pure first-order Lorenzo (fast, baseline)
  kSz2 = 1,        ///< block regression + Lorenzo hybrid (SZ2 style)
  kSz3Interp = 2,  ///< multilevel cubic interpolation (SZ3 default)
  kLorenzo2 = 3,   ///< second-order Lorenzo (linear-trend fields)
};

/// All known pipelines, for sweeps.
inline constexpr Pipeline kAllPipelines[] = {
    Pipeline::kLorenzo, Pipeline::kSz2, Pipeline::kSz3Interp,
    Pipeline::kLorenzo2};

std::string to_string(Pipeline p);

/// How the error bound is interpreted.
enum class EbMode : std::uint8_t {
  kAbsolute = 0,       ///< bound on |orig - recon| directly
  kValueRangeRel = 1,  ///< bound = eb * (max - min) of the input
};

/// User-specified compression settings.
struct CompressionConfig {
  Pipeline pipeline = Pipeline::kSz3Interp;
  EbMode eb_mode = EbMode::kAbsolute;
  double eb = 1e-3;
  LosslessBackend backend = LosslessBackend::kLzb;
  std::uint32_t quant_radius = 32768;  ///< quantizer capacity / 2
  std::size_t anchor_stride = 64;      ///< SZ3-interp anchor spacing cap
  std::size_t block_size = 6;          ///< SZ2 block edge

  [[nodiscard]] std::string label() const {
    return to_string(pipeline) + "/eb=" + std::to_string(eb);
  }
};

inline std::string to_string(Pipeline p) {
  switch (p) {
    case Pipeline::kLorenzo:
      return "lorenzo";
    case Pipeline::kSz2:
      return "sz2";
    case Pipeline::kSz3Interp:
      return "sz3-interp";
    case Pipeline::kLorenzo2:
      return "lorenzo2";
  }
  return "unknown";
}

}  // namespace ocelot
