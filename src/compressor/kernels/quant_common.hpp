#pragma once
// Fused quantizer state for the zero-alloc encode path.
//
// FusedQuant replaces QuantEncoder on the compress side: codes and raw
// values land in arena spans sized up front (no vector growth), and
// the symbol histogram the entropy stage needs is accumulated inline
// while quantizing, so the separate histogram pass over the code
// stream disappears. The count window lives in a persistent arena slot
// kept all-zero between blocks; hist_view() drains it back to zero
// while materializing the (symbol, count) pairs.
//
// The quantization rule is bit-identical to QuantEncoder::encode but
// phrased without llround or int64 so the same expression sequence is
// vectorizable: q = floor(t) plus a half-away-from-zero tie fixup
// equals llround(t)'s classification for every finite t (for
// |t| >= 2^52, t is integral and the fraction is exactly 0), and all
// range checks happen on exact integral doubles.

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>

#include "common/arena.hpp"
#include "common/error.hpp"

namespace ocelot::kernels {

template <typename T>
struct FusedQuant {
  double eb = 0.0;
  double bin = 0.0;
  double radius_d = 0.0;
  std::uint32_t radius = 0;

  std::uint32_t* codes = nullptr;  ///< arena span, capacity = sample count
  std::size_t n_codes = 0;
  T* raw = nullptr;  ///< arena span, capacity = sample count
  std::size_t n_raw = 0;

  std::uint64_t* hist = nullptr;  ///< persistent window over [0, 2*radius)
  std::uint32_t lo = 0xffffffffu;  ///< min nonzero code seen
  std::uint32_t hi = 0;            ///< max nonzero code seen
  std::uint64_t n_zero = 0;        ///< unpredictable (code 0) count

  /// Sets up a quantizer for up to `n` samples. The count window binds
  /// to the persistent `slot` (zeroed only when (re)allocated, then
  /// kept zero by hist_view), so each concurrently live quantizer on a
  /// thread needs its own slot.
  static FusedQuant make(double abs_eb, std::uint32_t radius, std::size_t n,
                         ScratchArena& arena, ScratchArena::Slot slot) {
    require(abs_eb > 0.0, "QuantEncoder: error bound must be positive");
    require(radius >= 2, "QuantEncoder: radius too small");
    FusedQuant q;
    q.eb = abs_eb;
    q.bin = 2.0 * abs_eb;
    q.radius_d = static_cast<double>(radius);
    q.radius = radius;
    q.codes = arena.alloc<std::uint32_t>(n).data();
    q.raw = arena.alloc<T>(n).data();
    const std::size_t window = 2 * static_cast<std::size_t>(radius);
    const ScratchArena::Persistent p =
        arena.persistent(slot, window * sizeof(std::uint64_t));
    q.hist = reinterpret_cast<std::uint64_t*>(p.bytes.data());
    if (p.fresh) {
      for (std::size_t i = 0; i < window; ++i) q.hist[i] = 0;
    }
    return q;
  }

  /// Quantizes one sample; returns the reconstruction to store (the
  /// original value for unpredictable samples). Bit-identical to
  /// QuantEncoder::encode.
  T encode1(double pred, T real) {
    const double diff = static_cast<double>(real) - pred;
    const double t = diff / bin;
    const double fl = std::floor(t);
    const double fr = t - fl;
    const double qd = (fr > 0.5 || (fr == 0.5 && t > 0.0)) ? fl + 1.0 : fl;
    // diff - diff filters NaN and Inf in one comparison.
    bool ok = (diff - diff == 0.0) && qd > -radius_d && qd < radius_d;
    const double qc = ok ? qd : 0.0;
    const double recd = ok ? pred + qc * bin : 0.0;
    const T rec = static_cast<T>(recd);
    ok = ok && std::abs(static_cast<double>(rec) - static_cast<double>(real)) <=
                   eb;
    const double codef = ok ? radius_d + qc : 0.0;
    const auto code =
        static_cast<std::uint32_t>(static_cast<std::int32_t>(codef));
    codes[n_codes++] = code;
    if (code == 0) {
      raw[n_raw++] = real;
      ++n_zero;
      return real;
    }
    ++hist[code];
    if (code < lo) lo = code;
    if (code > hi) hi = code;
    return rec;
  }

  [[nodiscard]] std::span<const std::uint32_t> codes_view() const {
    return {codes, n_codes};
  }
  [[nodiscard]] std::span<const T> raw_view() const { return {raw, n_raw}; }

  /// Materializes the symbol-sorted histogram of the emitted codes
  /// into `arena` and clears the persistent window back to all-zero.
  /// Call exactly once, after the last encode1.
  std::span<const std::pair<std::uint32_t, std::uint64_t>> hist_view(
      ScratchArena& arena) {
    std::size_t unique = n_zero > 0 ? 1 : 0;
    if (lo <= hi) {
      for (std::uint32_t c = lo; c <= hi; ++c) unique += hist[c] != 0 ? 1 : 0;
    }
    std::span<std::pair<std::uint32_t, std::uint64_t>> out =
        arena.alloc<std::pair<std::uint32_t, std::uint64_t>>(unique);
    std::size_t k = 0;
    if (n_zero > 0) out[k++] = {0, n_zero};
    if (lo <= hi) {
      for (std::uint32_t c = lo; c <= hi; ++c) {
        if (hist[c] != 0) {
          out[k++] = {c, hist[c]};
          hist[c] = 0;
        }
      }
    }
    return out;
  }
};

}  // namespace ocelot::kernels
