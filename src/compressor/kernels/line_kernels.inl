// Shared kernel bodies, compiled once per ISA level.
//
// This file is #included inside an ISA namespace (kernels::scalar,
// kernels::avx2) by a translation unit that defines:
//   OCELOT_SIMD_LOOP    — vector pragma for the quantize loops
//   OCELOT_SIMD_MINMAX  — vector pragma (integer min/max reduction)
// The scalar TU defines both empty; the avx2 TU maps them to
// `#pragma omp simd` and is built with -mavx2 -mno-fma -fopenmp-simd.
// Both expansions run the identical double-precision expression
// sequence — integer reductions are order-independent and the FP code
// has no reductions and no contraction targets — so the two builds
// emit identical bytes by construction.
//
// NOLINTBEGIN — included fragment, not a standalone header.

// clang-format off
#define OCELOT_QUANT_STORE(t_, idx_, pred_)                                   \
  do {                                                                        \
    const double real_d = static_cast<double>(orig[idx_]);                    \
    const double diff = real_d - (pred_);                                     \
    const double tq = diff / bin;                                             \
    const double fl = std::floor(tq);                                         \
    const double fr = tq - fl;                                                \
    const double qd = (fr > 0.5 || (fr == 0.5 && tq > 0.0)) ? fl + 1.0 : fl;  \
    bool okq = (diff - diff == 0.0) && qd > -radius_d && qd < radius_d;       \
    const double qc = okq ? qd : 0.0;                                         \
    const double recd = okq ? (pred_) + qc * bin : 0.0;                       \
    const T rec = static_cast<T>(recd);                                       \
    okq = okq && std::abs(static_cast<double>(rec) - real_d) <= eb;           \
    const double codef = okq ? radius_d + qc : 0.0;                           \
    codes[t_] = static_cast<std::uint32_t>(static_cast<std::int32_t>(codef)); \
    recon[idx_] = okq ? rec : orig[idx_];                                     \
  } while (0)
// clang-format on

/// Quantizes one interpolation line: `cnt` points at linear indices
/// base + t*estep, predicted from reconstructed neighbors displaced by
/// eoff (and 3*eoff for cubic) along the interpolation dimension.
/// mode: 0 = border copy a(x-s), 1 = linear average, 2 = cubic.
/// Within a refinement pass no point depends on another, so the
/// predict+quantize loop is data-parallel; the raw/histogram fixup is
/// a separate scalar sweep over the just-written codes.
template <typename T>
void encode_line_t(const T* orig, T* recon, std::size_t base,
                   std::size_t estep, std::size_t cnt, std::size_t eoff,
                   int mode, FusedQuant<T>& q) {
  std::uint32_t* codes = q.codes + q.n_codes;
  const double eb = q.eb;
  const double bin = q.bin;
  const double radius_d = q.radius_d;
  if (mode == 2) {
    OCELOT_SIMD_LOOP
    for (std::size_t t = 0; t < cnt; ++t) {
      const std::size_t idx = base + t * estep;
      const double pred =
          (-static_cast<double>(recon[idx - 3 * eoff]) +
           9.0 * static_cast<double>(recon[idx - eoff]) +
           9.0 * static_cast<double>(recon[idx + eoff]) -
           static_cast<double>(recon[idx + 3 * eoff])) /
          16.0;
      OCELOT_QUANT_STORE(t, idx, pred);
    }
  } else if (mode == 1) {
    OCELOT_SIMD_LOOP
    for (std::size_t t = 0; t < cnt; ++t) {
      const std::size_t idx = base + t * estep;
      const double pred = 0.5 * (static_cast<double>(recon[idx - eoff]) +
                                 static_cast<double>(recon[idx + eoff]));
      OCELOT_QUANT_STORE(t, idx, pred);
    }
  } else {
    OCELOT_SIMD_LOOP
    for (std::size_t t = 0; t < cnt; ++t) {
      const std::size_t idx = base + t * estep;
      const double pred = static_cast<double>(recon[idx - eoff]);
      OCELOT_QUANT_STORE(t, idx, pred);
    }
  }
  for (std::size_t t = 0; t < cnt; ++t) {
    const std::uint32_t c = codes[t];
    if (c == 0) {
      q.raw[q.n_raw++] = orig[base + t * estep];
      ++q.n_zero;
    } else {
      ++q.hist[c];
      if (c < q.lo) q.lo = c;
      if (c > q.hi) q.hi = c;
    }
  }
  q.n_codes += cnt;
}

#undef OCELOT_QUANT_STORE

void u32_min_max(const std::uint32_t* v, std::size_t n, std::uint32_t& lo_out,
                 std::uint32_t& hi_out) {
  std::uint32_t lo = 0xffffffffu;
  std::uint32_t hi = 0;
  OCELOT_SIMD_MINMAX
  for (std::size_t i = 0; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  lo_out = lo;
  hi_out = hi;
}

void encode_line(const float* orig, float* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<float>& q) {
  encode_line_t<float>(orig, recon, base, estep, cnt, eoff, mode, q);
}

void encode_line(const double* orig, double* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<double>& q) {
  encode_line_t<double>(orig, recon, base, estep, cnt, eoff, mode, q);
}

// NOLINTEND
