// AVX2 build of the kernel bodies. CMake compiles this TU with
// -mavx2 -mno-fma -fopenmp-simd (x86-64 + GNU/Clang only; elsewhere
// OCELOT_HAVE_AVX2_TU is undefined and this TU is empty). -mno-fma
// matters: without FMA instructions the compiler cannot contract
// a*b+c, so the vector code rounds exactly like the scalar build.
#ifdef OCELOT_HAVE_AVX2_TU

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "compressor/kernels/kernels_isa.hpp"
#include "compressor/kernels/quant_common.hpp"

#define OCELOT_SIMD_LOOP _Pragma("omp simd")
#define OCELOT_SIMD_MINMAX \
  _Pragma("omp simd reduction(min : lo) reduction(max : hi)")

namespace ocelot::kernels::avx2 {
#include "compressor/kernels/line_kernels.inl"
}  // namespace ocelot::kernels::avx2

#endif  // OCELOT_HAVE_AVX2_TU
