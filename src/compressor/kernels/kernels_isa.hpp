#pragma once
// Per-ISA kernel entry points (internal to the kernels layer). Each
// namespace is one build of line_kernels.inl; quant_kernels.cpp picks
// one at runtime via dispatch.hpp. User code should not call these
// directly — use the dispatched wrappers in quant_kernels.hpp.

#include <cstddef>
#include <cstdint>

#include "compressor/kernels/quant_common.hpp"

namespace ocelot::kernels::scalar {
void u32_min_max(const std::uint32_t* v, std::size_t n, std::uint32_t& lo_out,
                 std::uint32_t& hi_out);
void encode_line(const float* orig, float* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<float>& q);
void encode_line(const double* orig, double* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<double>& q);
}  // namespace ocelot::kernels::scalar

#ifdef OCELOT_HAVE_AVX2_TU
namespace ocelot::kernels::avx2 {
void u32_min_max(const std::uint32_t* v, std::size_t n, std::uint32_t& lo_out,
                 std::uint32_t& hi_out);
void encode_line(const float* orig, float* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<float>& q);
void encode_line(const double* orig, double* recon, std::size_t base,
                 std::size_t estep, std::size_t cnt, std::size_t eoff,
                 int mode, FusedQuant<double>& q);
}  // namespace ocelot::kernels::avx2
#endif
