#pragma once
// Runtime SIMD dispatch for the hot-path kernels.
//
// The vectorizable kernels are compiled twice — once with baseline
// x86-64 flags and once per extended ISA (currently AVX2) — and the
// implementation is chosen once per process from CPUID. Both builds
// execute the identical double-precision expression sequence (no FMA,
// no reassociated reductions), so the choice changes speed, never
// bytes; tests pin the level via force_simd_level() to prove it.

#include <cstddef>
#include <cstdint>

namespace ocelot::kernels {

enum class SimdLevel : int {
  kScalar = 0,  ///< baseline build, always present
  kAvx2 = 1,    ///< AVX2 build (x86-64 with GNU/Clang only)
};

/// The level the dispatched kernels will use: a forced level if one is
/// set, else CPUID detection (downgraded to scalar when the
/// OCELOT_NO_SIMD environment variable is set non-empty and not "0").
SimdLevel active_simd_level();

/// Whether this binary contains a kernel build for `level`.
bool simd_level_compiled(SimdLevel level);

/// Human-readable level name ("scalar", "avx2").
const char* simd_level_name(SimdLevel level);

/// Test hook: pins dispatch to `level` (clamped to scalar when that
/// build is absent) until reset_simd_level().
void force_simd_level(SimdLevel level);
void reset_simd_level();

/// Dispatched min/max scan over a u32 stream (the histogram range
/// probe). n == 0 yields lo = UINT32_MAX, hi = 0.
void u32_min_max(const std::uint32_t* v, std::size_t n, std::uint32_t& lo,
                 std::uint32_t& hi);

}  // namespace ocelot::kernels
