// Baseline-ISA build of the kernel bodies. The vector pragmas expand
// to nothing here, so this TU compiles under the default flags (no
// -fopenmp-simd needed, keeping -Wunknown-pragmas quiet under
// -Werror) and serves as the fallback on any CPU.
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "compressor/kernels/kernels_isa.hpp"
#include "compressor/kernels/quant_common.hpp"

#define OCELOT_SIMD_LOOP
#define OCELOT_SIMD_MINMAX

namespace ocelot::kernels::scalar {
#include "compressor/kernels/line_kernels.inl"
}  // namespace ocelot::kernels::scalar
