#include "compressor/kernels/quant_kernels.hpp"

#include <algorithm>
#include <array>

#include "compressor/kernels/kernels_isa.hpp"

namespace ocelot::kernels {

namespace {

template <typename T>
using LineFn = void (*)(const T*, T*, std::size_t, std::size_t, std::size_t,
                        std::size_t, int, FusedQuant<T>&);

template <typename T>
LineFn<T> pick_line() {
#ifdef OCELOT_HAVE_AVX2_TU
  if (active_simd_level() == SimdLevel::kAvx2)
    return static_cast<LineFn<T>>(&avx2::encode_line);
#endif
  return static_cast<LineFn<T>>(&scalar::encode_line);
}

}  // namespace

void u32_min_max(const std::uint32_t* v, std::size_t n, std::uint32_t& lo,
                 std::uint32_t& hi) {
#ifdef OCELOT_HAVE_AVX2_TU
  if (active_simd_level() == SimdLevel::kAvx2) {
    avx2::u32_min_max(v, n, lo, hi);
    return;
  }
#endif
  scalar::u32_min_max(v, n, lo, hi);
}

template <typename T>
void hierarchy_encode(const Shape& shape, const T* orig, std::span<T> recon,
                      std::size_t anchor_stride, bool cubic,
                      FusedQuant<T>& fine, FusedQuant<T>* coarse) {
  const int rank = shape.rank();
  const std::array<std::size_t, 3> n = {shape.dim(0),
                                        rank >= 2 ? shape.dim(1) : 1,
                                        rank >= 3 ? shape.dim(2) : 1};
  const std::size_t s1 = n[1] * n[2];
  const std::size_t s2 = n[2];
  const std::array<std::size_t, 3> estride = {s1, s2, 1};
  T* rec = recon.data();
  auto val = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(rec[i * s1 + j * s2 + k]);
  };

  const std::size_t S = anchor_stride;
  FusedQuant<T>& anchor_q = (S == 1 || coarse == nullptr) ? fine : *coarse;

  // Phase 1: anchors at stride S, Lorenzo over already-coded anchors
  // (serial — the prediction reads reconstructions this loop writes).
  for (std::size_t i = 0; i < n[0]; i += S) {
    for (std::size_t j = 0; j < n[1]; j += S) {
      for (std::size_t k = 0; k < n[2]; k += S) {
        const bool bi = i >= S, bj = j >= S, bk = k >= S;
        double pred = 0.0;
        if (rank <= 1) {
          pred = bi ? val(i - S, 0, 0) : 0.0;
        } else if (rank == 2) {
          pred = (bi ? val(i - S, j, 0) : 0.0) + (bj ? val(i, j - S, 0) : 0.0) -
                 (bi && bj ? val(i - S, j - S, 0) : 0.0);
        } else {
          pred = (bi ? val(i - S, j, k) : 0.0) + (bj ? val(i, j - S, k) : 0.0) +
                 (bk ? val(i, j, k - S) : 0.0) -
                 (bi && bj ? val(i - S, j - S, k) : 0.0) -
                 (bi && bk ? val(i - S, j, k - S) : 0.0) -
                 (bj && bk ? val(i, j - S, k - S) : 0.0) +
                 (bi && bj && bk ? val(i - S, j - S, k - S) : 0.0);
        }
        const std::size_t idx = i * s1 + j * s2 + k;
        rec[idx] = anchor_q.encode1(pred, orig[idx]);
      }
    }
  }
  if (S == 1) return;

  const LineFn<T> line = pick_line<T>();
  // The line axis: the last dimension with more than one grid point.
  // Later dimensions are singletons, so fusing the innermost loops
  // along it preserves the exact raster visit order (and therefore the
  // exact code-stream order) of hierarchy_traverse.
  const std::size_t ld = n[2] > 1 ? 2 : (n[1] > 1 ? 1 : 0);
  const std::size_t o0 = ld == 0 ? 1 : 0;
  const std::size_t o1 = ld == 2 ? 1 : 2;

  // Phase 2: refinement passes, dimension by dimension per level.
  for (std::size_t s = S / 2; s >= 1; s /= 2) {
    FusedQuant<T>& q = (s == 1 || coarse == nullptr) ? fine : *coarse;
    for (int d = 0; d < rank; ++d) {
      const auto du = static_cast<std::size_t>(d);
      std::array<std::size_t, 3> start{};
      std::array<std::size_t, 3> step{};
      for (std::size_t e = 0; e < 3; ++e) {
        if (e == du) {
          start[e] = s;
          step[e] = 2 * s;
        } else if (e < du) {
          start[e] = 0;
          step[e] = s;
        } else {
          start[e] = 0;
          step[e] = 2 * s;
        }
      }
      const std::size_t nd = n[du];
      if (start[ld] >= n[ld]) continue;
      const std::size_t cnt = (n[ld] - start[ld] - 1) / step[ld] + 1;
      const std::size_t estep = step[ld] * estride[ld];

      // Line segmentation for passes refining along the line axis:
      // point t sits at coordinate x_t = s + 2*s*t, so only t >= 1 can
      // be cubic, only the last point can be a border copy, and the
      // cubic run ends where x_t + 3*s < nd stops holding.
      std::size_t t_copy = cnt;
      std::size_t c_end = 0;
      if (du == ld) {
        if (start[ld] + (cnt - 1) * step[ld] + s >= nd) t_copy = cnt - 1;
        if (cubic && nd > 4 * s) c_end = (nd - 4 * s - 1) / (2 * s) + 1;
        c_end = std::min(c_end, t_copy);
      }

      for (std::size_t a = start[o0]; a < n[o0]; a += step[o0]) {
        for (std::size_t b = start[o1]; b < n[o1]; b += step[o1]) {
          std::array<std::size_t, 3> c{};
          c[o0] = a;
          c[o1] = b;
          c[ld] = start[ld];
          const std::size_t base = c[0] * s1 + c[1] * s2 + c[2];
          if (du != ld) {
            // The coordinate along d is fixed for the whole line, so
            // one interpolation mode covers it.
            const std::size_t x = c[du];
            int mode = 0;
            if (x + s < nd)
              mode = (cubic && x >= 3 * s && x + 3 * s < nd) ? 2 : 1;
            line(orig, rec, base, estep, cnt, s * estride[du], mode, q);
          } else {
            const std::size_t eoff = s * estride[ld];
            const std::size_t c_beg = std::min<std::size_t>(1, t_copy);
            if (c_end > c_beg) {
              line(orig, rec, base, estep, c_beg, eoff, 1, q);
              line(orig, rec, base + c_beg * estep, estep, c_end - c_beg,
                   eoff, 2, q);
              if (t_copy > c_end)
                line(orig, rec, base + c_end * estep, estep, t_copy - c_end,
                     eoff, 1, q);
            } else if (t_copy > 0) {
              line(orig, rec, base, estep, t_copy, eoff, 1, q);
            }
            if (cnt > t_copy)
              line(orig, rec, base + t_copy * estep, estep, cnt - t_copy,
                   eoff, 0, q);
          }
        }
      }
    }
    if (s == 1) break;
  }
}

template void hierarchy_encode<float>(const Shape&, const float*,
                                      std::span<float>, std::size_t, bool,
                                      FusedQuant<float>&, FusedQuant<float>*);
template void hierarchy_encode<double>(const Shape&, const double*,
                                       std::span<double>, std::size_t, bool,
                                       FusedQuant<double>&,
                                       FusedQuant<double>*);

}  // namespace ocelot::kernels
