#pragma once
// Dispatched fused encode kernels.
//
// hierarchy_encode is the SIMD-dispatched, fused replacement for
// hierarchy_traverse + QuantEncoder on the compress side: same visit
// order, same predictions, same quantization — vectorized along each
// refinement line, since within a pass every point's neighbors come
// from earlier passes (no loop-carried dependency). The Lorenzo and
// block-regression traversals carry a serial dependency through the
// reconstruction feedback, so they fuse through FusedQuant::encode1
// inside the existing traversal templates instead.
//
// Decode stays on the reference traversals + QuantDecoder: it is the
// correctness anchor the property tests compare against.

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/ndarray.hpp"
#include "compressor/kernels/dispatch.hpp"
#include "compressor/kernels/quant_common.hpp"

namespace ocelot::kernels {

/// Fused multilevel hierarchy encode over `orig` (layout given by
/// `shape`), writing reconstructions into `recon` and codes/raws/
/// histogram into the quantizers. Stride-1 refinement passes (and
/// stride-1 anchors) quantize through `fine`; coarser levels through
/// `coarse` when given, else `fine` — mirroring the level-aware
/// callback of hierarchy_traverse. Bit-identical to the traversal +
/// QuantEncoder composition on every dispatch level.
template <typename T>
void hierarchy_encode(const Shape& shape, const T* orig, std::span<T> recon,
                      std::size_t anchor_stride, bool cubic,
                      FusedQuant<T>& fine, FusedQuant<T>* coarse = nullptr);

}  // namespace ocelot::kernels
