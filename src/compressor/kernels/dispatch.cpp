#include "compressor/kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ocelot::kernels {

namespace {

std::atomic<int> g_forced{-1};

SimdLevel detect() {
#ifdef OCELOT_HAVE_AVX2_TU
  // Escape hatch for A/B runs and the forced-scalar CI leg.
  const char* no_simd = std::getenv("OCELOT_NO_SIMD");
  if (no_simd != nullptr && *no_simd != '\0' && std::strcmp(no_simd, "0") != 0)
    return SimdLevel::kScalar;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel active_simd_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  static const SimdLevel detected = detect();
  return detected;
}

bool simd_level_compiled(SimdLevel level) {
#ifdef OCELOT_HAVE_AVX2_TU
  (void)level;
  return true;
#else
  return level == SimdLevel::kScalar;
#endif
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void force_simd_level(SimdLevel level) {
  if (!simd_level_compiled(level)) level = SimdLevel::kScalar;
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_simd_level() { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace ocelot::kernels
