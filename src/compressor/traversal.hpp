#pragma once
// Shared prediction traversals for the SZ-style pipelines.
//
// Compression and decompression must compute identical predictions, so
// each predictor is written once as a traversal that visits every grid
// point in a fixed order, computes the prediction from already-
// reconstructed values, and hands (index, prediction) to a callback.
// The compressor's callback quantizes the original value; the
// decompressor's callback replays the code stream. Both write the
// reconstructed value back through the traversal, keeping the two
// sides bit-identical by construction.
//
// Callback signature: T fn(std::size_t linear_index, double prediction).

#include <cstddef>
#include <span>

#include "common/ndarray.hpp"

namespace ocelot {

/// First-order Lorenzo traversal in raster order.
///
/// Out-of-bounds neighbors are treated as zero (SZ convention):
///   1-D: f(i-1)
///   2-D: f(i-1,j) + f(i,j-1) - f(i-1,j-1)
///   3-D: 7-term inclusion-exclusion over the preceding corner cube.
template <typename T, typename Fn>
void lorenzo_traverse(const Shape& shape, std::span<T> recon, Fn&& fn) {
  const std::size_t n0 = shape.dim(0);
  const std::size_t n1 = shape.rank() >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = shape.rank() >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;  // stride of dim 0
  const std::size_t s2 = n2;       // stride of dim 1

  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(recon[i * s1 + j * s2 + k]);
  };

  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        double pred = 0.0;
        const bool bi = i > 0, bj = j > 0, bk = k > 0;
        if (shape.rank() <= 1) {
          pred = bi ? at(i - 1, 0, 0) : 0.0;
        } else if (shape.rank() == 2) {
          pred = (bi ? at(i - 1, j, 0) : 0.0) + (bj ? at(i, j - 1, 0) : 0.0) -
                 (bi && bj ? at(i - 1, j - 1, 0) : 0.0);
        } else {
          pred = (bi ? at(i - 1, j, k) : 0.0) + (bj ? at(i, j - 1, k) : 0.0) +
                 (bk ? at(i, j, k - 1) : 0.0) -
                 (bi && bj ? at(i - 1, j - 1, k) : 0.0) -
                 (bi && bk ? at(i - 1, j, k - 1) : 0.0) -
                 (bj && bk ? at(i, j - 1, k - 1) : 0.0) +
                 (bi && bj && bk ? at(i - 1, j - 1, k - 1) : 0.0);
        }
        const std::size_t idx = i * s1 + j * s2 + k;
        recon[idx] = fn(idx, pred);
      }
    }
  }
}

/// Second-order Lorenzo traversal in raster order.
///
/// The order-2 predictor expands 1 - prod_d (1 - S_d)^2 where S_d is
/// the unit shift along dimension d: in 1-D this is the linear
/// extrapolation 2f(i-1) - f(i-2); higher ranks combine shifts up to
/// distance 2 per dimension with binomial coefficients {1, -2, 1}.
/// Out-of-bounds neighbors are zero (SZ convention).
template <typename T, typename Fn>
void lorenzo2_traverse(const Shape& shape, std::span<T> recon, Fn&& fn) {
  const int rank = shape.rank();
  const std::size_t n0 = shape.dim(0);
  const std::size_t n1 = rank >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = rank >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;
  const std::size_t s2 = n2;
  // (1 - S)^2 coefficients per shift distance 0/1/2.
  constexpr double kC2[3] = {1.0, -2.0, 1.0};
  const int amax = 2;
  const int bmax = rank >= 2 ? 2 : 0;
  const int cmax = rank >= 3 ? 2 : 0;

  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        double pred = 0.0;
        for (int a = 0; a <= amax; ++a) {
          if (a > static_cast<int>(i)) continue;
          for (int b = 0; b <= bmax; ++b) {
            if (b > static_cast<int>(j)) continue;
            for (int c = 0; c <= cmax; ++c) {
              if (c > static_cast<int>(k)) continue;
              if (a == 0 && b == 0 && c == 0) continue;
              const double coef = -kC2[a] * kC2[b] * kC2[c];
              pred += coef *
                      static_cast<double>(
                          recon[(i - static_cast<std::size_t>(a)) * s1 +
                                (j - static_cast<std::size_t>(b)) * s2 +
                                (k - static_cast<std::size_t>(c))]);
            }
          }
        }
        const std::size_t idx = i * s1 + j * s2 + k;
        recon[idx] = fn(idx, pred);
      }
    }
  }
}

/// Average absolute first-order Lorenzo residual computed on the
/// *original* values (the paper's avg-Lorenzo-error data feature;
/// Section VI notes features use real values, not reconstructed ones).
template <typename T>
double average_lorenzo_error(const NdArray<T>& data) {
  const Shape& shape = data.shape();
  const std::size_t n0 = shape.dim(0);
  const std::size_t n1 = shape.rank() >= 2 ? shape.dim(1) : 1;
  const std::size_t n2 = shape.rank() >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = n1 * n2;
  const std::size_t s2 = n2;
  const auto vals = data.values();

  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(vals[i * s1 + j * s2 + k]);
  };

  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n1; ++j) {
      for (std::size_t k = 0; k < n2; ++k) {
        // Skip the all-zero-neighbor corner which has no real prediction.
        if (i == 0 && j == 0 && k == 0) continue;
        double pred = 0.0;
        const bool bi = i > 0, bj = j > 0, bk = k > 0;
        if (shape.rank() <= 1) {
          pred = bi ? at(i - 1, 0, 0) : 0.0;
        } else if (shape.rank() == 2) {
          pred = (bi ? at(i - 1, j, 0) : 0.0) + (bj ? at(i, j - 1, 0) : 0.0) -
                 (bi && bj ? at(i - 1, j - 1, 0) : 0.0);
        } else {
          pred = (bi ? at(i - 1, j, k) : 0.0) + (bj ? at(i, j - 1, k) : 0.0) +
                 (bk ? at(i, j, k - 1) : 0.0) -
                 (bi && bj ? at(i - 1, j - 1, k) : 0.0) -
                 (bi && bk ? at(i - 1, j, k - 1) : 0.0) -
                 (bj && bk ? at(i, j - 1, k - 1) : 0.0) +
                 (bi && bj && bk ? at(i - 1, j - 1, k - 1) : 0.0);
        }
        total += std::abs(at(i, j, k) - pred);
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace ocelot
