#pragma once
// Block traversal with per-block predictor selection (SZ2 style).
//
// The grid is partitioned into cubic blocks (default 6^rank). For each
// block an oracle decides between a fitted linear model (regression
// hyperplane) and first-order Lorenzo; points are then visited in
// raster order within the block. The encoder's oracle fits the model
// on original data, quantizes the coefficients, and records the
// choice; the decoder's oracle replays both, keeping the two sides
// symmetric.

#include <array>
#include <cstddef>
#include <span>

#include "common/ndarray.hpp"

namespace ocelot {

/// Linear model over local block coordinates: b0 + b1*i + b2*j + b3*k.
struct BlockCoeffs {
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  double b3 = 0.0;
};

/// Block descriptor passed to the oracle.
struct BlockRegion {
  std::array<std::size_t, 3> lo;    ///< inclusive start per dimension
  std::array<std::size_t, 3> len;   ///< extent per dimension (>= 1)
};

/// Fits the separable least-squares hyperplane to `data` restricted to
/// `region` (tensor-grid separability makes each slope independent).
template <typename T>
BlockCoeffs fit_block_regression(const NdArray<T>& data,
                                 const BlockRegion& region) {
  const Shape& shape = data.shape();
  const std::size_t sn1 = shape.rank() >= 2 ? shape.dim(1) : 1;
  const std::size_t sn2 = shape.rank() >= 3 ? shape.dim(2) : 1;
  const std::size_t s1 = sn1 * sn2;
  const std::size_t s2 = sn2;
  const auto vals = data.values();

  const double ci = (static_cast<double>(region.len[0]) - 1.0) / 2.0;
  const double cj = (static_cast<double>(region.len[1]) - 1.0) / 2.0;
  const double ck = (static_cast<double>(region.len[2]) - 1.0) / 2.0;

  double sum = 0.0, si = 0.0, sj = 0.0, sk = 0.0;
  double sii = 0.0, sjj = 0.0, skk = 0.0;
  for (std::size_t i = 0; i < region.len[0]; ++i) {
    for (std::size_t j = 0; j < region.len[1]; ++j) {
      for (std::size_t k = 0; k < region.len[2]; ++k) {
        const double v = static_cast<double>(
            vals[(region.lo[0] + i) * s1 + (region.lo[1] + j) * s2 +
                 (region.lo[2] + k)]);
        const double di = static_cast<double>(i) - ci;
        const double dj = static_cast<double>(j) - cj;
        const double dk = static_cast<double>(k) - ck;
        sum += v;
        si += di * v;
        sj += dj * v;
        sk += dk * v;
        sii += di * di;
        sjj += dj * dj;
        skk += dk * dk;
      }
    }
  }
  const double count = static_cast<double>(region.len[0] * region.len[1] *
                                           region.len[2]);
  // Centered tensor-grid coordinates are mutually orthogonal, so each
  // slope is an independent one-dimensional least-squares solution.
  BlockCoeffs c;
  c.b1 = sii > 0.0 ? si / sii : 0.0;
  c.b2 = sjj > 0.0 ? sj / sjj : 0.0;
  c.b3 = skk > 0.0 ? sk / skk : 0.0;
  // Re-center the intercept so prediction uses raw local coordinates.
  c.b0 = sum / count - c.b1 * ci - c.b2 * cj - c.b3 * ck;
  return c;
}

/// Prediction of the block model at local coordinates (i, j, k).
inline double predict_block(const BlockCoeffs& c, std::size_t i,
                            std::size_t j, std::size_t k) {
  return c.b0 + c.b1 * static_cast<double>(i) + c.b2 * static_cast<double>(j) +
         c.b3 * static_cast<double>(k);
}

/// Visits blocks in raster order; for each block calls
/// `oracle(region) -> std::pair<bool use_regression, BlockCoeffs>`,
/// then visits points in raster order calling `fn(index, prediction)`
/// whose return value is written into `recon`.
///
/// Lorenzo predictions read the global `recon` array; block raster
/// order guarantees all Lorenzo neighbors are already reconstructed.
template <typename T, typename Oracle, typename Fn>
void block_traverse(const Shape& shape, std::span<T> recon,
                    std::size_t block_size, Oracle&& oracle, Fn&& fn) {
  const int rank = shape.rank();
  const std::array<std::size_t, 3> n = {
      shape.dim(0), rank >= 2 ? shape.dim(1) : 1, rank >= 3 ? shape.dim(2) : 1};
  const std::size_t s1 = n[1] * n[2];
  const std::size_t s2 = n[2];
  auto val = [&](std::size_t i, std::size_t j, std::size_t k) -> double {
    return static_cast<double>(recon[i * s1 + j * s2 + k]);
  };

  for (std::size_t bi = 0; bi < n[0]; bi += block_size) {
    for (std::size_t bj = 0; bj < n[1]; bj += block_size) {
      for (std::size_t bk = 0; bk < n[2]; bk += block_size) {
        BlockRegion region;
        region.lo = {bi, bj, bk};
        region.len = {std::min(block_size, n[0] - bi),
                      std::min(block_size, n[1] - bj),
                      std::min(block_size, n[2] - bk)};
        const auto [use_reg, coeffs] = oracle(region);

        for (std::size_t i = 0; i < region.len[0]; ++i) {
          for (std::size_t j = 0; j < region.len[1]; ++j) {
            for (std::size_t k = 0; k < region.len[2]; ++k) {
              const std::size_t gi = bi + i, gj = bj + j, gk = bk + k;
              double pred;
              if (use_reg) {
                pred = predict_block(coeffs, i, j, k);
              } else {
                const bool xi = gi > 0, xj = gj > 0, xk = gk > 0;
                if (rank <= 1) {
                  pred = xi ? val(gi - 1, 0, 0) : 0.0;
                } else if (rank == 2) {
                  pred = (xi ? val(gi - 1, gj, 0) : 0.0) +
                         (xj ? val(gi, gj - 1, 0) : 0.0) -
                         (xi && xj ? val(gi - 1, gj - 1, 0) : 0.0);
                } else {
                  pred = (xi ? val(gi - 1, gj, gk) : 0.0) +
                         (xj ? val(gi, gj - 1, gk) : 0.0) +
                         (xk ? val(gi, gj, gk - 1) : 0.0) -
                         (xi && xj ? val(gi - 1, gj - 1, gk) : 0.0) -
                         (xi && xk ? val(gi - 1, gj, gk - 1) : 0.0) -
                         (xj && xk ? val(gi, gj - 1, gk - 1) : 0.0) +
                         (xi && xj && xk ? val(gi - 1, gj - 1, gk - 1) : 0.0);
                }
              }
              const std::size_t idx = gi * s1 + gj * s2 + gk;
              recon[idx] = fn(idx, pred);
            }
          }
        }
      }
    }
  }
}

}  // namespace ocelot
