#include "compressor/backend.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "codec/entropy.hpp"
#include "codec/huffman.hpp"
#include "compressor/multigrid.hpp"
#include "obs/trace.hpp"

namespace ocelot {

void pack_codes(std::span<const std::uint32_t> codes,
                const CompressionConfig& config, ByteSink& out) {
  OCELOT_SPAN("codec.entropy.codes");
  const std::size_t out_before = out.size();
  const EntropyStage& stage =
      EntropyRegistry::instance().by_name(config.entropy);
  entropy_encode_codes(codes, stage, config.lossless, out);
  OCELOT_COUNT("codec.entropy_in_bytes", codes.size_bytes());
  OCELOT_COUNT("codec.entropy_out_bytes", out.size() - out_before);
}

void pack_codes_hist(
    std::span<const std::uint32_t> codes,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> hist,
    const CompressionConfig& config, ByteSink& out) {
  OCELOT_SPAN("codec.entropy.codes");
  const std::size_t out_before = out.size();
  const EntropyStage& stage =
      EntropyRegistry::instance().by_name(config.entropy);
  entropy_encode_codes_hist(codes, hist, stage, config.lossless, out);
  OCELOT_COUNT("codec.entropy_in_bytes", codes.size_bytes());
  OCELOT_COUNT("codec.entropy_out_bytes", out.size() - out_before);
}

void pack_codes(std::span<const std::uint32_t> codes, LosslessBackend lossless,
                ByteSink& out) {
  OCELOT_SPAN("codec.entropy.codes");
  const std::size_t out_before = out.size();
  entropy_encode_codes(codes, EntropyRegistry::instance().by_name("huffman"),
                       lossless, out);
  OCELOT_COUNT("codec.entropy_in_bytes", codes.size_bytes());
  OCELOT_COUNT("codec.entropy_out_bytes", out.size() - out_before);
}

Bytes pack_codes(std::span<const std::uint32_t> codes,
                 LosslessBackend lossless) {
  BytesWriter out;
  pack_codes(codes, lossless, out);
  return out.take();
}

void unpack_codes_into(std::span<const std::uint8_t> packed,
                       std::vector<std::uint32_t>& out) {
  OCELOT_SPAN("codec.entropy.decode");
  entropy_decode_codes_into(packed, out);
}

std::vector<std::uint32_t> unpack_codes(std::span<const std::uint8_t> packed) {
  std::vector<std::uint32_t> out;
  unpack_codes_into(packed, out);
  return out;
}

template <typename T>
void pack_raw_values(std::span<const T> values, LosslessBackend lossless,
                     ByteSink& out) {
  OCELOT_SPAN("codec.entropy.raw");
  const std::size_t out_before = out.size();
  std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(values.data()),
      values.size() * sizeof(T)};
  lossless_compress(bytes, lossless, out);
  OCELOT_COUNT("codec.entropy_in_bytes", bytes.size());
  OCELOT_COUNT("codec.entropy_out_bytes", out.size() - out_before);
}

template void pack_raw_values<float>(std::span<const float>, LosslessBackend,
                                     ByteSink&);
template void pack_raw_values<double>(std::span<const double>, LosslessBackend,
                                      ByteSink&);

template <typename T>
Bytes pack_raw_values(const std::vector<T>& values, LosslessBackend lossless) {
  BytesWriter out;
  pack_raw_values(std::span<const T>(values), lossless, out);
  return out.take();
}

template Bytes pack_raw_values<float>(const std::vector<float>&,
                                      LosslessBackend);
template Bytes pack_raw_values<double>(const std::vector<double>&,
                                       LosslessBackend);

template <typename T>
void unpack_raw_values_into(std::span<const std::uint8_t> packed,
                            std::vector<T>& out) {
  PooledBuffer bytes(BufferPool::shared());
  lossless_decompress_into(packed, *bytes);
  if (bytes->size() % sizeof(T) != 0)
    throw CorruptStream("blob: raw value section misaligned");
  out.resize(bytes->size() / sizeof(T));
  if (!bytes->empty()) std::memcpy(out.data(), bytes->data(), bytes->size());
}

template void unpack_raw_values_into<float>(std::span<const std::uint8_t>,
                                            std::vector<float>&);
template void unpack_raw_values_into<double>(std::span<const std::uint8_t>,
                                             std::vector<double>&);

template <typename T>
std::vector<T> unpack_raw_values(std::span<const std::uint8_t> packed) {
  std::vector<T> values;
  unpack_raw_values_into(packed, values);
  return values;
}

template std::vector<float> unpack_raw_values<float>(
    std::span<const std::uint8_t>);
template std::vector<double> unpack_raw_values<double>(
    std::span<const std::uint8_t>);

BackendRegistry::BackendRegistry() {
  for (auto& backend : make_sz_backends()) add(std::move(backend));
  add(make_multigrid_backend());
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

const CompressorBackend& BackendRegistry::add(
    std::unique_ptr<CompressorBackend> backend) {
  require(backend != nullptr, "BackendRegistry: null backend");
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string name = backend->name();
  const std::uint8_t id = backend->wire_id();
  require(!name.empty(), "BackendRegistry: empty backend name");
  if (by_name_.count(name) > 0)
    throw InvalidArgument("BackendRegistry: duplicate backend name " + name);
  if (by_id_.count(id) > 0)
    throw InvalidArgument("BackendRegistry: duplicate backend wire id " +
                          std::to_string(id) + " (" + name + ")");
  const CompressorBackend* raw = backend.get();
  by_id_[id] = std::move(backend);
  by_name_[name] = raw;
  return *raw;
}

const CompressorBackend& BackendRegistry::by_name(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::ostringstream msg;
    msg << "unknown compressor backend: " << name << " (registered:";
    for (const auto& [id, backend] : by_id_) msg << " " << backend->name();
    msg << ")";
    throw InvalidArgument(msg.str());
  }
  return *it->second;
}

const CompressorBackend& BackendRegistry::by_id(std::uint8_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end())
    throw CorruptStream("blob: unknown backend id " + std::to_string(id));
  return *it->second;
}

const CompressorBackend* BackendRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const CompressorBackend* BackendRegistry::find_by_id(std::uint8_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

std::vector<const CompressorBackend*> BackendRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const CompressorBackend*> backends;
  backends.reserve(by_id_.size());
  for (const auto& [id, backend] : by_id_) backends.push_back(backend.get());
  return backends;
}

BackendRegistrar::BackendRegistrar(
    std::unique_ptr<CompressorBackend> backend) {
  try {
    BackendRegistry::instance().add(std::move(backend));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: backend registration failed: %s\n",
                 e.what());
    std::abort();
  }
}

std::vector<std::string> registered_backend_names() {
  std::vector<std::string> names;
  for (const CompressorBackend* b : BackendRegistry::instance().list()) {
    names.push_back(b->name());
  }
  return names;
}

}  // namespace ocelot
