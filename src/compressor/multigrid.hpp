#pragma once
// MGARD-style multigrid backend (wire id 4).
//
// A second compressor family alongside the SZ pipelines, proving the
// backend seam: the grid is treated as a dyadic node hierarchy.
// Encode first *coarsens* — nodal values on the coarsest grid (stride
// S, a power of two capped by `anchor_stride`) are coded with a
// stride-S Lorenzo predictor — then *corrects* level by level: each
// halving level s = S/2 ... 1 predicts the newly-refined nodes by
// linear interpolation along the refined dimension from the already-
// reconstructed coarser surface, and quantizes the correction. The
// node ordering is the shared hierarchy_traverse (interpolation.hpp)
// in linear mode, so the coverage argument is proven once for both
// families.
//
// Two uniform quantizers share the abs-eb invariant: coarse levels
// (s >= 2) use a tightened bin (eb / kMultigridCoarseTighten) so the
// interpolation parents of every finer level are more accurate than
// the bound requires, and the finest level uses the full bin. Each
// node is quantized exactly once against its own prediction, so
// max|x - x^| <= eb holds pointwise regardless of the split. Code
// streams go through the same Huffman + lossless entropy stage as the
// SZ families ("mg_coarse_codes"/"mg_coarse_raw" and "codes"/"raw"
// sections).
//
// This is the linear-B-spline skeleton of MGARD (coarsen / correct /
// quantize per level) without the L2 projection step — corrections
// are interpolation residuals rather than orthogonal-projection
// coefficients — which keeps the decoder a bit-exact replay of the
// encoder under the repo's quantizer contract.

#include <memory>

#include "compressor/backend.hpp"

namespace ocelot {

/// Coarse levels quantize with eb / this factor.
inline constexpr double kMultigridCoarseTighten = 2.0;

/// Factory used by the registry; also handy for tests that want the
/// backend without going through the registry.
std::unique_ptr<CompressorBackend> make_multigrid_backend();

}  // namespace ocelot
