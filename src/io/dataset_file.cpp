#include "io/dataset_file.hpp"

#include <cstring>

#include "common/error.hpp"

namespace ocelot {

namespace {
constexpr std::uint8_t kMagic[4] = {'O', 'C', 'F', '1'};
}

Bytes save_field(const std::string& name, const FloatArray& data) {
  BytesWriter out;
  out.put_bytes(kMagic);
  out.put_string(name);
  out.put(static_cast<std::uint8_t>(data.shape().rank()));
  for (int d = 0; d < data.shape().rank(); ++d) {
    out.put_varint(data.shape().dim(d));
  }
  const auto vals = data.values();
  out.put_blob({reinterpret_cast<const std::uint8_t*>(vals.data()),
                vals.size() * sizeof(float)});
  return out.take();
}

LoadedField load_field(std::span<const std::uint8_t> blob) {
  BytesReader in(blob);
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("field file: bad magic");

  LoadedField out;
  out.name = in.get_string();
  const int rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw CorruptStream("field file: bad rank");
  std::size_t dims[3] = {1, 1, 1};
  for (int d = 0; d < rank; ++d) {
    dims[d] = in.get_varint();
    if (dims[d] == 0) throw CorruptStream("field file: zero dimension");
  }
  Shape shape = rank == 1   ? Shape(dims[0])
                : rank == 2 ? Shape(dims[0], dims[1])
                            : Shape(dims[0], dims[1], dims[2]);

  const auto payload = in.get_blob();
  if (payload.size() != shape.size() * sizeof(float))
    throw CorruptStream("field file: payload size mismatch");
  std::vector<float> values(shape.size());
  std::memcpy(values.data(), payload.data(), payload.size());
  out.data = FloatArray(shape, std::move(values));
  return out;
}

}  // namespace ocelot
