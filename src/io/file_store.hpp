#pragma once
// In-memory file store standing in for a site's parallel filesystem.
//
// The orchestrator moves named byte blobs between sites; an in-memory
// map keeps tests hermetic and fast while preserving the file-level
// semantics (names, sizes, listing) the grouping and sentinel logic
// depend on.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ocelot {

/// A named-blob filesystem with byte-accurate sizes.
class FileStore {
 public:
  /// Writes (or overwrites) a file.
  void write(const std::string& path, Bytes data);

  /// Reads a file; throws NotFound if absent.
  [[nodiscard]] const Bytes& read(const std::string& path) const;

  [[nodiscard]] bool exists(const std::string& path) const;

  /// Removes a file; returns false if it did not exist.
  bool remove(const std::string& path);

  /// File size in bytes; throws NotFound if absent.
  [[nodiscard]] std::size_t size(const std::string& path) const;

  /// Paths with the given prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const;

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] double total_bytes() const;

 private:
  std::map<std::string, Bytes> files_;
};

}  // namespace ocelot
