#pragma once
// Grouped-file archive for transfer optimization (Fig. 11).
//
// Many small compressed files transfer slowly (Table II), so Ocelot
// concatenates them into grouped files: each group has a binary header
// (member count, per-member name/offset/size) followed by the
// concatenated member payloads. A separate human-readable metadata
// text file records the grouping strategy and original filenames so
// the receiver can ungroup and decompress.

#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ocelot {

/// One member of a group: a named payload.
struct GroupMember {
  std::string name;
  Bytes data;
};

/// Builds a grouped archive from members (header + body).
Bytes build_group(const std::vector<GroupMember>& members);

/// Parses a grouped archive back into members.
/// Throws CorruptStream on malformed input.
std::vector<GroupMember> parse_group(std::span<const std::uint8_t> archive);

/// Reads only the member names/sizes without copying payloads.
struct GroupIndexEntry {
  std::string name;
  std::size_t offset;
  std::size_t size;
};
std::vector<GroupIndexEntry> read_group_index(
    std::span<const std::uint8_t> archive);

/// Renders the human-readable metadata file for a set of groups:
/// member counts, strategy note, and original filenames per group.
std::string render_group_metadata(
    const std::vector<std::vector<std::string>>& group_names,
    const std::string& strategy);

/// Parses the metadata text back into per-group filename lists.
std::vector<std::vector<std::string>> parse_group_metadata(
    const std::string& text);

}  // namespace ocelot
