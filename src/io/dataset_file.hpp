#pragma once
// Self-describing on-"disk" format for scientific arrays.
//
// The paper's data loader handles binary/HDF5/NetCDF files; here a
// single compact container ("OCF1") carries name, dtype, and shape so
// fields survive round trips through the file store and the grouped
// archives without external metadata.

#include <string>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"

namespace ocelot {

/// Serializes a named float field.
Bytes save_field(const std::string& name, const FloatArray& data);

/// Parsed field file.
struct LoadedField {
  std::string name;
  FloatArray data;
};

/// Parses a blob produced by save_field; throws CorruptStream on
/// malformed input.
LoadedField load_field(std::span<const std::uint8_t> blob);

}  // namespace ocelot
