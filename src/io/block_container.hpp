#pragma once
// Self-describing container for a block-compressed field ("OCB1").
//
// The block-parallel codec splits one FloatArray into fixed-size
// blocks along the slowest dimension, compresses every block
// independently (each block is a standard OCZ1 blob), and serializes
// them here. The container records the full field shape, the block
// geometry, and a per-block (length, CRC-32) index, so a reader can
//   * decompress all blocks concurrently,
//   * fetch a single block without touching the rest (random access),
//   * reject corrupted payloads before decompression.
//
// Layout (v1.1): magic "OCB1", version byte 0x11, shape (rank +
// dims), varint block_slabs, varint block count, per-block varint
// payload length + u32 CRC-32 + u8 backend wire id, then the payloads
// concatenated in block order. The per-block backend byte is what lets
// the adaptive advisor mix compressor families inside one container
// and still recover every block's decision from the index alone,
// without touching payload bytes.
//
// v1.2 extends each index entry with one more byte: the block's
// entropy-stage wire id (see codec/entropy.hpp), sniffed from the
// payload header the same way the backend byte is. The writer only
// emits v1.2 when some block actually uses a non-default entropy
// stage (an OCZ2 payload); all-default containers keep the exact v1.1
// bytes, so advisor-less pipelines and their golden containers are
// untouched.
//
// v1.0 containers (written before the backend byte existed) carry no
// version byte: the byte after the magic is the shape rank, which is
// always 1-3 and therefore disjoint from the 0x11/0x12 version
// markers. Readers accept all three; writers emit v1.1 or v1.2 as
// described. Because block order and per-block compression are
// deterministic, container bytes do not depend on how many threads
// produced them.

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"

namespace ocelot {

/// One block of the slab split: a contiguous run of slowest-dimension
/// slabs. `slab_begin`/`slab_count` index dimension 0 of the field.
struct BlockSpan {
  std::size_t slab_begin = 0;
  std::size_t slab_count = 0;
};

/// Splits `dim0` slabs into blocks of `block_slabs` (last may be
/// short). `block_slabs` >= dim0 yields a single block.
std::vector<BlockSpan> plan_blocks(std::size_t dim0,
                                   std::size_t block_slabs);

/// Shape of one block of `full`: the slab count replaces dim 0, the
/// rank is preserved.
Shape block_shape(const Shape& full, const BlockSpan& span);

/// Index backend id for payloads that are not OCZ1/OCZ2 blobs (or any
/// block of a legacy v1.0 container, whose index predates the byte).
inline constexpr std::uint8_t kUnknownBackendId = 0xFF;

/// Index entropy-stage id for payloads whose header carries none
/// (non-OCZ payloads, and every block of a v1.0 container).
inline constexpr std::uint8_t kUnknownEntropyId = 0xFF;

/// Parsed container index.
struct BlockIndexEntry {
  std::size_t offset = 0;  ///< payload start within the container
  std::size_t size = 0;    ///< payload bytes
  std::uint32_t crc = 0;   ///< CRC-32 of the payload
  /// Compressor wire id of the block's payload (v1.1+ containers);
  /// kUnknownBackendId for v1.0 containers and non-OCZ payloads.
  std::uint8_t backend_id = kUnknownBackendId;
  /// Entropy-stage wire id of the block's payload: stored in v1.2
  /// indexes, implied 0 for OCZ1 payloads of v1.1 containers,
  /// kUnknownEntropyId for v1.0 containers and non-OCZ payloads.
  std::uint8_t entropy_id = kUnknownEntropyId;
};

struct BlockContainerInfo {
  Shape shape;                   ///< full field shape
  std::size_t block_slabs = 0;   ///< slabs per block along dim 0
  /// True iff the index carries per-block backend ids (v1.1+).
  bool has_backend_ids = false;
  /// True iff the index carries per-block entropy-stage ids (v1.2).
  bool has_entropy_ids = false;
  std::vector<BlockIndexEntry> blocks;  ///< in slab order
};

/// True iff `data` starts with the OCB1 magic.
bool is_block_container(std::span<const std::uint8_t> data);

/// Streaming container assembly: block payloads append (in slab order)
/// into one contiguous arena — either through the sink returned by
/// begin_block() (zero-copy: the compressor streams straight into the
/// arena) or via append_block — and finish() emits the complete OCB1
/// container. The full shape is only needed at finish(), so chunked
/// producers (stdin streaming) can discover dim 0 as they go.
/// Container bytes are identical to build_block_container's.
class BlockContainerWriter {
 public:
  explicit BlockContainerWriter(std::size_t block_slabs);

  // The internal sink is bound to the arena; moving would dangle it.
  BlockContainerWriter(const BlockContainerWriter&) = delete;
  BlockContainerWriter& operator=(const BlockContainerWriter&) = delete;

  /// Capacity hint: reserves the payload arena and the index up front
  /// so a caller that knows its totals assembles without reallocation.
  void reserve_payload(std::size_t payload_bytes, std::size_t blocks);

  /// Opens the next block: returns the sink its payload streams into.
  /// Must be paired with end_block().
  [[nodiscard]] ByteSink& begin_block();

  /// Seals the open block, recording its length, CRC-32, backend wire
  /// id, and entropy-stage wire id (both sniffed from the payload's
  /// OCZ1/OCZ2 header; non-OCZ payloads record the unknown sentinels).
  /// Throws InvalidArgument on an empty payload.
  void end_block();

  /// Convenience: begin_block + copy + end_block.
  void append_block(std::span<const std::uint8_t> payload);

  [[nodiscard]] std::size_t block_count() const { return index_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const { return arena_.size(); }

  /// Emits magic, `shape`, geometry, index, and the payload arena into
  /// `out`. Validates that the appended block count matches
  /// plan_blocks(shape.dim(0), block_slabs). The writer is spent
  /// afterwards.
  void finish(const Shape& shape, ByteSink& out);

  /// Convenience wrapper returning a fresh buffer.
  [[nodiscard]] Bytes finish(const Shape& shape);

 private:
  std::size_t block_slabs_;
  Bytes arena_;         ///< payloads concatenated in block order
  ByteSink arena_sink_;
  std::size_t open_offset_ = 0;
  bool open_ = false;
  bool finished_ = false;
  /// Per-block (payload length, CRC-32, backend id, entropy id), in
  /// append order.
  struct PendingEntry {
    std::size_t size = 0;
    std::uint32_t crc = 0;
    std::uint8_t backend_id = kUnknownBackendId;
    std::uint8_t entropy_id = kUnknownEntropyId;
  };
  std::vector<PendingEntry> index_;
};

/// Assembles a container from per-block compressed payloads, which
/// must be in slab order and match plan_blocks(shape.dim(0),
/// block_slabs) in count.
Bytes build_block_container(const Shape& shape, std::size_t block_slabs,
                            const std::vector<Bytes>& block_payloads);

/// Parses the header/index. Throws CorruptStream on malformed input.
BlockContainerInfo read_block_index(std::span<const std::uint8_t> container);

/// Returns the payload view for block `i`, verifying its checksum and
/// that the index's backend and entropy-stage ids (when the container
/// carries them) match the payload's own header. Throws CorruptStream
/// on a checksum or id mismatch.
std::span<const std::uint8_t> block_payload(
    std::span<const std::uint8_t> container, const BlockContainerInfo& info,
    std::size_t i);

/// Random access: decompresses only block `i` of the container.
FloatArray decompress_block(std::span<const std::uint8_t> container,
                            std::size_t i);

}  // namespace ocelot
