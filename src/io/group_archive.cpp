#include "io/group_archive.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/str.hpp"

namespace ocelot {

namespace {
constexpr std::uint8_t kMagic[4] = {'O', 'C', 'G', '1'};
}

Bytes build_group(const std::vector<GroupMember>& members) {
  require(!members.empty(), "build_group: empty group");
  BytesWriter out;
  out.put_bytes(kMagic);
  out.put_varint(members.size());
  // Header: names and sizes; offsets are implied by cumulative sizes.
  for (const auto& m : members) {
    out.put_string(m.name);
    out.put_varint(m.data.size());
  }
  for (const auto& m : members) {
    out.put_bytes(m.data);
  }
  return out.take();
}

std::vector<GroupIndexEntry> read_group_index(
    std::span<const std::uint8_t> archive) {
  BytesReader in(archive);
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("group archive: bad magic");
  const std::uint64_t count = in.get_varint();
  if (count == 0) throw CorruptStream("group archive: zero members");

  std::vector<GroupIndexEntry> index;
  index.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    GroupIndexEntry e;
    e.name = in.get_string();
    e.size = in.get_varint();
    index.push_back(std::move(e));
  }
  // Offsets start where the header ends.
  std::size_t offset = archive.size() - in.remaining();
  for (auto& e : index) {
    e.offset = offset;
    offset += e.size;
  }
  if (offset != archive.size())
    throw CorruptStream("group archive: body size mismatch");
  return index;
}

std::vector<GroupMember> parse_group(std::span<const std::uint8_t> archive) {
  const auto index = read_group_index(archive);
  std::vector<GroupMember> members;
  members.reserve(index.size());
  for (const auto& e : index) {
    GroupMember m;
    m.name = e.name;
    m.data.assign(archive.begin() + static_cast<std::ptrdiff_t>(e.offset),
                  archive.begin() +
                      static_cast<std::ptrdiff_t>(e.offset + e.size));
    members.push_back(std::move(m));
  }
  return members;
}

std::string render_group_metadata(
    const std::vector<std::vector<std::string>>& group_names,
    const std::string& strategy) {
  std::ostringstream os;
  os << "# ocelot group metadata v1\n";
  os << "strategy: " << strategy << "\n";
  os << "groups: " << group_names.size() << "\n";
  for (std::size_t g = 0; g < group_names.size(); ++g) {
    os << "group " << g << " files " << group_names[g].size() << "\n";
    for (const auto& name : group_names[g]) {
      os << "  " << name << "\n";
    }
  }
  return os.str();
}

std::vector<std::vector<std::string>> parse_group_metadata(
    const std::string& text) {
  std::vector<std::vector<std::string>> groups;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (starts_with(line, "group ")) {
      groups.emplace_back();
    } else if (starts_with(line, "  ") && !groups.empty()) {
      groups.back().push_back(line.substr(2));
    }
  }
  if (groups.empty())
    throw CorruptStream("group metadata: no groups found");
  return groups;
}

}  // namespace ocelot
