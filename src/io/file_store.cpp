#include "io/file_store.hpp"

#include "common/error.hpp"
#include "common/str.hpp"

namespace ocelot {

void FileStore::write(const std::string& path, Bytes data) {
  require(!path.empty(), "FileStore: empty path");
  files_[path] = std::move(data);
}

const Bytes& FileStore::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw NotFound("FileStore: no such file " + path);
  return it->second;
}

bool FileStore::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

bool FileStore::remove(const std::string& path) {
  return files_.erase(path) > 0;
}

std::size_t FileStore::size(const std::string& path) const {
  return read(path).size();
}

std::vector<std::string> FileStore::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, data] : files_) {
    if (starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

double FileStore::total_bytes() const {
  double total = 0.0;
  for (const auto& [path, data] : files_) {
    total += static_cast<double>(data.size());
  }
  return total;
}

}  // namespace ocelot
