#include "io/block_container.hpp"

#include <cstring>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "compressor/compressor.hpp"

namespace ocelot {

namespace {

constexpr std::uint8_t kMagic[4] = {'O', 'C', 'B', '1'};

/// Container minor-version markers (v1.1: per-block backend ids in
/// the index; v1.2: backend + entropy-stage ids). v1.0 containers have
/// no version byte: the byte after the magic is the shape rank (1-3),
/// so any value outside that range and these markers is corruption.
constexpr std::uint8_t kVersion11 = 0x11;
constexpr std::uint8_t kVersion12 = 0x12;

/// Byte offsets inside an OCZ1/OCZ2 payload header (magic 4 bytes +
/// dtype byte, then backend id; OCZ2 adds the entropy-stage byte),
/// used to sniff a block's ids when sealing it and to cross-check the
/// index on read.
constexpr std::size_t kOczBackendOffset = 5;
constexpr std::size_t kOczEntropyOffset = 6;

/// Returns the payload's backend wire id, or kUnknownBackendId for
/// payloads that are not OCZ1/OCZ2 blobs.
std::uint8_t sniff_backend_id(std::span<const std::uint8_t> payload) {
  if (payload.size() <= kOczBackendOffset) return kUnknownBackendId;
  if (std::memcmp(payload.data(), "OCZ1", 4) != 0 &&
      std::memcmp(payload.data(), "OCZ2", 4) != 0) {
    return kUnknownBackendId;
  }
  return payload[kOczBackendOffset];
}

/// Returns the payload's entropy-stage wire id: 0 for OCZ1 blobs (the
/// legacy chain is implicit), the header byte for OCZ2 blobs, and
/// kUnknownEntropyId for anything else.
std::uint8_t sniff_entropy_id(std::span<const std::uint8_t> payload) {
  if (payload.size() > kOczBackendOffset &&
      std::memcmp(payload.data(), "OCZ1", 4) == 0) {
    return 0;
  }
  if (payload.size() > kOczEntropyOffset &&
      std::memcmp(payload.data(), "OCZ2", 4) == 0) {
    return payload[kOczEntropyOffset];
  }
  return kUnknownEntropyId;
}

/// Ceiling on total field elements accepted from an untrusted header
/// (2^40 elements = 4 TB of floats): far beyond any real field, small
/// enough that malformed dims fail with CorruptStream instead of a
/// wrapped Shape::size() or an OOM allocation.
constexpr std::uint64_t kMaxElements = 1ull << 40;

void write_shape(ByteSink& out, const Shape& shape) {
  out.put(static_cast<std::uint8_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) out.put_varint(shape.dim(d));
}

Shape read_shape(BytesReader& in, int rank) {
  if (rank < 1 || rank > 3) throw CorruptStream("block container: bad rank");
  std::size_t dims[3] = {1, 1, 1};
  std::uint64_t elements = 1;
  for (int d = 0; d < rank; ++d) {
    dims[d] = in.get_varint();
    if (dims[d] == 0) throw CorruptStream("block container: zero dimension");
    if (dims[d] > kMaxElements / elements)
      throw CorruptStream("block container: implausible dimensions");
    elements *= dims[d];
  }
  if (rank == 1) return Shape(dims[0]);
  if (rank == 2) return Shape(dims[0], dims[1]);
  return Shape(dims[0], dims[1], dims[2]);
}

}  // namespace

std::vector<BlockSpan> plan_blocks(std::size_t dim0,
                                   std::size_t block_slabs) {
  require(dim0 > 0, "plan_blocks: empty dimension");
  require(block_slabs > 0, "plan_blocks: zero block size");
  // Clamping preserves the single-block semantics of oversized blocks
  // and keeps `begin += block_slabs` from ever wrapping.
  block_slabs = std::min(block_slabs, dim0);
  std::vector<BlockSpan> spans;
  spans.reserve(dim0 / block_slabs + (dim0 % block_slabs != 0 ? 1 : 0));
  for (std::size_t begin = 0; begin < dim0; begin += block_slabs) {
    spans.push_back({begin, std::min(block_slabs, dim0 - begin)});
  }
  return spans;
}

Shape block_shape(const Shape& full, const BlockSpan& span) {
  switch (full.rank()) {
    case 1:
      return Shape(span.slab_count);
    case 2:
      return Shape(span.slab_count, full.dim(1));
    default:
      return Shape(span.slab_count, full.dim(1), full.dim(2));
  }
}

bool is_block_container(std::span<const std::uint8_t> data) {
  return data.size() >= 4 && std::memcmp(data.data(), kMagic, 4) == 0;
}

BlockContainerWriter::BlockContainerWriter(std::size_t block_slabs)
    : block_slabs_(block_slabs), arena_sink_(arena_) {
  require(block_slabs_ > 0, "BlockContainerWriter: zero block size");
}

void BlockContainerWriter::reserve_payload(std::size_t payload_bytes,
                                           std::size_t blocks) {
  arena_.reserve(arena_.size() + payload_bytes);
  index_.reserve(index_.size() + blocks);
}

ByteSink& BlockContainerWriter::begin_block() {
  require(!finished_, "BlockContainerWriter: begin_block after finish");
  require(!open_, "BlockContainerWriter: block already open");
  open_ = true;
  open_offset_ = arena_.size();
  return arena_sink_;
}

void BlockContainerWriter::end_block() {
  require(open_, "BlockContainerWriter: no open block");
  open_ = false;
  const std::size_t size = arena_.size() - open_offset_;
  require(size > 0, "BlockContainerWriter: empty block payload");
  const std::span<const std::uint8_t> payload{arena_.data() + open_offset_,
                                              size};
  index_.push_back({size, crc32(payload), sniff_backend_id(payload),
                    sniff_entropy_id(payload)});
}

void BlockContainerWriter::append_block(
    std::span<const std::uint8_t> payload) {
  begin_block().put_bytes(payload);
  end_block();
}

void BlockContainerWriter::finish(const Shape& shape, ByteSink& out) {
  require(!finished_, "BlockContainerWriter: finish called twice");
  require(!open_, "BlockContainerWriter: finish with an open block");
  const auto spans = plan_blocks(shape.dim(0), block_slabs_);
  require(index_.size() == spans.size(),
          "BlockContainerWriter: block count does not match the plan");
  finished_ = true;
  // v1.2 is only worth its extra index bytes when some block actually
  // carries a non-default entropy stage; all-default (and non-OCZ)
  // containers keep the exact v1.1 bytes.
  bool mixed_entropy = false;
  for (const auto& entry : index_) {
    if (entry.entropy_id != 0 && entry.entropy_id != kUnknownEntropyId) {
      mixed_entropy = true;
      break;
    }
  }
  out.put_bytes(kMagic);
  out.put(mixed_entropy ? kVersion12 : kVersion11);
  write_shape(out, shape);
  out.put_varint(block_slabs_);
  out.put_varint(index_.size());
  for (const auto& entry : index_) {
    out.put_varint(entry.size);
    out.put(entry.crc);
    out.put(entry.backend_id);
    if (mixed_entropy) out.put(entry.entropy_id);
  }
  out.put_bytes(arena_);
}

Bytes BlockContainerWriter::finish(const Shape& shape) {
  BytesWriter out;
  // Exact-fit upper bound: magic + version + shape + geometry varints
  // plus <= 16 bytes per index entry, then the payload arena.
  out.target().reserve(arena_.size() + index_.size() * 16 + 64);
  finish(shape, out);
  return out.take();
}

Bytes build_block_container(const Shape& shape, std::size_t block_slabs,
                            const std::vector<Bytes>& block_payloads) {
  BlockContainerWriter writer(block_slabs);
  for (const auto& payload : block_payloads) writer.append_block(payload);
  return writer.finish(shape);
}

BlockContainerInfo read_block_index(
    std::span<const std::uint8_t> container) {
  BytesReader in(container);
  const auto magic = in.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("block container: bad magic");

  BlockContainerInfo info;
  // v1.1/v1.2 containers carry a version byte after the magic; v1.0
  // puts the shape rank (1-3) there, disjoint from both markers.
  const std::uint8_t lead = in.get<std::uint8_t>();
  int rank = lead;
  if (lead == kVersion11 || lead == kVersion12) {
    info.has_backend_ids = true;
    info.has_entropy_ids = lead == kVersion12;
    rank = in.get<std::uint8_t>();
  } else if (lead < 1 || lead > 3) {
    throw CorruptStream("block container: unsupported version");
  }
  info.shape = read_shape(in, rank);
  info.block_slabs = in.get_varint();
  if (info.block_slabs == 0)
    throw CorruptStream("block container: zero block size");
  const std::uint64_t count = in.get_varint();
  // Expected block count, computed arithmetically so implausible dims
  // never materialize a plan; bs is clamped like plan_blocks does.
  const std::size_t dim0 = info.shape.dim(0);
  const std::size_t bs = std::min(info.block_slabs, dim0);
  const std::uint64_t expected = dim0 / bs + (dim0 % bs != 0 ? 1 : 0);
  if (count != expected)
    throw CorruptStream("block container: block count does not match shape");
  if (count > container.size())  // every block carries >= 1 payload byte
    throw CorruptStream("block container: more blocks than bytes");

  info.blocks.resize(count);
  for (auto& entry : info.blocks) {
    entry.size = in.get_varint();
    if (entry.size == 0) throw CorruptStream("block container: empty block");
    entry.crc = in.get<std::uint32_t>();
    if (info.has_backend_ids) entry.backend_id = in.get<std::uint8_t>();
    if (info.has_entropy_ids) {
      entry.entropy_id = in.get<std::uint8_t>();
    } else if (entry.backend_id != kUnknownBackendId) {
      // A v1.1 index only ever described OCZ1 payloads, whose entropy
      // stage is the implicit legacy chain.
      entry.entropy_id = 0;
    }
  }
  std::size_t offset = container.size() - in.remaining();
  for (auto& entry : info.blocks) {
    entry.offset = offset;
    // Bounds-check before accumulating so crafted sizes can neither
    // wrap the sum nor send block_payload past the buffer.
    if (entry.size > container.size() - offset)
      throw CorruptStream("block container: block overruns the buffer");
    offset += entry.size;
  }
  if (offset != container.size())
    throw CorruptStream("block container: body size mismatch");
  return info;
}

std::span<const std::uint8_t> block_payload(
    std::span<const std::uint8_t> container, const BlockContainerInfo& info,
    std::size_t i) {
  require(i < info.blocks.size(), "block_payload: block index out of range");
  const BlockIndexEntry& entry = info.blocks[i];
  const auto payload = container.subspan(entry.offset, entry.size);
  if (crc32(payload) != entry.crc)
    throw CorruptStream("block container: checksum mismatch in block " +
                        std::to_string(i));
  // The index's id bytes must agree with the payload's own header; a
  // mismatch means one of the two was tampered with after assembly.
  if (info.has_backend_ids && entry.backend_id != sniff_backend_id(payload))
    throw CorruptStream("block container: backend id mismatch in block " +
                        std::to_string(i));
  if (info.has_entropy_ids && entry.entropy_id != sniff_entropy_id(payload))
    throw CorruptStream("block container: entropy id mismatch in block " +
                        std::to_string(i));
  return payload;
}

FloatArray decompress_block(std::span<const std::uint8_t> container,
                            std::size_t i) {
  const BlockContainerInfo info = read_block_index(container);
  return decompress<float>(block_payload(container, info, i));
}

}  // namespace ocelot
