#include "datagen/campaigns.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/workload.hpp"

namespace ocelot {

namespace {

constexpr const char* kApps[] = {"Miranda", "RTM", "CESM"};

/// The Table III route mesh (see netsim/sites.cpp).
constexpr const char* kRoutes[][2] = {
    {"Anvil", "Cori"},  {"Anvil", "Bebop"}, {"Bebop", "Cori"},
    {"Cori", "Bebop"},  {"Bebop", "Anvil"}, {"Cori", "Anvil"},
};

}  // namespace

std::vector<CampaignSpec> generate_campaign_set(
    const CampaignSetConfig& config) {
  require(config.count > 0, "generate_campaign_set: count must be positive");
  require(config.inventory_stride >= 1,
          "generate_campaign_set: stride must be >= 1");
  require(config.arrival_window_s >= 0.0,
          "generate_campaign_set: negative arrival window");
  const bool corridor = config.profile == "corridor";
  require(corridor || config.profile == "mixed",
          "generate_campaign_set: profile must be corridor|mixed");

  FileInventory inventories[3];
  ComputeRates rates[3];
  for (int a = 0; a < 3; ++a) {
    inventories[a] = paper_inventory(kApps[a]);
    rates[a] = paper_compute_rates(kApps[a]);
  }

  Rng rng(config.seed);
  std::vector<CampaignSpec> specs;
  specs.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, 2));
    CampaignSpec spec;
    spec.name = std::string(kApps[a]) + "#" + std::to_string(i);
    spec.inventory.app = kApps[a];
    const std::vector<double>& raw = inventories[a].raw_bytes;
    spec.inventory.raw_bytes.reserve(
        (raw.size() + config.inventory_stride - 1) / config.inventory_stride);
    for (std::size_t f = 0; f < raw.size(); f += config.inventory_stride) {
      spec.inventory.raw_bytes.push_back(raw[f]);
    }
    spec.config.rates = rates[a];

    const double mode_draw = rng.uniform();
    spec.mode = mode_draw < 0.70   ? TransferMode::kCompressedGrouped
                : mode_draw < 0.90 ? TransferMode::kCompressedPerFile
                                   : TransferMode::kDirect;
    const int r = corridor ? 0 : static_cast<int>(rng.uniform_int(0, 5));
    spec.config.src = kRoutes[r][0];
    spec.config.dst = kRoutes[r][1];
    spec.config.compression_ratio = rng.uniform(4.0, 16.0);
    spec.config.compress_nodes = static_cast<int>(rng.uniform_int(4, 16));
    spec.config.decompress_nodes = static_cast<int>(rng.uniform_int(2, 8));
    spec.priority = static_cast<int>(rng.uniform_int(0, 3));
    spec.submit_time = config.arrival_window_s > 0.0
                           ? rng.uniform(0.0, config.arrival_window_s)
                           : 0.0;
    specs.push_back(std::move(spec));
  }
  return specs;
}

OrchestratorOptions fleet_pool_options() {
  OrchestratorOptions options;
  for (const char* s : {"Anvil", "Cori", "Bebop"}) {
    options.pool_nodes[s] = 1 << 20;
  }
  return options;
}

}  // namespace ocelot
