#pragma once
// Synthetic analogs of the paper's six applications (Table IV) plus
// the HACC fields referenced in Table I.
//
// Each application exposes named fields whose shapes, value ranges,
// and compressibility regimes follow the paper's descriptions:
//   QMCPACK  einspline orbitals          33120 x 69 x 69   (3-D)
//   RTM      wavefield snapshots         449 x 449 x 235   (3-D)
//   Miranda  turbulence (density, ...)   256 x 384 x 384   (3-D)
//   CESM     climate fields              1800 x 3600       (2-D)
//   Nyx      cosmology (density, ...)    512 x 512 x 512   (3-D)
//   ISABEL   hurricane (QSNOW, ...)      100 x 500 x 500   (3-D)
//
// Generators take a `scale` in (0, 1] that shrinks every dimension, so
// tests run on tiny grids and benches on moderate ones; the full_shape
// in the catalog always reports the paper's original size.

#include <cstdint>
#include <string>
#include <vector>

#include "common/ndarray.hpp"

namespace ocelot {

/// One generated field (a "file" in the paper's terms).
struct GeneratedField {
  std::string app;
  std::string name;
  FloatArray data;
};

/// Catalog row describing an application at full (paper) scale.
struct AppInfo {
  std::string name;
  std::string science;
  std::string dims_label;       ///< e.g. "449x449x235"
  std::size_t full_file_count;  ///< files in the paper's fixed subset
  double full_bytes;            ///< total dataset bytes at paper scale
};

/// All applications, in the paper's Table IV order.
const std::vector<AppInfo>& dataset_catalog();

/// Generates the named application's representative fields.
///
/// `scale` shrinks each dimension (min 8 cells); `seed` controls all
/// randomness; `variants` multiplies the per-field instances (distinct
/// snapshots/members) for workloads that need many files.
std::vector<GeneratedField> generate_application(const std::string& app,
                                                 double scale,
                                                 std::uint64_t seed,
                                                 int variants = 1);

/// Generates a single named field (app-qualified), e.g.
/// generate_field("CESM", "CLDHGH", 0.1, 42).
FloatArray generate_field(const std::string& app, const std::string& field,
                          double scale, std::uint64_t seed);

/// Field names available for an application.
std::vector<std::string> field_names(const std::string& app);

/// RTM-specific: snapshot at timestep `t` of `t_max`; early snapshots
/// are nearly empty (very high compression ratio), late ones fill the
/// domain (low ratio) — reproducing the paper's RTM-0594 vs RTM-1982
/// spread in Table V.
FloatArray generate_rtm_snapshot(double scale, int t, int t_max,
                                 std::uint64_t seed);

}  // namespace ocelot
