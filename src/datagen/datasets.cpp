#include "datagen/datasets.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "datagen/synth.hpp"

namespace ocelot {

namespace {

/// Deterministic per-field seed derived from names and the user seed.
std::uint64_t field_seed(const std::string& app, const std::string& field,
                         std::uint64_t seed, int variant) {
  const std::uint64_t h1 = std::hash<std::string>{}(app);
  const std::uint64_t h2 = std::hash<std::string>{}(field);
  return seed ^ (h1 * 0x9E3779B97F4A7C15ull) ^ (h2 << 1) ^
         (static_cast<std::uint64_t>(variant) * 0xBF58476D1CE4E5B9ull);
}

std::size_t scaled(std::size_t full, double scale) {
  const auto s = static_cast<std::size_t>(static_cast<double>(full) * scale);
  return std::max<std::size_t>(8, s);
}

Shape scale_shape(std::initializer_list<std::size_t> dims, double scale) {
  std::vector<std::size_t> d;
  for (const std::size_t n : dims) d.push_back(scaled(n, scale));
  if (d.size() == 1) return Shape(d[0]);
  if (d.size() == 2) return Shape(d[0], d[1]);
  return Shape(d[0], d[1], d[2]);
}

/// Field recipe: how to synthesize one named field.
struct FieldDef {
  std::string name;
  double lo;     ///< target min
  double hi;     ///< target max
  double slope;  ///< Fourier smoothness (higher = smoother)
  double noise;  ///< white-noise amplitude relative to range
  double sparse; ///< clamp-below quantile (0 = dense)
  bool log10;    ///< apply log transform before rescale
};

FloatArray make_fourier_recipe(const Shape& shape, const FieldDef& def,
                               Rng& rng) {
  FloatArray f = fourier_field(shape, rng, def.slope);
  if (def.noise > 0.0) add_noise(f, rng, def.noise);
  if (def.sparse > 0.0) clamp_below_quantile(f, def.sparse);
  if (def.log10) {
    rescale(f, 0.0, 1.0);
    log_transform(f);
  }
  rescale(f, def.lo, def.hi);
  return f;
}

// --- CESM: 2-D climate fields (value ranges follow Table I and the
// PSNR tables; smoothness varies per physical quantity). ---
const std::vector<FieldDef>& cesm_fields() {
  static const std::vector<FieldDef> defs = {
      // name          lo        hi         slope noise  sparse log10
      {"CLDHGH",       0.0,      0.92,      1.2,  0.02,  0.0,  false},
      {"CLDMED",       0.0,      0.98,      1.0,  0.05,  0.0,  false},
      {"FLDSC",        92.84,    418.24,    2.0,  0.0,   0.0,  false},
      {"PCONVT",       39025.27, 103207.45, 2.2,  0.0,   0.0,  false},
      {"TMQ",          0.3,      71.1,      1.8,  0.0,   0.0,  false},
      {"TROP_Z",       6000.0,   18000.0,   2.4,  0.0,   0.0,  false},
      {"LHFLX",        -60.0,    580.0,     1.5,  0.01,  0.0,  false},
      {"SNOWHICE",     0.0,      1.2,       1.6,  0.0,   0.65, false},
      {"ICEFRAC",      0.0,      1.0,       1.8,  0.0,   0.7,  false},
      {"PSL",          95000.0,  105000.0,  2.4,  0.0,   0.0,  false},
      {"TREFHT",       215.0,    315.0,     2.0,  0.0,   0.0,  false},
      {"FSDTOA",       0.0,      1370.0,    2.6,  0.0,   0.0,  false},
      {"FLNSC",        20.0,     320.0,     1.7,  0.01,  0.0,  false},
      {"TS",           220.0,    320.0,     2.1,  0.0,   0.0,  false},
  };
  return defs;
}

// --- Miranda: 3-D turbulence with a Kolmogorov-like spectrum.
// Slopes tuned so SZ3-interp reaches the high single-digit ratios the
// paper's Miranda subset shows at eb 1e-3. ---
const std::vector<FieldDef>& miranda_fields() {
  static const std::vector<FieldDef> defs = {
      {"density",     0.98,    3.1,    2.4, 0.001, 0.0, false},
      {"velocity-x",  -1.9,    2.1,    2.2, 0.002, 0.0, false},
      {"velocity-y",  -2.0,    2.0,    2.2, 0.002, 0.0, false},
      {"velocity-z",  -1.8,    1.9,    2.2, 0.002, 0.0, false},
      {"pressure",    0.5,     7.2,    2.7, 0.001, 0.0, false},
      {"diffusivity", 0.0,     0.35,   2.0, 0.004, 0.0, false},
      {"viscocity",   0.0,     0.22,   2.0, 0.004, 0.0, false},
      {"energy",      1.1,     11.0,   2.5, 0.001, 0.0, false},
  };
  return defs;
}

// --- ISABEL: hurricane fields; several are log10-scaled and sparse. ---
const std::vector<FieldDef>& isabel_fields() {
  static const std::vector<FieldDef> defs = {
      {"QSNOWf48_log10",  -5.0,   0.0,    1.4, 0.0,  0.55, true},
      {"PRECIPf48_log10", -5.2,   0.1,    1.3, 0.0,  0.5,  true},
      {"CLOUDf48_log10",  -5.5,   0.0,    1.2, 0.0,  0.45, true},
      {"QVAPORf48",       0.0,    0.025,  1.9, 0.0,  0.0,  false},
      {"Pf48",            -5471.0, 3225.0, 2.2, 0.0, 0.0,  false},
      {"Wf48",            -9.5,   12.8,   1.2, 0.02, 0.0,  false},
      {"Uf48",            -79.5,  85.0,   1.6, 0.01, 0.0,  false},
      {"Vf48",            -76.0,  82.8,   1.6, 0.01, 0.0,  false},
      {"TCf48",           -83.0,  31.5,   2.0, 0.0,  0.0,  false},
  };
  return defs;
}

// --- Nyx: cosmology; density fields are blob-clustered with huge
// dynamic range, thermals smoother. ---
const std::vector<FieldDef>& nyx_fields() {
  static const std::vector<FieldDef> defs = {
      {"baryon_density",      0.0, 1.0,  0.0, 0.0,  0.0, false},  // blobs
      {"dark_matter_density", 0.0, 1.0,  0.0, 0.0,  0.0, false},  // blobs
      {"temperature",         2e3, 4e6,  1.6, 0.01, 0.0, false},
      {"velocity_x",          -4e6, 4e6, 1.5, 0.01, 0.0, false},
      {"velocity_y",          -4e6, 4e6, 1.5, 0.01, 0.0, false},
      {"velocity_z",          -4e6, 4e6, 1.5, 0.01, 0.0, false},
  };
  return defs;
}

bool is_blob_field(const std::string& app, const std::string& field) {
  return app == "Nyx" && (field == "baryon_density" ||
                          field == "dark_matter_density");
}

Shape app_shape(const std::string& app, double scale) {
  if (app == "QMCPACK") return scale_shape({288, 69, 69}, scale);
  if (app == "RTM") return scale_shape({449, 449, 235}, scale);
  if (app == "Miranda") return scale_shape({256, 384, 384}, scale);
  if (app == "CESM") return scale_shape({1800, 3600}, scale);
  if (app == "Nyx") return scale_shape({512, 512, 512}, scale);
  if (app == "ISABEL") return scale_shape({100, 500, 500}, scale);
  if (app == "HACC") return scale_shape({1073726487}, scale * 0.001);
  throw NotFound("unknown application: " + app);
}

const std::vector<FieldDef>* field_table(const std::string& app) {
  if (app == "CESM") return &cesm_fields();
  if (app == "Miranda") return &miranda_fields();
  if (app == "ISABEL") return &isabel_fields();
  if (app == "Nyx") return &nyx_fields();
  return nullptr;
}

}  // namespace

const std::vector<AppInfo>& dataset_catalog() {
  static const std::vector<AppInfo> catalog = {
      {"QMCPACK", "Electronic structures", "33120x69x69", 288, 6.3e9},
      {"RTM", "Seismic imaging (reverse time migration)", "449x449x235",
       3601, 682e9},
      {"Miranda", "Hydrodynamics / large turbulence", "256x384x384", 768,
       115e9},
      {"CESM", "Climate", "1800x3600 and 26x1800x3600", 7182, 1.61e12},
      {"Nyx", "Cosmology", "512x512x512", 512, 275e9},
      {"ISABEL", "Weather (hurricane)", "100x500x500", 633, 63e9},
  };
  return catalog;
}

std::vector<std::string> field_names(const std::string& app) {
  std::vector<std::string> names;
  if (const auto* table = field_table(app)) {
    for (const auto& def : *table) names.push_back(def.name);
    return names;
  }
  if (app == "RTM") {
    return {"snapshot-0594", "snapshot-1048", "snapshot-1982",
            "snapshot-2600", "snapshot-3300"};
  }
  if (app == "QMCPACK") return {"einspline-orbital"};
  if (app == "HACC") return {"vx", "vy", "vz", "xx"};
  throw NotFound("unknown application: " + app);
}

FloatArray generate_field(const std::string& app, const std::string& field,
                          double scale, std::uint64_t seed) {
  Rng rng(field_seed(app, field, seed, 0));
  const Shape shape = app_shape(app, scale);

  if (const auto* table = field_table(app)) {
    for (const auto& def : *table) {
      if (def.name != field) continue;
      if (is_blob_field(app, field)) {
        FloatArray f = gaussian_blobs(shape, rng, 40, 0.02, 0.12);
        // Cosmology densities span many decades: normalize, then
        // exponentiate so voids are ~0 and halos huge (~e^6 contrast).
        rescale(f, 0.0, 1.0);
        for (float& v : f.values()) {
          v = static_cast<float>(std::expm1(6.0 * static_cast<double>(v)));
        }
        rescale(f, 0.0, field == "baryon_density" ? 6.2e4 : 1.3e4);
        return f;
      }
      return make_fourier_recipe(shape, def, rng);
    }
    throw NotFound(app + ": unknown field " + field);
  }

  if (app == "RTM") {
    // Named snapshots map to timesteps of a 3600-step run.
    const std::string prefix = "snapshot-";
    require(field.rfind(prefix, 0) == 0, "RTM: field must be snapshot-<t>");
    const int t = std::stoi(field.substr(prefix.size()));
    return generate_rtm_snapshot(scale, t, 3600, seed);
  }
  if (app == "QMCPACK") {
    FloatArray f = oscillatory_field(shape, rng, 6.0);
    rescale(f, -1.3, 1.3);
    return f;
  }
  if (app == "HACC") {
    // 1-D particle arrays: velocities are heavy-tailed mixtures;
    // positions are sorted coordinates in [0, 256).
    FloatArray f(shape);
    if (field == "xx") {
      auto vals = f.values();
      for (float& v : vals) v = static_cast<float>(rng.uniform(0.0, 256.0));
      std::sort(vals.begin(), vals.end());
      return f;
    }
    for (float& v : f.values()) {
      const double burst = rng.chance(0.05) ? rng.normal(0.0, 1500.0) : 0.0;
      v = static_cast<float>(rng.normal(0.0, 420.0) + burst);
    }
    rescale(f, field == "vx" ? -3846.21 : -3900.0,
            field == "vx" ? 4031.25 : 3950.0);
    return f;
  }
  throw NotFound("unknown application: " + app);
}

FloatArray generate_rtm_snapshot(double scale, int t, int t_max,
                                 std::uint64_t seed) {
  require(t >= 0 && t_max > 0, "generate_rtm_snapshot: bad timestep");
  Rng rng(field_seed("RTM", "snapshot", seed, t / 64));
  const Shape shape = app_shape("RTM", scale);
  // The wavefront expands linearly with time and wraps the full domain
  // diagonal near t_max.
  double diag = 0.0;
  for (int d = 0; d < shape.rank(); ++d) {
    diag += static_cast<double>(shape.dim(d)) * static_cast<double>(shape.dim(d));
  }
  diag = std::sqrt(diag);
  // Wavefronts cover the domain gradually; long wavelengths keep the
  // oscillation well-resolved (RTM wavefields are band-limited), which
  // is what gives the paper's RTM subset its very high ratios on early
  // snapshots and double-digit ones late in the run.
  const double front =
      diag * (0.08 + 0.72 * static_cast<double>(t) / static_cast<double>(t_max));
  const double wavelength = std::max(8.0, diag / 14.0);
  FloatArray f = radial_waves(shape, rng, 2, wavelength, front);
  rescale(f, -2200.0, 2400.0);
  return f;
}

std::vector<GeneratedField> generate_application(const std::string& app,
                                                 double scale,
                                                 std::uint64_t seed,
                                                 int variants) {
  require(variants >= 1, "generate_application: variants must be >= 1");
  std::vector<GeneratedField> fields;
  if (app == "RTM") {
    // Variants are snapshots spread across the run.
    const int count = std::max(variants, 1) * 5;
    for (int i = 0; i < count; ++i) {
      const int t = 300 + (3300 - 300) * i / std::max(1, count - 1);
      fields.push_back({app, "snapshot-" + std::to_string(t),
                        generate_rtm_snapshot(scale, t, 3600, seed)});
    }
    return fields;
  }
  for (const std::string& name : field_names(app)) {
    for (int v = 0; v < variants; ++v) {
      const std::uint64_t s = field_seed(app, name, seed, v);
      FloatArray data = generate_field(app, name, scale, s);
      std::string label = name;
      if (variants > 1) label += "-m" + std::to_string(v);
      fields.push_back({app, std::move(label), std::move(data)});
    }
  }
  return fields;
}

}  // namespace ocelot
