#include "datagen/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace ocelot {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

struct Dims {
  std::size_t n0, n1, n2;
  int rank;
};

Dims dims_of(const Shape& shape) {
  return {shape.dim(0), shape.rank() >= 2 ? shape.dim(1) : 1,
          shape.rank() >= 3 ? shape.dim(2) : 1, shape.rank()};
}

}  // namespace

FloatArray fourier_field(const Shape& shape, Rng& rng, double slope,
                         int n_modes) {
  require(n_modes > 0, "fourier_field: need at least one mode");
  const Dims d = dims_of(shape);

  struct Mode {
    double k0, k1, k2, amp, phase;
  };
  std::vector<Mode> modes;
  modes.reserve(static_cast<std::size_t>(n_modes));
  for (int m = 0; m < n_modes; ++m) {
    // Wave numbers from 1 to ~n/2 per active dimension, log-uniform so
    // low frequencies dominate mode selection evenly per octave.
    auto draw_k = [&](std::size_t n) -> double {
      if (n <= 2) return 0.0;
      const double k_max = static_cast<double>(n) / 2.0;
      return std::exp(rng.uniform(0.0, std::log(k_max)));
    };
    Mode mode;
    mode.k0 = draw_k(d.n0);
    mode.k1 = d.rank >= 2 ? draw_k(d.n1) : 0.0;
    mode.k2 = d.rank >= 3 ? draw_k(d.n2) : 0.0;
    const double kmag = std::sqrt(mode.k0 * mode.k0 + mode.k1 * mode.k1 +
                                  mode.k2 * mode.k2);
    mode.amp = std::pow(std::max(1.0, kmag), -slope);
    mode.phase = rng.uniform(0.0, kTwoPi);
    modes.push_back(mode);
  }

  FloatArray out(shape);
  auto vals = out.values();
  for (std::size_t i = 0; i < d.n0; ++i) {
    const double x0 = static_cast<double>(i) / static_cast<double>(d.n0);
    for (std::size_t j = 0; j < d.n1; ++j) {
      const double x1 = static_cast<double>(j) / static_cast<double>(d.n1);
      for (std::size_t k = 0; k < d.n2; ++k) {
        const double x2 = static_cast<double>(k) / static_cast<double>(d.n2);
        double v = 0.0;
        for (const Mode& m : modes) {
          v += m.amp * std::cos(kTwoPi * (m.k0 * x0 + m.k1 * x1 + m.k2 * x2) +
                                m.phase);
        }
        vals[(i * d.n1 + j) * d.n2 + k] = static_cast<float>(v);
      }
    }
  }
  return out;
}

FloatArray gaussian_blobs(const Shape& shape, Rng& rng, int n_blobs,
                          double min_width, double max_width) {
  require(n_blobs > 0, "gaussian_blobs: need at least one blob");
  require(min_width > 0.0 && max_width >= min_width,
          "gaussian_blobs: bad width range");
  const Dims d = dims_of(shape);

  struct Blob {
    double c0, c1, c2, inv2w2, amp;
  };
  std::vector<Blob> blobs;
  blobs.reserve(static_cast<std::size_t>(n_blobs));
  for (int b = 0; b < n_blobs; ++b) {
    Blob blob;
    blob.c0 = rng.uniform();
    blob.c1 = rng.uniform();
    blob.c2 = rng.uniform();
    const double w = rng.uniform(min_width, max_width);
    blob.inv2w2 = 1.0 / (2.0 * w * w);
    // Log-normal amplitudes: a few dominant structures, many faint.
    blob.amp = std::exp(rng.normal(0.0, 1.2));
    blobs.push_back(blob);
  }

  FloatArray out(shape);
  auto vals = out.values();
  for (std::size_t i = 0; i < d.n0; ++i) {
    const double x0 = static_cast<double>(i) / static_cast<double>(d.n0);
    for (std::size_t j = 0; j < d.n1; ++j) {
      const double x1 = static_cast<double>(j) / static_cast<double>(d.n1);
      for (std::size_t k = 0; k < d.n2; ++k) {
        const double x2 = static_cast<double>(k) / static_cast<double>(d.n2);
        double v = 0.0;
        for (const Blob& b : blobs) {
          // Periodic (wrapped) distance keeps fields tileable.
          auto wrap = [](double a) {
            const double w = std::abs(a);
            return std::min(w, 1.0 - w);
          };
          const double r2 = wrap(x0 - b.c0) * wrap(x0 - b.c0) +
                            wrap(x1 - b.c1) * wrap(x1 - b.c1) +
                            wrap(x2 - b.c2) * wrap(x2 - b.c2);
          v += b.amp * std::exp(-r2 * b.inv2w2);
        }
        vals[(i * d.n1 + j) * d.n2 + k] = static_cast<float>(v);
      }
    }
  }
  return out;
}

FloatArray radial_waves(const Shape& shape, Rng& rng, int n_sources,
                        double wavelength, double front_radius) {
  require(n_sources > 0, "radial_waves: need at least one source");
  require(wavelength > 0.0, "radial_waves: bad wavelength");
  const Dims d = dims_of(shape);

  struct Source {
    double c0, c1, c2, phase;
  };
  std::vector<Source> sources;
  sources.reserve(static_cast<std::size_t>(n_sources));
  for (int s = 0; s < n_sources; ++s) {
    sources.push_back({rng.uniform(0.2, 0.8) * static_cast<double>(d.n0),
                       rng.uniform(0.2, 0.8) * static_cast<double>(d.n1),
                       rng.uniform(0.2, 0.8) * static_cast<double>(d.n2),
                       rng.uniform(0.0, kTwoPi)});
  }

  FloatArray out(shape);
  auto vals = out.values();
  for (std::size_t i = 0; i < d.n0; ++i) {
    for (std::size_t j = 0; j < d.n1; ++j) {
      for (std::size_t k = 0; k < d.n2; ++k) {
        double v = 0.0;
        for (const Source& s : sources) {
          const double dx = static_cast<double>(i) - s.c0;
          const double dy = static_cast<double>(j) - s.c1;
          const double dz = static_cast<double>(k) - s.c2;
          const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
          if (r > front_radius) continue;  // wave has not arrived yet
          // Decaying expanding wave packet; strongest near the front.
          const double envelope =
              std::exp(-(front_radius - r) / (4.0 * wavelength)) /
              (1.0 + r / (8.0 * wavelength));
          v += envelope * std::sin(kTwoPi * r / wavelength + s.phase);
        }
        vals[(i * d.n1 + j) * d.n2 + k] = static_cast<float>(v);
      }
    }
  }
  return out;
}

FloatArray oscillatory_field(const Shape& shape, Rng& rng, double frequency) {
  const Dims d = dims_of(shape);
  const double f0 = frequency * rng.uniform(0.8, 1.2);
  const double f1 = frequency * rng.uniform(0.8, 1.2);
  const double f2 = frequency * rng.uniform(0.8, 1.2);
  const double p0 = rng.uniform(0.0, kTwoPi);
  const double p1 = rng.uniform(0.0, kTwoPi);
  const double p2 = rng.uniform(0.0, kTwoPi);

  FloatArray out(shape);
  auto vals = out.values();
  for (std::size_t i = 0; i < d.n0; ++i) {
    const double x0 = static_cast<double>(i) / static_cast<double>(d.n0);
    for (std::size_t j = 0; j < d.n1; ++j) {
      const double x1 = static_cast<double>(j) / static_cast<double>(d.n1);
      for (std::size_t k = 0; k < d.n2; ++k) {
        const double x2 = static_cast<double>(k) / static_cast<double>(d.n2);
        // Gaussian envelope centered mid-domain, like a bound orbital.
        const double r2 = (x0 - 0.5) * (x0 - 0.5) + (x1 - 0.5) * (x1 - 0.5) +
                          (x2 - 0.5) * (x2 - 0.5);
        const double env = std::exp(-3.0 * r2);
        const double v = env * std::sin(kTwoPi * f0 * x0 + p0) *
                         std::sin(kTwoPi * f1 * x1 + p1) *
                         std::sin(kTwoPi * f2 * x2 + p2);
        vals[(i * d.n1 + j) * d.n2 + k] = static_cast<float>(v);
      }
    }
  }
  return out;
}

void rescale(FloatArray& a, double lo, double hi) {
  require(hi >= lo, "rescale: hi < lo");
  const ValueSummary s = summarize(a.values());
  const double range = s.range;
  auto vals = a.values();
  if (range == 0.0) {
    std::fill(vals.begin(), vals.end(), static_cast<float>(lo));
    return;
  }
  const double scale = (hi - lo) / range;
  for (float& v : vals) {
    v = static_cast<float>(lo + (static_cast<double>(v) - s.min) * scale);
  }
}

void clamp_below_quantile(FloatArray& a, double quantile) {
  require(quantile >= 0.0 && quantile <= 1.0,
          "clamp_below_quantile: quantile out of [0,1]");
  if (quantile == 0.0) return;
  std::vector<float> sorted(a.values().begin(), a.values().end());
  const auto idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(quantile * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  const float level = sorted[idx];
  for (float& v : a.values()) v = std::max(v, level);
}

void log_transform(FloatArray& a, double s) {
  for (float& v : a.values()) {
    const double x = std::max(0.0, static_cast<double>(v));
    v = static_cast<float>(std::log10(1.0 + s * x));
  }
}

void add_noise(FloatArray& a, Rng& rng, double amplitude) {
  for (float& v : a.values()) {
    v += static_cast<float>(rng.normal(0.0, amplitude));
  }
}

}  // namespace ocelot
