#pragma once
// Synthetic-field primitives for the dataset generators.
//
// The paper's datasets are unavailable offline; these primitives
// synthesize fields with the statistical properties that drive
// error-bounded compression behaviour: spectral smoothness (Fourier
// fields with a power-law spectrum), localized structure (Gaussian
// blobs), oscillatory wavefronts (RTM-style), and sparsity transforms
// (log-scaled precipitation-style fields). See DESIGN.md section 1.

#include <cstdint>

#include "common/ndarray.hpp"
#include "common/rng.hpp"

namespace ocelot {

/// Random-phase Fourier field: sum of `n_modes` cosine modes whose
/// amplitudes follow |k|^-slope. Larger slope = smoother = more
/// compressible. Output is approximately zero-mean, O(1) amplitude.
FloatArray fourier_field(const Shape& shape, Rng& rng, double slope,
                         int n_modes = 48);

/// Sum of `n_blobs` Gaussian bumps with widths drawn from
/// [min_width, max_width] (fractions of the domain). Models clustered
/// density fields (Nyx-style cosmology).
FloatArray gaussian_blobs(const Shape& shape, Rng& rng, int n_blobs,
                          double min_width, double max_width);

/// Expanding spherical wavefronts from `n_sources` point sources, with
/// wavelength `wavelength` (in grid cells) and front radius
/// `front_radius` (cells); cells beyond the front are zero. Models a
/// reverse-time-migration snapshot at a given timestep.
FloatArray radial_waves(const Shape& shape, Rng& rng, int n_sources,
                        double wavelength, double front_radius);

/// Separable oscillatory field sin(ax)sin(by)sin(cz) with a smooth
/// envelope; models spline-tabulated orbitals (QMCPACK einspline).
FloatArray oscillatory_field(const Shape& shape, Rng& rng, double frequency);

/// Affinely rescales values so min -> lo and max -> hi in place.
/// A constant field maps to lo.
void rescale(FloatArray& a, double lo, double hi);

/// Sparsifies in place: values below the `quantile` level (0..1) are
/// clamped to that level. Creates the large flat regions typical of
/// precipitation/snow fields.
void clamp_below_quantile(FloatArray& a, double quantile);

/// log10(1 + s*x) transform in place (x must be >= 0); mimics the
/// "_log10" fields in the ISABEL dataset.
void log_transform(FloatArray& a, double s = 1e3);

/// Adds white noise of the given amplitude in place (roughens the
/// field, raising entropy and lowering compressibility).
void add_noise(FloatArray& a, Rng& rng, double amplitude);

}  // namespace ocelot
