#pragma once
// Deterministic fleet-scale campaign-set generation.
//
// The paper evaluates a handful of hand-picked campaigns; fleet-scale
// testing of the orchestrator needs thousands of heterogeneous ones.
// generate_campaign_set derives a campaign list of any size from one
// seed: applications, transfer modes, routes, compression ratios,
// node counts, priorities and arrival times are all drawn from a
// seeded Rng over the paper's Table VIII inventories, so the same
// (seed, count) pair always produces byte-identical specs — the basis
// for the orchestrator's determinism tests and the sim scaling bench.

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "orchestrator/orchestrator.hpp"

namespace ocelot {

struct CampaignSetConfig {
  std::size_t count = 100;
  std::uint64_t seed = 42;
  /// Submit times are drawn uniformly in [0, arrival_window_s); a
  /// tight window piles campaigns onto the WAN concurrently.
  double arrival_window_s = 120.0;
  /// "corridor" puts every campaign on the Anvil->Cori route (maximum
  /// WAN contention); "mixed" draws routes across the whole mesh.
  std::string profile = "corridor";
  /// Keep every k-th file of the paper inventory (k >= 1): full
  /// Table VIII inventories are thousands of files, which is prep cost
  /// without extra event-engine coverage at thousand-campaign scale.
  std::size_t inventory_stride = 16;
};

/// Generates `config.count` campaign specs, deterministically in
/// `config.seed`.
std::vector<CampaignSpec> generate_campaign_set(
    const CampaignSetConfig& config);

/// Orchestrator options sized for fleet runs: node pools large enough
/// that compute jobs never queue on each other, concentrating the
/// contention on the shared WAN routes.
OrchestratorOptions fleet_pool_options();

}  // namespace ocelot
