#pragma once
// Multi-campaign orchestrator.
//
// The paper evaluates one campaign at a time; a production deployment
// serves many concurrent workloads that contend for the same WAN
// links, compute-node pools and funcX endpoints. The orchestrator
// accepts a list of CampaignSpecs (site pair, transfer mode,
// inventory, priority, submit time) and runs them as event-driven
// processes on one sim::Engine over shared resources:
//
//   * WAN routes are FairShareChannels — concurrent transfers on the
//     same route split the link max-min fairly (GlobusService);
//   * each site's compute nodes are one BatchScheduler pool —
//     compression/decompression jobs queue for shared capacity, with
//     campaign priority deciding queue order;
//   * each site's funcX endpoint keeps one warm-container pool — the
//     first campaign pays the cold start, later ones run warm.
//
// A single campaign on an idle system reproduces the closed-form
// numbers of the original one-shot model exactly, so run_campaign()
// in core/campaign is now just the N=1 special case of this engine.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "faas/funcx.hpp"
#include "scheduler/batch.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "sim/link_flap.hpp"
#include "sim/tuning.hpp"
#include "transfer/globus.hpp"

namespace ocelot {

/// One workload for the orchestrator.
struct CampaignSpec {
  std::string name;             ///< report label; defaults to inventory.app
  FileInventory inventory;
  TransferMode mode = TransferMode::kCompressedGrouped;
  CampaignConfig config;        ///< site pair, node counts, ratio, rates
  double submit_time = 0.0;     ///< virtual time the campaign arrives
  int priority = 0;             ///< node-pool queue priority (higher first)
};

/// Per-campaign outcome: the classic report plus scheduling context.
struct CampaignOutcome {
  std::string name;
  TransferMode mode = TransferMode::kDirect;
  double submit_time = 0.0;
  double finish_time = 0.0;     ///< absolute virtual completion time
  int priority = 0;
  CampaignReport report;        ///< durations relative to submit_time
  /// Actual wire time divided by the uncontended estimate; 1.0 means
  /// the campaign never shared its route.
  double transfer_stretch = 1.0;
};

/// Aggregate per-route link statistics.
struct LinkUsage {
  double capacity_bps = 0.0;
  sim::ChannelStats stats;
};

/// Aggregate per-site node-pool statistics.
struct PoolUsage {
  int total_nodes = 0;
  SchedulerStats stats;
};

struct OrchestratorReport {
  std::vector<CampaignOutcome> campaigns;  ///< in add_campaign order
  double makespan = 0.0;                   ///< latest finish time
  std::map<std::string, LinkUsage> links;
  std::map<std::string, PoolUsage> pools;
  std::uint64_t faas_cold_starts = 0;
  std::uint64_t faas_warm_hits = 0;
  std::uint64_t events_executed = 0;
};

/// Deterministic, byte-stable rendering of a report (two runs of the
/// same scenario produce identical strings — the determinism contract).
std::string to_string(const OrchestratorReport& report);

/// FNV-1a hash of the byte-stable rendering: a compact final-state
/// fingerprint for determinism checks at fleet scale.
std::uint64_t fingerprint(const OrchestratorReport& report);

struct OrchestratorOptions {
  /// Node-pool size per site; sites not listed use the Table III
  /// machine size from site_catalog().
  std::map<std::string, int> pool_nodes;
  /// GridFTP endpoint-pair tuning shared by all campaigns.
  EndpointSettings endpoint_settings;
  /// Event-queue implementation for the engine (calendar by default;
  /// heap for differential runs).
  sim::QueueKind queue_kind = sim::default_queue_kind();
};

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorOptions options = {});
  ~Orchestrator();

  /// Ambient queueing delay for `site`'s node pool (default: immediate).
  /// Must be called before run().
  void set_site_wait_model(const std::string& site,
                           std::unique_ptr<WaitModel> model);

  /// Validates and registers a campaign; returns its index.
  std::size_t add_campaign(CampaignSpec spec);

  /// Registers a seeded bandwidth-flap injector on the src->dst WAN
  /// route. The injector starts with run() and stops once every
  /// campaign has finished (so the event queue drains).
  void add_link_flap(const std::string& src, const std::string& dst,
                     sim::LinkFlapConfig config);

  /// Runs every registered campaign to completion; single-shot.
  OrchestratorReport run();

  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Flap injectors created by run(), in add_link_flap order.
  [[nodiscard]] const std::vector<std::unique_ptr<sim::LinkFlap>>&
  link_flaps() const {
    return flaps_;
  }

 private:
  struct Runtime;

  [[nodiscard]] int pool_capacity(const std::string& site_name) const;
  BatchScheduler& pool_for(const std::string& site_name);
  void start_campaign(Runtime& rt);
  void start_compressed_leg(Runtime& rt);

  struct FlapSpec {
    std::string src;
    std::string dst;
    sim::LinkFlapConfig config;
  };

  OrchestratorOptions options_;
  sim::Engine engine_;
  std::unique_ptr<FuncXService> faas_;
  std::unique_ptr<GlobusService> globus_;
  std::map<std::string, std::unique_ptr<BatchScheduler>> pools_;
  std::map<std::string, std::unique_ptr<WaitModel>> wait_models_;
  std::vector<std::unique_ptr<Runtime>> campaigns_;
  std::vector<FlapSpec> flap_specs_;
  std::vector<std::unique_ptr<sim::LinkFlap>> flaps_;
  std::size_t live_campaigns_ = 0;
  bool ran_ = false;
};

/// Convenience: runs `specs` on a fresh orchestrator and returns the
/// report. `isolated=true` instead runs each campaign on its own
/// orchestrator (no contention) — the baseline for contention studies.
OrchestratorReport run_campaigns(std::vector<CampaignSpec> specs,
                                 bool isolated = false,
                                 OrchestratorOptions options = {});

}  // namespace ocelot
