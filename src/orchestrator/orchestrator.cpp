#include "orchestrator/orchestrator.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/error.hpp"
#include "core/grouping.hpp"
#include "exec/cluster_model.hpp"
#include "netsim/sites.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

/// Per-campaign mutable state threaded through the event callbacks.
struct Orchestrator::Runtime {
  CampaignSpec spec;
  CampaignOutcome outcome;
  sim::ProcessHandle proc;

  LinkProfile link;
  double cp_seconds = 0.0;
  double dp_seconds = 0.0;
  std::vector<double> wire_files;
  std::size_t wire_count = 0;   ///< wire_files.size(), kept past the move
  double wire_bytes = 0.0;      ///< sum of wire_files, kept past the move
  std::shared_ptr<TransferTask> task;
};

Orchestrator::Orchestrator(OrchestratorOptions options)
    : options_(std::move(options)), engine_(options_.queue_kind) {
  faas_ = std::make_unique<FuncXService>(engine_);
  globus_ =
      std::make_unique<GlobusService>(engine_, options_.endpoint_settings);
  faas_->register_function("compress");
  faas_->register_function("decompress");
}

Orchestrator::~Orchestrator() = default;

void Orchestrator::set_site_wait_model(const std::string& site_name,
                                       std::unique_ptr<WaitModel> model) {
  require(model != nullptr, "Orchestrator: null wait model");
  require(pools_.find(site_name) == pools_.end(),
          "Orchestrator: wait model must be set before the pool is used");
  wait_models_[site_name] = std::move(model);
}

int Orchestrator::pool_capacity(const std::string& site_name) const {
  auto opt = options_.pool_nodes.find(site_name);
  if (opt != options_.pool_nodes.end()) return opt->second;
  return site(site_name).nodes;
}

BatchScheduler& Orchestrator::pool_for(const std::string& site_name) {
  auto it = pools_.find(site_name);
  if (it == pools_.end()) {
    const int nodes = pool_capacity(site_name);
    std::unique_ptr<WaitModel> wait;
    auto wm = wait_models_.find(site_name);
    if (wm != wait_models_.end()) {
      wait = std::move(wm->second);
      wait_models_.erase(wm);
    } else {
      wait = std::make_unique<ImmediateWait>();
    }
    it = pools_
             .emplace(site_name, std::make_unique<BatchScheduler>(
                                     engine_, nodes, std::move(wait)))
             .first;
  }
  return *it->second;
}

std::size_t Orchestrator::add_campaign(CampaignSpec spec) {
  require(!ran_, "Orchestrator: cannot add campaigns after run()");
  require(!spec.inventory.raw_bytes.empty(),
          "run_campaign: empty inventory");
  require(spec.config.compression_ratio >= 1.0,
          "run_campaign: compression ratio must be >= 1");
  require(spec.submit_time >= 0.0, "Orchestrator: negative submit time");
  require(spec.config.adaptive_overhead >= 0.0,
          "run_campaign: negative adaptive overhead");

  auto rt = std::make_unique<Runtime>();
  rt->spec = std::move(spec);
  if (rt->spec.name.empty()) rt->spec.name = rt->spec.inventory.app;
  rt->link = route(rt->spec.config.src, rt->spec.config.dst);

  if (rt->spec.mode != TransferMode::kDirect) {
    // Validate against prospective capacities without instantiating
    // the pools, so set_site_wait_model() stays usable until run().
    require(rt->spec.config.compress_nodes > 0 &&
                rt->spec.config.compress_nodes <=
                    pool_capacity(rt->spec.config.src),
            "Orchestrator: compress_nodes exceeds the source pool");
    require(rt->spec.config.decompress_nodes > 0 &&
                rt->spec.config.decompress_nodes <=
                    pool_capacity(rt->spec.config.dst),
            "Orchestrator: decompress_nodes exceeds the destination pool");
  }

  campaigns_.push_back(std::move(rt));
  return campaigns_.size() - 1;
}

void Orchestrator::add_link_flap(const std::string& src,
                                 const std::string& dst,
                                 sim::LinkFlapConfig config) {
  require(!ran_, "Orchestrator: cannot add link flaps after run()");
  route(src, dst);  // validates the route exists
  flap_specs_.push_back(FlapSpec{src, dst, config});
}

void Orchestrator::start_campaign(Runtime& rt) {
  rt.proc = engine_.spawn(rt.spec.name);
  rt.proc->on_exit([this] { --live_campaigns_; });
  CampaignReport& report = rt.outcome.report;
  report.mode = rt.spec.mode;

  if (rt.spec.mode == TransferMode::kDirect) {
    TransferRequest req{rt.spec.inventory.app + "/direct", rt.link,
                        rt.spec.inventory.raw_bytes};
    rt.task = globus_->submit(std::move(req), [this, &rt](const TransferTask& t) {
      CampaignReport& rep = rt.outcome.report;
      rep.transfer_seconds = t.actual_duration();
      rt.outcome.transfer_stretch =
          rep.transfer_seconds / t.estimate().duration_s;
      rep.files_transferred = rt.spec.inventory.file_count();
      rep.bytes_transferred = rt.spec.inventory.total_bytes();
      rep.effective_speed_bps =
          rep.bytes_transferred / rep.transfer_seconds;
      rep.total_seconds = rep.transfer_seconds;
      rt.proc->finish();
    });
    return;
  }
  start_compressed_leg(rt);
}

void Orchestrator::start_compressed_leg(Runtime& rt) {
  const CampaignConfig& config = rt.spec.config;
  const SiteSpec& src_site = site(config.src);
  const SiteSpec& dst_site = site(config.dst);

  std::vector<double> compressed(rt.spec.inventory.raw_bytes.size());
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    compressed[i] =
        rt.spec.inventory.raw_bytes[i] / config.compression_ratio;
  }
  if (rt.spec.mode == TransferMode::kCompressedGrouped) {
    const GroupPlan plan = plan_groups_by_world_size(
        compressed.size(), config.group_world_size);
    rt.wire_files = group_sizes(plan, compressed);
  } else {
    rt.wire_files = std::move(compressed);
  }
  rt.wire_count = rt.wire_files.size();
  rt.wire_bytes = std::accumulate(rt.wire_files.begin(),
                                  rt.wire_files.end(), 0.0);

  rt.cp_seconds = cluster_compress_seconds(
      rt.spec.inventory.raw_bytes, config.compress_nodes,
      config.compress_cores_per_node, config.rates, src_site.fs,
      config.block_bytes);
  // The online advisor samples features and runs calibration probes
  // inside the compression stage; charge its measured overhead there.
  if (config.adaptive) rt.cp_seconds *= 1.0 + config.adaptive_overhead;
  rt.dp_seconds = cluster_decompress_seconds(
      rt.spec.inventory.raw_bytes, config.decompress_nodes,
      config.decompress_cores_per_node, config.rates, dst_site.fs,
      config.block_bytes);

  FuncXEndpointConfig src_faas = config.faas;
  if (src_faas.name.empty()) src_faas.name = config.src + "-ep";
  FuncXEndpointConfig dst_faas = config.faas;
  if (dst_faas.name.empty()) dst_faas.name = config.dst + "-ep";
  const std::size_t src_ep = faas_->acquire_endpoint(src_faas);
  const std::size_t dst_ep = faas_->acquire_endpoint(dst_faas);

  // The event chain: queue for source nodes -> funcX-dispatched
  // compression -> shared-WAN transfer -> queue for destination nodes
  // -> funcX-dispatched decompression.
  pool_for(config.src).submit(
      config.compress_nodes,
      [this, &rt, src_ep, dst_ep, dst_pool = &pool_for(config.dst)](
          const Allocation& alloc) {
        CampaignReport& rep = rt.outcome.report;
        rep.node_wait_seconds += alloc.granted_at - rt.spec.submit_time;
        FuncXTask compress_task;
        compress_task.compute_seconds = rt.cp_seconds;
        compress_task.on_complete = [this, &rt, alloc, dst_ep, dst_pool] {
          pool_for(rt.spec.config.src).release(alloc);
          // wire_files moves onto the wire; the report reads the
          // precomputed wire_count/wire_bytes instead.
          TransferRequest req{rt.spec.inventory.app + "/compressed",
                              rt.link, std::move(rt.wire_files)};
          rt.task = globus_->submit(std::move(req),
                                    [this, &rt, dst_ep, dst_pool](
                                             const TransferTask& t) {
            CampaignReport& rep = rt.outcome.report;
            rep.transfer_seconds = t.actual_duration();
            rt.outcome.transfer_stretch =
                rep.transfer_seconds / t.estimate().duration_s;
            const double before_dst_queue = engine_.now();
            dst_pool->submit(
                rt.spec.config.decompress_nodes,
                [this, &rt, dst_ep, dst_pool,
                 before_dst_queue](const Allocation& dalloc) {
                  rt.outcome.report.node_wait_seconds +=
                      dalloc.granted_at - before_dst_queue;
                  FuncXTask decompress_task;
                  decompress_task.compute_seconds = rt.dp_seconds;
                  decompress_task.on_complete = [this, &rt, dalloc,
                                                 dst_pool] {
                    dst_pool->release(dalloc);
                    CampaignReport& rep = rt.outcome.report;
                    rep.compress_seconds = rt.cp_seconds;
                    rep.decompress_seconds = rt.dp_seconds;
                    rep.files_transferred = rt.wire_count;
                    rep.bytes_transferred = rt.wire_bytes;
                    rep.effective_speed_bps =
                        rep.bytes_transferred / rep.transfer_seconds;
                    rep.total_seconds =
                        engine_.now() - rt.spec.submit_time;
                    rep.orchestration_seconds =
                        rep.total_seconds - rep.compress_seconds -
                        rep.transfer_seconds - rep.decompress_seconds -
                        rep.node_wait_seconds;
                    rt.proc->finish();
                  };
                  faas_->submit(dst_ep, "decompress",
                                std::move(decompress_task));
                },
                rt.spec.priority);
          });
        };
        faas_->submit(src_ep, "compress", std::move(compress_task));
      },
      rt.spec.priority);
}

OrchestratorReport Orchestrator::run() {
  require(!ran_, "Orchestrator: run() is single-shot");
  ran_ = true;
  require(!campaigns_.empty(), "Orchestrator: no campaigns");

  // Deterministic arrival order: by (submit time, priority desc,
  // registration order).
  std::vector<std::size_t> order(campaigns_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const CampaignSpec& sa = campaigns_[a]->spec;
    const CampaignSpec& sb = campaigns_[b]->spec;
    if (sa.submit_time != sb.submit_time)
      return sa.submit_time < sb.submit_time;
    if (sa.priority != sb.priority) return sa.priority > sb.priority;
    return a < b;
  });
  for (const std::size_t i : order) {
    Runtime* rt = campaigns_[i].get();
    engine_.schedule_at(rt->spec.submit_time,
                        [this, rt] { start_campaign(*rt); });
  }

  live_campaigns_ = campaigns_.size();
  for (const FlapSpec& spec : flap_specs_) {
    sim::FairShareChannel& channel =
        globus_->channel_for(route(spec.src, spec.dst));
    flaps_.push_back(std::make_unique<sim::LinkFlap>(
        engine_, channel, spec.config,
        [this] { return live_campaigns_ > 0; }));
    flaps_.back()->start();
  }

  engine_.run();

  OrchestratorReport report;
  report.campaigns.reserve(campaigns_.size());
  for (const auto& rt : campaigns_) {
    if (rt->proc == nullptr || rt->proc->running()) {
      // Assemble the message only on the failure path; the happy path
      // across thousands of campaigns must not allocate per check.
      require(false,
              "Orchestrator: campaign never completed: " + rt->spec.name);
    }
    CampaignOutcome outcome = rt->outcome;
    outcome.name = rt->spec.name;
    outcome.mode = rt->spec.mode;
    outcome.submit_time = rt->spec.submit_time;
    outcome.priority = rt->spec.priority;
    outcome.finish_time = rt->proc->exited_at();
    report.makespan = std::max(report.makespan, outcome.finish_time);
    report.campaigns.push_back(std::move(outcome));
  }
  if (obs::tracing_enabled()) {
    // Replay each campaign onto the virtual timeline: one track per
    // campaign, a covering span plus its serialized legs. The legs
    // actually interleave with queueing inside the sim, so this is
    // the report's sequential decomposition, not an event-exact
    // replay — but it lines campaigns up against each other exactly.
    for (const CampaignOutcome& o : report.campaigns) {
      obs::emit_sim_span(o.name, "campaign", o.submit_time, o.finish_time);
      double at = o.submit_time;
      const auto leg = [&](const char* name, double seconds) {
        if (seconds <= 0.0) return;
        obs::emit_sim_span(o.name, name, at, at + seconds);
        at += seconds;
      };
      leg("node_wait", o.report.node_wait_seconds);
      leg("compress", o.report.compress_seconds);
      leg("transfer", o.report.transfer_seconds);
      leg("decompress", o.report.decompress_seconds);
    }
  }
  for (const auto& [name, channel] : globus_->channels()) {
    report.links.emplace(name,
                         LinkUsage{channel->capacity(), channel->stats()});
  }
  for (const auto& [name, pool] : pools_) {
    report.pools.emplace(name,
                         PoolUsage{pool->total_nodes(), pool->stats()});
  }
  report.faas_cold_starts = faas_->cold_starts();
  report.faas_warm_hits = faas_->warm_hits();
  report.events_executed = engine_.executed_events();
  return report;
}

std::string to_string(const OrchestratorReport& report) {
  std::string out;
  out += "campaigns " + std::to_string(report.campaigns.size()) +
         " makespan " + fmt(report.makespan) + "\n";
  for (const CampaignOutcome& c : report.campaigns) {
    const CampaignReport& r = c.report;
    out += "campaign " + c.name + " mode " + to_string(c.mode) +
           " submit " + fmt(c.submit_time) + " prio " +
           std::to_string(c.priority) + "\n";
    out += "  total " + fmt(r.total_seconds) + " transfer " +
           fmt(r.transfer_seconds) + " cp " + fmt(r.compress_seconds) +
           " dp " + fmt(r.decompress_seconds) + " orch " +
           fmt(r.orchestration_seconds) + " wait " +
           fmt(r.node_wait_seconds) + "\n";
    out += "  files " + std::to_string(r.files_transferred) + " bytes " +
           fmt(r.bytes_transferred) + " speed " +
           fmt(r.effective_speed_bps) + " stretch " +
           fmt(c.transfer_stretch) + " finish " + fmt(c.finish_time) +
           "\n";
  }
  for (const auto& [name, link] : report.links) {
    out += "link " + name + " capacity " + fmt(link.capacity_bps) +
           " delivered " + fmt(link.stats.units_delivered) + " busy " +
           fmt(link.stats.busy_seconds) + " flow-seconds " +
           fmt(link.stats.flow_seconds) + " peak-flows " +
           std::to_string(link.stats.peak_flows) + " completed " +
           std::to_string(link.stats.flows_completed) + " cancelled " +
           std::to_string(link.stats.flows_cancelled) + "\n";
  }
  for (const auto& [name, pool] : report.pools) {
    out += "pool " + name + " nodes " + std::to_string(pool.total_nodes) +
           " grants " + std::to_string(pool.stats.grants) + " wait " +
           fmt(pool.stats.total_wait_seconds) + " node-seconds " +
           fmt(pool.stats.node_seconds) + " peak " +
           std::to_string(pool.stats.peak_nodes_in_use) + " queue-peak " +
           std::to_string(pool.stats.peak_queue_length) + "\n";
  }
  out += "faas cold " + std::to_string(report.faas_cold_starts) +
         " warm " + std::to_string(report.faas_warm_hits) + " events " +
         std::to_string(report.events_executed) + "\n";
  return out;
}

std::uint64_t fingerprint(const OrchestratorReport& report) {
  const std::string bytes = to_string(report);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

OrchestratorReport run_campaigns(std::vector<CampaignSpec> specs,
                                 bool isolated,
                                 OrchestratorOptions options) {
  if (!isolated) {
    Orchestrator orch(options);
    for (auto& spec : specs) orch.add_campaign(std::move(spec));
    return orch.run();
  }
  OrchestratorReport merged;
  for (auto& spec : specs) {
    Orchestrator orch(options);
    orch.add_campaign(std::move(spec));
    OrchestratorReport one = orch.run();
    merged.makespan = std::max(merged.makespan, one.makespan);
    merged.campaigns.push_back(std::move(one.campaigns.front()));
    for (auto& [name, link] : one.links) {
      LinkUsage& agg = merged.links[name];
      agg.capacity_bps = link.capacity_bps;
      agg.stats.units_delivered += link.stats.units_delivered;
      agg.stats.busy_seconds += link.stats.busy_seconds;
      agg.stats.flow_seconds += link.stats.flow_seconds;
      agg.stats.peak_flows =
          std::max(agg.stats.peak_flows, link.stats.peak_flows);
      agg.stats.flows_opened += link.stats.flows_opened;
      agg.stats.flows_completed += link.stats.flows_completed;
      agg.stats.flows_cancelled += link.stats.flows_cancelled;
    }
    for (auto& [name, pool] : one.pools) {
      PoolUsage& agg = merged.pools[name];
      agg.total_nodes = pool.total_nodes;
      agg.stats.grants += pool.stats.grants;
      agg.stats.total_wait_seconds += pool.stats.total_wait_seconds;
      agg.stats.node_seconds += pool.stats.node_seconds;
      agg.stats.peak_nodes_in_use = std::max(
          agg.stats.peak_nodes_in_use, pool.stats.peak_nodes_in_use);
      agg.stats.peak_queue_length = std::max(
          agg.stats.peak_queue_length, pool.stats.peak_queue_length);
    }
    merged.faas_cold_starts += one.faas_cold_starts;
    merged.faas_warm_hits += one.faas_warm_hits;
    merged.events_executed += one.events_executed;
  }
  return merged;
}

}  // namespace ocelot
