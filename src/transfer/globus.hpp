#pragma once
// Globus-style transfer service over the simulation engine.
//
// Accepts transfer tasks (a list of file sizes over a route), drives
// them through the GridFTP model in virtual time, exposes per-file
// completion so the sentinel can learn which files already moved, and
// supports cancellation mid-flight (the sentinel stops the
// uncompressed transfer when compute nodes are granted).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netsim/gridftp.hpp"
#include "netsim/simulation.hpp"

namespace ocelot {

/// A submitted transfer request.
struct TransferRequest {
  std::string label;
  LinkProfile link;
  std::vector<double> file_bytes;
};

/// Live handle to a transfer task in the simulation.
class TransferTask {
 public:
  enum class Status { kActive, kSucceeded, kCancelled };

  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] const TransferEstimate& estimate() const { return estimate_; }
  [[nodiscard]] double submitted_at() const { return submitted_at_; }

  /// Number of files fully transferred by virtual time `t`.
  [[nodiscard]] std::size_t completed_files_at(double t) const;

  /// Bytes fully transferred by virtual time `t` (whole files only).
  [[nodiscard]] double completed_bytes_at(double t) const;

  /// Cancels the task; files completed before `now` stay transferred.
  void cancel(double now);

 private:
  friend class GlobusService;
  Status status_ = Status::kActive;
  TransferEstimate estimate_;
  std::vector<double> file_bytes_;
  double submitted_at_ = 0.0;
  double cancelled_at_ = 0.0;
};

/// The transfer service facade.
class GlobusService {
 public:
  GlobusService(Simulation& sim, EndpointSettings settings = {})
      : sim_(sim), model_(settings) {}

  /// Submits a transfer; `on_complete` fires at finish (not on cancel).
  std::shared_ptr<TransferTask> submit(
      const TransferRequest& request,
      std::function<void(const TransferTask&)> on_complete = {});

  [[nodiscard]] const GridFtpModel& model() const { return model_; }

 private:
  Simulation& sim_;
  GridFtpModel model_;
};

}  // namespace ocelot
