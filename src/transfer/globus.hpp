#pragma once
// Globus-style transfer service over the simulation engine.
//
// Accepts transfer tasks (a list of file sizes over a route), drives
// them through the GridFTP model in virtual time, exposes per-file
// completion so the sentinel can learn which files already moved, and
// supports cancellation mid-flight (the sentinel stops the
// uncompressed transfer when compute nodes are granted).
//
// The WAN is a contended resource: all tasks submitted on the same
// route draw from one FairShareChannel whose capacity is the link's
// aggregate bandwidth. A task's demand is its uncontended GridFTP
// effective bandwidth, so a transfer running alone reproduces the
// closed-form estimate exactly, while concurrent transfers stretch
// max-min fairly.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/inline_function.hpp"
#include "netsim/gridftp.hpp"
#include "netsim/simulation.hpp"
#include "sim/fair_share.hpp"

namespace ocelot {

/// A submitted transfer request.
struct TransferRequest {
  std::string label;
  LinkProfile link;
  std::vector<double> file_bytes;
};

/// Live handle to a transfer task in the simulation.
class TransferTask {
 public:
  enum class Status { kActive, kSucceeded, kCancelled };
  using Callback = InlineFunction<void(const TransferTask&), 64>;

  [[nodiscard]] Status status() const { return status_; }

  /// The *uncontended* cost model for this task (duration if alone).
  [[nodiscard]] const TransferEstimate& estimate() const { return estimate_; }
  [[nodiscard]] double submitted_at() const { return submitted_at_; }

  /// Wall completion time; only meaningful once status is kSucceeded.
  [[nodiscard]] double completed_at() const { return completed_at_; }

  /// Actual elapsed transfer time (== estimate().duration_s when the
  /// link was uncontended for the task's whole life).
  [[nodiscard]] double actual_duration() const {
    return completed_at_ - submitted_at_;
  }

  /// Number of files fully transferred by virtual time `t`.
  [[nodiscard]] std::size_t completed_files_at(double t) const;

  /// Bytes fully transferred by virtual time `t` (whole files only).
  [[nodiscard]] double completed_bytes_at(double t) const;

  /// Cancels the task; files completed before `now` stay transferred,
  /// and the flow's bandwidth share is released immediately.
  void cancel(double now);

 private:
  friend class GlobusService;

  /// Completion offset of file `i` from submission (kNever if the
  /// flow ended before that file's payload was delivered).
  [[nodiscard]] double file_completion_offset(std::size_t i) const;

  Status status_ = Status::kActive;
  TransferEstimate estimate_;
  Callback on_complete_;
  std::vector<double> file_bytes_;
  /// Cumulative solo-service seconds needed for files [0..i].
  std::vector<double> data_service_;
  double submitted_at_ = 0.0;
  double cancelled_at_ = 0.0;
  double completed_at_ = 0.0;
  bool service_done_ = false;
  sim::FairShareChannel* channel_ = nullptr;
  sim::FairShareChannel::FlowId flow_ = 0;
  sim::EventHandle completion_event_;
};

/// The transfer service facade. One service owns one fair-share
/// channel per route, shared by every task it carries.
class GlobusService {
 public:
  explicit GlobusService(Simulation& sim, EndpointSettings settings = {})
      : sim_(sim), model_(settings) {}

  /// Submits a transfer; `on_complete` fires at finish (not on cancel).
  /// Takes the request by value so callers can move the file list in.
  std::shared_ptr<TransferTask> submit(TransferRequest request,
                                       TransferTask::Callback on_complete = {});

  [[nodiscard]] const GridFtpModel& model() const { return model_; }

  /// The fair-share channel carrying `link`'s traffic, created on
  /// first use — exposed so failure injectors (sim::LinkFlap) can
  /// attach to a route before or after transfers start on it.
  sim::FairShareChannel& channel_for(const LinkProfile& link);

  /// The per-route fair-share channels created so far (keyed by link
  /// name), for utilization/concurrency reporting.
  [[nodiscard]] const std::map<std::string,
                               std::unique_ptr<sim::FairShareChannel>>&
  channels() const {
    return channels_;
  }

 private:
  Simulation& sim_;
  GridFtpModel model_;
  std::map<std::string, std::unique_ptr<sim::FairShareChannel>> channels_;
};

}  // namespace ocelot
