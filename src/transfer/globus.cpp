#include "transfer/globus.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace ocelot {

double TransferTask::file_completion_offset(std::size_t i) const {
  const double delivered_at = channel_->delivery_time(flow_, data_service_[i]);
  if (delivered_at == sim::FairShareChannel::kNever) {
    return sim::FairShareChannel::kNever;
  }
  return estimate_.startup_seconds +
         estimate_.per_file_seconds * static_cast<double>(i + 1) +
         (delivered_at - submitted_at_);
}

std::size_t TransferTask::completed_files_at(double t) const {
  if (status_ == Status::kSucceeded && t >= completed_at_) {
    return file_bytes_.size();
  }
  double horizon = t - submitted_at_;
  if (status_ == Status::kCancelled) {
    horizon = std::min(horizon, cancelled_at_ - submitted_at_);
  }
  // Completion offsets are nondecreasing in the file index, so the
  // first not-yet-complete file bounds the count.
  std::size_t lo = 0, hi = file_bytes_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (file_completion_offset(mid) <= horizon) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double TransferTask::completed_bytes_at(double t) const {
  const std::size_t n = completed_files_at(t);
  double bytes = 0.0;
  for (std::size_t i = 0; i < n; ++i) bytes += file_bytes_[i];
  return bytes;
}

void TransferTask::cancel(double now) {
  if (status_ != Status::kActive) return;
  status_ = Status::kCancelled;
  cancelled_at_ = now;
  if (!service_done_) channel_->cancel_flow(flow_);
  completion_event_.cancel();
  // The completion callback will never fire; free its captures now.
  on_complete_ = nullptr;
}

sim::FairShareChannel& GlobusService::channel_for(const LinkProfile& link) {
  auto it = channels_.find(link.name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(link.name, std::make_unique<sim::FairShareChannel>(
                                     sim_, link.name, link.bandwidth_bps))
             .first;
  }
  return *it->second;
}

std::shared_ptr<TransferTask> GlobusService::submit(
    TransferRequest request, TransferTask::Callback on_complete) {
  require(!request.file_bytes.empty(), "GlobusService: empty transfer");
  // Tasks churn once per transfer; draw them from the engine's pool
  // (the control block keeps the pool alive if a handle outlives us).
  auto task = std::allocate_shared<TransferTask>(
      PoolAllocator<TransferTask>(sim_.object_pool()));
  task->estimate_ = model_.estimate(request.file_bytes, request.link);
  task->on_complete_ = std::move(on_complete);
  task->submitted_at_ = sim_.now();

  // Per-file payload service offsets, derived from the estimate's
  // completion times (offset minus the overhead terms) so the model's
  // formula lives in one place and the solo case matches exactly.
  const TransferEstimate& est = task->estimate_;
  task->data_service_.reserve(request.file_bytes.size());
  for (std::size_t i = 0; i < est.completion_times.size(); ++i) {
    task->data_service_.push_back(
        est.completion_times[i] - est.startup_seconds -
        est.per_file_seconds * static_cast<double>(i + 1));
  }

  sim::FairShareChannel& channel = channel_for(request.link);
  task->channel_ = &channel;
  const double payload_bytes = std::accumulate(
      request.file_bytes.begin(), request.file_bytes.end(), 0.0);
  task->file_bytes_ = std::move(request.file_bytes);
  task->flow_ = channel.open_flow(
      est.eff_bandwidth_bps, est.data_seconds,
      [this, task] {
        // Payload delivered; the control channel wraps up for the
        // fixed overhead, then the task completes.
        task->service_done_ = true;
        task->completion_event_ = sim_.schedule_in(
            task->estimate_.overhead_seconds, [this, task] {
              if (task->status_ != TransferTask::Status::kActive) return;
              task->status_ = TransferTask::Status::kSucceeded;
              task->completed_at_ = sim_.now();
              auto cb = std::move(task->on_complete_);
              if (cb) cb(*task);
            });
      },
      payload_bytes);
  return task;
}

}  // namespace ocelot
