#include "transfer/globus.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ocelot {

std::size_t TransferTask::completed_files_at(double t) const {
  double horizon = t - submitted_at_;
  if (status_ == Status::kCancelled) {
    horizon = std::min(horizon, cancelled_at_ - submitted_at_);
  }
  const auto& ct = estimate_.completion_times;
  const auto it = std::upper_bound(ct.begin(), ct.end(), horizon);
  return static_cast<std::size_t>(it - ct.begin());
}

double TransferTask::completed_bytes_at(double t) const {
  const std::size_t n = completed_files_at(t);
  double bytes = 0.0;
  for (std::size_t i = 0; i < n; ++i) bytes += file_bytes_[i];
  return bytes;
}

void TransferTask::cancel(double now) {
  if (status_ != Status::kActive) return;
  status_ = Status::kCancelled;
  cancelled_at_ = now;
}

std::shared_ptr<TransferTask> GlobusService::submit(
    const TransferRequest& request,
    std::function<void(const TransferTask&)> on_complete) {
  require(!request.file_bytes.empty(), "GlobusService: empty transfer");
  auto task = std::make_shared<TransferTask>();
  task->estimate_ = model_.estimate(request.file_bytes, request.link);
  task->file_bytes_ = request.file_bytes;
  task->submitted_at_ = sim_.now();

  sim_.schedule_in(task->estimate_.duration_s,
                   [task, cb = std::move(on_complete)] {
                     if (task->status_ != TransferTask::Status::kActive)
                       return;  // cancelled mid-flight
                     task->status_ = TransferTask::Status::kSucceeded;
                     if (cb) cb(*task);
                   });
  return task;
}

}  // namespace ocelot
