#include "server/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "sim/fair_share.hpp"

namespace ocelot::server {

void FairScheduler::set_quota(const std::string& tenant, TenantQuota quota) {
  const std::scoped_lock lock(mu_);
  state_for(tenant).quota = quota;
}

FairScheduler::TenantState& FairScheduler::state_for(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, TenantState{default_quota_, {}, 0, 0.0})
             .first;
  }
  return it->second;
}

Admit FairScheduler::submit(const std::string& tenant, std::size_t cost_bytes,
                            std::function<void()> work) {
  const std::scoped_lock lock(mu_);
  if (draining_) {
    ++stats_.rejected;
    return Admit::kDraining;
  }
  TenantState& state = state_for(tenant);
  if (state.queue.size() >= state.quota.max_queued) {
    ++stats_.rejected;
    return Admit::kQueueFull;
  }
  if (state.queued_bytes + cost_bytes > state.quota.max_queued_bytes) {
    ++stats_.rejected;
    return Admit::kBytesFull;
  }
  if (state.queue.empty()) {
    // Re-arrival clamp: compete from "now", not from idle credit.
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& [name, other] : tenants_) {
      if (!other.queue.empty()) floor = std::min(floor, other.served_norm);
    }
    if (floor != std::numeric_limits<double>::infinity()) {
      state.served_norm = std::max(state.served_norm, floor);
    }
  }
  state.queue.push_back(Job{tenant, cost_bytes, std::move(work)});
  state.queued_bytes += cost_bytes;
  total_queued_ += 1;
  total_queued_bytes_ += cost_bytes;
  ++stats_.submitted;
  cv_.notify_one();
  return Admit::kQueued;
}

std::optional<FairScheduler::Job> FairScheduler::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return draining_ || total_queued_ > 0; });
  if (total_queued_ == 0) return std::nullopt;  // draining and empty

  // Max-min shares over the backlogged tenants: demands are the
  // weights normalized to the unit capacity, run through the same
  // kernel the WAN orchestrator uses for link bandwidth. With every
  // demand at its weight fraction the kernel hands each tenant exactly
  // that fraction — and caps any degenerate oversized demand at the
  // fair level, which is why the kernel (not a bare division) does the
  // splitting.
  std::vector<TenantState*> backlogged;
  std::vector<double> demands;
  double total_weight = 0.0;
  for (auto& [name, state] : tenants_) {
    if (state.queue.empty()) continue;
    backlogged.push_back(&state);
    const double w = state.quota.weight > 0 ? state.quota.weight : 1e-9;
    demands.push_back(w);
    total_weight += w;
  }
  for (double& d : demands) d /= total_weight;
  const std::vector<double> shares =
      sim::max_min_allocation(1.0, std::span<const double>(demands));

  std::size_t pick = 0;
  for (std::size_t i = 1; i < backlogged.size(); ++i) {
    if (backlogged[i]->served_norm < backlogged[pick]->served_norm) pick = i;
  }
  TenantState& state = *backlogged[pick];
  Job job = std::move(state.queue.front());
  state.queue.pop_front();
  state.queued_bytes -= job.cost_bytes;
  total_queued_ -= 1;
  total_queued_bytes_ -= job.cost_bytes;
  const double share = shares[pick] > 0 ? shares[pick] : 1e-9;
  // Normalize by payload size so one huge request costs proportionally
  // more virtual service than many small ones (min charge 1 byte keeps
  // empty-payload pings from being free).
  state.served_norm +=
      static_cast<double>(std::max<std::size_t>(job.cost_bytes, 1)) / share;
  ++stats_.dispatched;
  if (total_queued_ == 0) cv_.notify_all();  // wake wait_empty / drain
  return job;
}

void FairScheduler::drain() {
  const std::scoped_lock lock(mu_);
  draining_ = true;
  cv_.notify_all();
}

void FairScheduler::wait_empty() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return total_queued_ == 0; });
}

FairScheduler::Stats FairScheduler::stats() const {
  const std::scoped_lock lock(mu_);
  Stats s = stats_;
  s.queued = total_queued_;
  s.queued_bytes = total_queued_bytes_;
  return s;
}

std::vector<std::pair<std::string, double>> FairScheduler::served() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    out.emplace_back(name, state.served_norm);
  }
  return out;
}

}  // namespace ocelot::server
