#include "server/daemon.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/options.hpp"
#include "core/engine.hpp"
#include "io/dataset_file.hpp"
#include "obs/trace.hpp"

namespace ocelot::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create unix socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("cannot bind unix socket " + path);
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    throw_errno("cannot listen on unix socket " + path);
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("cannot bind tcp port " + std::to_string(port));
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    throw_errno("cannot listen on tcp port " + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

struct Daemon::Connection {
  int fd = -1;
  std::mutex write_mu;   ///< one response frame at a time
  std::thread reader;
  std::atomic<bool> done{false};

  /// The last shared_ptr release closes the fd. Queued and in-flight
  /// scheduler jobs hold a reference, so a connection reaped after its
  /// reader exits keeps its descriptor open — and the number out of
  /// reuse by a later accept — until every pending respond() is done.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), scheduler_(config_.default_quota) {}

Daemon::~Daemon() { shutdown(); }

void Daemon::start() {
  require(!started_.exchange(true), "daemon already started");
  require(!config_.unix_path.empty() || config_.tcp_port >= 0,
          "daemon needs a unix socket path or a tcp port");
  require(config_.max_frame_bytes <= 0xffffffffu,
          "max_frame_bytes must fit the u32 length prefix (< 4 GiB)");

  for (const auto& [tenant, quota] : config_.tenant_quotas) {
    scheduler_.set_quota(tenant, quota);
  }

  if (!config_.unix_path.empty()) {
    listeners_.push_back({listen_unix(config_.unix_path), {}});
  }
  if (config_.tcp_port >= 0) {
    listeners_.push_back({listen_tcp(config_.tcp_port, &bound_tcp_port_), {}});
  }
  for (Listener& listener : listeners_) {
    listener.thread = std::thread(&Daemon::accept_loop, this, listener.fd);
  }

  const std::size_t n = Engine::resolve_workers(config_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&Daemon::worker_loop, this);
  }
}

void Daemon::accept_loop(int listen_fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);

    // Reap connections whose reader has finished (client went away):
    // joining outside the lock. The fd is NOT closed here — jobs this
    // connection still has queued hold shared_ptr references, and the
    // descriptor closes only when the last one releases (~Connection),
    // so a late respond() can never write into a recycled fd number.
    std::vector<std::shared_ptr<Connection>> dead;
    {
      const std::scoped_lock lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          dead.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
    }

    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    OCELOT_COUNT("daemon.connections", 1);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->reader = std::thread(&Daemon::reader_loop, this, conn);
    const std::scoped_lock lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void Daemon::reader_loop(std::shared_ptr<Connection> conn) {
  while (true) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(conn->fd, config_.max_frame_bytes);
    } catch (const CorruptStream& e) {
      // Malformed frame: the stream is desynchronized, so answer once
      // and drop the connection.
      respond(conn, make_error(0, error_code::kBadRequest, e.what()));
      break;
    } catch (const Error&) {
      break;  // socket error (connection reset, shutdown)
    }
    if (!frame.has_value()) break;  // clean EOF
    handle_request(conn, std::move(*frame));
  }
  conn->done.store(true, std::memory_order_release);
}

void Daemon::handle_request(const std::shared_ptr<Connection>& conn,
                            Frame request) {
  OCELOT_SPAN("daemon.admit");
  if (request.type == FrameType::kPing) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    respond(conn, make_ok(request.id, {}));
    return;
  }
  if (request.type != FrameType::kCompress &&
      request.type != FrameType::kDecompress) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    respond(conn, make_error(request.id, error_code::kBadRequest,
                             "expected a request frame"));
    return;
  }

  const std::uint64_t id = request.id;
  const std::string tenant = request.tenant;
  const std::size_t cost = request.payload.size();
  OCELOT_HIST("daemon.request_bytes", static_cast<double>(cost));
  const Admit admit = scheduler_.submit(
      tenant, cost, [this, conn, request = std::move(request)]() mutable {
        process(conn, std::move(request));
      });
  switch (admit) {
    case Admit::kQueued:
      OCELOT_GAUGE_ADD("daemon.queue_depth", 1);
      return;
    case Admit::kQueueFull:
    case Admit::kBytesFull:
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      OCELOT_COUNT("daemon.rejected", 1);
      respond(conn, make_error(id, error_code::kBusy,
                               "tenant '" + tenant + "' queue is full"));
      return;
    case Admit::kDraining:
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      OCELOT_COUNT("daemon.rejected", 1);
      respond(conn, make_error(id, error_code::kDraining,
                               "daemon is draining"));
      return;
  }
}

void Daemon::worker_loop() {
  while (auto job = scheduler_.pop()) {
    OCELOT_GAUGE_ADD("daemon.queue_depth", -1);
    job->work();
  }
}

void Daemon::process(const std::shared_ptr<Connection>& conn, Frame request) {
  try {
    Frame reply;
    if (request.type == FrameType::kCompress) {
      OCELOT_SPAN("daemon.compress");
      OptionSet options = OptionSet::from_line(request.options, "request");
      CompressionOptionRules rules;
      rules.advisor_knobs_need_policy = true;  // the CLI compress contract
      const EngineRequest engine_request =
          parse_compression_options(options, rules);
      options.reject_unknown("request");
      const LoadedField field = load_field(request.payload);
      Bytes out;
      const EngineResult result =
          Engine::shared().compress(field.data, engine_request, out);
      reply = make_ok(request.id, std::move(out),
                      "raw=" + std::to_string(result.raw_bytes) +
                          " compressed=" +
                          std::to_string(result.compressed_bytes) +
                          " blocks=" + std::to_string(result.blocks));
    } else {
      OCELOT_SPAN("daemon.decompress");
      OptionSet options = OptionSet::from_line(request.options, "request");
      const std::size_t workers = options.get_count("workers", 0);
      options.reject_unknown("request");
      const FloatArray field =
          Engine::shared().decompress(request.payload, workers);
      // Same OCF1 bytes `ocelot decompress` writes for the same blob.
      reply = make_ok(request.id, save_field("decompressed", field));
    }
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    OCELOT_COUNT("daemon.requests_ok", 1);
    respond(conn, reply);
  } catch (const CorruptStream& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    respond(conn, make_error(request.id, error_code::kBadRequest, e.what()));
  } catch (const InvalidArgument& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    respond(conn, make_error(request.id, error_code::kBadRequest, e.what()));
  } catch (const std::exception& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    respond(conn, make_error(request.id, error_code::kInternal, e.what()));
  }
}

void Daemon::respond(const std::shared_ptr<Connection>& conn,
                     const Frame& frame) {
  OCELOT_SPAN("daemon.respond");
  // A result can outgrow the frame cap (a decompress response is
  // larger than its request): answer with an error frame instead of
  // dropping the response and leaving a synchronous client waiting
  // forever for its request id.
  Bytes wire;
  bool too_large = false;
  try {
    wire = encode_frame(frame);
    too_large = wire.size() - 4 > config_.max_frame_bytes;
  } catch (const InvalidArgument&) {
    too_large = true;  // body above even the u32 wire limit
  }
  if (too_large) {
    OCELOT_COUNT("daemon.response_too_large", 1);
    wire = encode_frame(make_error(
        frame.id, error_code::kInternal,
        "response exceeds the frame-size cap of " +
            std::to_string(config_.max_frame_bytes) + " bytes"));
  }
  try {
    const std::scoped_lock lock(conn->write_mu);
    write_wire(conn->fd, wire);
  } catch (const Error&) {
    // Socket write failed: peer already gone; the reader will notice
    // and the connection will be reaped.
  }
}

void Daemon::shutdown() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Stop accepting: wake the accept loops, join them, close
  //    listeners (and remove the unix socket path).
  stopping_.store(true, std::memory_order_relaxed);
  for (Listener& listener : listeners_) {
    if (listener.thread.joinable()) listener.thread.join();
    ::close(listener.fd);
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 2. Drain: new submissions are rejected with kError "draining";
  //    readers stay alive so in-flight responses and rejections still
  //    reach their clients.
  scheduler_.drain();

  // 3. Workers finish every queued job, write the responses, and exit
  //    when the queue is empty.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // 4. Close the connections: shutdown unblocks blocked readers, then
  //    join. The fds close as the references drop below — the workers
  //    already finished, so no job still holds one.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::scoped_lock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

Daemon::Stats Daemon::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.scheduler = scheduler_.stats();
  return s;
}

}  // namespace ocelot::server
