#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ocelot::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("cannot connect to " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("bad host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("cannot create tcp socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("cannot connect to " + host + ":" + std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), next_id_(other.next_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::call(Frame request) {
  require(fd_ >= 0, "client is not connected");
  request.id = next_id_++;
  write_frame(fd_, request);
  while (true) {
    std::optional<Frame> response = read_frame(fd_);
    if (!response.has_value()) {
      throw Error("daemon closed the connection mid-request");
    }
    // Responses may be reordered across a pipelined connection; this
    // client is synchronous, so anything but our id is a stray late
    // response — skip it.
    if (response->id != request.id && response->id != 0) continue;
    if (response->type == FrameType::kError) {
      throw RequestRejected(
          response->options,
          std::string(response->payload.begin(), response->payload.end()));
    }
    if (response->type != FrameType::kOk) {
      throw CorruptStream("unexpected response frame type");
    }
    return std::move(*response);
  }
}

Bytes Client::compress(const std::string& tenant, const Bytes& field_bytes,
                       const std::string& options_line,
                       std::string* stats_line) {
  Frame request;
  request.type = FrameType::kCompress;
  request.tenant = tenant;
  request.options = options_line;
  request.payload = field_bytes;
  Frame response = call(std::move(request));
  if (stats_line != nullptr) *stats_line = response.options;
  return std::move(response.payload);
}

Bytes Client::decompress(const std::string& tenant, const Bytes& blob) {
  Frame request;
  request.type = FrameType::kDecompress;
  request.tenant = tenant;
  request.payload = blob;
  return std::move(call(std::move(request)).payload);
}

void Client::ping() {
  Frame request;
  request.type = FrameType::kPing;
  (void)call(std::move(request));
}

}  // namespace ocelot::server
