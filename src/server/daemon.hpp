#pragma once
// ocelotd: the multi-tenant compression daemon.
//
// Deployment shape (ROADMAP item 2): many producers push fields at a
// shared compression service sitting on the data path to the WAN. One
// warm Engine serves every connection, so backend registries, buffer
// pools, and per-worker scratch arenas amortize across requests
// instead of being rebuilt per CLI invocation.
//
// Architecture:
//
//   accept threads (one per listener: unix socket and/or TCP)
//     -> connection reader threads (frame decode, admission)
//        -> FairScheduler (per-tenant bounded queues, max-min pick)
//           -> worker pool (Engine compress/decompress, respond)
//
// Readers only do framed I/O and admission; all compression runs on
// the fixed worker pool, whose long-lived threads keep thread-local
// BufferPool/ScratchArena leases warm — the daemon's connection
// pooling is pool reuse across requests, not per-connection state.
// Responses are written under a per-connection mutex, so several
// workers can finish requests from one connection without interleaving
// frames (responses may be reordered; the frame id says which request
// a response answers).
//
// Graceful drain (SIGTERM in `ocelot serve`): stop accepting, reject
// new submissions with kError "draining", finish every queued and
// in-flight request, flush the responses, then close connections.
//
// Obs: spans daemon.request/daemon.compress/daemon.decompress and
// counters/histograms along accept -> admit -> compress -> respond
// (all compiled out under OCELOT_OBS=OFF).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/protocol.hpp"
#include "server/scheduler.hpp"

namespace ocelot::server {

struct DaemonConfig {
  /// Unix-socket path to listen on; empty disables the unix listener.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see tcp_port()
  /// after start), -1 disables the TCP listener.
  int tcp_port = -1;
  /// Compression worker threads; 0 = every hardware thread.
  std::size_t workers = 0;
  /// Per-frame body cap, enforced before buffering a request.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Admission bounds for tenants without an explicit quota.
  TenantQuota default_quota;
  /// Per-tenant quota overrides (tenant name -> quota).
  std::vector<std::pair<std::string, TenantQuota>> tenant_quotas;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the configured listeners and spawns accept/worker threads.
  /// Throws Error when a listener cannot bind.
  void start();

  /// The bound TCP port (after start); -1 when TCP is disabled.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  /// Graceful drain: stop accepting, finish queued + in-flight
  /// requests, respond, close. Idempotent; safe from a signal-handling
  /// thread (not from a signal handler itself).
  void shutdown();

  struct Stats {
    std::uint64_t connections = 0;  ///< accepted over the lifetime
    std::uint64_t requests_ok = 0;
    std::uint64_t requests_rejected = 0;  ///< admission backpressure
    std::uint64_t requests_error = 0;     ///< failed while processing
    FairScheduler::Stats scheduler;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Connection;
  struct Listener {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop(int listen_fd);
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_request(const std::shared_ptr<Connection>& conn, Frame request);
  void process(const std::shared_ptr<Connection>& conn, Frame request);
  void respond(const std::shared_ptr<Connection>& conn, const Frame& frame);

  DaemonConfig config_;
  FairScheduler scheduler_;
  int bound_tcp_port_ = -1;

  std::vector<Listener> listeners_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_error_{0};
};

}  // namespace ocelot::server
