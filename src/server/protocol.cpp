#include "server/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace ocelot::server {

namespace {

/// Reads exactly `n` bytes. Returns false on EOF before the first
/// byte; throws CorruptStream on EOF mid-buffer and Error on a socket
/// error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;
      throw CorruptStream("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw Error(std::string("socket read failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::write(fd, data + sent, n - sent);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    throw Error(std::string("socket write failed: ") + std::strerror(errno));
  }
}

}  // namespace

Bytes encode_frame(const Frame& frame) {
  Bytes out;
  out.reserve(64 + frame.tenant.size() + frame.options.size() +
              frame.payload.size());
  // Length-prefix placeholder, back-patched once the body is known.
  out.resize(4);
  ByteSink sink(out);
  sink.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kFrameMagic), 4));
  sink.put<std::uint8_t>(static_cast<std::uint8_t>(frame.type));
  sink.put_varint(frame.id);
  sink.put_string(frame.tenant);
  sink.put_string(frame.options);
  sink.put_blob(frame.payload);
  const std::size_t body = out.size() - 4;
  require(body <= 0xffffffffu, "frame body exceeds the u32 wire limit");
  // Little-endian by spec, independent of host byte order.
  out[0] = static_cast<std::uint8_t>(body & 0xff);
  out[1] = static_cast<std::uint8_t>((body >> 8) & 0xff);
  out[2] = static_cast<std::uint8_t>((body >> 16) & 0xff);
  out[3] = static_cast<std::uint8_t>((body >> 24) & 0xff);
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> body) {
  BytesReader reader(body);
  const auto magic = reader.get_bytes(4);
  if (std::memcmp(magic.data(), kFrameMagic, 4) != 0) {
    throw CorruptStream("bad frame magic (expected OCR1)");
  }
  Frame frame;
  const std::uint8_t type = reader.get<std::uint8_t>();
  switch (static_cast<FrameType>(type)) {
    case FrameType::kCompress:
    case FrameType::kDecompress:
    case FrameType::kPing:
    case FrameType::kOk:
    case FrameType::kError:
      frame.type = static_cast<FrameType>(type);
      break;
    default:
      throw CorruptStream("unknown frame type: " + std::to_string(type));
  }
  frame.id = reader.get_varint();
  frame.tenant = reader.get_string();
  frame.options = reader.get_string();
  const auto payload = reader.get_blob();
  frame.payload.assign(payload.begin(), payload.end());
  if (!reader.exhausted()) {
    throw CorruptStream("trailing bytes after frame body");
  }
  return frame;
}

void write_frame(int fd, const Frame& frame, std::size_t max_frame_bytes) {
  const Bytes wire = encode_frame(frame);
  require(wire.size() - 4 <= max_frame_bytes,
          "frame exceeds the frame-size cap");
  write_all(fd, wire.data(), wire.size());
}

void write_wire(int fd, std::span<const std::uint8_t> wire) {
  write_all(fd, wire.data(), wire.size());
}

std::optional<Frame> read_frame(int fd, std::size_t max_frame_bytes) {
  std::uint8_t len_bytes[4];
  if (!read_exact(fd, len_bytes, sizeof(len_bytes))) return std::nullopt;
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(len_bytes[0]) |
      static_cast<std::uint32_t>(len_bytes[1]) << 8 |
      static_cast<std::uint32_t>(len_bytes[2]) << 16 |
      static_cast<std::uint32_t>(len_bytes[3]) << 24;
  if (body_len > max_frame_bytes) {
    throw CorruptStream("frame length " + std::to_string(body_len) +
                        " exceeds cap " + std::to_string(max_frame_bytes));
  }
  // The smallest valid body: magic + type + three zero varints.
  if (body_len < 8) {
    throw CorruptStream("frame length " + std::to_string(body_len) +
                        " below minimum body size");
  }
  Bytes body(body_len);
  if (!read_exact(fd, body.data(), body.size())) {
    throw CorruptStream("connection closed mid-frame");
  }
  return decode_frame(body);
}

Frame make_error(std::uint64_t id, const std::string& code,
                 const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.id = id;
  frame.options = code;
  frame.payload.assign(message.begin(), message.end());
  return frame;
}

Frame make_ok(std::uint64_t id, Bytes payload, std::string stats_line) {
  Frame frame;
  frame.type = FrameType::kOk;
  frame.id = id;
  frame.options = std::move(stats_line);
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace ocelot::server
