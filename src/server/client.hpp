#pragma once
// Blocking client for the ocelotd wire protocol.
//
// One Client owns one connection (unix socket or loopback TCP) and
// speaks synchronous request/response: call() writes a frame, then
// reads frames until the one echoing its request id arrives. kError
// responses surface as exceptions carrying the daemon's
// machine-readable code ("busy", "draining", "bad-request",
// "internal") so callers can tell backpressure from failure. The CLI
// (`ocelot client`), the daemon tests, and bench_daemon_load all drive
// this class.

#include <cstdint>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "server/protocol.hpp"

namespace ocelot::server {

/// A kError response, as an exception: `code` is the machine-readable
/// backpressure/failure class, what() the daemon's message.
class RequestRejected : public Error {
 public:
  RequestRejected(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class Client {
 public:
  /// Connects to a daemon's unix socket; throws Error on failure.
  static Client connect_unix(const std::string& path);

  /// Connects to a daemon's TCP port on `host` (e.g. "127.0.0.1").
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `request` (stamping a fresh id) and blocks for its
  /// response. Throws RequestRejected on a kError response and
  /// CorruptStream/Error on protocol or socket failures.
  Frame call(Frame request);

  /// Compresses OCF1 `field_bytes` under `options_line` (the canonical
  /// key=value form, e.g. "eb=1e-3 backend=multigrid") as `tenant`.
  /// Returns the OCZ/OCB1 bytes; `stats_line` (optional) receives the
  /// daemon's result summary.
  Bytes compress(const std::string& tenant, const Bytes& field_bytes,
                 const std::string& options_line,
                 std::string* stats_line = nullptr);

  /// Decompresses an OCZ blob / OCB1 container; returns OCF1 bytes.
  Bytes decompress(const std::string& tenant, const Bytes& blob);

  /// Liveness probe (kPing round-trip).
  void ping();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace ocelot::server
