#pragma once
// Per-tenant admission control and max-min fair scheduling for ocelotd.
//
// The daemon's worker pool pulls jobs from this queue. Two concerns
// live here, both per tenant:
//
//   * admission: each tenant has a bounded queue (requests and bytes).
//     submit() rejects past the bound instead of buffering without
//     limit — the connection layer turns the rejection into a kError
//     "busy" backpressure frame, so a flooding client sees push-back
//     while everyone else's queue stays shallow.
//
//   * scheduling: pop() picks the next job max-min fairly across the
//     tenants that have work. Shares come from the same
//     sim::max_min_allocation kernel the WAN orchestrator uses for
//     link bandwidth (sim/fair_share.hpp), fed with the backlogged
//     tenants' weights; each tenant accrues normalized virtual service
//     cost_bytes / share as its jobs are dispatched, and the tenant
//     with the least accrued service goes next. A heavy tenant
//     therefore works through its own backlog without delaying a light
//     tenant's occasional requests — the property bench_daemon_load
//     gates (light-tenant p99 within 3x of its unloaded p99).
//
// Re-arrival clamp: a tenant idle for a while has accrued nothing, so
// its counter could lag the field and let it monopolize the pool on
// return. submit() lifts a newly-backlogged tenant's counter to the
// current minimum over backlogged tenants — fresh arrivals compete
// fairly from "now" instead of replaying their idle credit.
//
// Thread model: every method is mutex-protected; pop() blocks until
// work arrives or the scheduler drains. Jobs are opaque closures —
// the scheduler never runs them, it only orders them.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ocelot::server {

/// Admission bounds and fair-share weight of one tenant.
struct TenantQuota {
  std::size_t max_queued = 64;               ///< queued requests
  std::size_t max_queued_bytes = 256u << 20; ///< queued payload bytes
  double weight = 1.0;                       ///< max-min share weight
};

/// submit() outcome; everything except kQueued is backpressure.
enum class Admit : std::uint8_t {
  kQueued = 0,
  kQueueFull,   ///< tenant's request bound reached
  kBytesFull,   ///< tenant's byte bound reached
  kDraining,    ///< scheduler is draining, no new work
};

class FairScheduler {
 public:
  explicit FairScheduler(TenantQuota default_quota = {})
      : default_quota_(default_quota) {}

  /// Overrides the default quota for one tenant (call before traffic;
  /// takes effect on the tenant's next submit).
  void set_quota(const std::string& tenant, TenantQuota quota);

  /// Admits `work` to `tenant`'s queue, or rejects it. `cost_bytes` is
  /// the request's payload size — the unit of both the byte bound and
  /// the fair-share accounting.
  [[nodiscard]] Admit submit(const std::string& tenant,
                             std::size_t cost_bytes,
                             std::function<void()> work);

  /// One dispatched job (the worker runs `work` outside the lock).
  struct Job {
    std::string tenant;
    std::size_t cost_bytes = 0;
    std::function<void()> work;
  };

  /// Blocks until a job is available (fair pick) or the scheduler has
  /// drained; nullopt means drained-and-empty — the worker should exit.
  [[nodiscard]] std::optional<Job> pop();

  /// Stops admission (submit returns kDraining); pop keeps serving
  /// until the queues are empty, then returns nullopt.
  void drain();

  /// Blocks until every queued job has been popped (drain() or not).
  void wait_empty();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t dispatched = 0;
    std::size_t queued = 0;         ///< currently queued requests
    std::size_t queued_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Accrued normalized service per tenant (tests; insertion order).
  [[nodiscard]] std::vector<std::pair<std::string, double>> served() const;

 private:
  struct TenantState {
    TenantQuota quota;
    std::deque<Job> queue;
    std::size_t queued_bytes = 0;
    double served_norm = 0.0;  ///< accrued cost_bytes / share
  };

  TenantState& state_for(const std::string& tenant);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  TenantQuota default_quota_;
  std::map<std::string, TenantState> tenants_;
  std::size_t total_queued_ = 0;
  std::size_t total_queued_bytes_ = 0;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace ocelot::server
