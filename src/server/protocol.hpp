#pragma once
// ocelotd wire protocol: length-prefixed request/response frames.
//
// Every message on an ocelotd connection (TCP or unix socket) is one
// frame:
//
//   u32 little-endian body length | body
//
// and the body is serialized with the repo's ByteSink primitives:
//
//   magic "OCR1" (4 bytes)
//   u8    frame type            (FrameType below)
//   varint request id           (echoed verbatim in the response)
//   varint-prefixed tenant      (admission / fair-share key)
//   varint-prefixed options     (key=value line, OptionSet::from_line)
//   varint-prefixed payload     (OCF1 field bytes on compress requests,
//                                OCZ/OCB1 bytes on compress responses;
//                                reversed for decompress; the error
//                                message on kError frames)
//
// The protocol is versioned by the magic: an incompatible layout
// change bumps "OCR1" to "OCR2" (see CONTRIBUTING). Decoding is strict
// — bad magic, unknown type, truncated body, or trailing bytes all
// throw CorruptStream, and read_frame enforces a frame-size cap before
// buffering a body, so a garbage length prefix cannot balloon memory.
//
// Payload bytes are exactly what the CLI reads/writes for the same
// formats: a compress response carries the same container bytes
// `ocelot compress` would have written for the same input and options.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/bytes.hpp"

namespace ocelot::server {

inline constexpr char kFrameMagic[4] = {'O', 'C', 'R', '1'};

/// Hard cap on one frame's body; read_frame rejects larger lengths
/// before allocating (CorruptStream), write_frame before sending.
inline constexpr std::size_t kDefaultMaxFrameBytes = 256u << 20;

enum class FrameType : std::uint8_t {
  // Requests.
  kCompress = 1,    ///< payload: OCF1 field; options: compression knobs
  kDecompress = 2,  ///< payload: OCZ blob or OCB1 container
  kPing = 3,        ///< liveness probe; payload/options empty
  // Responses.
  kOk = 16,     ///< payload: result bytes; options: result stats line
  kError = 17,  ///< payload: message; options: machine-readable code
};

/// Machine-readable codes carried in a kError frame's options field.
/// kBusy and kDraining are backpressure: the request was well-formed
/// but admission refused it — retry later (or elsewhere).
namespace error_code {
inline constexpr const char* kBusy = "busy";
inline constexpr const char* kDraining = "draining";
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kInternal = "internal";
}  // namespace error_code

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint64_t id = 0;  ///< request id, echoed in the response
  std::string tenant;
  std::string options;
  Bytes payload;
};

/// Serializes a frame to full wire bytes (length prefix included).
[[nodiscard]] Bytes encode_frame(const Frame& frame);

/// Decodes one frame body (without the length prefix). Throws
/// CorruptStream on bad magic, unknown type, truncation, or trailing
/// bytes.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> body);

/// Writes one frame to `fd`, handling short writes; throws Error when
/// the peer is gone and InvalidArgument when the frame exceeds
/// `max_frame_bytes`.
void write_frame(int fd, const Frame& frame,
                 std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes pre-encoded wire bytes (from encode_frame) to `fd`, handling
/// short writes; throws Error when the peer is gone. Lets callers
/// size-check the encoded frame themselves before committing to send.
void write_wire(int fd, std::span<const std::uint8_t> wire);

/// Reads one frame from `fd`. Returns nullopt on clean EOF (connection
/// closed between frames); throws CorruptStream on mid-frame EOF, a
/// body length above `max_frame_bytes`, or a malformed body.
[[nodiscard]] std::optional<Frame> read_frame(
    int fd, std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Convenience constructors for the two response shapes.
[[nodiscard]] Frame make_error(std::uint64_t id, const std::string& code,
                               const std::string& message);
[[nodiscard]] Frame make_ok(std::uint64_t id, Bytes payload,
                            std::string stats_line = {});

}  // namespace ocelot::server
