#pragma once
// Online adaptive advisor: the paper's feature-driven quality
// prediction moved into the block-parallel hot path.
//
// Where core/advisor.hpp scores whole-file candidates offline, the
// AdvisorPolicy here decides per block, while the campaign runs:
//
//   * every block is probed with the Section VI features (quantization
//     bin statistics on a strided subsample — p0, P0, quantization
//     entropy, Rrle);
//   * a ratio predictor turns the features into a per-candidate
//     compression-ratio estimate — either a trained QualityModel
//     (predictor/quality_model) or, when none is supplied, the
//     closed-form entropy estimate;
//   * an exponentially-weighted residual correction per backend folds
//     the *observed* ratio of every compressed block back into the
//     predictions, so later blocks of the same campaign pick backends
//     based on what actually happened, not just what the model
//     guessed;
//   * the first block of each field additionally runs a calibration
//     probe: a small slab prefix is compressed once per candidate
//     backend, seeding the residuals before any full block commits to
//     a choice.
//
// The policy plugs into parallel_compress / block_compress via the
// BlockPolicy wave protocol (exec/block_policy.hpp), which keeps the
// emitted OCB1 containers byte-identical across worker counts. The
// per-block backend choice is recorded in the container's v1.1 index,
// so `ocelot advise` can recover the decision table from the output
// alone.
//
// With AdaptiveOptions::entropy_stages set, the candidate set becomes
// the backends x entropy-stages cross-product: every duel, residual,
// and calibration slot tracks a (backend, stage) pair, and the chosen
// stage rides into CompressionConfig::entropy (surfacing as OCZ2
// payloads and a v1.2 container index). Left empty, the advisor is
// byte-for-byte the stage-unaware one.

#include <cstdint>
#include <string>
#include <vector>

#include "compressor/config.hpp"
#include "exec/block_policy.hpp"
#include "features/features.hpp"
#include "predictor/quality_model.hpp"

namespace ocelot {

/// Tuning knobs of the online advisor.
struct AdaptiveOptions {
  /// Candidate backend names; empty enlists every registered backend.
  std::vector<std::string> backends;
  /// Candidate entropy-stage names (codec/entropy.hpp registry). The
  /// advisor duels the backends x stages cross-product per block. An
  /// empty list keeps the base config's stage only — no cross-product,
  /// and the emitted bytes match a stage-unaware advisor exactly.
  /// Unlike `backends`, empty does NOT enlist every registered stage:
  /// stages multiply the calibration-probe cost, so opting in is
  /// explicit.
  std::vector<std::string> entropy_stages;
  /// Candidate error-bound scales relative to the field-resolved
  /// absolute bound. Every entry must lie in (0, 1]: the policy may
  /// tighten a block's bound, never loosen it past the user's.
  std::vector<double> eb_scales = {1.0};
  /// Reject candidates whose estimated PSNR falls below this (dB);
  /// <= 0 disables the constraint. With several eb_scales this is what
  /// drives per-block bound tightening.
  double min_psnr_db = 0.0;
  /// Feature-sampling stride (1 = every point; the default 100
  /// reproduces the paper's 1% sampling, which keeps the advisor's
  /// overhead within a few percent of compression time).
  std::size_t sample_stride = 100;
  /// Slab depth of the per-field calibration probe (0 disables it).
  /// One slab keeps the probe's cost under a few percent even when a
  /// slow candidate backend is registered; the EW feedback sharpens
  /// whatever the short probe got wrong.
  std::size_t probe_slabs = 1;
  /// Element cap on the calibration prefix (fields with huge slabs
  /// would otherwise spend a visible fraction of their compression
  /// time probing five backends on one slab).
  std::size_t probe_max_elements = 2048;
  /// Candidates whose calibration seed trails the leader's by more
  /// than this many log2 (0.8 ~ 1.74x worse) are not worth a duel:
  /// the prefix bias observed across families stays well below it.
  /// <= 0 duels every candidate.
  double duel_margin_log2 = 0.8;
  /// Weight of each new observation in the per-backend residual
  /// correction, in (0, 1]. Early observations weigh more (simple
  /// average until 1/count drops below this), so one true block
  /// observation immediately outvotes a rough calibration probe.
  double learning_rate = 0.3;
  /// Keep-best exploration budget as a fraction of each field's raw
  /// bytes: early blocks may be compressed with one extra candidate
  /// backend (the executor keeps the smaller payload, so exploring
  /// costs time but never ratio) until every candidate has one true
  /// block-granularity observation or the budget runs out. 0 disables
  /// exploration — fields with few large blocks skip it automatically
  /// because a single extra block would blow the budget.
  double explore_budget = 0.10;
  /// Tasks per decision wave (see block_policy.hpp). Smaller waves
  /// land duel feedback sooner (fewer blocks compressed under a
  /// not-yet-corrected leader) at the cost of more phase barriers;
  /// 8 keeps the calibration duels within the first one or two waves.
  std::size_t wave_tasks = 8;
  /// Optional trained predictor; nullptr uses the closed-form
  /// entropy estimate (the residual feedback corrects either).
  const QualityModel* model = nullptr;
  /// Stirred into deterministic tie-breaking between candidates whose
  /// adjusted predictions are bit-identical. Same seed + same input =>
  /// byte-identical output regardless of worker count.
  std::uint64_t seed = 0x0ce107;
};

/// One row of the advisor's decision table (ocelot advise). `backend`
/// names the payload that actually landed in the container — when an
/// exploration challenger won the block, that is the challenger.
struct AdaptiveDecisionRecord {
  std::size_t field = 0;
  std::size_t block = 0;
  std::string backend;
  std::uint8_t backend_id = 0;
  std::string entropy;            ///< entropy stage of the landed payload
  std::uint8_t entropy_id = 0;
  double abs_eb = 0.0;
  double predicted_ratio = 0.0;
  double observed_ratio = 0.0;
  std::string challenger;  ///< explored candidate, empty if none
  bool kept_challenger = false;
};

/// Aggregates over one policy run.
struct AdaptiveSummary {
  std::size_t blocks = 0;
  /// Blocks per chosen backend name, in wire-id order.
  std::vector<std::pair<std::string, std::size_t>> backend_blocks;
  /// Blocks per chosen entropy-stage name, in candidate order.
  std::vector<std::pair<std::string, std::size_t>> entropy_blocks;
};

/// "sz3-interp:12 multigrid:4" — the run's chosen-backend mix ("-"
/// when empty), followed by "entropy[huffman:12 ans:4]" whenever the
/// run used anything besides the default huffman chain. Shared by the
/// CLI and the bench tables.
std::string to_string(const AdaptiveSummary& summary);

/// Feature-driven per-block backend / error-bound selector with
/// observed-ratio feedback. Stateful and single-run: create one
/// instance per parallel_compress call (reuse would leak one run's
/// corrections into the next batch, which may be desirable for a
/// multi-batch campaign — that is the one supported reuse: sequential
/// calls, never concurrent ones).
class AdvisorPolicy final : public BlockPolicy {
 public:
  explicit AdvisorPolicy(AdaptiveOptions options = {});

  void begin(std::size_t n_fields, std::size_t n_tasks,
             const CompressionConfig& base) override;
  [[nodiscard]] std::size_t wave_tasks() const override;
  [[nodiscard]] bool wants_probe(const BlockContext& ctx) const override;
  void probe(const BlockContext& ctx, const FloatArray& block) override;
  BlockDecision decide(const BlockContext& ctx) override;
  void observe(const BlockContext& ctx, const BlockDecision& decision,
               const BlockOutcome& outcome) override;

  /// Per-block decision table, in task order (observed ratios filled
  /// in as blocks complete).
  [[nodiscard]] const std::vector<AdaptiveDecisionRecord>& log() const {
    return log_;
  }

  [[nodiscard]] AdaptiveSummary summary() const;

 private:
  struct Candidate {
    std::string name;
    std::uint8_t wire_id = 0;
    /// Entropy stage this candidate compresses with; empty inherits
    /// the base config's stage (the no-cross-product mode).
    std::string entropy;
    std::uint8_t entropy_id = 0;
  };
  /// Strided per-block measurements, one slot per task.
  struct TaskProbe {
    std::vector<CompressorFeatures> per_scale;  ///< one per eb_scales entry
    DataFeatures df;          ///< full data features (model path only)
    double sampled_range = 0.0;
    std::size_t elements = 0;
  };
  /// Calibration-probe outcome for one field: observed log2 ratios per
  /// candidate, folded into the residuals when the field's first block
  /// is decided.
  struct FieldCalibration {
    bool ran = false;
    bool folded = false;
    std::vector<double> obs_log2;  ///< per candidate
  };
  struct Residual {
    std::size_t observations = 0;  ///< true block-granularity samples
    bool seeded = false;           ///< provisional calibration value set
    double log2 = 0.0;
    [[nodiscard]] double value() const {
      return observations > 0 || seeded ? log2 : 0.0;
    }
  };
  /// Per-field exploration ledger and field-local evidence. Backends
  /// rank differently on different fields, so the decision prefers
  /// residuals learned on *this* field (seeded by its calibration
  /// probe, replaced by its first true block observation) and falls
  /// back to the campaign-global residual only while the field has no
  /// evidence of its own.
  struct FieldState {
    bool inited = false;
    double budget_bytes = 0.0;
    std::vector<bool> explored;    ///< per candidate, true block obs seen
    std::vector<Residual> local;   ///< per candidate, this field only
    /// Closed-form path: duel-based leadership. Every challenger run
    /// yields a same-block payload-size comparison against the block's
    /// primary — an unbiased pairwise delta, immune to the cross-block
    /// noise of the entropy estimate. Deltas chain transitively
    /// through the primary into one per-candidate paired score (the
    /// first elected leader anchors the scale at 0), and the top
    /// paired score leads the field.
    std::size_t leader = 0;
    bool leader_set = false;
    bool any_duel = false;  ///< at least one duel ran in this field
    std::vector<double> paired;    ///< per candidate, chained log2 delta
    std::vector<bool> paired_set;  ///< per candidate
  };

  /// True when per-block features can influence a decision: a trained
  /// model consumes the full vector, several eb scales need per-scale
  /// entropy estimates, or a PSNR floor needs the value range. In the
  /// default single-scale closed-form mode the entropy base is common
  /// to every candidate, so sampling it could not change any choice —
  /// those blocks skip the probe pass entirely (and the duel/feedback
  /// loop carries the selection).
  [[nodiscard]] bool needs_block_features() const;
  [[nodiscard]] double base_log2_ratio(const TaskProbe& probe,
                                       std::size_t scale_index,
                                       const Candidate& candidate,
                                       double abs_eb) const;
  [[nodiscard]] double estimated_psnr_db(const TaskProbe& probe,
                                         std::size_t scale_index,
                                         const Candidate& candidate,
                                         double abs_eb) const;
  /// Field-local residual when the field has evidence for the
  /// candidate, else the campaign-global one.
  [[nodiscard]] double residual_value(std::size_t field,
                                      std::size_t candidate) const;
  void update_residual(std::size_t field, std::size_t candidate,
                       double sample_log2);

  /// Stage name/id a candidate actually compresses with: its own when
  /// set, the base config's otherwise.
  [[nodiscard]] const std::string& candidate_entropy(std::size_t c) const;
  [[nodiscard]] std::uint8_t candidate_entropy_id(std::size_t c) const;

  AdaptiveOptions options_;
  CompressionConfig base_;
  std::uint8_t base_entropy_id_ = 0;  ///< wire id of base_.entropy
  std::vector<Candidate> candidates_;
  std::vector<TaskProbe> probes_;
  std::vector<FieldCalibration> calibrations_;
  std::vector<FieldState> field_states_;
  std::vector<Residual> residuals_;       ///< per candidate
  std::vector<double> pending_base_;      ///< chosen base log2, per task
  std::vector<std::size_t> pending_cand_; ///< chosen candidate, per task
  /// Challenger bookkeeping, per task (candidate count = "none").
  std::vector<double> pending_challenger_base_;
  std::vector<std::size_t> pending_challenger_cand_;
  std::vector<std::size_t> log_slot_;     ///< task -> log_ row
  std::vector<AdaptiveDecisionRecord> log_;
};

}  // namespace ocelot
