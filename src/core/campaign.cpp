#include "core/campaign.hpp"

#include "common/error.hpp"
#include "orchestrator/orchestrator.hpp"

namespace ocelot {

std::string to_string(TransferMode mode) {
  switch (mode) {
    case TransferMode::kDirect:
      return "direct (NP)";
    case TransferMode::kCompressedPerFile:
      return "compressed (CP)";
    case TransferMode::kCompressedGrouped:
      return "compressed+grouped (OP)";
  }
  return "unknown";
}

CampaignReport run_campaign(const FileInventory& inventory, TransferMode mode,
                            const CampaignConfig& config) {
  // A single campaign is the N=1 case of the multi-campaign
  // orchestrator: with an empty system and immediate node grants the
  // event-driven run reproduces the closed-form pipeline numbers.
  Orchestrator orch;
  CampaignSpec spec;
  spec.inventory = inventory;
  spec.mode = mode;
  spec.config = config;
  orch.add_campaign(std::move(spec));
  return orch.run().campaigns.front().report;
}

double campaign_gain(const CampaignReport& direct,
                     const CampaignReport& optimized) {
  require(direct.total_seconds > 0.0, "campaign_gain: bad direct time");
  return (direct.total_seconds - optimized.total_seconds) /
         direct.total_seconds;
}

}  // namespace ocelot
