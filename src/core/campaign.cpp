#include "core/campaign.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/grouping.hpp"
#include "netsim/simulation.hpp"
#include "transfer/globus.hpp"

namespace ocelot {

std::string to_string(TransferMode mode) {
  switch (mode) {
    case TransferMode::kDirect:
      return "direct (NP)";
    case TransferMode::kCompressedPerFile:
      return "compressed (CP)";
    case TransferMode::kCompressedGrouped:
      return "compressed+grouped (OP)";
  }
  return "unknown";
}

CampaignReport run_campaign(const FileInventory& inventory, TransferMode mode,
                            const CampaignConfig& config) {
  require(!inventory.raw_bytes.empty(), "run_campaign: empty inventory");
  require(config.compression_ratio >= 1.0,
          "run_campaign: compression ratio must be >= 1");

  const LinkProfile link = route(config.src, config.dst);
  const SiteSpec& src_site = site(config.src);
  const SiteSpec& dst_site = site(config.dst);

  Simulation sim;
  FuncXService faas(sim);
  FuncXEndpointConfig src_faas = config.faas;
  if (src_faas.name.empty()) src_faas.name = config.src + "-ep";
  FuncXEndpointConfig dst_faas = config.faas;
  if (dst_faas.name.empty()) dst_faas.name = config.dst + "-ep";
  const std::size_t src_ep = faas.add_endpoint(src_faas);
  const std::size_t dst_ep = faas.add_endpoint(dst_faas);
  faas.register_function("compress");
  faas.register_function("decompress");
  GlobusService globus(sim);

  CampaignReport report;
  report.mode = mode;

  if (mode == TransferMode::kDirect) {
    TransferRequest req{inventory.app + "/direct", link, inventory.raw_bytes};
    auto task = globus.submit(req, [&](const TransferTask& t) {
      report.transfer_seconds = t.estimate().duration_s;
    });
    sim.run();
    report.files_transferred = inventory.file_count();
    report.bytes_transferred = inventory.total_bytes();
    report.effective_speed_bps =
        report.bytes_transferred / report.transfer_seconds;
    report.total_seconds = report.transfer_seconds;
    return report;
  }

  // --- Compressed modes: funcX-dispatched compression at the source,
  // transfer of compressed payloads, funcX-dispatched decompression.
  std::vector<double> compressed(inventory.raw_bytes.size());
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    compressed[i] = inventory.raw_bytes[i] / config.compression_ratio;
  }

  const double cp_seconds = cluster_compress_seconds(
      inventory.raw_bytes, config.compress_nodes,
      config.compress_cores_per_node, config.rates, src_site.fs);

  std::vector<double> wire_files;
  if (mode == TransferMode::kCompressedGrouped) {
    const GroupPlan plan = plan_groups_by_world_size(
        compressed.size(), config.group_world_size);
    wire_files = group_sizes(plan, compressed);
  } else {
    wire_files = compressed;
  }

  const double dp_seconds = cluster_decompress_seconds(
      inventory.raw_bytes, config.decompress_nodes,
      config.decompress_cores_per_node, config.rates, dst_site.fs);

  // Virtual-time sequencing: dispatch compression, then transfer, then
  // dispatch decompression; completion time of the chain is Total T.
  double compress_done = 0.0;
  double transfer_done = 0.0;
  double total_done = 0.0;

  FuncXTask compress_task;
  compress_task.compute_seconds = cp_seconds;
  compress_task.on_complete = [&] {
    compress_done = sim.now();
    TransferRequest req{inventory.app + "/compressed", link, wire_files};
    globus.submit(req, [&](const TransferTask& t) {
      transfer_done = sim.now();
      report.transfer_seconds = t.estimate().duration_s;
      FuncXTask decompress_task;
      decompress_task.compute_seconds = dp_seconds;
      decompress_task.on_complete = [&] { total_done = sim.now(); };
      faas.submit(dst_ep, "decompress", std::move(decompress_task));
    });
  };
  faas.submit(src_ep, "compress", std::move(compress_task));
  sim.run();

  report.compress_seconds = cp_seconds;
  report.decompress_seconds = dp_seconds;
  report.files_transferred = wire_files.size();
  for (const double b : wire_files) report.bytes_transferred += b;
  report.effective_speed_bps =
      report.bytes_transferred / report.transfer_seconds;
  report.total_seconds = total_done;
  report.orchestration_seconds =
      total_done - cp_seconds - report.transfer_seconds - dp_seconds;
  (void)compress_done;
  (void)transfer_done;
  return report;
}

double campaign_gain(const CampaignReport& direct,
                     const CampaignReport& optimized) {
  require(direct.total_seconds > 0.0, "campaign_gain: bad direct time");
  return (direct.total_seconds - optimized.total_seconds) /
         direct.total_seconds;
}

}  // namespace ocelot
