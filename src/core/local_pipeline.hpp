#pragma once
// Local Ocelot pipeline: real compression, modelled WAN.
//
// The examples and the hybrid benches run the actual compressor on
// generated data with a thread pool (real wall-clock compression and
// decompression), and put the resulting byte sizes through the
// calibrated GridFTP model for the WAN leg. This exercises the full
// Fig. 1 pipeline — load, parallel compress, (group,) transfer,
// parallel decompress, verify — end to end on one machine.

#include <string>
#include <vector>

#include "common/ndarray.hpp"
#include "compressor/config.hpp"
#include "core/adaptive.hpp"
#include "exec/cluster_model.hpp"
#include "exec/parallel_codec.hpp"
#include "io/file_store.hpp"
#include "netsim/gridftp.hpp"

namespace ocelot {

/// Pipeline parameters.
struct LocalPipelineConfig {
  CompressionConfig compression;
  std::size_t workers = 4;
  LinkProfile link;           ///< WAN route model for the transfer leg
  bool group_files = false;   ///< apply the grouping optimization
  std::size_t group_world_size = 8;
  /// Block-parallel codec: slabs per block along each field's slowest
  /// dimension (0 = whole-file tasks, the paper's executor).
  std::size_t block_slabs = 0;
  /// Online adaptive advisor: pick each block's backend / error bound
  /// through an AdvisorPolicy instead of compressing every block with
  /// `compression`. Implies block mode (block_slabs defaults to 8 when
  /// left at 0).
  bool adaptive = false;
  AdaptiveOptions adaptive_options;
};

/// Full pipeline outcome, with the direct-transfer baseline included.
struct LocalPipelineResult {
  ParallelCompressResult compression;
  TransferEstimate transfer;          ///< compressed payload over WAN
  TransferEstimate direct_transfer;   ///< baseline: raw files over WAN
  double decompress_seconds = 0.0;
  double max_error = 0.0;             ///< worst |orig-recon| across files
  double min_psnr_db = 0.0;           ///< worst PSNR across files
  std::size_t wire_files = 0;
  /// Per-backend block counts of the adaptive run (empty when the
  /// pipeline ran with a fixed backend).
  AdaptiveSummary adaptive;

  /// compression + transfer + decompression.
  [[nodiscard]] double total_seconds() const {
    return compression.wall_seconds + transfer.duration_s +
           decompress_seconds;
  }
  /// direct time / optimized total (the paper's speed-up framing).
  [[nodiscard]] double speedup() const {
    return direct_transfer.duration_s / total_seconds();
  }
};

/// Runs the pipeline on named fields; the destination store receives
/// the reconstructed fields (written via the OCF1 format).
LocalPipelineResult run_local_pipeline(
    const std::vector<std::string>& names,
    const std::vector<FloatArray>& fields, const LocalPipelineConfig& config,
    FileStore* destination = nullptr);

/// Converts a pipeline run's measured (de)compression walls into the
/// per-core throughputs the campaign/orchestrator timing model uses,
/// so virtual-time estimates consume real block-parallel measurements.
ComputeRates measured_compute_rates(const LocalPipelineResult& result,
                                    std::size_t workers);

}  // namespace ocelot
