#include "core/sentinel.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/grouping.hpp"
#include "netsim/simulation.hpp"
#include "transfer/globus.hpp"

namespace ocelot {

SentinelReport run_sentinel(const FileInventory& inventory,
                            SentinelConfig config) {
  require(!inventory.raw_bytes.empty(), "run_sentinel: empty inventory");
  require(config.wait_model != nullptr, "run_sentinel: null wait model");

  const LinkProfile link = route(config.campaign.src, config.campaign.dst);
  const SiteSpec& src_site = site(config.campaign.src);
  const SiteSpec& dst_site = site(config.campaign.dst);

  Simulation sim;
  GlobusService globus(sim);
  BatchScheduler scheduler(sim, config.machine_nodes,
                           std::move(config.wait_model));

  SentinelReport report;

  // Start the uncompressed transfer immediately (Fig. 10 left path).
  TransferRequest raw_req{inventory.app + "/raw", link, inventory.raw_bytes};
  bool raw_finished = false;
  auto raw_task = globus.submit(raw_req, [&](const TransferTask&) {
    raw_finished = true;
    report.total_seconds = sim.now();
  });

  // Concurrently request compute nodes for compression.
  scheduler.submit(
      config.campaign.compress_nodes, [&](const Allocation& alloc) {
        if (raw_finished) {
          // Nodes arrived after everything already moved uncompressed;
          // release them untouched (worst case of Section VII-B).
          scheduler.release(alloc);
          return;
        }
        report.nodes_granted = true;
        report.node_wait_seconds = sim.now();

        // Stop the raw transfer; consult the meta file for files that
        // no longer need compression.
        raw_task->cancel(sim.now());
        const std::size_t done = raw_task->completed_files_at(sim.now());
        report.files_sent_raw = done;
        for (std::size_t i = 0; i < done; ++i) {
          report.meta_file.push_back(inventory.app + "/file-" +
                                     std::to_string(i));
        }

        const std::size_t remaining = inventory.file_count() - done;
        if (remaining == 0) {
          scheduler.release(alloc);
          report.total_seconds = sim.now();
          return;
        }

        // Compress the remaining files on the granted nodes.
        std::vector<double> rest(inventory.raw_bytes.begin() +
                                     static_cast<std::ptrdiff_t>(done),
                                 inventory.raw_bytes.end());
        const double cp = cluster_compress_seconds(
            rest, alloc.nodes, config.campaign.compress_cores_per_node,
            config.campaign.rates, src_site.fs,
            config.campaign.block_bytes);
        report.compress_seconds = cp;
        report.files_sent_compressed = remaining;

        sim.schedule_in(cp, [&, alloc, rest] {
          scheduler.release(alloc);
          std::vector<double> compressed(rest.size());
          for (std::size_t i = 0; i < rest.size(); ++i) {
            compressed[i] = rest[i] / config.campaign.compression_ratio;
          }
          const GroupPlan plan = plan_groups_by_world_size(
              compressed.size(), config.campaign.group_world_size);
          TransferRequest comp_req{inventory.app + "/compressed", link,
                                   group_sizes(plan, compressed)};
          // `rest` must be captured by value: the enclosing lambda (and
          // its copy of `rest`) is destroyed when this scheduled event
          // finishes, long before the transfer completion fires.
          globus.submit(comp_req, [&, rest](const TransferTask&) {
            const double dp = cluster_decompress_seconds(
                rest, config.campaign.decompress_nodes,
                config.campaign.decompress_cores_per_node,
                config.campaign.rates, dst_site.fs,
                config.campaign.block_bytes);
            report.decompress_seconds = dp;
            sim.schedule_in(dp, [&] { report.total_seconds = sim.now(); });
          });
        });
      });

  sim.run();

  // Accounting: bytes actually on the wire.
  const double raw_bytes_moved = raw_task->completed_bytes_at(
      report.nodes_granted ? report.node_wait_seconds : report.total_seconds);
  double compressed_moved = 0.0;
  if (report.nodes_granted) {
    for (std::size_t i = report.files_sent_raw; i < inventory.file_count();
         ++i) {
      compressed_moved +=
          inventory.raw_bytes[i] / config.campaign.compression_ratio;
    }
  }
  if (!report.nodes_granted) {
    report.files_sent_raw = inventory.file_count();
    report.node_wait_seconds = report.total_seconds;
  }
  report.bytes_on_wire = raw_bytes_moved + compressed_moved;
  return report;
}

}  // namespace ocelot
