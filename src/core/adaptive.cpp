#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "codec/entropy.hpp"
#include "common/error.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"

namespace ocelot {

namespace {

/// Ratio predictions are clamped to [1, kMaxRatio] in log2 space so a
/// degenerate feature sample (entropy ~ 0) cannot produce an estimate
/// that swamps every residual correction.
constexpr double kMaxLog2Ratio = 10.0;  // 1024x

/// splitmix64 step — deterministic tie-break ordering between
/// candidates whose adjusted predictions are bit-identical.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double clamp_log2_ratio(double log2_ratio) {
  return std::clamp(log2_ratio, 0.0, kMaxLog2Ratio);
}

/// Strided min/max of the block (the analytic PSNR estimate only
/// needs the value range, so it shares the feature sampling stride).
double sampled_range_of(const FloatArray& block, std::size_t stride) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const auto vals = block.values();
  for (std::size_t i = 0; i < vals.size(); i += stride) {
    lo = std::min(lo, static_cast<double>(vals[i]));
    hi = std::max(hi, static_cast<double>(vals[i]));
  }
  return hi > lo ? hi - lo : 0.0;
}

/// First `slabs` slowest-dimension slabs of the block (row-truncated
/// to at most `max_elements`), copied out for the calibration probe.
/// Always a contiguous prefix of the block's storage.
FloatArray slab_prefix(const FloatArray& block, std::size_t slabs,
                       std::size_t max_elements) {
  const Shape& shape = block.shape();
  std::size_t keep = std::min(slabs, shape.dim(0));
  Shape prefix_shape =
      shape.rank() == 1   ? Shape(keep)
      : shape.rank() == 2 ? Shape(keep, shape.dim(1))
                          : Shape(keep, shape.dim(1), shape.dim(2));
  if (max_elements > 0 && prefix_shape.size() > max_elements) {
    // Trim to one slab, then cut rows (and, when a single row still
    // exceeds the cap, the row itself) until the cap holds.
    if (shape.rank() == 1) {
      prefix_shape = Shape(max_elements);
    } else if (shape.rank() == 2) {
      prefix_shape = Shape(1, std::min(shape.dim(1), max_elements));
    } else if (shape.dim(2) >= max_elements) {
      prefix_shape = Shape(1, 1, max_elements);
    } else {
      const std::size_t rows =
          std::max<std::size_t>(1, max_elements / shape.dim(2));
      prefix_shape = Shape(1, std::min(shape.dim(1), rows), shape.dim(2));
    }
  }
  std::vector<float> data(
      block.values().begin(),
      block.values().begin() +
          static_cast<std::ptrdiff_t>(prefix_shape.size()));
  return FloatArray(prefix_shape, std::move(data));
}

}  // namespace

AdvisorPolicy::AdvisorPolicy(AdaptiveOptions options)
    : options_(std::move(options)) {
  require(!options_.eb_scales.empty(), "AdvisorPolicy: no eb scales");
  for (const double scale : options_.eb_scales) {
    require(scale > 0.0 && scale <= 1.0,
            "AdvisorPolicy: eb scales must lie in (0, 1]");
  }
  require(options_.learning_rate > 0.0 && options_.learning_rate <= 1.0,
          "AdvisorPolicy: learning rate must lie in (0, 1]");
  require(options_.sample_stride >= 1, "AdvisorPolicy: zero sample stride");

  const auto& registry = BackendRegistry::instance();
  std::vector<Candidate> backends;
  if (options_.backends.empty()) {
    for (const CompressorBackend* backend : registry.list()) {
      backends.push_back({backend->name(), backend->wire_id(), "", 0});
    }
  } else {
    for (const std::string& name : options_.backends) {
      const CompressorBackend& backend = registry.by_name(name);
      backends.push_back({backend.name(), backend.wire_id(), "", 0});
    }
  }
  require(!backends.empty(), "AdvisorPolicy: no candidate backends");
  // The candidate set is the backends x entropy-stages cross-product,
  // backend-major so same-backend candidates stay adjacent in the
  // decision tables. An empty stage list contributes one inherit-base
  // pseudo-stage (empty name, id 0), which keeps the candidate list —
  // and therefore every residual slot and tie-break hash — identical
  // to the stage-unaware advisor's.
  std::vector<Candidate> stages;
  if (options_.entropy_stages.empty()) {
    stages.push_back({});
  } else {
    const auto& entropy_registry = EntropyRegistry::instance();
    for (const std::string& name : options_.entropy_stages) {
      const EntropyStage& stage = entropy_registry.by_name(name);
      stages.push_back({"", 0, stage.name(), stage.wire_id()});
    }
  }
  for (const Candidate& backend : backends) {
    for (const Candidate& stage : stages) {
      candidates_.push_back(
          {backend.name, backend.wire_id, stage.entropy, stage.entropy_id});
    }
  }
  residuals_.assign(candidates_.size(), {});
}

const std::string& AdvisorPolicy::candidate_entropy(std::size_t c) const {
  return candidates_[c].entropy.empty() ? base_.entropy
                                        : candidates_[c].entropy;
}

std::uint8_t AdvisorPolicy::candidate_entropy_id(std::size_t c) const {
  return candidates_[c].entropy.empty() ? base_entropy_id_
                                        : candidates_[c].entropy_id;
}

void AdvisorPolicy::begin(std::size_t n_fields, std::size_t n_tasks,
                          const CompressionConfig& base) {
  base_ = base;
  base_entropy_id_ =
      EntropyRegistry::instance().by_name(base.entropy).wire_id();
  probes_.assign(n_tasks, {});
  calibrations_.assign(n_fields, {});
  field_states_.assign(n_fields, {});
  pending_base_.assign(n_tasks, 0.0);
  pending_cand_.assign(n_tasks, 0);
  pending_challenger_base_.assign(n_tasks, 0.0);
  pending_challenger_cand_.assign(n_tasks, candidates_.size());
  log_slot_.assign(n_tasks, 0);
  // Residuals deliberately survive begin(): sequential batches of the
  // same campaign keep learning from each other.
}

std::size_t AdvisorPolicy::wave_tasks() const {
  return std::max<std::size_t>(1, options_.wave_tasks);
}

bool AdvisorPolicy::needs_block_features() const {
  return options_.model != nullptr || options_.eb_scales.size() > 1 ||
         options_.min_psnr_db > 0.0;
}

bool AdvisorPolicy::wants_probe(const BlockContext& ctx) const {
  // Block 0 always probes (it hosts the field's calibration run);
  // other blocks only when their features can influence a decision.
  return needs_block_features() ||
         (ctx.block == 0 && options_.probe_slabs > 0);
}

void AdvisorPolicy::probe(const BlockContext& ctx, const FloatArray& block) {
  TaskProbe& probe = probes_[ctx.task];
  probe.elements = block.size();
  if (needs_block_features()) {
    // The value range only feeds the analytic PSNR estimate; skip the
    // scan when no quality constraint can consume it.
    probe.sampled_range =
        options_.min_psnr_db > 0.0 && options_.model == nullptr
            ? sampled_range_of(block, options_.sample_stride)
            : 0.0;
    probe.per_scale.resize(options_.eb_scales.size());
    for (std::size_t s = 0; s < options_.eb_scales.size(); ++s) {
      probe.per_scale[s] = extract_compressor_features(
          block, ctx.field_abs_eb * options_.eb_scales[s],
          options_.sample_stride);
    }
    if (options_.model != nullptr) {
      probe.df = extract_data_features(block);
    }
  }

  // Calibration probe, once per field on its first block: compress a
  // small slab prefix with every candidate so the residuals start from
  // observed ratios instead of cold predictions. Concurrent probes
  // write disjoint calibration slots (one field owns exactly one
  // block 0), so this is race-free.
  if (ctx.block == 0 && options_.probe_slabs > 0) {
    FieldCalibration& calib = calibrations_[ctx.field];
    calib.ran = true;
    calib.obs_log2.assign(candidates_.size(), 0.0);
    const FloatArray prefix = slab_prefix(block, options_.probe_slabs,
                                          options_.probe_max_elements);
    const double raw = static_cast<double>(prefix.byte_size());
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      CompressionConfig config = base_;
      config.backend = candidates_[c].name;
      if (!candidates_[c].entropy.empty())
        config.entropy = candidates_[c].entropy;
      config.eb_mode = EbMode::kAbsolute;
      config.eb = ctx.field_abs_eb * options_.eb_scales.front();
      const Bytes blob = compress(prefix, config);
      calib.obs_log2[c] = std::log2(raw / static_cast<double>(blob.size()));
    }
  }
}

double AdvisorPolicy::base_log2_ratio(const TaskProbe& probe,
                                      std::size_t scale_index,
                                      const Candidate& candidate,
                                      double abs_eb) const {
  if (options_.model != nullptr) {
    const FeatureVector fv = assemble_feature_vector(
        abs_eb, candidate.wire_id, probe.df, probe.per_scale[scale_index]);
    const QualityPrediction prediction =
        options_.model->predict(fv, probe.elements);
    return clamp_log2_ratio(std::log2(
        std::max(prediction.compression_ratio, 1.0)));
  }
  // Un-probed block (default single-scale mode): a zero base makes the
  // residuals plain EW log ratios, which is all the duel-led selection
  // needs.
  if (probe.per_scale.empty()) return 0.0;
  // Closed-form estimate: the Huffman stage spends about the sampled
  // quantization-bin entropy per value, against 32 raw bits. Backend-
  // independent — the per-backend residuals supply the separation.
  const double bits =
      std::max(probe.per_scale[scale_index].quant_entropy, 32.0 / 1024.0);
  return clamp_log2_ratio(std::log2(32.0 / bits));
}

double AdvisorPolicy::estimated_psnr_db(const TaskProbe& probe,
                                        std::size_t scale_index,
                                        const Candidate& candidate,
                                        double abs_eb) const {
  if (options_.model != nullptr) {
    const FeatureVector fv = assemble_feature_vector(
        abs_eb, candidate.wire_id, probe.df, probe.per_scale[scale_index]);
    return options_.model->predict(fv, probe.elements).psnr_db;
  }
  // Analytic bound-driven estimate: quantization error ~ uniform on
  // [-eb, eb] gives MSE = eb^2 / 3.
  if (probe.sampled_range <= 0.0 || abs_eb <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 10.0 * std::log10(3.0 * probe.sampled_range * probe.sampled_range /
                           (abs_eb * abs_eb));
}

double AdvisorPolicy::residual_value(std::size_t field,
                                     std::size_t candidate) const {
  const FieldState& fs = field_states_[field];
  if (fs.inited && (fs.local[candidate].observations > 0 ||
                    fs.local[candidate].seeded)) {
    return fs.local[candidate].log2;
  }
  return residuals_[candidate].value();
}

void AdvisorPolicy::update_residual(std::size_t field, std::size_t candidate,
                                    double sample_log2) {
  sample_log2 = std::clamp(sample_log2, -kMaxLog2Ratio, kMaxLog2Ratio);
  const auto fold = [&](Residual& residual) {
    ++residual.observations;
    const double alpha =
        std::max(options_.learning_rate,
                 1.0 / static_cast<double>(residual.observations));
    residual.log2 = (1.0 - alpha) * residual.log2 + alpha * sample_log2;
  };
  fold(field_states_[field].local[candidate]);
  fold(residuals_[candidate]);
}

BlockDecision AdvisorPolicy::decide(const BlockContext& ctx) {
  const TaskProbe& probe = probes_[ctx.task];

  FieldState& fs = field_states_[ctx.field];
  if (!fs.inited) {
    fs.inited = true;
    fs.budget_bytes =
        options_.explore_budget * static_cast<double>(ctx.field_bytes);
    fs.explored.assign(candidates_.size(), false);
    fs.local.assign(candidates_.size(), {});
    fs.paired.assign(candidates_.size(), 0.0);
    fs.paired_set.assign(candidates_.size(), false);
  }

  // Fold the field's calibration probe before its first decision, so
  // even block 0 chooses with observed evidence for every candidate.
  // Calibration is provisional: compressing a short slab prefix
  // under-rates backends whose ratio grows with array size, so the
  // probe only seeds the field-local residual without counting as an
  // observation — the field's first true block-granularity observation
  // of the candidate replaces it outright.
  FieldCalibration& calib = calibrations_[ctx.field];
  if (calib.ran && !calib.folded) {
    calib.folded = true;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      const double base = base_log2_ratio(
          probe, 0, candidates_[c],
          ctx.field_abs_eb * options_.eb_scales.front());
      fs.local[c].seeded = true;
      fs.local[c].log2 = std::clamp(calib.obs_log2[c] - base,
                                    -kMaxLog2Ratio, kMaxLog2Ratio);
    }
  }

  // Score every (candidate, eb-scale) pair: adjusted ratio prediction
  // plus the quality constraint. Feasible pairs always beat infeasible
  // ones; within a class the adjusted prediction decides, with a
  // seeded hash as a deterministic tie-break.
  std::size_t best_c = 0;
  std::size_t best_s = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  std::uint64_t best_tie = 0;
  bool best_feasible = false;
  std::vector<double> candidate_score(
      candidates_.size(), -std::numeric_limits<double>::infinity());
  std::vector<std::size_t> candidate_scale(candidates_.size(), 0);
  std::vector<bool> candidate_scale_feasible(candidates_.size(), false);
  for (std::size_t s = 0; s < options_.eb_scales.size(); ++s) {
    const double abs_eb = ctx.field_abs_eb * options_.eb_scales[s];
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      const double base = base_log2_ratio(probe, s, candidates_[c], abs_eb);
      const double adj = base + residual_value(ctx.field, c);
      const bool feasible =
          options_.min_psnr_db <= 0.0 ||
          estimated_psnr_db(probe, s, candidates_[c], abs_eb) >=
              options_.min_psnr_db;
      // Ordering: feasible beats infeasible; among feasible picks the
      // adjusted prediction decides; when nothing meets the floor the
      // tightest bound wins (closest to the requested quality).
      const auto beats = [&](bool cur_feasible, double cur_score,
                             std::size_t cur_scale, bool prev_feasible,
                             double prev_score, std::size_t prev_scale,
                             bool prev_valid) {
        if (!prev_valid) return true;
        if (cur_feasible != prev_feasible) return cur_feasible;
        if (!cur_feasible &&
            options_.eb_scales[cur_scale] != options_.eb_scales[prev_scale]) {
          return options_.eb_scales[cur_scale] <
                 options_.eb_scales[prev_scale];
        }
        return cur_score > prev_score;
      };
      // Per-candidate best scale (same ordering).
      const bool candidate_valid =
          candidate_score[c] > -std::numeric_limits<double>::infinity();
      if (beats(feasible, adj, s, candidate_scale_feasible[c],
                candidate_score[c], candidate_scale[c], candidate_valid)) {
        candidate_score[c] = adj;
        candidate_scale[c] = s;
        candidate_scale_feasible[c] = feasible;
      }
      // The entropy id enters the hash shifted past the backend id's
      // byte; the default stage contributes 0, so stage-unaware runs
      // hash — and tie-break — exactly as before.
      const std::uint64_t tie =
          mix(options_.seed ^ (ctx.task * 1315423911u) ^
              (candidates_[c].wire_id << 8) ^
              (static_cast<std::uint64_t>(candidates_[c].entropy_id) << 16) ^
              s);
      const bool best_valid =
          best_score > -std::numeric_limits<double>::infinity();
      const bool better =
          beats(feasible, adj, s, best_feasible, best_score, best_s,
                best_valid) ||
          (best_valid && feasible == best_feasible && adj == best_score &&
           options_.eb_scales[s] == options_.eb_scales[best_s] &&
           tie < best_tie);
      if (better) {
        best_c = c;
        best_s = s;
        best_score = adj;
        best_tie = tie;
        best_feasible = feasible;
      }
    }
  }

  // Backend choice. The trained-model path trusts the per-candidate
  // predictions (the model genuinely separates backends per block).
  // The closed-form estimate cannot — its entropy base is backend-
  // independent and its per-block noise exceeds real backend gaps —
  // so there the field's duel leader decides, and scoring only picks
  // the leader's error-bound scale and orders the duel queue.
  if (options_.model == nullptr) {
    if (!fs.leader_set) {
      fs.leader_set = true;
      fs.leader = best_c;  // elected by the calibration seeds
      fs.paired[best_c] = 0.0;  // anchors the paired-score scale
      fs.paired_set[best_c] = true;
    }
    best_c = fs.leader;
    best_s = candidate_scale[best_c];
  }

  BlockDecision decision;
  decision.config = base_;
  decision.config.backend = candidates_[best_c].name;
  if (!candidates_[best_c].entropy.empty())
    decision.config.entropy = candidates_[best_c].entropy;
  decision.config.eb_mode = EbMode::kAbsolute;
  decision.config.eb = ctx.field_abs_eb * options_.eb_scales[best_s];
  decision.backend_id = candidates_[best_c].wire_id;
  const double base =
      base_log2_ratio(probe, best_s, candidates_[best_c], decision.config.eb);
  decision.predicted_ratio =
      std::exp2(base + residual_value(ctx.field, best_c));

  pending_base_[ctx.task] = base;
  pending_cand_[ctx.task] = best_c;

  // Keep-best exploration: until the field's byte budget runs out,
  // nominate the strongest candidate that still lacks a true
  // block-granularity observation this field. The executor compresses
  // the block under both configs and keeps the smaller payload, so
  // this buys an unbiased observation (the calibration prefix under-
  // rates backends whose ratio grows with array size) at pure compute
  // cost, never ratio.
  fs.explored[best_c] = true;
  pending_challenger_cand_[ctx.task] = candidates_.size();
  const double block_bytes = static_cast<double>(ctx.block_bytes);
  // Every field gets at least one duel even when its blocks are too
  // large for the byte budget: a prefix probe cannot separate
  // candidates whose ratio advantage only shows at block granularity
  // (multilevel families), and a field stuck on the wrong backend
  // costs far more than one keep-best block.
  const bool first_duel = !fs.any_duel;
  if (candidates_.size() > 1 &&
      (fs.budget_bytes >= block_bytes || first_duel)) {
    std::size_t challenger = candidates_.size();
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      if (fs.explored[c]) continue;
      // A seed trailing the leader's score by more than the duel
      // margin is beyond any observed prefix bias — not worth a block.
      if (options_.duel_margin_log2 > 0.0 &&
          candidate_score[c] <
              candidate_score[best_c] - options_.duel_margin_log2) {
        continue;
      }
      if (challenger == candidates_.size() ||
          candidate_score[c] > candidate_score[challenger]) {
        challenger = c;
      }
    }
    if (challenger != candidates_.size()) {
      fs.explored[challenger] = true;
      fs.any_duel = true;
      fs.budget_bytes -= block_bytes;
      decision.has_challenger = true;
      decision.challenger = decision.config;
      decision.challenger.backend = candidates_[challenger].name;
      decision.challenger.entropy = candidate_entropy(challenger);
      decision.challenger_id = candidates_[challenger].wire_id;
      pending_challenger_cand_[ctx.task] = challenger;
      pending_challenger_base_[ctx.task] = base_log2_ratio(
          probe, best_s, candidates_[challenger], decision.config.eb);
    }
  }

  log_slot_[ctx.task] = log_.size();
  log_.push_back({ctx.field, ctx.block, decision.config.backend,
                  decision.backend_id, candidate_entropy(best_c),
                  candidate_entropy_id(best_c), decision.config.eb,
                  decision.predicted_ratio, 0.0,
                  decision.has_challenger ? decision.challenger.backend
                                          : std::string(),
                  false});
  return decision;
}

void AdvisorPolicy::observe(const BlockContext& ctx,
                            const BlockDecision& decision,
                            const BlockOutcome& outcome) {
  if (outcome.primary_bytes == 0 || outcome.raw_bytes == 0) return;
  const double raw = static_cast<double>(outcome.raw_bytes);
  const double primary_ratio =
      raw / static_cast<double>(outcome.primary_bytes);
  update_residual(ctx.field, pending_cand_[ctx.task],
                  std::log2(primary_ratio) - pending_base_[ctx.task]);

  AdaptiveDecisionRecord& record = log_[log_slot_[ctx.task]];
  record.observed_ratio = primary_ratio;
  const std::size_t challenger = pending_challenger_cand_[ctx.task];
  if (challenger < candidates_.size() && outcome.challenger_bytes > 0) {
    const double challenger_ratio =
        raw / static_cast<double>(outcome.challenger_bytes);
    update_residual(ctx.field, challenger,
                    std::log2(challenger_ratio) -
                        pending_challenger_base_[ctx.task]);
    // Closed-form path: fold the duel into the paired scores. Both
    // payloads came from the same block, so their log-ratio delta is
    // an unbiased pairwise comparison; chaining through the primary's
    // score makes every dueled candidate comparable, and the top score
    // leads the field from the next decision on.
    FieldState& fs = field_states_[ctx.field];
    const std::size_t primary = pending_cand_[ctx.task];
    if (options_.model == nullptr && fs.paired_set[primary]) {
      fs.paired[challenger] = fs.paired[primary] +
                              std::log2(challenger_ratio) -
                              std::log2(primary_ratio);
      fs.paired_set[challenger] = true;
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        if (fs.paired_set[c] && fs.paired[c] > fs.paired[fs.leader]) {
          fs.leader = c;
        }
      }
    }
    if (outcome.kept_challenger) {
      // The container holds the challenger's payload; the table names
      // what is actually on the wire.
      record.backend = decision.challenger.backend;
      record.backend_id = decision.challenger_id;
      record.entropy = candidate_entropy(challenger);
      record.entropy_id = candidate_entropy_id(challenger);
      record.observed_ratio = challenger_ratio;
      record.kept_challenger = true;
    }
  }
}

std::string to_string(const AdaptiveSummary& summary) {
  std::string mix;
  for (const auto& [name, blocks] : summary.backend_blocks) {
    if (!mix.empty()) mix += ' ';
    mix += name + ':' + std::to_string(blocks);
  }
  // The stage mix only earns its line width when some block left the
  // default chain; all-huffman runs read exactly as they used to.
  const bool all_default = summary.entropy_blocks.empty() ||
                           (summary.entropy_blocks.size() == 1 &&
                            summary.entropy_blocks.front().first == "huffman");
  if (!all_default) {
    mix += mix.empty() ? "entropy[" : " entropy[";
    for (std::size_t i = 0; i < summary.entropy_blocks.size(); ++i) {
      if (i > 0) mix += ' ';
      mix += summary.entropy_blocks[i].first + ':' +
             std::to_string(summary.entropy_blocks[i].second);
    }
    mix += ']';
  }
  return mix.empty() ? "-" : mix;
}

AdaptiveSummary AdvisorPolicy::summary() const {
  AdaptiveSummary summary;
  summary.blocks = log_.size();
  // Candidates are a cross-product, so the same backend (or stage) can
  // appear several times; count each wire id once, in candidate order
  // (backend-major keeps both lists in wire-id order).
  std::vector<std::uint8_t> seen_backends;
  std::vector<std::uint8_t> seen_stages;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const Candidate& candidate = candidates_[c];
    if (std::find(seen_backends.begin(), seen_backends.end(),
                  candidate.wire_id) == seen_backends.end()) {
      seen_backends.push_back(candidate.wire_id);
      std::size_t count = 0;
      for (const AdaptiveDecisionRecord& record : log_) {
        if (record.backend_id == candidate.wire_id) ++count;
      }
      if (count > 0)
        summary.backend_blocks.emplace_back(candidate.name, count);
    }
    const std::uint8_t stage_id = candidate_entropy_id(c);
    if (std::find(seen_stages.begin(), seen_stages.end(), stage_id) ==
        seen_stages.end()) {
      seen_stages.push_back(stage_id);
      std::size_t count = 0;
      for (const AdaptiveDecisionRecord& record : log_) {
        if (record.entropy_id == stage_id) ++count;
      }
      if (count > 0)
        summary.entropy_blocks.emplace_back(candidate_entropy(c), count);
    }
  }
  return summary;
}

}  // namespace ocelot
