#pragma once
// Engine: the one compression facade every front end calls.
//
// Three frontends share one hot path: the CLI (`ocelot compress` /
// `advise` / `stats`), the stdin/stdout chunked streaming mode, and
// the ocelotd daemon (src/server/). Before this facade each of them
// re-assembled the same pipeline by hand — CompressionConfig parsing,
// adaptive-advisor wiring, block-vs-single-shot dispatch, worker-count
// resolution — three near-duplicates that could (and did) drift. Now
// they all build an EngineRequest (usually via
// parse_compression_options on a shared OptionSet) and hand it to
// Engine, so a request compressed over a daemon socket produces bytes
// identical to the same request on the command line.
//
// Dispatch:
//   adaptive          -> block-parallel container (OCB1) through an
//                        AdvisorPolicy (per-block backend / bound)
//   fixed             -> single-shot OCZ blob via compress_into
//   compress_stream   -> chunked OCB1 from a byte stream (stream_codec)
//   compress_fields   -> batch path (whole-file or blocked) used by
//                        the local pipeline
// All paths keep the container-bytes-deterministic guarantee: output
// does not depend on the worker count.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ndarray.hpp"
#include "common/options.hpp"
#include "compressor/config.hpp"
#include "core/adaptive.hpp"
#include "core/stream_codec.hpp"
#include "exec/parallel_codec.hpp"

namespace ocelot {

/// Everything a front end needs to say about one compression run.
struct EngineRequest {
  CompressionConfig config;
  /// Online advisor picks each block's backend / error bound; output
  /// becomes an OCB1 container instead of a bare OCZ blob.
  bool adaptive = false;
  AdaptiveOptions adaptive_options;
  /// Slabs per block on the blocked paths (0 = the per-path default:
  /// 8 for adaptive/streaming, whole-file for the batch path).
  std::size_t block_slabs = 0;
  /// Worker threads; 0 resolves to every hardware thread. Never
  /// affects the emitted bytes.
  std::size_t workers = 0;
};

/// Which knobs a front end exposes; error messages match the CLI's.
struct CompressionOptionRules {
  /// Accept policy=fixed|adaptive (compress/stats do; advise, which is
  /// always adaptive, rejects the key as unknown).
  bool allow_policy = true;
  /// Treat the request as adaptive without an explicit policy key.
  bool default_adaptive = false;
  /// Advisor knobs (backends/entropy_stages/eb_scales/min_psnr/stride)
  /// and workers require policy=adaptive (the `compress` contract).
  bool advisor_knobs_need_policy = false;
};

/// Consumes the shared compression keys from `options`: eb, mode,
/// backend (alias pipeline, later-one-wins), entropy, block_slabs,
/// workers, policy, and the advisor knobs. Leaves unrelated keys for
/// the caller, who finishes with options.reject_unknown(...). The
/// default bound is value-range-relative 1e-3, the CLI's historical
/// default, so daemon requests match CLI invocations knob for knob.
EngineRequest parse_compression_options(
    OptionSet& options, const CompressionOptionRules& rules = {});

/// Resolves a backend name through the registry ("sz3" stays a
/// convenience alias for the SZ3 default); throws on unknown names.
std::string resolve_backend_name(const std::string& name);

/// Resolves an entropy-stage name through its registry.
std::string resolve_entropy_name(const std::string& name);

/// Outcome of one Engine::compress call.
struct EngineResult {
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
  std::size_t blocks = 1;   ///< OCB1 block count; 1 for a bare blob
  double abs_eb = 0.0;      ///< bound resolved against the field
  double wall_seconds = 0.0;
  /// Backend/stage mix of an adaptive run (empty for fixed runs).
  AdaptiveSummary adaptive;

  [[nodiscard]] double ratio() const {
    return compressed_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes)
               : 0.0;
  }
};

class Engine {
 public:
  Engine() = default;

  /// Process-wide instance shared by the CLI and the daemon (the
  /// engine itself is stateless; the shared instance exists so all
  /// frontends are visibly calling the same object).
  static Engine& shared();

  /// Compresses one field per `request`, appending the blob/container
  /// to `out`. `policy` overrides the internally constructed
  /// AdvisorPolicy so callers (ocelot advise) can read the decision
  /// log afterwards; it is only consulted on adaptive requests.
  EngineResult compress(const FloatArray& field, const EngineRequest& request,
                        Bytes& out, AdvisorPolicy* policy = nullptr) const;

  /// Decompresses a bare OCZ blob or an OCB1 container (by magic).
  /// `workers` only affects wall time, never the values.
  [[nodiscard]] FloatArray decompress(std::span<const std::uint8_t> blob,
                                      std::size_t workers = 0) const;

  /// Batch path (the local pipeline): whole-file tasks when
  /// request.block_slabs == 0 and not adaptive, blocked otherwise.
  /// `adaptive_out`, when non-null, receives the advisor summary.
  ParallelCompressResult compress_fields(
      const std::vector<FloatArray>& fields, const EngineRequest& request,
      AdaptiveSummary* adaptive_out = nullptr) const;

  /// Chunked streaming compress (raw float32 in, OCB1 out);
  /// `slab_dims` are the trailing dimensions of one slab.
  StreamStats compress_stream(std::istream& in, std::ostream& out,
                              const EngineRequest& request,
                              const std::vector<std::size_t>& slab_dims) const;

  /// Streaming decompress (OCB1/OCZ in, raw float32 out).
  StreamStats decompress_stream(std::istream& in, std::ostream& out) const;

  /// 0 -> every hardware thread (the emitted bytes never depend on it).
  [[nodiscard]] static std::size_t resolve_workers(std::size_t requested);
};

}  // namespace ocelot
