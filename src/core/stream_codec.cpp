#include "core/stream_codec.hpp"

#include <istream>
#include <ostream>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "compressor/compressor.hpp"
#include "io/block_container.hpp"
#include "obs/trace.hpp"

namespace ocelot {

namespace {

Shape chunk_shape(std::size_t slabs, const std::vector<std::size_t>& dims) {
  switch (dims.size()) {
    case 0:
      return Shape(slabs);
    case 1:
      return Shape(slabs, dims[0]);
    default:
      return Shape(slabs, dims[0], dims[1]);
  }
}

/// Reads up to `want` bytes, returning the count actually read (short
/// only at EOF).
std::size_t read_fully(std::istream& in, char* dst, std::size_t want) {
  in.read(dst, static_cast<std::streamsize>(want));
  return static_cast<std::size_t>(in.gcount());
}

void write_floats(std::ostream& out, std::span<const float> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
  require(out.good(), "stream: write failed");
}

}  // namespace

StreamStats stream_compress(std::istream& in, std::ostream& out,
                            const StreamCompressConfig& config) {
  require(config.slab_dims.size() <= 2,
          "stream_compress: slab rank must be <= 2 (field rank <= 3)");
  require(config.block_slabs > 0, "stream_compress: zero block size");
  std::size_t slab_elems = 1;
  for (const std::size_t d : config.slab_dims) {
    require(d > 0, "stream_compress: zero slab dimension");
    slab_elems *= d;
  }
  const std::size_t chunk_elems = config.block_slabs * slab_elems;
  const std::size_t chunk_bytes = chunk_elems * sizeof(float);

  BlockContainerWriter writer(config.block_slabs);
  // The lease owns the chunk storage across iterations; compression
  // borrows it via the array wrapper and hands it back (also on
  // throw), so a malformed stream cannot bleed capacity from the pool.
  ScratchLease<float> chunk(ScratchPool<float>::shared(), chunk_elems);
  std::size_t total_slabs = 0;

  while (true) {
    chunk->resize(chunk_elems);
    const std::size_t got =
        read_fully(in, reinterpret_cast<char*>(chunk->data()), chunk_bytes);
    if (got == 0) break;
    if (got % sizeof(float) != 0)
      throw CorruptStream("stream: input ends mid-float");
    const std::size_t elems = got / sizeof(float);
    if (elems % slab_elems != 0)
      throw CorruptStream("stream: input ends mid-slab");
    const std::size_t slabs = elems / slab_elems;
    chunk->resize(elems);

    // Wrap the pooled chunk, compress it straight into the container
    // arena, then take the storage back for the next chunk.
    FloatArray block(chunk_shape(slabs, config.slab_dims),
                     std::move(*chunk));
    try {
      OCELOT_SPAN("stream.chunk");
      compress_into(block, config.compression, writer.begin_block());
    } catch (...) {
      *chunk = block.release();
      throw;
    }
    writer.end_block();
    *chunk = block.release();

    total_slabs += slabs;
    if (got < chunk_bytes) break;  // EOF inside this chunk
  }
  require(total_slabs > 0, "stream_compress: empty input stream");

  StreamStats stats;
  stats.shape = chunk_shape(total_slabs, config.slab_dims);
  stats.blocks = writer.block_count();
  stats.raw_bytes = total_slabs * slab_elems * sizeof(float);

  PooledBuffer container(BufferPool::shared());
  ByteSink sink(*container);
  writer.finish(stats.shape, sink);
  stats.compressed_bytes = container->size();
  out.write(reinterpret_cast<const char*>(container->data()),
            static_cast<std::streamsize>(container->size()));
  require(out.good(), "stream_compress: write failed");
  return stats;
}

StreamStats stream_decompress(std::istream& in, std::ostream& out) {
  PooledBuffer data(BufferPool::shared());
  {
    // Drain the stream in fixed-size chunks (no istreambuf iterator
    // churn); compressed input is small relative to the raw output.
    constexpr std::size_t kChunk = 1u << 20;
    std::size_t size = 0;
    while (true) {
      data->resize(size + kChunk);
      const std::size_t got =
          read_fully(in, reinterpret_cast<char*>(data->data() + size), kChunk);
      size += got;
      if (got < kChunk) break;
    }
    data->resize(size);
  }

  StreamStats stats;
  stats.compressed_bytes = data->size();
  if (!is_block_container(*data)) {
    // Bare OCZ1 blob: decode whole (there is no block structure).
    const FloatArray field = decompress<float>(*data);
    stats.shape = field.shape();
    stats.blocks = 1;
    stats.raw_bytes = field.byte_size();
    write_floats(out, field.values());
    return stats;
  }

  const BlockContainerInfo info = read_block_index(*data);
  stats.shape = info.shape;
  stats.blocks = info.blocks.size();
  ScratchLease<float> storage(ScratchPool<float>::shared());
  for (std::size_t b = 0; b < info.blocks.size(); ++b) {
    FloatArray block =
        decompress_reusing<float>(block_payload(*data, info, b), *storage);
    stats.raw_bytes += block.byte_size();
    try {
      write_floats(out, block.values());
    } catch (...) {
      *storage = block.release();
      throw;
    }
    *storage = block.release();
  }
  return stats;
}

}  // namespace ocelot
