#pragma once
// Quality advisor: Ocelot capability #1 (Section V).
//
// "Selecting best-qualified lossy compression configuration based on
// our proposed quality predictor": the advisor evaluates candidate
// configurations through the trained quality model and returns the
// predicted (ratio, time, PSNR) table plus the best configuration
// under the user's constraints (minimum PSNR, maximum compression
// time), preferring the highest predicted ratio among feasible ones.

#include <optional>
#include <vector>

#include "compressor/config.hpp"
#include "predictor/quality_model.hpp"

namespace ocelot {

/// User acceptance constraints.
struct QualityConstraints {
  double min_psnr_db = 60.0;
  double max_compress_seconds = 1e12;  ///< effectively unbounded
};

/// One advised candidate.
struct AdvisedOption {
  CompressionConfig config;
  QualityPrediction prediction;
  bool feasible = false;
};

/// Advisor verdict: every option scored, plus the chosen one (if any).
struct Advice {
  std::vector<AdvisedOption> options;
  std::optional<std::size_t> best_index;
};

/// Scores `candidates` for `data` and picks the feasible option with
/// the highest predicted compression ratio.
template <typename T>
Advice advise(const QualityModel& model, const NdArray<T>& data,
              const std::vector<CompressionConfig>& candidates,
              const QualityConstraints& constraints,
              std::size_t sample_stride = 100);

/// Default candidate space: one configuration per registered
/// compressor backend per error bound, so every family in the
/// BackendRegistry (including out-of-tree registrations) competes in
/// the advisor table without this layer naming any of them.
std::vector<CompressionConfig> enumerate_candidates(
    const std::vector<double>& ebs, EbMode eb_mode = EbMode::kValueRangeRel);

}  // namespace ocelot
