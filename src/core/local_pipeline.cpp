#include "core/local_pipeline.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/grouping.hpp"
#include "io/dataset_file.hpp"
#include "io/group_archive.hpp"

namespace ocelot {

LocalPipelineResult run_local_pipeline(
    const std::vector<std::string>& names,
    const std::vector<FloatArray>& fields, const LocalPipelineConfig& config,
    FileStore* destination) {
  require(!fields.empty(), "run_local_pipeline: no fields");
  require(names.size() == fields.size(),
          "run_local_pipeline: name/field count mismatch");

  LocalPipelineResult result;
  GridFtpModel model;

  // Baseline: raw files over the WAN.
  std::vector<double> raw_sizes;
  raw_sizes.reserve(fields.size());
  for (const auto& f : fields) {
    raw_sizes.push_back(static_cast<double>(f.byte_size()));
  }
  result.direct_transfer = model.estimate(raw_sizes, config.link);

  // Stage 1: parallel compression (real) through the shared Engine
  // facade — the same dispatch (whole-file / blocked / adaptive) the
  // CLI and the daemon use, so all three frontends stay byte-for-byte
  // in agreement.
  EngineRequest request;
  request.config = config.compression;
  request.adaptive = config.adaptive;
  request.adaptive_options = config.adaptive_options;
  request.block_slabs = config.block_slabs;
  request.workers = config.workers;
  result.compression =
      Engine::shared().compress_fields(fields, request, &result.adaptive);

  // Stage 2 (optional): grouping; wire sizes include archive headers.
  // The ungrouped path is zero-copy: the compressed blobs travel as
  // views all the way into parallel_decompress instead of being copied
  // into wire payloads and back.
  std::vector<double> wire_sizes;
  std::vector<Bytes> wire_payloads;  // grouped mode only
  std::vector<std::span<const std::uint8_t>> blobs;
  if (config.group_files) {
    const GroupPlan plan = plan_groups_by_world_size(
        fields.size(), config.group_world_size);
    for (const auto& group : plan) {
      std::vector<GroupMember> members;
      members.reserve(group.size());
      for (const std::size_t i : group) {
        members.push_back({names[i], result.compression.blobs[i]});
      }
      Bytes archive = build_group(members);
      wire_sizes.push_back(static_cast<double>(archive.size()));
      wire_payloads.push_back(std::move(archive));
    }
    // Stage 4a: ungroup — members are views into the archives, which
    // outlive the decompression below.
    for (const auto& archive : wire_payloads) {
      for (const auto& entry : read_group_index(archive)) {
        blobs.push_back(std::span<const std::uint8_t>(archive).subspan(
            entry.offset, entry.size));
      }
    }
  } else {
    for (const auto& blob : result.compression.blobs) {
      wire_sizes.push_back(static_cast<double>(blob.size()));
      blobs.emplace_back(blob);
    }
  }
  result.wire_files = wire_sizes.size();

  // Stage 3: WAN transfer (modelled).
  result.transfer = model.estimate(wire_sizes, config.link);

  // Stage 4b: parallel decompression (real) + verification.
  require(blobs.size() == fields.size(),
          "run_local_pipeline: blob count mismatch after ungroup");

  Timer dt;
  const ParallelDecompressResult decomp =
      parallel_decompress(blobs, config.workers);
  result.decompress_seconds = dt.seconds();

  result.max_error = 0.0;
  result.min_psnr_db = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    result.max_error = std::max(
        result.max_error, max_abs_error<float>(fields[i].values(),
                                               decomp.fields[i].values()));
    result.min_psnr_db =
        std::min(result.min_psnr_db,
                 psnr<float>(fields[i].values(), decomp.fields[i].values()));
    if (destination != nullptr) {
      destination->write(names[i], save_field(names[i], decomp.fields[i]));
    }
  }
  return result;
}

ComputeRates measured_compute_rates(const LocalPipelineResult& result,
                                    std::size_t workers) {
  return calibrate_rates(result.compression.total_raw_bytes,
                         result.compression.wall_seconds,
                         result.decompress_seconds, workers);
}

}  // namespace ocelot
