#include "core/workload.hpp"

#include <numeric>

#include "common/error.hpp"

namespace ocelot {

double FileInventory::total_bytes() const {
  return std::accumulate(raw_bytes.begin(), raw_bytes.end(), 0.0);
}

FileInventory paper_inventory(const std::string& app) {
  FileInventory inv;
  inv.app = app;
  if (app == "Miranda") {
    // 768 files of 256x384x384 float32 = ~151 MB each, ~115 GB total.
    const double bytes = 256.0 * 384.0 * 384.0 * 4.0;
    inv.raw_bytes.assign(768, bytes);
    return inv;
  }
  if (app == "RTM") {
    // 3601 snapshots of 449x449x235 float32 = ~189.5 MB each, ~682 GB.
    const double bytes = 449.0 * 449.0 * 235.0 * 4.0;
    inv.raw_bytes.assign(3601, bytes);
    return inv;
  }
  if (app == "CESM") {
    // 61 snapshots, 7182 files in two shapes (Section VIII-A):
    // 36 x (26x1800x3600) + 81 x (1800x3600) per snapshot, plus 45
    // extra 2-D files to land exactly on 7182; total ~1.61 TB.
    const double b3d = 26.0 * 1800.0 * 3600.0 * 4.0;
    const double b2d = 1800.0 * 3600.0 * 4.0;
    for (int snap = 0; snap < 61; ++snap) {
      for (int i = 0; i < 36; ++i) inv.raw_bytes.push_back(b3d);
      for (int i = 0; i < 81; ++i) inv.raw_bytes.push_back(b2d);
    }
    for (int i = 0; i < 45; ++i) inv.raw_bytes.push_back(b2d);
    return inv;
  }
  throw NotFound("paper_inventory: unknown app " + app);
}

ComputeRates paper_compute_rates(const std::string& app) {
  // Compression rates calibrated from Table VIII CPTime on Anvil (16
  // nodes x 128 cores), accounting for whole-file parallelism: with
  // fewer files than cores only one core per file is active, so
  //   Miranda:  768 files < 2048 cores -> one wave,
  //             rate = 151 MB / 6.52 s  = 23.2 MB/s/core;
  //   RTM:      3601 files -> two waves of 189.5 MB in 9.03 s
  //             -> 42 MB/s/core;
  //   CESM:     the critical path is the 148 cores that draw two of
  //             the 2196 large 674 MB files: 2 x 674 MB / 32.5 s
  //             -> 41.5 MB/s/core.
  // Decompression rates keep compute roughly balanced against the
  // write-I/O bound at the paper's 8-node decompression geometry.
  ComputeRates rates;
  if (app == "CESM") {
    rates.compress_bps_per_core = 41.5e6;
    rates.decompress_bps_per_core = 200e6;
  } else if (app == "RTM") {
    rates.compress_bps_per_core = 42.0e6;
    rates.decompress_bps_per_core = 320e6;
  } else if (app == "Miranda") {
    rates.compress_bps_per_core = 23.2e6;
    rates.decompress_bps_per_core = 260e6;
  } else {
    throw NotFound("paper_compute_rates: unknown app " + app);
  }
  return rates;
}

}  // namespace ocelot
