#pragma once
// Paper-scale file inventories for the transfer experiments.
//
// Table VIII / Section VIII-A define fixed subsets: Miranda 768 files
// of 256x384x384, CESM 61 snapshots totalling 7182 files in two shapes
// (26x1800x3600 and 1800x3600), RTM 3601 snapshots of 449x449x235.
// The inventories reproduce those file counts and byte totals exactly;
// the simulated campaigns operate on these size lists while the real
// compressor calibrates ratios on scaled-down generated data.

#include <string>
#include <vector>

#include "exec/cluster_model.hpp"

namespace ocelot {

/// A named collection of file sizes (bytes) at paper scale.
struct FileInventory {
  std::string app;
  std::vector<double> raw_bytes;

  [[nodiscard]] double total_bytes() const;
  [[nodiscard]] std::size_t file_count() const { return raw_bytes.size(); }
};

/// Paper-scale inventory for "CESM", "RTM", or "Miranda";
/// throws NotFound otherwise.
FileInventory paper_inventory(const std::string& app);

/// Per-application compute rates calibrated from Table VIII's CPTime /
/// DPTime at the known node counts (see DESIGN.md section 1).
ComputeRates paper_compute_rates(const std::string& app);

}  // namespace ocelot
