#pragma once
// File grouping strategies (Section VII-C).
//
// Grouping many small compressed files into fewer larger ones raises
// transfer throughput (Table II), but over-grouping starves the
// transfer service's concurrency (the paper's Miranda case: 8 groups
// could not fill the available concurrent threads). The planner
// supports the paper's default ("group by world size": each group
// holds the files one compression wave produced) plus count- and
// byte-targeted strategies for the ablation benches.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ocelot {

/// A grouping plan: per group, the indices of member files.
using GroupPlan = std::vector<std::vector<std::size_t>>;

/// Groups consecutive files so each group has `world_size` members
/// (the last may be smaller). world_size is the paper's "available
/// number of cores for compression".
GroupPlan plan_groups_by_world_size(std::size_t n_files,
                                    std::size_t world_size);

/// Groups into exactly `n_groups` near-equal-count groups.
GroupPlan plan_groups_by_count(std::size_t n_files, std::size_t n_groups);

/// Greedily packs consecutive files until each group reaches
/// `target_bytes` (profiling-informed preferred transfer size).
GroupPlan plan_groups_by_target_bytes(std::span<const double> file_bytes,
                                      double target_bytes);

/// Aggregate per-group byte sizes under a plan.
std::vector<double> group_sizes(const GroupPlan& plan,
                                std::span<const double> file_bytes);

/// Sanity check: every index appears exactly once.
bool plan_is_partition(const GroupPlan& plan, std::size_t n_files);

}  // namespace ocelot
