#pragma once
// Sentinel: transfer-without-compression during node waiting time
// (Section VII-B, Fig. 10).
//
// When a user submits a compress-and-transfer task but the batch
// scheduler cannot grant compute nodes immediately, the sentinel
// starts transferring raw files right away. Completed filenames are
// recorded in a meta file; when nodes arrive, the raw transfer is
// cancelled and the remaining files are compressed, transferred and
// decompressed. Worst case (nodes never granted within the transfer
// window): everything moves uncompressed — exactly a direct transfer.

#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "scheduler/batch.hpp"

namespace ocelot {

/// Sentinel run parameters; scheduling behaviour comes from the wait
/// model, capacity from `machine_nodes`.
struct SentinelConfig {
  CampaignConfig campaign;
  int machine_nodes = 750;  ///< cluster size at the source
  /// Ambient wait before the compression job is granted.
  std::unique_ptr<WaitModel> wait_model;
};

/// Outcome of a sentinel-supervised transfer.
struct SentinelReport {
  double total_seconds = 0.0;
  double node_wait_seconds = 0.0;   ///< when granted; else full window
  bool nodes_granted = false;       ///< granted before the raw transfer ended
  std::size_t files_sent_raw = 0;   ///< moved uncompressed while waiting
  std::size_t files_sent_compressed = 0;
  double bytes_on_wire = 0.0;       ///< total bytes actually transferred
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  /// The meta file content: names of files that skipped compression.
  std::vector<std::string> meta_file;
};

/// Runs the sentinel protocol in virtual time.
SentinelReport run_sentinel(const FileInventory& inventory,
                            SentinelConfig config);

}  // namespace ocelot
