#include "core/advisor.hpp"

#include "common/error.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"

namespace ocelot {

template <typename T>
Advice advise(const QualityModel& model, const NdArray<T>& data,
              const std::vector<CompressionConfig>& candidates,
              const QualityConstraints& constraints,
              std::size_t sample_stride) {
  require(!candidates.empty(), "advise: no candidate configurations");

  // Data features are config-independent: extract once.
  const DataFeatures df = extract_data_features(data);

  Advice advice;
  advice.options.reserve(candidates.size());
  for (const auto& config : candidates) {
    const std::uint8_t backend_id =
        BackendRegistry::instance().by_name(config.backend).wire_id();
    const double abs_eb = resolve_abs_eb(data, config);
    const CompressorFeatures cf =
        extract_compressor_features(data, abs_eb, sample_stride);
    const FeatureVector fv = assemble_feature_vector(abs_eb, backend_id, df, cf);

    AdvisedOption option;
    option.config = config;
    option.prediction = model.predict(fv, data.size());
    option.feasible =
        option.prediction.psnr_db >= constraints.min_psnr_db &&
        option.prediction.compress_seconds <= constraints.max_compress_seconds;
    advice.options.push_back(option);
  }

  double best_ratio = 0.0;
  for (std::size_t i = 0; i < advice.options.size(); ++i) {
    const auto& opt = advice.options[i];
    if (opt.feasible && opt.prediction.compression_ratio > best_ratio) {
      best_ratio = opt.prediction.compression_ratio;
      advice.best_index = i;
    }
  }
  return advice;
}

template Advice advise<float>(const QualityModel&, const NdArray<float>&,
                              const std::vector<CompressionConfig>&,
                              const QualityConstraints&, std::size_t);
template Advice advise<double>(const QualityModel&, const NdArray<double>&,
                               const std::vector<CompressionConfig>&,
                               const QualityConstraints&, std::size_t);

std::vector<CompressionConfig> enumerate_candidates(
    const std::vector<double>& ebs, EbMode eb_mode) {
  std::vector<CompressionConfig> candidates;
  for (const CompressorBackend* backend : BackendRegistry::instance().list()) {
    for (const double eb : ebs) {
      CompressionConfig config;
      config.backend = backend->name();
      config.eb_mode = eb_mode;
      config.eb = eb;
      candidates.push_back(std::move(config));
    }
  }
  return candidates;
}

}  // namespace ocelot
