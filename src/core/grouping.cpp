#include "core/grouping.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace ocelot {

GroupPlan plan_groups_by_world_size(std::size_t n_files,
                                    std::size_t world_size) {
  require(n_files > 0, "plan_groups: no files");
  require(world_size > 0, "plan_groups: zero world size");
  GroupPlan plan;
  for (std::size_t start = 0; start < n_files; start += world_size) {
    std::vector<std::size_t> group;
    const std::size_t end = std::min(n_files, start + world_size);
    for (std::size_t i = start; i < end; ++i) group.push_back(i);
    plan.push_back(std::move(group));
  }
  return plan;
}

GroupPlan plan_groups_by_count(std::size_t n_files, std::size_t n_groups) {
  require(n_files > 0, "plan_groups: no files");
  require(n_groups > 0, "plan_groups: zero groups");
  n_groups = std::min(n_groups, n_files);
  GroupPlan plan(n_groups);
  // Distribute remainders across the leading groups.
  const std::size_t base = n_files / n_groups;
  const std::size_t extra = n_files % n_groups;
  std::size_t next = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const std::size_t count = base + (g < extra ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) plan[g].push_back(next++);
  }
  return plan;
}

GroupPlan plan_groups_by_target_bytes(std::span<const double> file_bytes,
                                      double target_bytes) {
  require(!file_bytes.empty(), "plan_groups: no files");
  require(target_bytes > 0.0, "plan_groups: non-positive target");
  GroupPlan plan;
  std::vector<std::size_t> current;
  double current_bytes = 0.0;
  for (std::size_t i = 0; i < file_bytes.size(); ++i) {
    current.push_back(i);
    current_bytes += file_bytes[i];
    if (current_bytes >= target_bytes) {
      plan.push_back(std::move(current));
      current = {};
      current_bytes = 0.0;
    }
  }
  if (!current.empty()) plan.push_back(std::move(current));
  return plan;
}

std::vector<double> group_sizes(const GroupPlan& plan,
                                std::span<const double> file_bytes) {
  std::vector<double> sizes;
  sizes.reserve(plan.size());
  for (const auto& group : plan) {
    double bytes = 0.0;
    for (const std::size_t i : group) {
      require(i < file_bytes.size(), "group_sizes: index out of range");
      bytes += file_bytes[i];
    }
    sizes.push_back(bytes);
  }
  return sizes;
}

bool plan_is_partition(const GroupPlan& plan, std::size_t n_files) {
  std::vector<bool> seen(n_files, false);
  std::size_t count = 0;
  for (const auto& group : plan) {
    for (const std::size_t i : group) {
      if (i >= n_files || seen[i]) return false;
      seen[i] = true;
      ++count;
    }
  }
  return count == n_files;
}

}  // namespace ocelot
