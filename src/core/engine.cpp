#include "core/engine.hpp"

#include <thread>

#include "codec/entropy.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "compressor/backend.hpp"
#include "compressor/compressor.hpp"
#include "io/block_container.hpp"

namespace ocelot {

std::string resolve_backend_name(const std::string& name) {
  const std::string resolved = name == "sz3" ? "sz3-interp" : name;
  (void)BackendRegistry::instance().by_name(resolved);  // throws if unknown
  return resolved;
}

std::string resolve_entropy_name(const std::string& name) {
  return EntropyRegistry::instance().by_name(name).name();  // throws if unknown
}

EngineRequest parse_compression_options(OptionSet& options,
                                        const CompressionOptionRules& rules) {
  EngineRequest request;
  request.config.eb_mode = EbMode::kValueRangeRel;

  // Knobs that imply policy=adaptive on frontends that enforce it
  // (checked before consumption so the getters below can run freely).
  const bool advisor_knob_given =
      options.has("backends") || options.has("entropy_stages") ||
      options.has("eb_scales") || options.has("min_psnr") ||
      options.has("stride") || options.has("workers");

  request.config.eb = options.get_double("eb", request.config.eb);
  const std::string mode =
      options.get_choice("mode", {"abs", "rel"}, "rel", "eb mode");
  request.config.eb_mode =
      mode == "abs" ? EbMode::kAbsolute : EbMode::kValueRangeRel;

  // backend with "pipeline" as an alias; when both appear the one given
  // later wins, matching the CLI's historical in-order processing.
  const auto backend_at = options.index_of("backend");
  const auto pipeline_at = options.index_of("pipeline");
  const auto backend_v = options.take("backend");
  const auto pipeline_v = options.take("pipeline");
  if (backend_v.has_value() || pipeline_v.has_value()) {
    const bool use_pipeline =
        pipeline_v.has_value() &&
        (!backend_v.has_value() || *pipeline_at > *backend_at);
    request.config.backend =
        resolve_backend_name(use_pipeline ? *pipeline_v : *backend_v);
  }
  if (const auto v = options.take("entropy")) {
    request.config.entropy = resolve_entropy_name(*v);
  }

  request.adaptive = rules.default_adaptive;
  if (rules.allow_policy) {
    const std::string policy = options.get_choice(
        "policy", {"fixed", "adaptive"},
        rules.default_adaptive ? "adaptive" : "fixed");
    request.adaptive = policy == "adaptive";
  }

  request.block_slabs = options.get_count("block_slabs", 0);
  request.workers = options.get_count("workers", 0);

  if (options.has("backends")) {
    request.adaptive_options.backends.clear();
    for (const std::string& name : options.get_list("backends")) {
      request.adaptive_options.backends.push_back(resolve_backend_name(name));
    }
  }
  if (options.has("entropy_stages")) {
    request.adaptive_options.entropy_stages.clear();
    for (const std::string& name : options.get_list("entropy_stages")) {
      request.adaptive_options.entropy_stages.push_back(
          resolve_entropy_name(name));
    }
  }
  if (options.has("eb_scales")) {
    request.adaptive_options.eb_scales.clear();
    for (const std::string& part : options.get_list("eb_scales")) {
      request.adaptive_options.eb_scales.push_back(
          parse_double_option("eb_scales", part));
    }
  }
  request.adaptive_options.min_psnr_db =
      options.get_double("min_psnr", request.adaptive_options.min_psnr_db);
  request.adaptive_options.sample_stride =
      options.get_count("stride", request.adaptive_options.sample_stride);

  if (rules.advisor_knobs_need_policy && !request.adaptive &&
      advisor_knob_given) {
    throw InvalidArgument(
        "backends/entropy_stages/eb_scales/min_psnr/stride/workers need "
        "policy=adaptive");
  }
  return request;
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

std::size_t Engine::resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 4;
}

EngineResult Engine::compress(const FloatArray& field,
                              const EngineRequest& request, Bytes& out,
                              AdvisorPolicy* policy) const {
  EngineResult result;
  result.raw_bytes = field.byte_size();
  result.abs_eb = resolve_abs_eb(field, request.config);

  if (request.adaptive) {
    const std::size_t block_slabs =
        request.block_slabs > 0 ? request.block_slabs : 8;
    AdvisorPolicy local(request.adaptive_options);
    AdvisorPolicy* active = policy != nullptr ? policy : &local;
    const BlockCompressResult r =
        block_compress(field, request.config, resolve_workers(request.workers),
                       block_slabs, active);
    out.insert(out.end(), r.container.begin(), r.container.end());
    result.compressed_bytes = r.container.size();
    result.blocks = r.n_blocks;
    result.wall_seconds = r.wall_seconds;
    result.adaptive = active->summary();
    return result;
  }

  Timer timer;
  const std::size_t before = out.size();
  ByteSink sink(out);
  compress_into(field, request.config, sink);
  result.compressed_bytes = out.size() - before;
  result.blocks = 1;
  result.wall_seconds = timer.seconds();
  return result;
}

FloatArray Engine::decompress(std::span<const std::uint8_t> blob,
                              std::size_t workers) const {
  if (is_block_container(blob)) {
    return block_decompress(blob, resolve_workers(workers)).field;
  }
  return ocelot::decompress<float>(blob);
}

ParallelCompressResult Engine::compress_fields(
    const std::vector<FloatArray>& fields, const EngineRequest& request,
    AdaptiveSummary* adaptive_out) const {
  if (request.adaptive) {
    const std::size_t block_slabs =
        request.block_slabs > 0 ? request.block_slabs : 8;
    AdvisorPolicy policy(request.adaptive_options);
    ParallelCompressResult r =
        parallel_compress(fields, request.config,
                          resolve_workers(request.workers), block_slabs,
                          &policy);
    if (adaptive_out != nullptr) *adaptive_out = policy.summary();
    return r;
  }
  return parallel_compress(fields, request.config,
                           resolve_workers(request.workers),
                           request.block_slabs);
}

StreamStats Engine::compress_stream(
    std::istream& in, std::ostream& out, const EngineRequest& request,
    const std::vector<std::size_t>& slab_dims) const {
  StreamCompressConfig config;
  config.compression = request.config;
  config.slab_dims = slab_dims;
  config.block_slabs = request.block_slabs > 0 ? request.block_slabs : 8;
  return stream_compress(in, out, config);
}

StreamStats Engine::decompress_stream(std::istream& in,
                                      std::ostream& out) const {
  return stream_decompress(in, out);
}

}  // namespace ocelot
