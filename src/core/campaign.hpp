#pragma once
// End-to-end transfer campaigns (the Fig. 1 pipeline, evaluated in
// Table VIII and Fig. 16).
//
// A campaign moves one application's file inventory from a source site
// to a destination site in one of three modes:
//   kDirect            (paper's NP)  raw files, no compression
//   kCompressedPerFile (paper's CP)  parallel compression, one
//                                    compressed file per input
//   kCompressedGrouped (paper's OP)  compression + file grouping
//
// The campaign runs in virtual time: funcX dispatch starts the remote
// compression, the cluster cost model yields (de)compression
// makespans, and the Globus/GridFTP model yields transfer time.

#include <string>

#include "core/workload.hpp"
#include "faas/funcx.hpp"
#include "netsim/gridftp.hpp"
#include "netsim/sites.hpp"

namespace ocelot {

enum class TransferMode {
  kDirect = 0,
  kCompressedPerFile = 1,
  kCompressedGrouped = 2,
};

std::string to_string(TransferMode mode);

/// Campaign parameters.
struct CampaignConfig {
  std::string src = "Anvil";
  std::string dst = "Cori";
  int compress_nodes = 16;
  int compress_cores_per_node = 128;
  int decompress_nodes = 8;
  int decompress_cores_per_node = 32;
  /// Achieved compression ratio (measured on real data by the caller,
  /// or predicted by the quality model).
  double compression_ratio = 8.0;
  /// Per-core throughputs; calibrate_rates()/measured_compute_rates()
  /// derive these from a real block-parallel run.
  ComputeRates rates;
  /// Block-parallel codec block size in raw bytes: each file becomes
  /// ceil(size / block_bytes) compute tasks, so the (de)compression
  /// makespan keeps scaling when cores outnumber files. 0 = the
  /// paper's whole-file executor.
  double block_bytes = 0.0;
  /// Files per group for kCompressedGrouped ("world size" strategy).
  std::size_t group_world_size = 96;
  /// Online adaptive advisor (core/adaptive.hpp) enabled for the
  /// compression stage: the virtual-time model charges the advisor's
  /// per-block feature-sampling / calibration overhead on top of the
  /// block compute. `compression_ratio` should then carry the ratio a
  /// measured adaptive run achieved (measured_compute_rates bridges
  /// the real run into these knobs).
  bool adaptive = false;
  /// Fractional compression-stage overhead of the advisor hot path
  /// (strided feature pass + per-field calibration probes).
  double adaptive_overhead = 0.03;
  /// funcX endpoint cost structure for the remote orchestration.
  /// Ocelot keeps campaign containers warm (Section III-C), so the
  /// default cold-start charge is the warm-pool replenishment cost.
  FuncXEndpointConfig faas{/*name=*/"", /*dispatch_latency_s=*/0.12,
                           /*cold_start_s=*/0.5, /*warm_overhead_s=*/0.01,
                           /*batch_latency_s=*/0.02};
};

/// Timing breakdown of one campaign.
struct CampaignReport {
  TransferMode mode = TransferMode::kDirect;
  double transfer_seconds = 0.0;      ///< WAN time (T in Table VIII)
  double effective_speed_bps = 0.0;   ///< transferred bytes / transfer time
  double compress_seconds = 0.0;      ///< CPTime
  double decompress_seconds = 0.0;    ///< DPTime
  double orchestration_seconds = 0.0; ///< funcX dispatch + container costs
  double node_wait_seconds = 0.0;     ///< time queued for compute nodes
  double total_seconds = 0.0;         ///< Total T
  std::size_t files_transferred = 0;
  double bytes_transferred = 0.0;
};

/// Runs one campaign in virtual time and returns the breakdown.
CampaignReport run_campaign(const FileInventory& inventory, TransferMode mode,
                            const CampaignConfig& config);

/// Convenience: (T(NP) - TotalT) / T(NP), the paper's "Gain".
double campaign_gain(const CampaignReport& direct,
                     const CampaignReport& optimized);

}  // namespace ocelot
