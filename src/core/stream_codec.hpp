#pragma once
// Chunked streaming compression over byte streams (pipes, stdin).
//
// The block-parallel codec needs the whole field in memory; this layer
// removes that requirement for sequential producers: raw float32
// samples are read in block-sized chunks, each chunk is compressed as
// one OCB1 block through the zero-copy sink path (pooled scratch, no
// per-chunk allocation in steady state), and the container is emitted
// once the leading dimension is known at EOF. `ocelot compress - ...`
// and examples/streaming_pipe.cpp drive it.
//
// Bound semantics: an absolute bound behaves exactly like the block
// codec. A value-range-relative bound is resolved per chunk (the full
// field is never resident), so each block honors eb x its own chunk
// range — use mode=abs when cross-chunk uniformity matters.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/ndarray.hpp"
#include "compressor/config.hpp"

namespace ocelot {

/// Parameters of the chunked compressor.
struct StreamCompressConfig {
  CompressionConfig compression;
  /// Trailing dimensions of one slab: {} reads a flat 1-D stream,
  /// {ny} rank-2 rows, {ny, nx} rank-3 planes. The field shape becomes
  /// (slabs, slab_dims...) with the slab count discovered at EOF.
  std::vector<std::size_t> slab_dims;
  /// Slabs per compressed block (the chunk size read at a time).
  std::size_t block_slabs = 8;
};

/// Outcome of a streaming run.
struct StreamStats {
  Shape shape;                       ///< full field shape
  std::size_t blocks = 0;            ///< OCB1 blocks written/read
  std::size_t raw_bytes = 0;         ///< float payload bytes
  std::size_t compressed_bytes = 0;  ///< container bytes

  [[nodiscard]] double ratio() const {
    return compressed_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes)
               : 0.0;
  }
};

/// Reads raw float32 samples (native endianness) from `in` until EOF,
/// compressing chunk by chunk; writes one OCB1 container to `out`.
/// Throws InvalidArgument for empty input or slab_dims deeper than 2,
/// and CorruptStream when the stream ends mid-float or mid-slab.
StreamStats stream_compress(std::istream& in, std::ostream& out,
                            const StreamCompressConfig& config);

/// Reads one OCB1 container (or a bare OCZ1 blob) from `in` and writes
/// the reconstructed raw float32 samples to `out`, block by block —
/// the full field is never materialized. Throws CorruptStream on
/// malformed input.
StreamStats stream_decompress(std::istream& in, std::ostream& out);

}  // namespace ocelot
