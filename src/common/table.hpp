#pragma once
// Fixed-width text table printer used by the bench binaries to emit
// paper-style tables (Table I, II, V-VIII) to stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace ocelot {

/// Collects rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  /// Renders to the stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt_double(double v, int precision = 2);

/// Formats a byte count as B/KB/MB/GB/TB with 2 decimals.
std::string fmt_bytes(double bytes);

/// Formats seconds as "12.3s" / "4m32s" style.
std::string fmt_seconds(double s);

/// Formats a rate in bytes/sec as MB/s or GB/s.
std::string fmt_rate(double bytes_per_sec);

}  // namespace ocelot
