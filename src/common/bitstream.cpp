#include "common/bitstream.hpp"

// Header-only today; this TU anchors the library.
