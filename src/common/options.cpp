#include "common/options.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace ocelot {

double parse_double_option(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("bad " + key + " value: " + value);
  }
}

std::size_t parse_count_option(const std::string& key,
                               const std::string& value) {
  try {
    // stoull accepts and wraps a leading sign; a count never has one.
    if (value.empty() || value[0] == '-' || value[0] == '+') {
      throw std::invalid_argument(value);
    }
    std::size_t consumed = 0;
    const unsigned long long v = std::stoull(value, &consumed);
    if (consumed != value.size() || v == 0) throw std::invalid_argument(value);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw InvalidArgument("bad " + key + " value: " + value);
  }
}

OptionSet OptionSet::from_args(const std::vector<std::string>& args,
                               const std::string& context) {
  OptionSet options;
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument(context + " options are key=value, got: " + arg);
    }
    options.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return options;
}

OptionSet OptionSet::from_line(const std::string& line,
                               const std::string& context) {
  std::vector<std::string> args;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) args.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return from_args(args, context);
}

void OptionSet::set(const std::string& key, const std::string& value) {
  if (Entry* e = find(key)) {
    e->value = value;  // last wins, position and consumption kept
    return;
  }
  entries_.push_back({key, value, /*consumed=*/false});
}

bool OptionSet::has(const std::string& key) const {
  return find(key) != nullptr;
}

std::optional<std::size_t> OptionSet::index_of(const std::string& key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) return i;
  }
  return std::nullopt;
}

std::optional<std::string> OptionSet::take(const std::string& key) {
  if (Entry* e = find(key)) {
    e->consumed = true;
    return e->value;
  }
  return std::nullopt;
}

std::string OptionSet::get_string(const std::string& key,
                                  const std::string& def) {
  const auto v = take(key);
  return v.has_value() ? *v : def;
}

double OptionSet::get_double(const std::string& key, double def) {
  const auto v = take(key);
  return v.has_value() ? parse_double_option(key, *v) : def;
}

std::size_t OptionSet::get_count(const std::string& key, std::size_t def) {
  const auto v = take(key);
  return v.has_value() ? parse_count_option(key, *v) : def;
}

bool OptionSet::get_flag(const std::string& key, bool def) {
  const auto v = take(key);
  if (!v.has_value()) return def;
  if (*v != "0" && *v != "1") {
    throw InvalidArgument("bad " + key + " value: " + *v + " (expected 0|1)");
  }
  return *v == "1";
}

std::string OptionSet::get_choice(const std::string& key,
                                  const std::vector<std::string>& choices,
                                  const std::string& def,
                                  const std::string& label) {
  const auto v = take(key);
  if (!v.has_value()) return def;
  for (const std::string& choice : choices) {
    if (*v == choice) return *v;
  }
  std::string expected;
  for (const std::string& choice : choices) {
    if (!expected.empty()) expected += '|';
    expected += choice;
  }
  throw InvalidArgument("unknown " + (label.empty() ? key : label) + ": " +
                        *v + " (expected " + expected + ")");
}

std::vector<std::string> OptionSet::get_list(const std::string& key) {
  const auto v = take(key);
  std::vector<std::string> parts;
  if (!v.has_value()) return parts;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = v->find(',', pos);
    if (comma == std::string::npos) {
      parts.push_back(v->substr(pos));
      return parts;
    }
    parts.push_back(v->substr(pos, comma - pos));
    pos = comma + 1;
  }
}

void OptionSet::reject_unknown(const std::string& context,
                               const std::string& noun) const {
  for (const Entry& e : entries_) {
    if (!e.consumed) {
      throw InvalidArgument("unknown " + context + " " + noun + ": " + e.key);
    }
  }
}

std::string OptionSet::canonical_line(bool unconsumed_only) const {
  std::string line;
  for (const Entry& e : entries_) {
    if (unconsumed_only && e.consumed) continue;
    if (!line.empty()) line += ' ';
    line += e.key;
    line += '=';
    line += e.value;
  }
  return line;
}

OptionSet::Entry* OptionSet::find(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

const OptionSet::Entry* OptionSet::find(const std::string& key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

}  // namespace ocelot
